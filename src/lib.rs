//! Umbrella crate for the Alexander-templates reproduction.
//!
//! Re-exports the public facade so the examples and integration tests in
//! this repository root can use one import path. Library users should depend
//! on [`alexander_core`] directly.

pub use alexander_core::*;

/// Convenience re-exports of the component crates for integration tests.
pub mod crates {
    pub use alexander_eval as eval;
    pub use alexander_ir as ir;
    pub use alexander_parser as parser;
    pub use alexander_storage as storage;
    pub use alexander_topdown as topdown;
    pub use alexander_transform as transform;
    pub use alexander_workload as workload;
}
