//! Quickstart: load a program, ask a query, compare all nine strategies.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use alexander_core::{Engine, Strategy};
use alexander_parser::parse_atom;

fn main() {
    // Rules and facts in one source string. Facts become the extensional
    // database; `X`, `Y`, `Z` are variables, lower-case names are constants.
    let engine = Engine::from_source(
        "
        % A tiny genealogy.
        par(adam, seth).    par(seth, enos).
        par(enos, kenan).   par(kenan, mahalalel).
        par(adam, abel).

        % Ancestor is the transitive closure of parent.
        anc(X, Y) :- par(X, Y).
        anc(X, Y) :- par(X, Z), anc(Z, Y).
        ",
    )
    .expect("the program is valid");

    // A bound query: whose ancestor is seth?
    let query = parse_atom("anc(seth, X)").expect("parses");

    println!("query: {query}\n");
    for strategy in Strategy::ALL {
        match engine.query(&query, strategy) {
            Ok(result) => {
                let answers: Vec<String> = result.answers.iter().map(|a| a.to_string()).collect();
                println!("{:<12} -> {}", strategy.name(), answers.join(", "));
                println!("{:<12}    {}", "", result.report);
            }
            Err(e) => println!("{:<12} -> error: {e}", strategy.name()),
        }
    }

    // The goal-directed strategies report their demand set: how many
    // subqueries the evaluation actually issued.
    let alexander = engine.query(&query, Strategy::Alexander).unwrap();
    println!(
        "\nAlexander templates issued {} subqueries to answer {query}.",
        alexander.report.calls.unwrap()
    );
}
