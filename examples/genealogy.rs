//! Genealogy at scale: the workload the paper's introduction motivates —
//! a large parent relation queried for one person's ancestors.
//!
//! Builds a synthetic 4-generation-deep random forest of 5000 people,
//! then shows why the query-directed strategies exist: a bound query on a
//! big database should not pay for the whole transitive closure.
//!
//! ```text
//! cargo run --release --example genealogy
//! ```

use alexander_core::{Engine, Strategy};
use alexander_ir::{Const, Predicate};
use alexander_parser::{parse, parse_atom};
use alexander_storage::{Database, Tuple};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::time::Instant;

const PEOPLE: usize = 5000;
const GENERATIONS: usize = 12;

/// A layered random forest: each person in generation g+1 gets a parent in
/// generation g.
fn synthesize_families(seed: u64) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = Database::new();
    let par = Predicate::new("par", 2);
    let per_gen = PEOPLE / GENERATIONS;
    for g in 1..GENERATIONS {
        for i in 0..per_gen {
            let child = g * per_gen + i;
            let parent = (g - 1) * per_gen + rng.random_range(0..per_gen);
            db.insert(
                par,
                Tuple::new(vec![
                    Const::sym(&format!("p{parent}")),
                    Const::sym(&format!("p{child}")),
                ]),
            );
        }
    }
    db
}

fn main() {
    let rules = parse(
        "
        anc(X, Y) :- par(X, Y).
        anc(X, Y) :- par(X, Z), anc(Z, Y).
        desc(X, Y) :- anc(Y, X).
        ",
    )
    .unwrap()
    .program;
    let edb = synthesize_families(42);
    println!(
        "synthetic genealogy: {} parent edges over {PEOPLE} people, {GENERATIONS} generations\n",
        edb.len_of(Predicate::new("par", 2))
    );
    let engine = Engine::new(rules, edb).unwrap();

    // Descendants of one early-generation person (bound query).
    let query = parse_atom("desc(X, p3)").unwrap();
    println!("query: {query} (descendants of p3)\n");
    println!(
        "{:<12} {:>9} {:>12} {:>9} {:>10}",
        "strategy", "answers", "facts", "calls", "time"
    );
    for strategy in [
        Strategy::SemiNaive,
        Strategy::Magic,
        Strategy::SupplementaryMagic,
        Strategy::Alexander,
        Strategy::Oldt,
    ] {
        let t0 = Instant::now();
        let r = engine.query(&query, strategy).expect("runs");
        let dt = t0.elapsed();
        println!(
            "{:<12} {:>9} {:>12} {:>9} {:>8.1}ms",
            strategy.name(),
            r.answers.len(),
            r.report.facts_materialised,
            r.report
                .calls
                .map(|c| c.to_string())
                .unwrap_or_else(|| "-".into()),
            dt.as_secs_f64() * 1e3,
        );
    }

    println!(
        "\nThe rewritings and OLDT answer from the p3 subtree alone; \
         semi-naive pays for the ancestor closure of all {PEOPLE} people."
    );
}
