//! Solving the win–move game with the conditional fixpoint.
//!
//! `win(X) :- move(X, Y), !win(Y).` is the canonical program that negation
//! through recursion makes unstratifiable, yet its meaning is perfectly
//! clear game theory: a position is won iff some move reaches a lost
//! position; positions trapped in cycles with no winning escape are draws.
//! The conditional fixpoint (Bry 1989) computes exactly that: decided atoms
//! become facts, draws surface as the *undefined* residue.
//!
//! ```text
//! cargo run --example game_analysis
//! ```

use alexander_eval::eval_conditional;
use alexander_ir::Predicate;
use alexander_parser::parse;
use alexander_storage::Database;

fn main() {
    // A small board with all three outcomes:
    //
    //   a -> b -> c       a chain: c is stuck (lost), b won, a lost
    //   x <-> y           a pure 2-cycle: perpetual stand-off, drawn
    //   z -> x            z's only move enters the stand-off: drawn too
    let parsed = parse(
        "
        move(a, b). move(b, c).
        move(x, y). move(y, x).
        move(z, x).
        win(X) :- move(X, Y), !win(Y).
        ",
    )
    .unwrap();
    let edb = Database::from_program(&parsed.program);

    let result = eval_conditional(&parsed.program, &edb).expect("program is safe");

    let win = Predicate::new("win", 1);
    let mut won: Vec<String> = result
        .db
        .atoms_of(win)
        .iter()
        .map(|a| a.terms[0].to_string())
        .collect();
    won.sort();
    let mut drawn: Vec<String> = result
        .undefined
        .iter()
        .map(|a| a.terms[0].to_string())
        .collect();
    drawn.sort();

    println!("positions won for the player to move : {}", won.join(", "));
    println!(
        "positions drawn (cyclic stand-off)   : {}",
        drawn.join(", ")
    );
    println!(
        "\nconditional statements generated: {}, fixpoint rounds: {}",
        result.metrics.conditional_statements, result.metrics.iterations
    );

    // Game-theoretic reading, checked:
    //   c has no moves -> lost; b -> c wins; a -> b (won) only -> a lost.
    //   x and y shuttle forever -> drawn; z can only enter the shuttle.
    assert_eq!(won, ["b"]);
    assert_eq!(drawn, ["x", "y", "z"]);
    println!("\ngame-theoretic reading confirmed: b wins by moving to the stuck c;");
    println!("the x/y stand-off and z (whose only move enters it) are undefined —");
    println!("exactly the well-founded model's undefined atoms.");
}
