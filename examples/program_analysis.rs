//! Static analysis and rewriting, shown on source text: stratification, the
//! loose-stratification ladder, and what the three query-directed
//! rewritings actually generate.
//!
//! ```text
//! cargo run --example program_analysis
//! ```

use alexander_ir::analysis::{locally_stratified, loosely_stratified, stratify};
use alexander_parser::{parse, parse_atom};
use alexander_transform::{alexander, magic_sets, sup_magic_sets, SipOptions};

fn describe(name: &str, src: &str) {
    println!("== {name} ==");
    let parsed = parse(src).expect("parses");
    let program = parsed.program;
    print!("{program}");

    match stratify(&program) {
        Ok(s) => println!("stratified: yes ({} strata)", s.len()),
        Err(e) => println!("stratified: no — {e}"),
    }
    match loosely_stratified(&program) {
        Ok(()) => println!("loosely stratified: yes"),
        Err(w) => println!("loosely stratified: no — {w}"),
    }
    match locally_stratified(&program, &[]) {
        Ok(()) => println!("locally stratified (over its facts): yes"),
        Err(w) => println!("locally stratified (over its facts): no — {w}"),
    }
    println!();
}

fn main() {
    describe(
        "stratified: reachable / unreachable",
        "
        edge(s, a). edge(a, b). node(s). node(a). node(b). node(z).
        reach(X) :- edge(s, X).
        reach(Y) :- reach(X), edge(X, Y).
        unreach(X) :- node(X), !reach(X).
        ",
    );

    describe(
        "Bry's guard: unstratified but loosely stratified",
        "
        q(c, d). s(e2, c).
        p(X, a) :- q(X, Y), s(Z, X), !p(Z, b).
        ",
    );

    describe(
        "win-move on an acyclic board: only locally stratified",
        "
        move(a, b). move(b, c).
        win(X) :- move(X, Y), !win(Y).
        ",
    );

    // What the rewritings generate for the ancestor query.
    let program = parse(
        "
        anc(X, Y) :- par(X, Y).
        anc(X, Y) :- par(X, Z), anc(Z, Y).
        ",
    )
    .unwrap()
    .program;
    let query = parse_atom("anc(adam, X)").unwrap();
    let opts = SipOptions::default();

    println!("== the three rewritings of anc(adam, X) ==\n");
    let m = magic_sets(&program, &query, opts).unwrap();
    println!("-- generalized magic sets --\n{}", m.program);
    let s = sup_magic_sets(&program, &query, opts).unwrap();
    println!("-- supplementary magic sets --\n{}", s.program);
    let a = alexander(&program, &query, opts).unwrap();
    println!("-- alexander templates --\n{}", a.program);
    println!(
        "note the isomorphism: sup_… ≙ cont_…, magic_… ≙ call_…, and the \
         adorned predicate anc_bf ≙ ans_anc_bf."
    );
}
