//! Incremental view maintenance: a dependency graph whose transitive
//! closure stays materialised while edges come and go (DRed deletion,
//! semi-naive insertion).
//!
//! ```text
//! cargo run --example incremental
//! ```

use alexander_eval::IncrementalEngine;
use alexander_ir::Predicate;
use alexander_parser::parse_atom;
use alexander_workload as workload;

fn main() {
    // A build-dependency graph: dep(A, B) = "A depends directly on B";
    // needs(A, B) is its transitive closure (everything A pulls in).
    let program = alexander_parser::parse(
        "
        needs(X, Y) :- dep(X, Y).
        needs(X, Y) :- dep(X, Z), needs(Z, Y).
        ",
    )
    .unwrap()
    .program;

    // Start from a chain of 6 packages: p0 -> p1 -> ... -> p6 (as n0..n6).
    let edb = workload::chain("dep", 6);
    let mut engine = IncrementalEngine::new(program, edb).expect("definite program");
    let needs = Predicate::new("needs", 2);
    println!(
        "initial: {} direct deps, {} transitive `needs` facts",
        engine.db().len_of(Predicate::new("dep", 2)),
        engine.db().len_of(needs)
    );

    // A new shortcut dependency appears: n0 -> n4.
    let added = engine
        .insert(&parse_atom("dep(n0, n4)").unwrap())
        .expect("edb insert");
    println!("insert dep(n0, n4): {added} facts added (mostly none — the closure already knew)");

    // The n2 -> n3 edge is removed (a package drops a dependency). All
    // `needs` pairs that only went through it must disappear; anything with
    // an alternative route (via the new shortcut) must survive.
    let (overdeleted, rederived) = engine
        .delete(&parse_atom("dep(n2, n3)").unwrap())
        .expect("edb delete");
    println!(
        "delete dep(n2, n3): {overdeleted} facts overdeleted, {rederived} rederived via other paths"
    );

    // n0 still needs n5: the shortcut n0 -> n4 -> n5 survives the cut.
    assert!(engine
        .db()
        .contains_atom(&parse_atom("needs(n0, n5)").unwrap()));
    // But n1 lost its route past the cut entirely.
    assert!(!engine
        .db()
        .contains_atom(&parse_atom("needs(n1, n5)").unwrap()));
    println!(
        "after updates: {} `needs` facts; n0 still reaches n5 via the shortcut, n1 does not",
        engine.db().len_of(needs)
    );
    println!("cumulative engine work: {}", engine.metrics());
}
