//! The Supplementary Magic Sets rewriting (Beeri–Ramakrishnan 1987).
//!
//! Plain magic sets re-evaluates each rule prefix once for the modified rule
//! and once per magic rule. The supplementary variant materialises each
//! prefix exactly once in `sup` predicates and chains them:
//!
//! ```text
//! p^a(t̄) :- L₁, …, Lₙ            (adorned, IDB literals at positions j₁ < …)
//!   ⇒  sup_{r,0}(V₀)   :- magic_p^a(t̄_b), L₁, …, L_{j₁-1}.
//!      magic_q^b(ū_b)  :- sup_{r,0}(V₀).
//!      sup_{r,1}(V₁)   :- sup_{r,0}(V₀), q^b(ū), …next EDB segment….
//!      …
//!      p^a(t̄)          :- sup_{r,last}(V), …trailing EDB literals….
//! ```
//!
//! `Vᵢ` keeps exactly the variables that are bound at the cut *and* still
//! needed later (by the remaining body or the head). Structurally this is
//! the Alexander method with different predicate names — the test suites and
//! experiment E4 verify that correspondence rather than assuming it.

use crate::adorn::{adorn, AdornError, SipOptions};
use crate::common::{bound_args, prefixed, seed_atom, Rewritten};
use alexander_ir::{Atom, FxHashSet, Literal, Polarity, Program, Rule, Symbol, Term, Var};

/// Applies the supplementary magic rewriting to `program` for `query`.
pub fn sup_magic_sets(
    program: &Program,
    query: &Atom,
    opts: SipOptions,
) -> Result<Rewritten, AdornError> {
    let adorned = adorn(program, query, opts)?;
    let mut rules: Vec<Rule> = Vec::new();

    for (ri, rule) in adorned.program.rules.iter().enumerate() {
        rewrite_rule(ri, rule, &adorned, &mut rules, &Naming::sup());
    }

    let seed = seed_atom("magic_", query, &adorned.query_adorned);
    let call_pred = seed.predicate();
    let mut program_out = Program::from_rules(rules);
    program_out.facts.push(seed.clone());

    Ok(Rewritten {
        seed,
        query: adorned.query.clone(),
        answer_pred: adorned.query.predicate(),
        call_pred,
        program: program_out,
        adorned,
    })
}

/// Naming scheme for the segmented rewrite, shared conceptually with the
/// Alexander method (which instantiates it differently in its own module).
pub(crate) struct Naming {
    /// Prefix of the demand predicate (`magic_` / `call_`).
    pub demand: &'static str,
    /// Prefix of the continuation predicates (`sup` / `cont`).
    pub cont: &'static str,
    /// Rename IDB body literals and rule heads to `ans_…` (Alexander) or
    /// keep the adorned predicate (supplementary magic).
    pub answers_prefix: Option<&'static str>,
}

impl Naming {
    pub(crate) fn sup() -> Naming {
        Naming {
            demand: "magic_",
            cont: "sup",
            answers_prefix: None,
        }
    }

    fn answer_atom(&self, a: &Atom) -> Atom {
        match self.answers_prefix {
            None => a.clone(),
            Some(p) => Atom {
                pred: prefixed(p, a.pred),
                terms: a.terms.clone(),
            },
        }
    }
}

/// Rewrites one adorned rule into its segmented form, appending to `out`.
pub(crate) fn rewrite_rule(
    ri: usize,
    rule: &Rule,
    adorned: &crate::adorn::Adorned,
    out: &mut Vec<Rule>,
    naming: &Naming,
) {
    let head_ap = &adorned.map[&rule.head.pred];
    let demand_head = Atom {
        pred: prefixed(naming.demand, rule.head.pred),
        terms: bound_args(&rule.head, head_ap),
    };

    // Variable order for continuation schemas: first occurrence, head first.
    let var_order: Vec<Var> = rule.vars();

    // Bound-so-far tracking.
    let mut bound: FxHashSet<Var> = demand_head.vars().collect();
    let mut source: Vec<Literal> = vec![Literal::pos(demand_head)];
    let mut k = 0usize;

    for (j, lit) in rule.body.iter().enumerate() {
        if let Some(lit_ap) = adorned.map.get(&lit.atom.pred) {
            // Cut: variables bound here and still needed from literal j on.
            let needed: FxHashSet<Var> = rule
                .head
                .vars()
                .chain(rule.body[j..].iter().flat_map(|l| l.vars()))
                .collect();
            let schema: Vec<Term> = var_order
                .iter()
                .filter(|v| bound.contains(v) && needed.contains(v))
                .map(|&v| Term::Var(v))
                .collect();
            let cont = Atom {
                pred: Symbol::intern(&format!("{}_{}_{}_{}", naming.cont, ri, k, rule.head.pred)),
                terms: schema,
            };
            out.push(Rule::new(cont.clone(), std::mem::take(&mut source)));
            out.push(Rule::new(
                Atom {
                    pred: prefixed(naming.demand, lit.atom.pred),
                    terms: bound_args(&lit.atom, lit_ap),
                },
                vec![Literal::pos(cont.clone())],
            ));
            source = vec![
                Literal::pos(cont),
                Literal {
                    atom: naming.answer_atom(&lit.atom),
                    polarity: lit.polarity,
                },
            ];
            k += 1;
        } else {
            source.push(lit.clone());
        }
        if lit.polarity == Polarity::Positive {
            bound.extend(lit.vars());
        }
    }

    out.push(Rule::new(naming.answer_atom(&rule.head), source));
}

#[cfg(test)]
mod tests {
    use super::*;
    use alexander_eval::eval_seminaive;
    use alexander_ir::Predicate;
    use alexander_parser::{parse, parse_atom};
    use alexander_storage::Database;

    fn ancestor_src() -> &'static str {
        "
        par(a, b). par(b, c). par(c, d). par(x, y).
        anc(X, Y) :- par(X, Y).
        anc(X, Y) :- par(X, Z), anc(Z, Y).
        "
    }

    #[test]
    fn shape_for_ancestor_bf() {
        let p = parse(ancestor_src()).unwrap().program;
        let q = parse_atom("anc(a, X)").unwrap();
        let m = sup_magic_sets(&p, &q, SipOptions::default()).unwrap();
        let printed = m.program.to_string();
        // The recursive rule is segmented through a sup predicate.
        assert!(printed.contains("sup_1_0_anc_bf"), "{printed}");
        assert!(
            printed.contains("magic_anc_bf(Z) :- sup_1_0_anc_bf"),
            "{printed}"
        );
        assert!(m.program.validate().is_ok(), "{printed}");
    }

    #[test]
    fn answers_match_plain_magic() {
        let parsed = parse(ancestor_src()).unwrap();
        let q = parse_atom("anc(a, X)").unwrap();
        let edb = Database::from_program(&parsed.program);

        let plain = crate::magic::magic_sets(&parsed.program, &q, SipOptions::default()).unwrap();
        let sup = sup_magic_sets(&parsed.program, &q, SipOptions::default()).unwrap();
        let r1 = eval_seminaive(&plain.program, &edb).unwrap();
        let r2 = eval_seminaive(&sup.program, &edb).unwrap();

        let mut a1: Vec<String> = crate::common::query_answers(&r1.db, &plain.query)
            .iter()
            .map(|a| a.terms[1].to_string())
            .collect();
        let mut a2: Vec<String> = crate::common::query_answers(&r2.db, &sup.query)
            .iter()
            .map(|a| a.terms[1].to_string())
            .collect();
        a1.sort();
        a2.sort();
        assert_eq!(a1, a2);
        assert_eq!(a1, ["b", "c", "d"]);
    }

    #[test]
    fn magic_extensions_coincide_with_plain_magic() {
        // The demand sets (magic extensions) of the two rewritings must be
        // identical — they encode the same subqueries.
        let parsed = parse(ancestor_src()).unwrap();
        let q = parse_atom("anc(a, X)").unwrap();
        let edb = Database::from_program(&parsed.program);
        let plain = crate::magic::magic_sets(&parsed.program, &q, SipOptions::default()).unwrap();
        let sup = sup_magic_sets(&parsed.program, &q, SipOptions::default()).unwrap();
        let r1 = eval_seminaive(&plain.program, &edb).unwrap();
        let r2 = eval_seminaive(&sup.program, &edb).unwrap();
        let mut m1: Vec<String> = r1
            .db
            .atoms_of(plain.call_pred)
            .iter()
            .map(|a| a.to_string())
            .collect();
        let mut m2: Vec<String> = r2
            .db
            .atoms_of(sup.call_pred)
            .iter()
            .map(|a| a.to_string())
            .collect();
        m1.sort();
        m2.sort();
        assert_eq!(m1, m2);
    }

    #[test]
    fn nonlinear_same_generation() {
        let parsed = parse(
            "
            flat(g1, g2). flat(g2, g3).
            up(a, g1). up(b, g2). up(g1, h1). down(h1, g4). flat(h1, h1).
            down(g2, b2). down(g3, c2).
            sg(X, Y) :- flat(X, Y).
            sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).
        ",
        )
        .unwrap();
        let q = parse_atom("sg(a, Y)").unwrap();
        let edb = Database::from_program(&parsed.program);
        let direct = eval_seminaive(&parsed.program, &edb).unwrap();
        let sup = sup_magic_sets(&parsed.program, &q, SipOptions::default()).unwrap();
        let r = eval_seminaive(&sup.program, &edb).unwrap();
        let mut got: Vec<String> = crate::common::query_answers(&r.db, &sup.query)
            .iter()
            .map(|a| a.terms[1].to_string())
            .collect();
        got.sort();
        let mut want: Vec<String> = direct
            .db
            .atoms_of(Predicate::new("sg", 2))
            .iter()
            .filter(|a| a.terms[0] == alexander_ir::Term::sym("a"))
            .map(|a| a.terms[1].to_string())
            .collect();
        want.sort();
        assert_eq!(got, want);
        assert!(!got.is_empty());
    }

    #[test]
    fn sup_derives_fewer_or_equal_facts_than_plain_magic() {
        // Supplementary magic shares prefixes; its total derived-fact count
        // (including sup tuples) should not exceed plain magic's rule
        // firings on this workload.
        let parsed = parse(ancestor_src()).unwrap();
        let q = parse_atom("anc(a, X)").unwrap();
        let edb = Database::from_program(&parsed.program);
        let plain = crate::magic::magic_sets(&parsed.program, &q, SipOptions::default()).unwrap();
        let sup = sup_magic_sets(&parsed.program, &q, SipOptions::default()).unwrap();
        let r1 = eval_seminaive(&plain.program, &edb).unwrap();
        let r2 = eval_seminaive(&sup.program, &edb).unwrap();
        assert!(r2.metrics.firings <= r1.metrics.firings * 2);
        assert!(r2.metrics.new_facts >= r1.metrics.new_facts);
    }
}
