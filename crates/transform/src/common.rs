//! Shared pieces of the magic/supplementary/Alexander rewritings.

use crate::adorn::Adorned;
use alexander_ir::{AdornedPredicate, Atom, Bf, Predicate, Program, Symbol, Term};

/// The output of a query-directed rewriting.
#[derive(Clone, Debug)]
pub struct Rewritten {
    /// The rewritten rules plus the seed fact.
    pub program: Program,
    /// The seed: the ground magic/call fact encoding the query bindings.
    pub seed: Atom,
    /// The atom to match against the saturated database to read answers
    /// (same argument terms as the original query).
    pub query: Atom,
    /// Predicate holding the query's answers.
    pub answer_pred: Predicate,
    /// The magic/call predicate of the query adornment (its extension is the
    /// set of subqueries issued — the quantity the power theorem compares
    /// with OLDT's call table).
    pub call_pred: Predicate,
    /// The adornment stage this rewriting was built from.
    pub adorned: Adorned,
}

/// `magic_p_bf`-style name derivation.
pub fn prefixed(prefix: &str, mangled: Symbol) -> Symbol {
    Symbol::intern(&format!("{prefix}{mangled}"))
}

/// The arguments of `atom` at the bound positions of `ap`'s adornment.
pub fn bound_args(atom: &Atom, ap: &AdornedPredicate) -> Vec<Term> {
    debug_assert_eq!(atom.terms.len(), ap.adornment.arity());
    atom.terms
        .iter()
        .zip(&ap.adornment.0)
        .filter(|(_, bf)| **bf == Bf::Bound)
        .map(|(t, _)| *t)
        .collect()
}

/// Builds the seed fact for a query: the magic/call atom over the query's
/// bound constants.
pub fn seed_atom(prefix: &str, query: &Atom, ap: &AdornedPredicate) -> Atom {
    Atom {
        pred: prefixed(
            prefix,
            Symbol::intern(&format!("{}_{}", ap.pred.name, ap.adornment)),
        ),
        terms: bound_args(query, ap),
    }
}

/// Matches `pattern` (an atom with variables, typically
/// [`Rewritten::query`]) against every stored atom of its predicate,
/// returning the matching ground atoms. This is how answers are read off a
/// saturated database: the answer relation holds answers to *every*
/// subquery of the same adornment, and the pattern's constants select the
/// original query's.
pub fn query_answers(db: &alexander_storage::Database, pattern: &Atom) -> Vec<Atom> {
    db.atoms_of(pattern.predicate())
        .into_iter()
        .filter(|a| {
            let mut s = alexander_ir::Subst::new();
            alexander_ir::match_atom(pattern, a, &mut s)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use alexander_ir::{atom, Adornment};

    #[test]
    fn bound_args_follow_the_adornment() {
        let ap = AdornedPredicate::new(Predicate::new("p", 3), Adornment::from_str("bfb"));
        let a = atom("p", [Term::sym("a"), Term::var("X"), Term::var("Y")]);
        let b = bound_args(&a, &ap);
        assert_eq!(b, vec![Term::sym("a"), Term::var("Y")]);
    }

    #[test]
    fn seed_uses_query_constants() {
        let ap = AdornedPredicate::new(Predicate::new("anc", 2), Adornment::from_str("bf"));
        let q = atom("anc", [Term::sym("adam"), Term::var("X")]);
        let s = seed_atom("magic_", &q, &ap);
        assert_eq!(s.to_string(), "magic_anc_bf(adam)");
    }

    #[test]
    fn prefixed_names_are_stable() {
        let m = prefixed("call_", Symbol::intern("sg_bf"));
        assert_eq!(m.as_str(), "call_sg_bf");
    }
}
