//! The Generalized Magic Sets rewriting (Bancilhon–Maier–Sagiv–Ullman 1986,
//! Beeri–Ramakrishnan 1987).
//!
//! For every adorned rule `p^a(t̄) :- L₁, …, Lₙ`:
//!
//! * one **modified rule** guards the original body with the magic predicate:
//!   `p^a(t̄) :- magic_p^a(t̄_b), L₁, …, Lₙ`;
//! * one **magic rule** per intensional body literal `Lᵢ = q^b(ū)`:
//!   `magic_q^b(ū_b) :- magic_p^a(t̄_b), L₁, …, Lᵢ₋₁` — "if `p^a` is asked
//!   with these bindings and the prefix holds, then `q^b` gets asked with
//!   those bindings".
//!
//! The query contributes the **seed** `magic_q₀^a₀(c̄)`. Negative intensional
//! literals produce magic rules exactly like positive ones (their subquery
//! must be fully evaluated before the negation can be decided) — this is the
//! extension to non-Horn programs; the resulting program is generally not
//! stratified even when the source is, but it remains constructively
//! consistent (Bry, PODS 1989, Prop. 5.8) and is evaluated with the
//! conditional fixpoint procedure.

use crate::adorn::{adorn, AdornError, SipOptions};
use crate::common::{bound_args, prefixed, seed_atom, Rewritten};
use alexander_ir::{Atom, Literal, Program, Rule};

/// Applies the Generalized Magic Sets rewriting to `program` for `query`.
pub fn magic_sets(
    program: &Program,
    query: &Atom,
    opts: SipOptions,
) -> Result<Rewritten, AdornError> {
    let adorned = adorn(program, query, opts)?;
    let mut rules: Vec<Rule> = Vec::new();

    for rule in &adorned.program.rules {
        let head_ap = &adorned.map[&rule.head.pred];
        let magic_head = Atom {
            pred: prefixed("magic_", rule.head.pred),
            terms: bound_args(&rule.head, head_ap),
        };

        // Magic rules: one per intensional body literal.
        let mut prefix: Vec<Literal> = vec![Literal::pos(magic_head.clone())];
        for lit in &rule.body {
            if let Some(lit_ap) = adorned.map.get(&lit.atom.pred) {
                let magic_lit = Atom {
                    pred: prefixed("magic_", lit.atom.pred),
                    terms: bound_args(&lit.atom, lit_ap),
                };
                rules.push(Rule::new(magic_lit, prefix.clone()));
            }
            prefix.push(lit.clone());
        }

        // Modified rule: the guarded original.
        let mut body = Vec::with_capacity(rule.body.len() + 1);
        body.push(Literal::pos(magic_head));
        body.extend(rule.body.iter().cloned());
        rules.push(Rule::new(rule.head.clone(), body));
    }

    let seed = seed_atom("magic_", query, &adorned.query_adorned);
    let call_pred = seed.predicate();
    let mut program_out = Program::from_rules(rules);
    program_out.facts.push(seed.clone());

    Ok(Rewritten {
        seed,
        query: adorned.query.clone(),
        answer_pred: adorned.query.predicate(),
        call_pred,
        program: program_out,
        adorned,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use alexander_eval::{eval_conditional, eval_seminaive};
    use alexander_ir::Predicate;
    use alexander_parser::{parse, parse_atom};
    use alexander_storage::Database;

    fn ancestor_src() -> &'static str {
        "
        par(a, b). par(b, c). par(c, d). par(x, y).
        anc(X, Y) :- par(X, Y).
        anc(X, Y) :- par(X, Z), anc(Z, Y).
        "
    }

    #[test]
    fn rewriting_shape_for_ancestor_bf() {
        let p = parse(ancestor_src()).unwrap().program;
        let q = parse_atom("anc(a, X)").unwrap();
        let m = magic_sets(&p, &q, SipOptions::default()).unwrap();
        let printed = m.program.to_string();
        assert!(printed.contains("magic_anc_bf(a)."), "{printed}");
        assert!(
            printed.contains("magic_anc_bf(Z) :- magic_anc_bf(X), par(X, Z)."),
            "{printed}"
        );
        assert!(
            printed.contains("anc_bf(X, Y) :- magic_anc_bf(X), par(X, Y)."),
            "{printed}"
        );
        assert_eq!(m.call_pred, Predicate::new("magic_anc_bf", 1));
    }

    #[test]
    fn magic_answers_match_direct_evaluation() {
        let parsed = parse(ancestor_src()).unwrap();
        let q = parse_atom("anc(a, X)").unwrap();
        let m = magic_sets(&parsed.program, &q, SipOptions::default()).unwrap();

        let edb = Database::from_program(&parsed.program);
        let direct = eval_seminaive(&parsed.program, &edb).unwrap();
        let magic = eval_seminaive(&m.program, &edb).unwrap();

        // Direct: all anc facts with first column a.
        let anc = Predicate::new("anc", 2);
        let want: Vec<String> = direct
            .db
            .atoms_of(anc)
            .iter()
            .filter(|a| a.terms[0] == alexander_ir::Term::sym("a"))
            .map(|a| a.terms[1].to_string())
            .collect();
        let got: Vec<String> = crate::common::query_answers(&magic.db, &m.query)
            .iter()
            .map(|a| a.terms[1].to_string())
            .collect();
        let mut want = want;
        let mut got = got;
        want.sort();
        got.sort();
        assert_eq!(want, got);
        assert_eq!(got, ["b", "c", "d"]);
    }

    #[test]
    fn magic_avoids_irrelevant_subgraph() {
        // The x->y edge is unreachable from a: magic evaluation must not
        // derive any anc fact about it.
        let parsed = parse(ancestor_src()).unwrap();
        let q = parse_atom("anc(a, X)").unwrap();
        let m = magic_sets(&parsed.program, &q, SipOptions::default()).unwrap();
        let edb = Database::from_program(&parsed.program);
        let magic = eval_seminaive(&m.program, &edb).unwrap();
        for a in magic.db.atoms_of(m.answer_pred) {
            assert_ne!(a.terms[0].to_string(), "x", "derived irrelevant {a}");
        }
        // And it derives strictly fewer IDB facts than the full closure.
        let direct = eval_seminaive(&parsed.program, &edb).unwrap();
        assert!(
            magic.db.len_of(m.answer_pred) < direct.db.len_of(Predicate::new("anc", 2)),
            "magic should be focused"
        );
    }

    #[test]
    fn all_free_query_degenerates_to_full_evaluation() {
        let parsed = parse(ancestor_src()).unwrap();
        let q = parse_atom("anc(X, Y)").unwrap();
        let m = magic_sets(&parsed.program, &q, SipOptions::default()).unwrap();
        let edb = Database::from_program(&parsed.program);
        let magic = eval_seminaive(&m.program, &edb).unwrap();
        let direct = eval_seminaive(&parsed.program, &edb).unwrap();
        assert_eq!(
            magic.db.len_of(m.answer_pred),
            direct.db.len_of(Predicate::new("anc", 2))
        );
        // Zero-arity seed.
        assert_eq!(m.seed.to_string(), "magic_anc_ff");
    }

    #[test]
    fn same_generation_bound_query() {
        let parsed = parse(
            "
            flat(g1, g2).
            up(a, g1). up(b, g2).
            down(g2, b2). down(g1, a2).
            sg(X, Y) :- flat(X, Y).
            sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).
        ",
        )
        .unwrap();
        let q = parse_atom("sg(a, Y)").unwrap();
        let m = magic_sets(&parsed.program, &q, SipOptions::default()).unwrap();
        let edb = Database::from_program(&parsed.program);
        let res = eval_seminaive(&m.program, &edb).unwrap();
        let answers: Vec<String> = crate::common::query_answers(&res.db, &m.query)
            .iter()
            .map(|a| a.to_string())
            .collect();
        assert_eq!(answers, ["sg_bf(a, b2)".to_string()]);
    }

    #[test]
    fn stratified_source_with_negation_runs_under_conditional_fixpoint() {
        let parsed = parse(
            "
            edge(s, a). edge(a, b). node(s). node(a). node(b). node(z).
            reach(X) :- edge(s, X).
            reach(Y) :- reach(X), edge(X, Y).
            unreach(X) :- node(X), !reach(X).
        ",
        )
        .unwrap();
        let q = parse_atom("unreach(z)").unwrap();
        let m = magic_sets(&parsed.program, &q, SipOptions::default()).unwrap();
        let edb = Database::from_program(&parsed.program);
        let res = eval_conditional(&m.program, &edb).unwrap();
        assert!(res.is_total());
        let answers = crate::common::query_answers(&res.db, &m.query);
        assert_eq!(answers.len(), 1);
        assert_eq!(answers[0].to_string(), "unreach_b(z)");
    }

    #[test]
    fn seed_and_query_are_consistent() {
        let p = parse(ancestor_src()).unwrap().program;
        let q = parse_atom("anc(a, X)").unwrap();
        let m = magic_sets(&p, &q, SipOptions::default()).unwrap();
        assert_eq!(m.query.to_string(), "anc_bf(a, X)");
        assert!(m.program.facts.contains(&m.seed));
        assert!(m.program.validate().is_ok());
    }
}
