//! Rule normalisation: eliminate repeated variables inside intensional body
//! literals.
//!
//! A subgoal like `q(X, X)` carries an *equality constraint* on top of its
//! binding pattern. The adornment abstraction (and hence every rewriting
//! built on it) sees only bound/free positions, so the templates issue the
//! subquery `q^ff` and filter afterwards — while a variant-based tabling
//! engine (OLDT) tables the finer call `q(_C0, _C0)` and only ever derives
//! its diagonal. The power correspondence is stated over adornment-abstract
//! calls; to compare engines on programs with repeated variables, normalise
//! first: `q(X, X)` becomes `q(X, X')` followed by `eq(X, X')`. Both sides
//! of the comparison then speak the same call language.
//!
//! Negative literals need no rewriting (safety grounds them: their calls
//! are fully bound and repeated variables change nothing), and extensional
//! literals are matched directly rather than tabled.

use alexander_ir::{Atom, Builtin, FxHashSet, Literal, Polarity, Program, Rule, Term, Var};

/// Splits repeated variables in positive intensional body literals,
/// appending `eq` built-ins. Returns the program unchanged (cheaply) if
/// nothing needed rewriting.
pub fn normalize_repeated_vars(program: &Program) -> Program {
    let idb = program.idb_predicates();
    let rules = program
        .rules
        .iter()
        .map(|rule| {
            let mut body = Vec::with_capacity(rule.body.len());
            for lit in &rule.body {
                let pred = lit.atom.predicate();
                let is_tabled_call = lit.polarity == Polarity::Positive
                    && idb.contains(&pred)
                    && Builtin::of(pred).is_none();
                if !is_tabled_call {
                    body.push(lit.clone());
                    continue;
                }
                let mut seen: FxHashSet<Var> = FxHashSet::default();
                let mut eqs: Vec<Literal> = Vec::new();
                let terms: Vec<Term> = lit
                    .atom
                    .terms
                    .iter()
                    .map(|&t| match t {
                        Term::Const(_) => t,
                        Term::Var(v) => {
                            if seen.insert(v) {
                                t
                            } else {
                                let fresh = Var::fresh(v.name().as_str());
                                eqs.push(Literal::pos(Atom::new(
                                    "eq",
                                    vec![Term::Var(v), Term::Var(fresh)],
                                )));
                                Term::Var(fresh)
                            }
                        }
                    })
                    .collect();
                body.push(Literal {
                    atom: Atom {
                        pred: lit.atom.pred,
                        terms,
                    },
                    polarity: lit.polarity,
                });
                body.extend(eqs);
            }
            Rule::new(rule.head.clone(), body)
        })
        .collect();
    Program {
        rules,
        facts: program.facts.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alexander_parser::parse;

    #[test]
    fn splits_repeated_idb_variables() {
        let p = parse(
            "
            p(Y, X) :- q(Y, Z), q(X, X).
            q(X, Z) :- e(Z, X).
        ",
        )
        .unwrap()
        .program;
        let n = normalize_repeated_vars(&p);
        let printed = n.to_string();
        assert!(printed.contains("eq(X, "), "{printed}");
        // The q-subgoal no longer repeats X.
        let rule = &n.rules[0];
        let q2 = &rule.body[1].atom;
        assert_ne!(q2.terms[0], q2.terms[1], "{printed}");
        assert!(n.validate().is_ok(), "{printed}");
    }

    #[test]
    fn edb_and_negative_literals_are_untouched() {
        let p = parse(
            "
            p(X) :- e(X, X).
            r(X) :- d(X), !p2(X, X).
            p2(X, Y) :- e(X, Y).
        ",
        )
        .unwrap()
        .program;
        let n = normalize_repeated_vars(&p);
        // e(X, X) is extensional; !p2(X, X) is negative: both stay.
        assert_eq!(n.rules[0], p.rules[0]);
        assert_eq!(n.rules[1], p.rules[1]);
    }

    #[test]
    fn normalised_program_has_equal_answers() {
        use alexander_eval::eval_seminaive;
        use alexander_storage::Database;
        let parsed = parse(
            "
            e(a, b). e(c, c).
            q(X, Z) :- e(Z, X).
            p(Y, X) :- q(Y, Z), q(X, X).
        ",
        )
        .unwrap();
        let edb = Database::from_program(&parsed.program);
        let original = eval_seminaive(&parsed.program, &edb).unwrap();
        let normalized = normalize_repeated_vars(&parsed.program);
        let renorm = eval_seminaive(&normalized, &edb).unwrap();
        let p = alexander_ir::Predicate::new("p", 2);
        let mut a: Vec<String> = original
            .db
            .atoms_of(p)
            .iter()
            .map(|x| x.to_string())
            .collect();
        let mut b: Vec<String> = renorm
            .db
            .atoms_of(p)
            .iter()
            .map(|x| x.to_string())
            .collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    fn clean_programs_pass_through_structurally_unchanged() {
        let p = parse(
            "
            anc(X, Y) :- par(X, Y).
            anc(X, Y) :- par(X, Z), anc(Z, Y).
        ",
        )
        .unwrap()
        .program;
        let n = normalize_repeated_vars(&p);
        assert_eq!(n.rules, p.rules);
    }
}
