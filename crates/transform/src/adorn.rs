//! Adornment: specialise a program for a query's binding pattern.
//!
//! Starting from the query's adornment, rules are rewritten so that every
//! intensional predicate occurrence carries the binding pattern under which
//! it will be called (`anc_bf`, `sg_fb`, …). Bindings propagate *sideways*
//! through rule bodies: a variable is bound at a literal if it is bound by
//! the head's bound arguments or appears in an earlier positive literal
//! (the sideways information passing, SIP).
//!
//! An optional SIP heuristic reorders each body to consume bound literals
//! first, maximising the bindings passed to recursive calls (ablation E9
//! measures its effect).

use alexander_ir::{
    AdornedPredicate, Adornment, Atom, FxHashMap, FxHashSet, Literal, Polarity, Predicate, Program,
    Rule, Symbol, Term, Var,
};
use std::collections::VecDeque;
use std::fmt;

/// Options for the adornment pass.
#[derive(Clone, Copy, Debug)]
pub struct SipOptions {
    /// Reorder body literals greedily by number of bound arguments. When
    /// off, bodies keep their textual order (bindings still propagate left
    /// to right).
    pub reorder: bool,
}

impl Default for SipOptions {
    fn default() -> SipOptions {
        SipOptions { reorder: true }
    }
}

/// The adorned program: rules over mangled predicate names, the adorned
/// query, and the mapping back to original predicates.
#[derive(Clone, Debug)]
pub struct Adorned {
    /// Rules whose IDB predicates are replaced by `name_adornment` variants.
    pub program: Program,
    /// The query with its predicate replaced by the adorned variant.
    pub query: Atom,
    /// The adorned predicate of the query.
    pub query_adorned: AdornedPredicate,
    /// Mangled name → original adorned predicate.
    pub map: FxHashMap<Symbol, AdornedPredicate>,
}

/// Errors from the adornment pass.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AdornError {
    /// The query predicate is extensional: nothing to specialise.
    ExtensionalQuery(Predicate),
}

impl fmt::Display for AdornError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdornError::ExtensionalQuery(p) => {
                write!(f, "query predicate {p} is extensional; no adornment needed")
            }
        }
    }
}

impl std::error::Error for AdornError {}

/// Adorns `program` for `query` (constants in the query are the bound
/// positions).
pub fn adorn(program: &Program, query: &Atom, opts: SipOptions) -> Result<Adorned, AdornError> {
    let idb = program.idb_predicates();
    let qpred = query.predicate();
    if !idb.contains(&qpred) {
        return Err(AdornError::ExtensionalQuery(qpred));
    }

    let query_ad = Adornment::of_atom(query, &[]);
    let query_adorned = AdornedPredicate::new(qpred, query_ad);

    let mut out_rules: Vec<Rule> = Vec::new();
    let mut map: FxHashMap<Symbol, AdornedPredicate> = FxHashMap::default();
    let mut seen: FxHashSet<AdornedPredicate> = FxHashSet::default();
    let mut work: VecDeque<AdornedPredicate> = VecDeque::new();
    seen.insert(query_adorned.clone());
    map.insert(query_adorned.mangled_name(), query_adorned.clone());
    work.push_back(query_adorned.clone());

    while let Some(ap) = work.pop_front() {
        for rule in program.rules_for(ap.pred) {
            let adorned_rule = adorn_rule(rule, &ap, &idb, opts, |new_ap: AdornedPredicate| {
                map.insert(new_ap.mangled_name(), new_ap.clone());
                if seen.insert(new_ap.clone()) {
                    work.push_back(new_ap);
                }
            });
            out_rules.push(adorned_rule);
        }
    }

    let adorned_query = Atom {
        pred: query_adorned.mangled_name(),
        terms: query.terms.clone(),
    };
    Ok(Adorned {
        program: Program::from_rules(out_rules),
        query: adorned_query,
        query_adorned,
        map,
    })
}

/// Adorns a single rule for head adornment `ap`, calling `on_idb` for every
/// intensional body adornment generated.
fn adorn_rule(
    rule: &Rule,
    ap: &AdornedPredicate,
    idb: &FxHashSet<Predicate>,
    opts: SipOptions,
    mut on_idb: impl FnMut(AdornedPredicate),
) -> Rule {
    // Bound variables: head variables at bound positions.
    let mut bound: FxHashSet<Var> = FxHashSet::default();
    for (i, t) in rule.head.terms.iter().enumerate() {
        if ap.adornment.0[i] == alexander_ir::Bf::Bound {
            if let Term::Var(v) = t {
                bound.insert(*v);
            }
        }
    }

    let ordered = if opts.reorder {
        sip_order(&rule.body, &bound)
    } else {
        rule.body.clone()
    };

    let mut body = Vec::with_capacity(ordered.len());
    for lit in ordered {
        let pred = lit.atom.predicate();
        let atom = if idb.contains(&pred) {
            let ad = Adornment::of_atom(&lit.atom, &bound.iter().copied().collect::<Vec<_>>());
            let bap = AdornedPredicate::new(pred, ad);
            let name = bap.mangled_name();
            on_idb(bap);
            Atom {
                pred: name,
                terms: lit.atom.terms.clone(),
            }
        } else {
            lit.atom.clone()
        };
        if lit.polarity == Polarity::Positive {
            bound.extend(lit.vars());
        }
        body.push(Literal {
            atom,
            polarity: lit.polarity,
        });
    }

    Rule {
        head: Atom {
            pred: ap.mangled_name(),
            terms: rule.head.terms.clone(),
        },
        body,
    }
}

/// Greedy SIP ordering: repeatedly pick the literal with the most bound
/// argument positions (constants count as bound), preferring textual order
/// on ties. Negative literals are only eligible once fully bound; safety
/// guarantees this terminates.
///
/// Public because the OLDT engine must select literals in exactly this
/// order for the power correspondence (E3) to be literal: the Alexander
/// templates encode this SIP, so a top-down engine with a different
/// selection rule would table different calls.
pub fn sip_order(body: &[Literal], initially_bound: &FxHashSet<Var>) -> Vec<Literal> {
    let mut bound = initially_bound.clone();
    let mut remaining: Vec<(usize, &Literal)> = body.iter().enumerate().collect();
    let mut out = Vec::with_capacity(body.len());

    while !remaining.is_empty() {
        let mut best: Option<(usize, usize, usize)> = None; // (score, neg-tiebreak, idx into remaining)
        for (slot, (orig_idx, lit)) in remaining.iter().enumerate() {
            let fully_bound = lit.vars().all(|v| bound.contains(&v));
            let is_test = lit.polarity == Polarity::Negative
                || alexander_ir::Builtin::of(lit.atom.predicate()).is_some();
            if is_test && !fully_bound {
                continue;
            }
            let score = lit
                .atom
                .terms
                .iter()
                .filter(|t| match t {
                    Term::Const(_) => true,
                    Term::Var(v) => bound.contains(v),
                })
                .count();
            // Prefer higher score; tie-break on textual order (orig_idx).
            let key = (score, usize::MAX - orig_idx, slot);
            if best.is_none_or(|b| (key.0, key.1) > (b.0, b.1)) {
                best = Some(key);
            }
        }
        let slot = match best {
            Some((_, _, slot)) => slot,
            // Only unbound negative literals remain (unsafe rule): keep
            // textual order; the evaluator will reject the rule.
            None => 0,
        };
        let (_, lit) = remaining.remove(slot);
        if lit.polarity == Polarity::Positive {
            bound.extend(lit.vars());
        }
        out.push(lit.clone());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use alexander_parser::{parse, parse_atom};

    fn ancestor() -> Program {
        parse(
            "
            anc(X, Y) :- par(X, Y).
            anc(X, Y) :- par(X, Z), anc(Z, Y).
        ",
        )
        .unwrap()
        .program
    }

    #[test]
    fn bound_free_query_produces_bf_rules() {
        let q = parse_atom("anc(a, X)").unwrap();
        let a = adorn(&ancestor(), &q, SipOptions::default()).unwrap();
        assert_eq!(a.query.pred.as_str(), "anc_bf");
        assert_eq!(a.program.rules.len(), 2);
        let printed = a.program.to_string();
        assert!(printed.contains("anc_bf(X, Y) :- par(X, Y)."), "{printed}");
        assert!(
            printed.contains("anc_bf(X, Y) :- par(X, Z), anc_bf(Z, Y)."),
            "{printed}"
        );
    }

    #[test]
    fn all_free_query_binds_recursion_sideways() {
        let q = parse_atom("anc(X, Y)").unwrap();
        let a = adorn(&ancestor(), &q, SipOptions::default()).unwrap();
        assert_eq!(a.query.pred.as_str(), "anc_ff");
        // Even under an ff query, `par(X, Z)` binds Z before the recursive
        // call, so the recursion is adorned bf (and gets its own rules).
        let printed = a.program.to_string();
        assert!(
            printed.contains("anc_ff(X, Y) :- par(X, Z), anc_bf(Z, Y)."),
            "{printed}"
        );
        assert!(
            printed.contains("anc_bf(X, Y) :- par(X, Z), anc_bf(Z, Y)."),
            "{printed}"
        );
    }

    #[test]
    fn free_bound_query_on_same_generation_creates_two_adornments() {
        // sg with a bf query: recursive call sees sg(U, V) with U bound by
        // up(X, U): stays bf. With fb query the recursion flips.
        let p = parse(
            "
            sg(X, Y) :- flat(X, Y).
            sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).
        ",
        )
        .unwrap()
        .program;
        let q = parse_atom("sg(john, Y)").unwrap();
        let a = adorn(&p, &q, SipOptions::default()).unwrap();
        assert_eq!(a.query.pred.as_str(), "sg_bf");
        // All recursive calls are bf: exactly one adornment.
        let names: FxHashSet<&str> = a.map.keys().map(|s| s.as_str()).collect();
        assert!(names.contains("sg_bf"));
        assert_eq!(names.len(), 1);
        assert_eq!(a.program.rules.len(), 2);
    }

    #[test]
    fn reorder_moves_bound_literal_first() {
        // Textual order calls rsg2 with nothing bound; SIP reordering pulls
        // up(X, U) (X bound by the query) ahead of it.
        let p = parse(
            "
            rsg(X, Y) :- rsg2(U, V), down(V, Y), up(X, U).
            rsg2(U, V) :- e(U, V).
        ",
        )
        .unwrap()
        .program;
        let q = parse_atom("rsg(a, Y)").unwrap();
        let a = adorn(&p, &q, SipOptions { reorder: true }).unwrap();
        let r = &a.program.rules[0];
        assert_eq!(r.body[0].atom.pred.as_str(), "up");
        // And the recursive call is then bound on its first argument.
        assert!(a.map.keys().any(|s| s.as_str() == "rsg2_bf"));
    }

    #[test]
    fn no_reorder_keeps_textual_order() {
        let p = parse(
            "
            rsg(X, Y) :- rsg2(U, V), down(V, Y), up(X, U).
            rsg2(U, V) :- e(U, V).
        ",
        )
        .unwrap()
        .program;
        let q = parse_atom("rsg(a, Y)").unwrap();
        let a = adorn(&p, &q, SipOptions { reorder: false }).unwrap();
        let r = &a.program.rules[0];
        assert_eq!(r.body[0].atom.pred.as_str(), "rsg2_ff");
        // Without reordering the recursive call sees only free arguments.
        assert!(a.map.keys().any(|s| s.as_str() == "rsg2_ff"));
    }

    #[test]
    fn negative_idb_literals_are_adorned_too() {
        let p = parse(
            "
            reach(X) :- edge(s, X).
            reach(Y) :- reach(X), edge(X, Y).
            unreach(X) :- node(X), !reach(X).
        ",
        )
        .unwrap()
        .program;
        let q = parse_atom("unreach(a)").unwrap();
        let a = adorn(&p, &q, SipOptions::default()).unwrap();
        let names: FxHashSet<&str> = a.map.keys().map(|s| s.as_str()).collect();
        assert!(names.contains("unreach_b"));
        assert!(names.contains("reach_b"));
        let printed = a.program.to_string();
        assert!(printed.contains("!reach_b(X)"), "{printed}");
    }

    #[test]
    fn extensional_query_is_an_error() {
        let q = parse_atom("par(a, X)").unwrap();
        assert!(matches!(
            adorn(&ancestor(), &q, SipOptions::default()),
            Err(AdornError::ExtensionalQuery(_))
        ));
    }

    #[test]
    fn constants_in_rule_bodies_count_as_bound() {
        let p = parse(
            "
            p(X) :- q(a, X).
            q(X, Y) :- e(X, Y).
        ",
        )
        .unwrap()
        .program;
        let q = parse_atom("p(X)").unwrap();
        let a = adorn(&p, &q, SipOptions::default()).unwrap();
        // q is called with its first argument a constant: adornment bf.
        assert!(a.map.keys().any(|s| s.as_str() == "q_bf"));
    }

    #[test]
    fn map_tracks_original_predicates() {
        let q = parse_atom("anc(a, X)").unwrap();
        let a = adorn(&ancestor(), &q, SipOptions::default()).unwrap();
        let ap = &a.map[&Symbol::intern("anc_bf")];
        assert_eq!(ap.pred, Predicate::new("anc", 2));
        assert_eq!(ap.adornment.suffix(), "bf");
    }
}
