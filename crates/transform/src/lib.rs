//! # alexander-transform
//!
//! Query-directed program transformations for bottom-up evaluation:
//!
//! * [`adorn()`](adorn::adorn) — binding-pattern specialisation with sideways information
//!   passing (the stage every rewriting starts from);
//! * [`magic_sets`] — Generalized Magic Sets;
//! * [`sup_magic_sets`] — Supplementary Magic Sets (prefix sharing);
//! * [`alexander()`](alexander::alexander) — the Alexander templates method (call / answer /
//!   continuation predicates), the subject of the reproduced paper.
//!
//! All three produce a [`Rewritten`] program whose bottom-up evaluation
//! answers the original query while visiting only query-relevant facts.
//! Use [`query_answers`] to read the answers off the saturated database.
//!
//! ```
//! use alexander_parser::{parse, parse_atom};
//! use alexander_storage::Database;
//! use alexander_transform::{alexander, query_answers, SipOptions};
//!
//! let parsed = parse("
//!     par(a, b). par(b, c).
//!     anc(X, Y) :- par(X, Y).
//!     anc(X, Y) :- par(X, Z), anc(Z, Y).
//! ").unwrap();
//! let query = parse_atom("anc(a, X)").unwrap();
//! let t = alexander(&parsed.program, &query, SipOptions::default()).unwrap();
//! let edb = Database::from_program(&parsed.program);
//! let result = alexander_eval::eval_seminaive(&t.program, &edb).unwrap();
//! let answers = query_answers(&result.db, &t.query);
//! assert_eq!(answers.len(), 2); // anc(a, b), anc(a, c)
//! ```

pub mod adorn;
pub mod alexander;
pub mod common;
pub mod magic;
pub mod normalize;
pub mod supmagic;

pub use adorn::{adorn, sip_order, AdornError, Adorned, SipOptions};
pub use alexander::alexander;
pub use common::{bound_args, query_answers, seed_atom, Rewritten};
pub use magic::magic_sets;
pub use normalize::normalize_repeated_vars;
pub use supmagic::sup_magic_sets;
