//! The Alexander method (Rohmer, Lescoeur & Kerisit 1986) — the rewriting
//! whose *power* the reproduced paper analyses.
//!
//! The method turns a query into a "problem" (`call_p^a`) and decomposes
//! every rule at its intensional body atoms: each prefix becomes a
//! **continuation** (`cont`) carrying exactly the bindings needed to resume
//! once the subproblem is solved, each intensional atom spawns the
//! subproblem's `call`, and completed bodies produce **solutions**
//! (`ans_p^a`). Bottom-up evaluation of the template program then performs
//! precisely the work of a top-down interpreter with tabulation:
//!
//! * the extension of `call_p^a` is OLDT's call table — one fact per
//!   distinct (tabled) subquery;
//! * the extension of `ans_p^a` is OLDT's answer table;
//! * `cont` tuples are OLDT's suspended consumers.
//!
//! Experiment E3 verifies this correspondence exactly against the
//! instrumented OLDT engine; experiment E4 compares the same counts against
//! plain and supplementary magic sets (Alexander ≅ supplementary magic with
//! `ans` predicates split from the adorned predicates).
//!
//! Negative intensional literals are processed like positive ones (their
//! subproblem is spawned, the negation is checked against the completed
//! `ans` relation); the rewritten program is evaluated with the conditional
//! fixpoint procedure when the source has negation.

use crate::adorn::{adorn, AdornError, SipOptions};
use crate::common::{prefixed, seed_atom, Rewritten};
use crate::supmagic::{rewrite_rule, Naming};
use alexander_ir::{Atom, Program};

/// Applies the Alexander templates rewriting to `program` for `query`.
pub fn alexander(
    program: &Program,
    query: &Atom,
    opts: SipOptions,
) -> Result<Rewritten, AdornError> {
    let adorned = adorn(program, query, opts)?;
    let naming = Naming {
        demand: "call_",
        cont: "cont",
        answers_prefix: Some("ans_"),
    };
    let mut rules = Vec::new();
    for (ri, rule) in adorned.program.rules.iter().enumerate() {
        rewrite_rule(ri, rule, &adorned, &mut rules, &naming);
    }

    let seed = seed_atom("call_", query, &adorned.query_adorned);
    let call_pred = seed.predicate();
    let answer_query = Atom {
        pred: prefixed("ans_", adorned.query.pred),
        terms: adorned.query.terms.clone(),
    };
    let answer_pred = answer_query.predicate();
    let mut program_out = Program::from_rules(rules);
    program_out.facts.push(seed.clone());

    Ok(Rewritten {
        seed,
        query: answer_query,
        answer_pred,
        call_pred,
        program: program_out,
        adorned,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use alexander_eval::{eval_conditional, eval_seminaive};
    use alexander_ir::Predicate;
    use alexander_parser::{parse, parse_atom};
    use alexander_storage::Database;

    fn ancestor_src() -> &'static str {
        "
        par(a, b). par(b, c). par(c, d). par(x, y).
        anc(X, Y) :- par(X, Y).
        anc(X, Y) :- par(X, Z), anc(Z, Y).
        "
    }

    #[test]
    fn template_shape_for_ancestor() {
        let p = parse(ancestor_src()).unwrap().program;
        let q = parse_atom("anc(a, X)").unwrap();
        let t = alexander(&p, &q, SipOptions::default()).unwrap();
        let printed = t.program.to_string();
        assert!(printed.contains("call_anc_bf(a)."), "{printed}");
        assert!(printed.contains("cont_1_0_anc_bf"), "{printed}");
        assert!(
            printed.contains("call_anc_bf(Z) :- cont_1_0_anc_bf"),
            "{printed}"
        );
        assert!(printed.contains("ans_anc_bf"), "{printed}");
        assert!(t.program.validate().is_ok(), "{printed}");
        // No adorned `anc_bf` predicate survives: only call/ans/cont.
        assert!(!printed.contains(" anc_bf("), "{printed}");
    }

    #[test]
    fn answers_match_direct_evaluation() {
        let parsed = parse(ancestor_src()).unwrap();
        let q = parse_atom("anc(a, X)").unwrap();
        let edb = Database::from_program(&parsed.program);
        let direct = eval_seminaive(&parsed.program, &edb).unwrap();
        let t = alexander(&parsed.program, &q, SipOptions::default()).unwrap();
        let r = eval_seminaive(&t.program, &edb).unwrap();

        let mut got: Vec<String> = crate::common::query_answers(&r.db, &t.query)
            .iter()
            .map(|a| a.terms[1].to_string())
            .collect();
        got.sort();
        let mut want: Vec<String> = direct
            .db
            .atoms_of(Predicate::new("anc", 2))
            .iter()
            .filter(|a| a.terms[0] == alexander_ir::Term::sym("a"))
            .map(|a| a.terms[1].to_string())
            .collect();
        want.sort();
        assert_eq!(got, want);
    }

    #[test]
    fn call_set_is_goal_directed() {
        // Only the chain reachable from `a` is called: a, b, c, d — never x.
        let parsed = parse(ancestor_src()).unwrap();
        let q = parse_atom("anc(a, X)").unwrap();
        let edb = Database::from_program(&parsed.program);
        let t = alexander(&parsed.program, &q, SipOptions::default()).unwrap();
        let r = eval_seminaive(&t.program, &edb).unwrap();
        let calls: Vec<String> =
            r.db.atoms_of(t.call_pred)
                .iter()
                .map(|a| a.to_string())
                .collect();
        assert_eq!(calls.len(), 4, "{calls:?}");
        assert!(!calls.iter().any(|c| c.contains('x')), "{calls:?}");
    }

    #[test]
    fn alexander_and_sup_magic_are_isomorphic_in_size() {
        // Same number of rewritten rules; identical call/magic extensions;
        // identical answer extensions.
        let parsed = parse(ancestor_src()).unwrap();
        let q = parse_atom("anc(a, X)").unwrap();
        let edb = Database::from_program(&parsed.program);
        let alex = alexander(&parsed.program, &q, SipOptions::default()).unwrap();
        let sup =
            crate::supmagic::sup_magic_sets(&parsed.program, &q, SipOptions::default()).unwrap();
        assert_eq!(alex.program.rules.len(), sup.program.rules.len());
        let ra = eval_seminaive(&alex.program, &edb).unwrap();
        let rs = eval_seminaive(&sup.program, &edb).unwrap();
        assert_eq!(
            ra.db.len_of(alex.call_pred),
            rs.db.len_of(sup.call_pred),
            "demand sets differ"
        );
        assert_eq!(
            ra.db.len_of(alex.answer_pred),
            rs.db.len_of(sup.answer_pred),
            "answer sets differ"
        );
        assert_eq!(ra.metrics.new_facts, rs.metrics.new_facts);
    }

    #[test]
    fn same_generation_with_trees() {
        let parsed = parse(
            "
            up(a, g1). up(b, g1). up(g1, h1). up(g2, h1).
            flat(h1, h1). flat(g1, g2).
            down(h1, g3). down(g2, c). down(g3, d).
            sg(X, Y) :- flat(X, Y).
            sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).
        ",
        )
        .unwrap();
        let q = parse_atom("sg(a, Y)").unwrap();
        let edb = Database::from_program(&parsed.program);
        let direct = eval_seminaive(&parsed.program, &edb).unwrap();
        let t = alexander(&parsed.program, &q, SipOptions::default()).unwrap();
        let r = eval_seminaive(&t.program, &edb).unwrap();
        let mut got: Vec<String> = crate::common::query_answers(&r.db, &t.query)
            .iter()
            .map(|a| a.terms[1].to_string())
            .collect();
        got.sort();
        got.dedup();
        let mut want: Vec<String> = direct
            .db
            .atoms_of(Predicate::new("sg", 2))
            .iter()
            .filter(|a| a.terms[0] == alexander_ir::Term::sym("a"))
            .map(|a| a.terms[1].to_string())
            .collect();
        want.sort();
        want.dedup();
        assert_eq!(got, want);
    }

    #[test]
    fn negation_through_templates_with_conditional_fixpoint() {
        let parsed = parse(
            "
            move(a, b). move(b, c).
            win(X) :- move(X, Y), !win(Y).
        ",
        )
        .unwrap();
        let q = parse_atom("win(a)").unwrap();
        let t = alexander(&parsed.program, &q, SipOptions::default()).unwrap();
        let edb = Database::from_program(&parsed.program);
        let r = eval_conditional(&t.program, &edb).unwrap();
        assert!(r.is_total());
        // a -> b -> c: b wins, so a does not: the query has no answers...
        assert!(crate::common::query_answers(&r.db, &t.query).is_empty());
        // ...but the win(b) subproblem was called and answered.
        let ans_b: Vec<String> =
            r.db.atoms_of(t.answer_pred)
                .iter()
                .map(|a| a.to_string())
                .collect();
        assert_eq!(ans_b, vec!["ans_win_b(b)".to_string()]);
    }

    #[test]
    fn all_free_query_still_works() {
        let parsed = parse(ancestor_src()).unwrap();
        let q = parse_atom("anc(X, Y)").unwrap();
        let t = alexander(&parsed.program, &q, SipOptions::default()).unwrap();
        let edb = Database::from_program(&parsed.program);
        let r = eval_seminaive(&t.program, &edb).unwrap();
        let direct = eval_seminaive(&parsed.program, &edb).unwrap();
        assert_eq!(
            r.db.len_of(t.answer_pred),
            direct.db.len_of(Predicate::new("anc", 2))
        );
    }
}
