//! Experiment tables: the harness's output format.
//!
//! Every experiment produces a [`Table`]; the harness renders them as
//! GitHub-flavoured markdown (for EXPERIMENTS.md) and optionally as JSON
//! (for diffing runs).

use std::fmt;

/// One experiment's result table.
#[derive(Clone, Debug)]
pub struct Table {
    /// Experiment id, e.g. `"E1"` or `"F2"`.
    pub id: String,
    /// Human title.
    pub title: String,
    /// What the experiment demonstrates (one paragraph).
    pub note: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Rows of cells (already formatted).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with the given id/title/columns.
    pub fn new(id: &str, title: &str, note: &str, columns: &[&str]) -> Table {
        Table {
            id: id.to_string(),
            title: title.to_string(),
            note: note.to_string(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; panics if the cell count does not match the header.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.columns.len(),
            "row width mismatch in {}",
            self.id
        );
        self.rows.push(cells);
    }

    /// Renders the table as a pretty-printed JSON object. Hand-rolled because
    /// the build environment has no registry access for serde; every value in
    /// a table is a string, so the format is trivial.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"id\": {},\n", json_str(&self.id)));
        out.push_str(&format!("  \"title\": {},\n", json_str(&self.title)));
        out.push_str(&format!("  \"note\": {},\n", json_str(&self.note)));
        out.push_str(&format!(
            "  \"columns\": {},\n",
            json_str_array(&self.columns)
        ));
        out.push_str("  \"rows\": [");
        for (i, row) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            out.push_str(&json_str_array(row));
        }
        if !self.rows.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}");
        out
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_str_array(items: &[String]) -> String {
    let cells: Vec<String> = items.iter().map(|s| json_str(s)).collect();
    format!("[{}]", cells.join(", "))
}

/// Renders a run's tables as a JSON array (the `--json`/`--out` format).
pub fn tables_to_json(tables: &[Table]) -> String {
    let mut out = String::from("[");
    for (i, t) in tables.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('\n');
        out.push_str(&t.to_json());
    }
    if !tables.is_empty() {
        out.push('\n');
    }
    out.push(']');
    out
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "### {} — {}", self.id, self.title)?;
        writeln!(f)?;
        writeln!(f, "{}", self.note)?;
        writeln!(f)?;
        // Column widths for aligned markdown.
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let render_row = |cells: &[String], f: &mut fmt::Formatter<'_>| -> fmt::Result {
            write!(f, "|")?;
            for (i, c) in cells.iter().enumerate() {
                write!(f, " {:<w$} |", c, w = widths[i])?;
            }
            writeln!(f)
        };
        render_row(&self.columns, f)?;
        write!(f, "|")?;
        for w in &widths {
            write!(f, "{:-<w$}|", "", w = w + 2)?;
        }
        writeln!(f)?;
        for row in &self.rows {
            render_row(row, f)?;
        }
        Ok(())
    }
}

/// Milliseconds with two decimals — the tables' time format.
pub fn ms(d: std::time::Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e3)
}

/// Runs `f`, returning its result and the elapsed wall-clock time.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, std::time::Duration) {
    let start = std::time::Instant::now();
    let out = f();
    (out, start.elapsed())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_markdown() {
        let mut t = Table::new("E0", "demo", "a note", &["strategy", "facts"]);
        t.row(vec!["naive".into(), "120".into()]);
        t.row(vec!["alexander".into(), "7".into()]);
        let s = t.to_string();
        assert!(s.contains("### E0 — demo"));
        assert!(s.contains("| strategy  | facts |"));
        assert!(s.contains("| alexander | 7     |"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_is_checked() {
        let mut t = Table::new("E0", "demo", "", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn json_rendering_escapes_and_nests() {
        let mut t = Table::new("F0", "json \"demo\"", "line\nbreak", &["k", "v"]);
        t.row(vec!["a\\b".into(), "1".into()]);
        let json = tables_to_json(&[t]);
        assert!(json.starts_with('['));
        assert!(json.contains("\"json \\\"demo\\\"\""));
        assert!(json.contains("\"line\\nbreak\""));
        assert!(json.contains("[\"a\\\\b\", \"1\"]"));
        assert!(json.ends_with(']'));
    }

    #[test]
    fn timing_helpers() {
        let (v, d) = timed(|| 21 * 2);
        assert_eq!(v, 42);
        let s = ms(d);
        assert!(s.parse::<f64>().is_ok());
    }
}
