//! Experiment tables: the harness's output format.
//!
//! Every experiment produces a [`Table`]; the harness renders them as
//! GitHub-flavoured markdown (for EXPERIMENTS.md) and optionally as JSON
//! (for diffing runs).

use serde::Serialize;
use std::fmt;

/// One experiment's result table.
#[derive(Clone, Debug, Serialize)]
pub struct Table {
    /// Experiment id, e.g. `"E1"` or `"F2"`.
    pub id: String,
    /// Human title.
    pub title: String,
    /// What the experiment demonstrates (one paragraph).
    pub note: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Rows of cells (already formatted).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with the given id/title/columns.
    pub fn new(
        id: &str,
        title: &str,
        note: &str,
        columns: &[&str],
    ) -> Table {
        Table {
            id: id.to_string(),
            title: title.to_string(),
            note: note.to_string(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; panics if the cell count does not match the header.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.columns.len(),
            "row width mismatch in {}",
            self.id
        );
        self.rows.push(cells);
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "### {} — {}", self.id, self.title)?;
        writeln!(f)?;
        writeln!(f, "{}", self.note)?;
        writeln!(f)?;
        // Column widths for aligned markdown.
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let render_row = |cells: &[String], f: &mut fmt::Formatter<'_>| -> fmt::Result {
            write!(f, "|")?;
            for (i, c) in cells.iter().enumerate() {
                write!(f, " {:<w$} |", c, w = widths[i])?;
            }
            writeln!(f)
        };
        render_row(&self.columns, f)?;
        write!(f, "|")?;
        for w in &widths {
            write!(f, "{:-<w$}|", "", w = w + 2)?;
        }
        writeln!(f)?;
        for row in &self.rows {
            render_row(row, f)?;
        }
        Ok(())
    }
}

/// Milliseconds with two decimals — the tables' time format.
pub fn ms(d: std::time::Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e3)
}

/// Runs `f`, returning its result and the elapsed wall-clock time.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, std::time::Duration) {
    let start = std::time::Instant::now();
    let out = f();
    (out, start.elapsed())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_markdown() {
        let mut t = Table::new("E0", "demo", "a note", &["strategy", "facts"]);
        t.row(vec!["naive".into(), "120".into()]);
        t.row(vec!["alexander".into(), "7".into()]);
        let s = t.to_string();
        assert!(s.contains("### E0 — demo"));
        assert!(s.contains("| strategy  | facts |"));
        assert!(s.contains("| alexander | 7     |"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_is_checked() {
        let mut t = Table::new("E0", "demo", "", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn timing_helpers() {
        let (v, d) = timed(|| 21 * 2);
        assert_eq!(v, 42);
        let s = ms(d);
        assert!(s.parse::<f64>().is_ok());
    }
}
