//! Retrograde analysis of the win–move game — the ground truth experiment
//! E6 checks the conditional fixpoint against.
//!
//! Classical game-theoretic labelling: a position with no moves is LOST for
//! the player to move; a position with a move to a LOST position is WON; a
//! position all of whose moves lead to WON positions is LOST; anything the
//! iteration never labels is a DRAW (the well-founded model's undefined
//! atoms).

use alexander_ir::{Const, FxHashMap, FxHashSet, Predicate};
use alexander_storage::Database;

/// The labelling of every position that appears in the move relation.
#[derive(Clone, Debug, Default)]
pub struct GameLabels {
    pub won: FxHashSet<Const>,
    pub lost: FxHashSet<Const>,
    pub drawn: FxHashSet<Const>,
}

/// Solves the game given by `move_pred` tuples in `db`.
pub fn solve(db: &Database, move_pred: Predicate) -> GameLabels {
    let mut succs: FxHashMap<Const, Vec<Const>> = FxHashMap::default();
    let mut preds: FxHashMap<Const, Vec<Const>> = FxHashMap::default();
    let mut positions: FxHashSet<Const> = FxHashSet::default();
    if let Some(rel) = db.relation(move_pred) {
        for row in rel.iter() {
            let (a, b) = (row[0], row[1]);
            succs.entry(a).or_default().push(b);
            preds.entry(b).or_default().push(a);
            positions.insert(a);
            positions.insert(b);
        }
    }

    let mut labels = GameLabels::default();
    // Remaining out-degree: when it hits zero and the position is unlabelled,
    // every move leads to WON, so the position is LOST.
    let mut outdeg: FxHashMap<Const, usize> = positions
        .iter()
        .map(|&p| (p, succs.get(&p).map_or(0, |v| v.len())))
        .collect();

    let mut queue: Vec<Const> = positions
        .iter()
        .copied()
        .filter(|p| outdeg[p] == 0)
        .collect();
    for &p in &queue {
        labels.lost.insert(p);
    }

    while let Some(p) = queue.pop() {
        let p_lost = labels.lost.contains(&p);
        for &q in preds.get(&p).into_iter().flatten() {
            if labels.won.contains(&q) || labels.lost.contains(&q) {
                continue;
            }
            if p_lost {
                // q can move to a lost position: q is won.
                labels.won.insert(q);
                queue.push(q);
            } else {
                // p is won: one fewer escape for q.
                let d = outdeg.get_mut(&q).expect("known position");
                *d -= 1;
                if *d == 0 {
                    labels.lost.insert(q);
                    queue.push(q);
                }
            }
        }
    }

    for &p in &positions {
        if !labels.won.contains(&p) && !labels.lost.contains(&p) {
            labels.drawn.insert(p);
        }
    }
    labels
}

#[cfg(test)]
mod tests {
    use super::*;
    use alexander_storage::tuple_of_syms;

    fn db_of(edges: &[(&str, &str)]) -> Database {
        let mut db = Database::new();
        for (a, b) in edges {
            db.insert(Predicate::new("move", 2), tuple_of_syms(&[a, b]));
        }
        db
    }

    fn name(c: Const) -> String {
        c.to_string()
    }

    #[test]
    fn chain_alternates() {
        // a -> b -> c: c lost, b won, a lost.
        let l = solve(&db_of(&[("a", "b"), ("b", "c")]), Predicate::new("move", 2));
        assert!(l.lost.iter().map(|&c| name(c)).any(|n| n == "c"));
        assert!(l.won.iter().map(|&c| name(c)).any(|n| n == "b"));
        assert!(l.lost.iter().map(|&c| name(c)).any(|n| n == "a"));
        assert!(l.drawn.is_empty());
    }

    #[test]
    fn two_cycle_is_drawn() {
        let l = solve(&db_of(&[("a", "b"), ("b", "a")]), Predicate::new("move", 2));
        assert_eq!(l.drawn.len(), 2);
        assert!(l.won.is_empty());
        assert!(l.lost.is_empty());
    }

    #[test]
    fn escape_from_a_cycle_wins() {
        // a <-> b, plus b -> c (stuck): b can move to lost c, so b is won;
        // a's only move goes to won b, so a is lost.
        let l = solve(
            &db_of(&[("a", "b"), ("b", "a"), ("b", "c")]),
            Predicate::new("move", 2),
        );
        assert!(l.won.iter().map(|&c| name(c)).any(|n| n == "b"));
        assert!(l.lost.iter().map(|&c| name(c)).any(|n| n == "a"));
        assert!(l.lost.iter().map(|&c| name(c)).any(|n| n == "c"));
        assert!(l.drawn.is_empty());
    }

    #[test]
    fn empty_game() {
        let l = solve(&Database::new(), Predicate::new("move", 2));
        assert!(l.won.is_empty() && l.lost.is_empty() && l.drawn.is_empty());
    }
}
