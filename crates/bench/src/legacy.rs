//! The pre-arena evaluation engine, preserved as experiment F6's "before"
//! side.
//!
//! This is a faithful copy of the storage layer and semi-naive loop the
//! workspace shipped before the arena rewrite: relations keep each tuple as
//! a boxed slice plus a hash-map entry keyed by a clone of it, indexes map
//! materialised `Vec<Const>` projections to posting lists, every probe
//! allocates its key, every firing allocates its head tuple, and each
//! round's delta is a separate database whose indexes are rebuilt from
//! scratch. It compiles rules through the *current* `compile_rule`, so both
//! engines evaluate literals in the same order and their firing, probe and
//! duplicate counters must agree exactly — F6 asserts that before trusting
//! the throughput comparison.
//!
//! Nothing outside the F6 experiment should use this module.

use alexander_eval::join::{CompiledRule, Pat};
use alexander_eval::{compile_rule, EvalMetrics};
use alexander_ir::{Const, FxHashMap, Polarity, Predicate, Program};
use alexander_storage::{Database, Mask, Tuple};

/// One secondary index: key = constants at the mask's columns, value = ids
/// of matching tuples (the boxed-key scheme the arena rewrite replaced).
#[derive(Clone, Default)]
struct Index {
    columns: Vec<usize>,
    map: FxHashMap<Vec<Const>, Vec<u32>>,
}

/// A stored relation in the legacy layout: tuples in insertion order, a
/// hash map over cloned tuples for duplicate detection, and lazily built
/// boxed-key indexes maintained incrementally on insert.
#[derive(Clone, Default)]
pub struct LegacyRelation {
    by_id: Vec<Tuple>,
    ids: FxHashMap<Tuple, u32>,
    indexes: FxHashMap<Mask, Index>,
}

impl LegacyRelation {
    fn len(&self) -> usize {
        self.by_id.len()
    }

    fn insert(&mut self, t: Tuple) -> bool {
        if self.ids.contains_key(&t) {
            return false;
        }
        let id = u32::try_from(self.by_id.len()).expect("relation overflow");
        for index in self.indexes.values_mut() {
            let key = t.project(&index.columns);
            index.map.entry(key).or_default().push(id);
        }
        self.ids.insert(t.clone(), id);
        self.by_id.push(t);
        true
    }

    fn contains(&self, t: &Tuple) -> bool {
        self.ids.contains_key(t)
    }

    fn ensure_index(&mut self, mask: Mask) {
        if self.indexes.contains_key(&mask) {
            return;
        }
        let columns: Vec<usize> = mask.columns().collect();
        let mut map: FxHashMap<Vec<Const>, Vec<u32>> = FxHashMap::default();
        for (id, t) in self.by_id.iter().enumerate() {
            map.entry(t.project(&columns)).or_default().push(id as u32);
        }
        self.indexes.insert(mask, Index { columns, map });
    }

    /// Probes the index for `mask`/`key`; `(candidates, indexed)`. Without
    /// an index the whole relation is the candidate list, as in the old
    /// fallback scan.
    fn probe(&self, mask: Mask, key: &[Const]) -> (&[u32], bool) {
        match self.indexes.get(&mask) {
            Some(index) => (
                index.map.get(key).map_or(&[][..], |ids| ids.as_slice()),
                true,
            ),
            None => (&[], false),
        }
    }
}

/// A database of legacy relations.
#[derive(Clone, Default)]
pub struct LegacyDb {
    relations: FxHashMap<Predicate, LegacyRelation>,
}

impl LegacyDb {
    /// Copies an arena database into the legacy layout (boxing every row).
    pub fn from_database(db: &Database) -> LegacyDb {
        let mut out = LegacyDb::default();
        for (pred, rel) in db.iter() {
            for row in rel.iter() {
                out.insert(pred, Tuple::new(row));
            }
        }
        out
    }

    fn insert(&mut self, pred: Predicate, t: Tuple) -> bool {
        self.relations.entry(pred).or_default().insert(t)
    }

    fn relation(&self, pred: Predicate) -> Option<&LegacyRelation> {
        self.relations.get(&pred)
    }

    fn contains(&self, pred: Predicate, t: &Tuple) -> bool {
        self.relation(pred).is_some_and(|r| r.contains(t))
    }

    fn len_of(&self, pred: Predicate) -> usize {
        self.relation(pred).map_or(0, LegacyRelation::len)
    }

    /// Total stored tuples.
    pub fn total_tuples(&self) -> u64 {
        self.relations.values().map(|r| r.len() as u64).sum()
    }

    /// Every stored `(predicate, tuple)` pair, for differential tests that
    /// compare this engine's model against the arena engine's.
    pub fn iter(&self) -> impl Iterator<Item = (Predicate, &Tuple)> {
        self.relations
            .iter()
            .flat_map(|(&p, r)| r.by_id.iter().map(move |t| (p, t)))
    }

    fn ensure_index(&mut self, pred: Predicate, mask: Mask) {
        self.relations.entry(pred).or_default().ensure_index(mask);
    }

    fn merge(&mut self, other: &LegacyDb) {
        for (&pred, rel) in &other.relations {
            for t in &rel.by_id {
                self.insert(pred, t.clone());
            }
        }
    }
}

fn ensure_rule_indexes(rule: &CompiledRule, db: &mut LegacyDb) {
    for lit in &rule.body {
        if lit.polarity == Polarity::Positive && !lit.mask.is_empty() {
            db.ensure_index(lit.atom.pred, lit.mask);
        }
    }
}

/// The legacy nested-loop join: allocates a key vector per probe and a head
/// tuple per firing, exactly as the pre-arena kernel did.
#[allow(clippy::too_many_arguments)]
fn descend(
    rule: &CompiledRule,
    total: &LegacyDb,
    delta: Option<(usize, &LegacyDb)>,
    depth: usize,
    bind: &mut Vec<Option<Const>>,
    metrics: &mut EvalMetrics,
    emit: &mut dyn FnMut(Tuple, &mut EvalMetrics),
) {
    if depth == rule.body.len() {
        let head = rule
            .head
            .to_tuple(bind)
            .expect("safety guarantees a ground head after a full body match");
        emit(head, metrics);
        return;
    }

    let lit = &rule.body[depth];

    if let Some(b) = alexander_ir::Builtin::of(lit.atom.pred) {
        let t = lit
            .atom
            .to_tuple(bind)
            .expect("ordering guarantees ground built-ins");
        metrics.probes += 1;
        let holds = b.eval(t.get(0), t.get(1));
        if holds == (lit.polarity == Polarity::Positive) {
            descend(rule, total, delta, depth + 1, bind, metrics, emit);
        }
        return;
    }

    match lit.polarity {
        Polarity::Negative => {
            let t = lit
                .atom
                .to_tuple(bind)
                .expect("ordering guarantees ground negative literals");
            metrics.probes += 1;
            if !total.contains(lit.atom.pred, &t) {
                descend(rule, total, delta, depth + 1, bind, metrics, emit);
            }
        }
        Polarity::Positive => {
            let db = match delta {
                Some((d, delta_db)) if d == depth => delta_db,
                _ => total,
            };
            let Some(relation) = db.relation(lit.atom.pred) else {
                return;
            };
            metrics.probes += 1;
            let match_candidate =
                |t: &Tuple,
                 bind: &mut Vec<Option<Const>>,
                 metrics: &mut EvalMetrics,
                 emit: &mut dyn FnMut(Tuple, &mut EvalMetrics)| {
                    let mut trail: Vec<u32> = Vec::new();
                    let mut ok = true;
                    for (i, p) in lit.atom.args.iter().enumerate() {
                        match p {
                            Pat::Const(c) => {
                                if t.get(i) != *c {
                                    ok = false;
                                    break;
                                }
                            }
                            Pat::Var(v) => {
                                let v = *v as usize;
                                match bind[v] {
                                    Some(c) => {
                                        if t.get(i) != c {
                                            ok = false;
                                            break;
                                        }
                                    }
                                    None => {
                                        bind[v] = Some(t.get(i));
                                        trail.push(v as u32);
                                    }
                                }
                            }
                        }
                    }
                    if ok {
                        descend(rule, total, delta, depth + 1, bind, metrics, emit);
                    }
                    for &v in &trail {
                        bind[v as usize] = None;
                    }
                };
            if lit.mask.is_empty() || !relation.indexes.contains_key(&lit.mask) {
                // Fallback scan: the whole relation is enumerated and that
                // cost is what `tuples_considered` measures.
                metrics.tuples_considered += relation.len() as u64;
                for id in 0..relation.by_id.len() {
                    match_candidate(&relation.by_id[id], bind, metrics, emit);
                }
            } else {
                // Indexed probe: project the bound positions into a fresh
                // key vector (the allocation the arena kernel eliminated).
                let cols: Vec<usize> = lit.mask.columns().collect();
                let key: Vec<Const> = cols
                    .iter()
                    .map(|&c| match lit.atom.args[c] {
                        Pat::Const(k) => k,
                        Pat::Var(v) => bind[v as usize].expect("masked position is bound"),
                    })
                    .collect();
                let (candidates, _) = relation.probe(lit.mask, &key);
                for &id in candidates {
                    metrics.tuples_considered += 1;
                    match_candidate(&relation.by_id[id as usize], bind, metrics, emit);
                }
            }
        }
    }
}

/// The result of a legacy run.
pub struct LegacyResult {
    pub db: LegacyDb,
    pub metrics: EvalMetrics,
}

/// Semi-naive evaluation with the legacy storage layout: per-round delta
/// databases, index rebuilds on every fresh delta, boxed tuples throughout.
/// Sequential only (the comparison pins the single-thread kernels against
/// each other).
pub fn eval_seminaive_legacy(program: &Program, edb: &Database) -> LegacyResult {
    program.validate().expect("benchmark programs are valid");
    let compiled: Vec<CompiledRule> = program
        .rules
        .iter()
        .map(|r| compile_rule(r).expect("benchmark rules are orderable"))
        .collect();
    let mut derived: Vec<Predicate> = compiled.iter().map(|r| r.head.pred).collect();
    derived.sort();
    derived.dedup();

    let mut db = LegacyDb::from_database(edb);
    for f in &program.facts {
        let t = Tuple::from_atom(f).expect("validated facts are ground");
        db.insert(f.predicate(), t);
    }

    let mut metrics = EvalMetrics::default();

    // Round 0: full join over the seed database.
    metrics.iterations += 1;
    for r in &compiled {
        ensure_rule_indexes(r, &mut db);
    }
    let mut delta = LegacyDb::default();
    for rule in &compiled {
        run_task(rule, None, &db, &mut delta, &mut metrics);
    }
    db.merge(&delta);

    // Delta rounds: each fresh delta database gets its indexes rebuilt
    // before the round's variants run — the per-round cost the arena
    // engine's range deltas avoid.
    while delta.total_tuples() > 0 {
        metrics.iterations += 1;
        let mut next = LegacyDb::default();
        for r in &compiled {
            ensure_rule_indexes(r, &mut db);
            ensure_rule_indexes(r, &mut delta);
        }
        for rule in &compiled {
            for (i, lit) in rule.body.iter().enumerate() {
                if lit.polarity == Polarity::Positive
                    && derived.binary_search(&lit.atom.pred).is_ok()
                    && delta.len_of(lit.atom.pred) > 0
                {
                    run_task(rule, Some((i, &delta)), &db, &mut next, &mut metrics);
                }
            }
        }
        db.merge(&next);
        delta = next;
    }

    LegacyResult { db, metrics }
}

fn run_task(
    rule: &CompiledRule,
    delta: Option<(usize, &LegacyDb)>,
    db: &LegacyDb,
    staged: &mut LegacyDb,
    metrics: &mut EvalMetrics,
) {
    let mut bind: Vec<Option<Const>> = vec![None; rule.nvars];
    descend(
        rule,
        db,
        delta,
        0,
        &mut bind,
        metrics,
        &mut |head, metrics| {
            metrics.firings += 1;
            let pred = rule.head.pred;
            if db.contains(pred, &head) || !staged.insert(pred, head) {
                metrics.duplicate_facts += 1;
            } else {
                metrics.new_facts += 1;
            }
        },
    );
}
