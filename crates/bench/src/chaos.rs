//! Kill/restart soak harness for the serving layer (failpoints builds only).
//!
//! The driver self-hosts a *durable* [`QueryService`] over real TCP and runs
//! repeated fault cycles against the writer while reader clients hammer
//! oracle-verified queries the whole time:
//!
//! * **WAL byte-crash** (default cycle): arm `durable-wal-io` with
//!   `CrashAfterBytes` a random distance past the current WAL length, then
//!   drive `INSERT`/`COMMIT` traffic until a commit dies mid-append with
//!   `ERR DEGRADED`. The in-flight batch is indeterminate by construction —
//!   the crash point lands inside its frame.
//! * **Mixed-batch WAL byte-crash** (every 5th cycle, offset 1): the same
//!   armed fault, but every commit frame is `DELETE tip / INSERT tip /
//!   INSERT next` — a genuine deletion of pre-existing state rides each WAL
//!   frame while the net effect stays +1 edge, so the readers' monotone
//!   chain invariant still pins the outcome. Recovery replays the mixed
//!   frame through the engine's `delete_batch` path; a replay that drops
//!   the delete record or applies a torn prefix lands off the
//!   committed-batch boundary and is caught at resync.
//! * **WAL fsync-error** (every 5th cycle, offset 2): arm `FsyncError`; the
//!   next commit's append persists its bytes but cannot prove it, so the
//!   writer must poison even though replay will later find the batch whole.
//! * **Snapshot crash** (every 5th cycle, offset 4): arm
//!   `durable-snapshot-io` and take a checkpoint. The snapshot write is
//!   atomic (temp file + rename), so this must fail *cleanly*: no
//!   degradation, old snapshot intact, and a retried checkpoint succeeds
//!   once the fault is lifted.
//!
//! After every degraded window the driver disarms the fault, waits for the
//! supervisor to heal and republish, and resyncs over the wire, asserting
//! the recovered chain landed on a **committed-batch boundary**: exactly the
//! certain length, or one more (the indeterminate batch persisted whole) —
//! never a torn prefix. Readers verify every reply bit-identically against a
//! single-threaded oracle and cross-check a shared generation → chain-length
//! map for per-generation consistency and monotonicity, which pins the
//! heal's republish (a generation bump with no chain growth) as well as
//! ordinary commits. Shed replies (`ERR BUSY retry-after-ms=`) are honoured
//! with jittered backoff, not treated as failures.

use crate::loadgen::{chain_db, jitter, rng_seed, update_fact, Client, Oracle, QUERY, RULES};
use alexander_eval::failpoints::{self, Action};
use alexander_parser::parse;
use alexander_server::{serve_tcp, QueryService, ServerConfig, ServerError};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Failpoint site for WAL bytes (mirrors `alexander-durable`'s WAL writer).
const SITE_WAL: &str = "durable-wal-io";
/// Failpoint site for snapshot bytes.
const SITE_SNAP: &str = "durable-snapshot-io";

/// Soak parameters.
pub struct ChaosConfig {
    /// Fault cycles to run (the CI job uses at least 20).
    pub cycles: usize,
    /// Concurrent oracle-verifying reader clients.
    pub clients: usize,
    /// Initial chain length baked into the snapshot.
    pub base_chain: usize,
    /// How long one heal may take before the cycle is declared stuck.
    pub heal_deadline: Duration,
    /// Commits to attempt per cycle before declaring the fault never fired.
    pub commits_cap: usize,
}

impl Default for ChaosConfig {
    fn default() -> ChaosConfig {
        ChaosConfig {
            cycles: 20,
            clients: 4,
            base_chain: 48,
            heal_deadline: Duration::from_secs(10),
            commits_cap: 64,
        }
    }
}

/// What the soak did and saw; `violations` empty means it passed.
#[derive(Debug, Default)]
pub struct ChaosReport {
    /// Cycles completed.
    pub cycles: usize,
    /// Commits acknowledged `OK` across the run.
    pub commits_ok: u64,
    /// Cycles that entered (and left) the degraded state.
    pub degraded_cycles: usize,
    /// Degraded windows also observed over the wire via `HEALTH`.
    pub degraded_on_wire: usize,
    /// Snapshot-crash checkpoint cycles.
    pub checkpoint_cycles: usize,
    /// Crash cycles whose commit frames mixed deletes with inserts.
    pub mixed_cycles: usize,
    /// Indeterminate batches that turned out to have persisted whole.
    pub batches_survived_crash: u64,
    /// Oracle-verified query replies across all readers.
    pub queries: u64,
    /// `ERR BUSY` sheds absorbed by retry.
    pub sheds: u64,
    /// Supervisor heals observed (may exceed `degraded_cycles`: health can
    /// flap while a fault stays armed).
    pub heals: u64,
    /// Final committed chain length.
    pub final_chain: usize,
    /// Every invariant violation seen, in order.
    pub violations: Vec<String>,
}

/// State shared between the driver and the reader threads.
struct Shared {
    oracle: Oracle,
    base: usize,
    /// generation → chain length, grown by whoever sees a tagged reply
    /// first; every later observation must agree, and entries must be
    /// monotone in the generation.
    gen_map: Mutex<BTreeMap<u64, usize>>,
    violations: Mutex<Vec<String>>,
    stop: AtomicBool,
    queries: AtomicU64,
    sheds: AtomicU64,
}

impl Shared {
    fn violation(&self, msg: String) {
        self.violations.lock().expect("violations lock").push(msg);
    }

    /// Records `generation → len`, checking consistency and monotonicity.
    fn record(&self, who: &str, generation: u64, len: usize) {
        let mut map = self.gen_map.lock().expect("gen map lock");
        if let Some(&prev) = map.get(&generation) {
            if prev != len {
                self.violation(format!(
                    "{who}: epoch {generation} answered chain length {len}, \
                     previously {prev} — snapshot reads are not stable"
                ));
            }
            return;
        }
        if let Some((&g, &l)) = map.range(..generation).next_back() {
            if l > len {
                self.violation(format!(
                    "{who}: epoch {generation} (len {len}) shrank below \
                     epoch {g} (len {l}) — committed data regressed"
                ));
            }
        }
        if let Some((&g, &l)) = map.range(generation + 1..).next() {
            if len > l {
                self.violation(format!(
                    "{who}: epoch {generation} (len {len}) exceeds later \
                     epoch {g} (len {l}) — epochs are out of order"
                ));
            }
        }
        map.insert(generation, len);
    }

    /// Verifies one `OK` reply against the single-threaded oracle and the
    /// shared epoch map; returns the chain length it certifies.
    fn verify(&self, who: &str, generation: u64, answers: &[String]) -> Option<usize> {
        // The chain workload answers `anc(n0, X)` with exactly one tuple
        // per chain edge, so the reply length *is* the chain length.
        let len = answers.len();
        if len < self.base {
            self.violation(format!(
                "{who}: epoch {generation} lost committed base facts \
                 ({len} answers < base {})",
                self.base
            ));
            return None;
        }
        let expected = self.oracle.answers((len - self.base) as u64);
        if answers != expected {
            self.violation(format!(
                "{who}: epoch {generation} diverged from the oracle at \
                 chain length {len}"
            ));
            return None;
        }
        self.record(who, generation, len);
        Some(len)
    }
}

/// One reader: query, retry sheds, verify bit-identically, forever.
fn reader(idx: usize, addr: &str, shared: &Shared) {
    let who = format!("reader {idx}");
    let mut rng = rng_seed().wrapping_add(idx as u64 * 0x9e37_79b9);
    let mut client = match Client::connect(addr) {
        Ok(c) => c,
        Err(e) => {
            shared.violation(format!("{who}: connect: {e}"));
            return;
        }
    };
    if let Err(e) = client.request(&format!("HELLO chaos{idx}")) {
        shared.violation(format!("{who}: hello: {e}"));
        return;
    }
    while !shared.stop.load(Ordering::Relaxed) {
        match client.query_retrying(QUERY, &mut rng, 8) {
            Ok((reply, sheds)) => {
                shared.sheds.fetch_add(sheds as u64, Ordering::Relaxed);
                if reply.ok {
                    shared.queries.fetch_add(1, Ordering::Relaxed);
                    shared.verify(&who, reply.generation, &reply.answers);
                } else if reply.retry_after_ms().is_none() {
                    // Reads must serve in *every* state; only a shed that
                    // outlived its retries is tolerable.
                    shared.violation(format!("{who}: query refused: {}", reply.terminal));
                }
            }
            Err(e) => {
                if !shared.stop.load(Ordering::Relaxed) {
                    shared.violation(format!("{who}: transport: {e}"));
                }
                return;
            }
        }
    }
}

/// Runs the soak; `Err` carries the violation list, newline-joined.
pub fn run(config: &ChaosConfig) -> Result<ChaosReport, String> {
    let dir = std::env::temp_dir();
    let pid = std::process::id();
    let snap = dir.join(format!("alexander_chaos_{pid}.snap"));
    let wal = dir.join(format!("alexander_chaos_{pid}.wal"));
    std::fs::remove_file(&snap).ok();
    std::fs::remove_file(&wal).ok();

    // Make sure this process's failpoint registry is ours alone.
    let _fp = failpoints::scoped();

    let program = parse(RULES).expect("rules parse").program;
    let server_config = ServerConfig {
        max_concurrent: config.clients.max(1) + 2,
        tenant_cap: config.clients.max(1) + 2,
        // Tight backoff keeps each heal window short; the soak runs many.
        heal_backoff_ms: 5,
        heal_backoff_max_ms: 100,
        ..ServerConfig::default()
    };
    let service = Arc::new(
        QueryService::open(
            program,
            chain_db(config.base_chain),
            Some((&snap, &wal)),
            server_config,
        )
        .map_err(|e| format!("open durable service: {e}"))?,
    );
    let handle = serve_tcp(service.clone(), "127.0.0.1:0").map_err(|e| format!("bind: {e}"))?;
    let addr = handle.tcp_addr().expect("bound").to_string();

    let shared = Arc::new(Shared {
        oracle: Oracle::new(config.base_chain),
        base: config.base_chain,
        gen_map: Mutex::new(BTreeMap::new()),
        violations: Mutex::new(Vec::new()),
        stop: AtomicBool::new(false),
        queries: AtomicU64::new(0),
        sheds: AtomicU64::new(0),
    });
    let readers: Vec<_> = (0..config.clients)
        .map(|i| {
            let addr = addr.clone();
            let shared = shared.clone();
            std::thread::spawn(move || reader(i, &addr, &shared))
        })
        .collect();

    let mut report = ChaosReport::default();
    let mut rng = rng_seed();
    let mut chain = config.base_chain;
    let driver = drive_cycles(
        config,
        &service,
        &addr,
        &shared,
        &mut report,
        &mut rng,
        &mut chain,
    );
    if let Err(e) = driver {
        shared.violation(e);
    }

    shared.stop.store(true, Ordering::Relaxed);
    for r in readers {
        r.join().expect("reader thread");
    }
    handle.shutdown();
    std::fs::remove_file(&snap).ok();
    std::fs::remove_file(&wal).ok();

    report.queries = shared.queries.load(Ordering::Relaxed);
    report.sheds = shared.sheds.load(Ordering::Relaxed);
    report.heals = service.health().heals();
    report.final_chain = chain;
    report.violations = std::mem::take(&mut *shared.violations.lock().expect("violations lock"));
    if report.violations.is_empty() {
        Ok(report)
    } else {
        Err(report.violations.join("\n"))
    }
}

/// The fault-cycle loop, factored out so any wire error aborts cleanly into
/// a violation instead of unwinding past the reader threads.
#[allow(clippy::too_many_arguments)]
fn drive_cycles(
    config: &ChaosConfig,
    service: &QueryService,
    addr: &str,
    shared: &Shared,
    report: &mut ChaosReport,
    rng: &mut u64,
    chain: &mut usize,
) -> Result<(), String> {
    let mut writer = Client::connect(addr).map_err(|e| format!("writer connect: {e}"))?;
    writer
        .request("HELLO chaos-writer")
        .map_err(|e| format!("writer hello: {e}"))?;

    for cycle in 0..config.cycles {
        match cycle % 5 {
            4 => checkpoint_cycle(cycle, service, shared, rng, report)?,
            n => {
                let action = if n == 2 {
                    Action::FsyncError
                } else {
                    let wal_len = service
                        .durable_wal_len()
                        .ok_or("service must be durable".to_string())?;
                    // Land inside a future append: at least one byte past
                    // the current end, at most a few frames further.
                    Action::CrashAfterBytes(wal_len + 1 + jitter(rng, 200))
                };
                crash_cycle(
                    cycle,
                    config,
                    service,
                    shared,
                    &mut writer,
                    action,
                    // Offset 1 drives mixed insert+delete frames into the
                    // armed fault instead of pure extensions.
                    n == 1,
                    chain,
                    report,
                )?;
            }
        }
        report.cycles += 1;
    }
    Ok(())
}

/// Arms `action` on the WAL, drives commits until the writer degrades,
/// probes the degraded window over the wire, then heals and resyncs.
/// With `mixed` set, every commit frame retracts the current tip edge,
/// reinstates it, and extends the chain — the frame carries a real delete
/// of pre-existing state but its net effect is still one new edge.
#[allow(clippy::too_many_arguments)]
fn crash_cycle(
    cycle: usize,
    config: &ChaosConfig,
    service: &QueryService,
    shared: &Shared,
    writer: &mut Client,
    action: Action,
    mixed: bool,
    chain: &mut usize,
    report: &mut ChaosReport,
) -> Result<(), String> {
    let who = format!("cycle {cycle}");
    let degradations_before = service.health().degradations();
    failpoints::configure(SITE_WAL, action);
    let mut rng = rng_seed();

    // Drive commits until one hits the armed fault.
    let mut fired = false;
    for _ in 0..config.commits_cap {
        // `update_fact(chain, 0)` is the edge the chain currently ends on;
        // `update_fact(chain, 1)` is the next extension.
        let ops: Vec<String> = if mixed {
            vec![
                format!("DELETE {}", update_fact(*chain, 0)),
                format!("INSERT {}", update_fact(*chain, 0)),
                format!("INSERT {}", update_fact(*chain, 1)),
            ]
        } else {
            vec![format!("INSERT {}", update_fact(*chain, 1))]
        };
        let mut staged = true;
        for op in &ops {
            let reply = writer
                .request(op)
                .map_err(|e| format!("{who}: stage `{op}`: {e}"))?;
            let terminal = reply.last().cloned().unwrap_or_default();
            if terminal.starts_with("ERR DEGRADED") {
                // A prior commit poisoned the writer and the staging op
                // caught the degraded window first — same outcome as a
                // failing commit.
                fired = true;
                staged = false;
                break;
            }
            if !terminal.starts_with("OK") {
                shared.violation(format!("{who}: `{op}` refused: {terminal}"));
                staged = false;
                break;
            }
        }
        if !staged {
            break;
        }
        let commit = writer
            .request("COMMIT")
            .map_err(|e| format!("{who}: commit: {e}"))?;
        let terminal = commit.last().cloned().unwrap_or_default();
        if terminal.starts_with("ERR DEGRADED") {
            fired = true;
            break;
        }
        // "OK epoch <g> committed <n>"
        let generation: Option<u64> = terminal
            .strip_prefix("OK epoch ")
            .and_then(|r| r.split_whitespace().next())
            .and_then(|g| g.parse().ok());
        let Some(generation) = generation else {
            shared.violation(format!("{who}: commit answered: {terminal}"));
            break;
        };
        *chain += 1;
        report.commits_ok += 1;
        shared.record(&who, generation, *chain);
    }
    if !fired {
        shared.violation(format!(
            "{who}: fault never fired within {} commits",
            config.commits_cap
        ));
        failpoints::remove(SITE_WAL);
        return Ok(());
    }
    if mixed {
        report.mixed_cycles += 1;
    }

    // Degraded-window probes: HEALTH may already say healthy again (the
    // supervisor heals fast and the fault only re-fires on the next
    // commit), but reads must serve an epoch-pinned answer regardless.
    let health = writer
        .request("HEALTH")
        .map_err(|e| format!("{who}: health: {e}"))?;
    if health.last().is_some_and(|l| l.contains("degraded")) {
        report.degraded_on_wire += 1;
    }
    let (reply, _) = writer
        .query_retrying(QUERY, &mut rng, 8)
        .map_err(|e| format!("{who}: degraded-window query: {e}"))?;
    if reply.ok {
        shared.verify(&who, reply.generation, &reply.answers);
    } else {
        shared.violation(format!(
            "{who}: degraded window refused a read: {}",
            reply.terminal
        ));
    }
    if service.health().degradations() == degradations_before {
        shared.violation(format!("{who}: the writer never entered Degraded"));
    } else {
        report.degraded_cycles += 1;
    }

    // Disarm, then the supervisor's next heal sticks.
    failpoints::remove(SITE_WAL);
    if !service.wait_for_healthy(config.heal_deadline) {
        return Err(format!(
            "{who}: not Healthy within {:?} of disarming the fault",
            config.heal_deadline
        ));
    }

    // Resync: recovery must land on a committed-batch boundary — the
    // certain chain, or certain + 1 when the in-flight batch persisted
    // whole before the crash point. Never a torn prefix, never a loss.
    let (reply, _) = writer
        .query_retrying(QUERY, &mut rng, 8)
        .map_err(|e| format!("{who}: resync query: {e}"))?;
    if !reply.ok {
        shared.violation(format!("{who}: resync refused: {}", reply.terminal));
        return Ok(());
    }
    match shared.verify(&who, reply.generation, &reply.answers) {
        Some(recovered) if recovered == *chain || recovered == *chain + 1 => {
            if recovered == *chain + 1 {
                report.batches_survived_crash += 1;
            }
            *chain = recovered;
        }
        Some(recovered) => shared.violation(format!(
            "{who}: recovery off the batch boundary: chain {recovered}, \
             certain {} (allowed: that or +1)",
            *chain
        )),
        None => {} // verify already recorded the violation
    }
    Ok(())
}

/// Snapshot-crash cycle: a checkpoint whose snapshot write dies must fail
/// *cleanly* — atomic replace means no degradation and no data loss — and
/// must succeed once the fault lifts, truncating the WAL.
fn checkpoint_cycle(
    cycle: usize,
    service: &QueryService,
    shared: &Shared,
    rng: &mut u64,
    report: &mut ChaosReport,
) -> Result<(), String> {
    let who = format!("cycle {cycle}");
    let wal_before = service
        .durable_wal_len()
        .ok_or("service must be durable".to_string())?;
    failpoints::configure(SITE_SNAP, Action::CrashAfterBytes(jitter(rng, 64)));
    match service.checkpoint() {
        Err(ServerError::Durable(_)) => {}
        Ok(_) => shared.violation(format!(
            "{who}: checkpoint succeeded with the snapshot fault armed"
        )),
        Err(e) => shared.violation(format!(
            "{who}: snapshot crash escalated past a clean failure: {e}"
        )),
    }
    if service.state().is_degraded() {
        shared.violation(format!(
            "{who}: an atomic snapshot failure must not degrade the writer"
        ));
    }
    failpoints::remove(SITE_SNAP);
    match service.checkpoint() {
        Ok(true) => {
            let wal_after = service.durable_wal_len().expect("still durable");
            if wal_after > wal_before {
                shared.violation(format!(
                    "{who}: checkpoint did not truncate the WAL \
                     ({wal_before} -> {wal_after} bytes)"
                ));
            }
            report.checkpoint_cycles += 1;
        }
        Ok(false) => shared.violation(format!("{who}: durable checkpoint reported in-memory")),
        Err(e) => shared.violation(format!("{who}: retried checkpoint failed: {e}")),
    }
    Ok(())
}
