//! Load-driver client for the serving layer: a minimal line-protocol TCP
//! client, a single-threaded consistency oracle, and latency summarising
//! helpers. The `loadgen` binary (CI's server soak) and experiment F9 both
//! build on these.
//!
//! The workload is the append-only chain: the EDB starts as
//! `par(n0,n1) … par(n{base-1},n{base})` and generation `g` appends the edge
//! `par(n{base+g-1}, n{base+g})`. That makes the expected answer set of
//! `anc(n0, X)` at every generation a pure function of `g`, so any client
//! can verify any epoch-tagged response against an independent
//! single-threaded engine — the "bit-identical vs oracle" check.

use alexander_core::{Engine, Strategy};
use alexander_parser::{parse, parse_atom};
use alexander_storage::Database;
use std::collections::HashMap;
use std::hash::{BuildHasher, Hasher, RandomState};
use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Mutex;
use std::time::Duration;

/// The serving workload's program: transitive closure over `par`.
pub const RULES: &str = "anc(X, Y) :- par(X, Y). anc(X, Y) :- par(X, Z), anc(Z, Y).";

/// The query every load client issues.
pub const QUERY: &str = "anc(n0, X)";

/// Chain EDB `par(n0,n1) … par(n{len-1},n{len})`.
pub fn chain_db(len: usize) -> Database {
    let mut db = Database::new();
    for i in 0..len {
        db.insert_atom(&parse_atom(&format!("par(n{i}, n{})", i + 1)).expect("ground"))
            .expect("insertable");
    }
    db
}

/// The fact generation `g` (1-based) appends to a `base`-length chain.
pub fn update_fact(base: usize, g: u64) -> String {
    let head = base as u64 + g;
    format!("par(n{}, n{head})", head - 1)
}

/// Expected answers per generation, computed by a fresh single-threaded
/// engine over the exact EDB of that generation and cached.
pub struct Oracle {
    base: usize,
    cache: Mutex<HashMap<u64, Vec<String>>>,
}

impl Oracle {
    /// An oracle for a chain of initial length `base`.
    pub fn new(base: usize) -> Oracle {
        Oracle {
            base,
            cache: Mutex::new(HashMap::new()),
        }
    }

    /// The exact (sorted, deduplicated) answer strings of [`QUERY`] at
    /// `generation`.
    pub fn answers(&self, generation: u64) -> Vec<String> {
        if let Some(hit) = self.cache.lock().expect("oracle lock").get(&generation) {
            return hit.clone();
        }
        let program = parse(RULES).expect("rules parse").program;
        let engine =
            Engine::new(program, chain_db(self.base + generation as usize)).expect("oracle engine");
        let r = engine
            .query(
                &parse_atom(QUERY).expect("query parses"),
                Strategy::Alexander,
            )
            .expect("oracle query");
        assert!(
            r.report.completion.is_complete(),
            "oracle must run unbudgeted"
        );
        let answers: Vec<String> = r.answers.iter().map(|a| a.to_string()).collect();
        self.cache
            .lock()
            .expect("oracle lock")
            .insert(generation, answers.clone());
        answers
    }
}

/// One epoch-tagged query reply.
#[derive(Clone, Debug)]
pub struct QueryReply {
    /// Whether the terminal line was `OK` (vs `ERR`).
    pub ok: bool,
    /// The epoch the server pinned for the query.
    pub generation: u64,
    /// `ANSWER` payloads, in server order (sorted).
    pub answers: Vec<String>,
    /// The raw terminal line, for diagnostics.
    pub terminal: String,
}

impl QueryReply {
    /// The server's `retry-after-ms` hint, when the reply was a shed
    /// (`ERR BUSY retry-after-ms=<n>`). `None` for every other terminal.
    pub fn retry_after_ms(&self) -> Option<u64> {
        busy_retry_after(&self.terminal)
    }
}

/// Parses the shed terminal `ERR BUSY retry-after-ms=<n>`; this is the wire
/// contract every well-behaved client backs off on.
pub fn busy_retry_after(terminal: &str) -> Option<u64> {
    terminal
        .strip_prefix("ERR BUSY retry-after-ms=")?
        .trim()
        .parse()
        .ok()
}

/// A seed for [`jitter`] without a `rand` dependency: the std hasher's
/// per-process randomness, forced odd so xorshift never sees zero.
pub fn rng_seed() -> u64 {
    RandomState::new().build_hasher().finish() | 1
}

/// Cheap xorshift64 step over a [`rng_seed`] state; returns a value in
/// `[0, bound)` (`bound` 0 yields 0).
pub fn jitter(state: &mut u64, bound: u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    if bound == 0 {
        0
    } else {
        x % bound
    }
}

/// A blocking line-protocol client over TCP.
pub struct Client {
    conn: BufReader<TcpStream>,
}

impl Client {
    /// Connects to a running server.
    pub fn connect(addr: &str) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        // Requests are tiny; never let Nagle hold one back.
        stream.set_nodelay(true)?;
        Ok(Client {
            conn: BufReader::new(stream),
        })
    }

    /// Sends one request line, collecting lines up to the `OK`/`ERR`
    /// terminal (inclusive).
    pub fn request(&mut self, line: &str) -> io::Result<Vec<String>> {
        writeln!(self.conn.get_mut(), "{line}")?;
        self.conn.get_mut().flush()?;
        let mut out = Vec::new();
        loop {
            let mut l = String::new();
            match self.conn.read_line(&mut l)? {
                0 => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "server closed mid-response",
                    ))
                }
                _ => {
                    let l = l.trim_end().to_string();
                    let terminal = l.starts_with("OK") || l.starts_with("ERR");
                    out.push(l);
                    if terminal {
                        return Ok(out);
                    }
                }
            }
        }
    }

    /// Issues `QUERY <atom>` and parses the epoch-tagged reply.
    pub fn query(&mut self, atom: &str) -> io::Result<QueryReply> {
        let mut lines = self.request(&format!("QUERY {atom}"))?;
        let terminal = lines.pop().unwrap_or_default();
        if !terminal.starts_with("OK") {
            return Ok(QueryReply {
                ok: false,
                generation: 0,
                answers: Vec::new(),
                terminal,
            });
        }
        // "OK <n> epoch <g> complete|partial: …"
        let generation = terminal
            .split_whitespace()
            .nth(3)
            .and_then(|g| g.parse().ok())
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("malformed query terminal: {terminal}"),
                )
            })?;
        let answers = lines
            .into_iter()
            .map(|l| l.strip_prefix("ANSWER ").map(str::to_string).ok_or(l))
            .collect::<Result<Vec<_>, _>>()
            .map_err(|l| {
                io::Error::new(io::ErrorKind::InvalidData, format!("unexpected line: {l}"))
            })?;
        Ok(QueryReply {
            ok: true,
            generation,
            answers,
            terminal,
        })
    }

    /// Issues `QUERY <atom>`, honouring the shed contract: an
    /// `ERR BUSY retry-after-ms=<n>` reply is retried after sleeping the
    /// hinted interval plus up to 50% jitter, at most `max_retries` times.
    /// Returns the final reply (which can still be a shed, left to the
    /// caller) and how many sheds were absorbed.
    pub fn query_retrying(
        &mut self,
        atom: &str,
        rng: &mut u64,
        max_retries: usize,
    ) -> io::Result<(QueryReply, usize)> {
        let mut sheds = 0usize;
        loop {
            let reply = self.query(atom)?;
            let Some(hint) = reply.retry_after_ms() else {
                return Ok((reply, sheds));
            };
            if sheds >= max_retries {
                return Ok((reply, sheds));
            }
            sheds += 1;
            // Jitter decorrelates a herd of shed clients so they do not all
            // return on the same tick and get shed again together.
            let wait = hint + jitter(rng, hint / 2 + 1);
            std::thread::sleep(Duration::from_millis(wait));
        }
    }

    /// Issues `COMMIT`; returns the published generation.
    pub fn commit(&mut self) -> io::Result<u64> {
        let lines = self.request("COMMIT")?;
        let terminal = lines.last().cloned().unwrap_or_default();
        // "OK epoch <g> committed <n>"
        terminal
            .strip_prefix("OK epoch ")
            .and_then(|r| r.split_whitespace().next())
            .and_then(|g| g.parse().ok())
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("malformed commit reply: {terminal}"),
                )
            })
    }
}

/// The `p`-th percentile (0..=100) of an unsorted latency sample, in ms.
/// Returns 0 for an empty sample.
pub fn percentile_ms(latencies: &mut [Duration], p: f64) -> f64 {
    if latencies.is_empty() {
        return 0.0;
    }
    latencies.sort_unstable();
    let rank = ((p / 100.0) * (latencies.len() - 1) as f64).round() as usize;
    latencies[rank.min(latencies.len() - 1)].as_secs_f64() * 1e3
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_answers_grow_with_the_chain() {
        let oracle = Oracle::new(3);
        assert_eq!(oracle.answers(0).len(), 3);
        assert_eq!(oracle.answers(2).len(), 5);
        // Cached result is identical.
        assert_eq!(oracle.answers(0), oracle.answers(0));
        assert_eq!(oracle.answers(0)[0], "anc(n0, n1)");
    }

    #[test]
    fn update_facts_extend_the_chain_contiguously() {
        assert_eq!(update_fact(3, 1), "par(n3, n4)");
        assert_eq!(update_fact(3, 2), "par(n4, n5)");
    }

    #[test]
    fn the_busy_terminal_yields_its_retry_hint() {
        assert_eq!(busy_retry_after("ERR BUSY retry-after-ms=25"), Some(25));
        assert_eq!(busy_retry_after("ERR BUSY retry-after-ms=0"), Some(0));
        assert_eq!(busy_retry_after("ERR BUSY"), None);
        assert_eq!(busy_retry_after("OK 3 epoch 1 complete"), None);
        assert_eq!(busy_retry_after("ERR DEGRADED writer poisoned"), None);
        let shed = QueryReply {
            ok: false,
            generation: 0,
            answers: Vec::new(),
            terminal: "ERR BUSY retry-after-ms=7".to_string(),
        };
        assert_eq!(shed.retry_after_ms(), Some(7));
    }

    #[test]
    fn jitter_stays_in_bounds_and_advances_state() {
        let mut s = rng_seed();
        assert_ne!(s, 0);
        for bound in [1u64, 2, 7, 1000] {
            for _ in 0..100 {
                assert!(jitter(&mut s, bound) < bound);
            }
        }
        assert_eq!(jitter(&mut s, 0), 0);
        let before = s;
        jitter(&mut s, 10);
        assert_ne!(s, before, "state must advance");
    }

    #[test]
    fn percentiles_handle_edges() {
        assert_eq!(percentile_ms(&mut [], 99.0), 0.0);
        let mut one = [Duration::from_millis(5)];
        assert_eq!(percentile_ms(&mut one, 50.0), 5.0);
        let mut many: Vec<Duration> = (1..=100).map(Duration::from_millis).collect();
        assert_eq!(percentile_ms(&mut many, 99.0), 99.0);
        assert_eq!(percentile_ms(&mut many, 0.0), 1.0);
        assert_eq!(percentile_ms(&mut many, 100.0), 100.0);
    }
}
