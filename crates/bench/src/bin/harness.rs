//! The experiment harness: regenerates every table and figure.
//!
//! Usage:
//!
//! ```text
//! harness               # run all experiments, print markdown
//! harness e3 e4         # run selected experiments
//! harness --list        # list experiment ids
//! harness --json        # print JSON instead of markdown
//! ```

use alexander_bench::experiments;
use std::io::Write;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let list = args.iter().any(|a| a == "--list");
    let ids: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();

    if list {
        for id in experiments::IDS {
            println!("{id}");
        }
        return;
    }

    let tables = if ids.is_empty() {
        eprintln!("running all {} experiments…", experiments::IDS.len());
        experiments::all()
    } else {
        let mut out = Vec::new();
        for id in ids {
            match experiments::by_id(id) {
                Some(t) => out.push(t),
                None => {
                    eprintln!("unknown experiment `{id}`; try --list");
                    std::process::exit(2);
                }
            }
        }
        out
    };

    let stdout = std::io::stdout();
    let mut lock = stdout.lock();
    if json {
        serde_json::to_writer_pretty(&mut lock, &tables).expect("write json");
        writeln!(lock).ok();
    } else {
        for t in &tables {
            writeln!(lock, "{t}").expect("write table");
        }
    }
}
