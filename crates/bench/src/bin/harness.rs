//! The experiment harness: regenerates every table and figure.
//!
//! Usage:
//!
//! ```text
//! harness                    # run all experiments, print markdown
//! harness e3 e4              # run selected experiments
//! harness --list             # list experiment ids
//! harness --json             # print JSON instead of markdown
//! harness f4 --out BENCH_F4.json   # also write the JSON tables to a file
//! ```
//!
//! By convention, perf-tracking runs are written to `BENCH_<id>.json` at the
//! repository root and committed, so the performance trajectory accumulates
//! across PRs.

use alexander_bench::{experiments, table};
use std::io::Write;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let list = args.iter().any(|a| a == "--list");
    let mut out_path: Option<String> = None;
    let mut ids: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--json" | "--list" => {}
            "--out" => {
                i += 1;
                match args.get(i) {
                    Some(p) => out_path = Some(p.clone()),
                    None => {
                        eprintln!("--out needs a file path");
                        std::process::exit(2);
                    }
                }
            }
            a if a.starts_with("--") => {
                eprintln!("unknown flag `{a}`");
                std::process::exit(2);
            }
            a => ids.push(a.to_string()),
        }
        i += 1;
    }

    if list {
        for id in experiments::IDS {
            println!("{id}");
        }
        return;
    }

    let tables = if ids.is_empty() {
        eprintln!("running all {} experiments…", experiments::IDS.len());
        experiments::all()
    } else {
        let mut out = Vec::new();
        for id in &ids {
            match experiments::by_id(id) {
                Some(t) => out.push(t),
                None => {
                    eprintln!("unknown experiment `{id}`; try --list");
                    std::process::exit(2);
                }
            }
        }
        out
    };

    if let Some(path) = &out_path {
        let payload = table::tables_to_json(&tables);
        std::fs::write(path, payload + "\n").unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        });
        eprintln!("wrote {path}");
    }

    let stdout = std::io::stdout();
    let mut lock = stdout.lock();
    if json {
        writeln!(lock, "{}", table::tables_to_json(&tables)).expect("write json");
    } else {
        for t in &tables {
            writeln!(lock, "{t}").expect("write table");
        }
    }
}
