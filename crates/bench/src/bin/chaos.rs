//! Chaos soak driver: kill/restart cycles against a self-hosted durable
//! query server under live oracle-verified traffic (CI's chaos-soak job).
//!
//! ```text
//! cargo run --release -p alexander-bench --features failpoints \
//!     --bin chaos -- --cycles 20 --clients 4
//! ```
//!
//! Exits non-zero on any invariant violation: an oracle mismatch, a reply
//! refused during a degraded window, a recovery off the committed-batch
//! boundary, or a cycle that never returns to `Healthy`. See
//! [`alexander_bench::chaos`] for the fault mix and the invariants.

use alexander_bench::chaos::{self, ChaosConfig};
use std::time::Duration;

const USAGE: &str = "usage: chaos [--cycles N] [--clients N] [--chain N] \
                     [--heal-deadline-ms N]";

fn parse_args() -> Result<ChaosConfig, String> {
    let mut config = ChaosConfig::default();
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let flag = argv[i].as_str();
        let value = |i: usize| -> Result<&str, String> {
            argv.get(i + 1)
                .map(String::as_str)
                .ok_or_else(|| format!("{flag} needs a value\n{USAGE}"))
        };
        match flag {
            "--cycles" => config.cycles = value(i)?.parse().map_err(|e| format!("{e}"))?,
            "--clients" => config.clients = value(i)?.parse().map_err(|e| format!("{e}"))?,
            "--chain" => config.base_chain = value(i)?.parse().map_err(|e| format!("{e}"))?,
            "--heal-deadline-ms" => {
                let ms: u64 = value(i)?.parse().map_err(|e| format!("{e}"))?;
                config.heal_deadline = Duration::from_millis(ms.max(1));
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
        i += 2;
    }
    if config.cycles == 0 || config.clients == 0 || config.base_chain == 0 {
        return Err("--cycles, --clients and --chain must be positive".to_string());
    }
    Ok(config)
}

fn main() {
    let config = match parse_args() {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    match chaos::run(&config) {
        Ok(r) => {
            println!(
                "chaos: cycles={} degraded={} degraded_on_wire={} \
                 checkpoints={} mixed={} commits_ok={} \
                 batches_survived_crash={} queries={} sheds={} heals={} \
                 final_chain={}",
                r.cycles,
                r.degraded_cycles,
                r.degraded_on_wire,
                r.checkpoint_cycles,
                r.mixed_cycles,
                r.commits_ok,
                r.batches_survived_crash,
                r.queries,
                r.sheds,
                r.heals,
                r.final_chain
            );
        }
        Err(violations) => {
            eprintln!("chaos: FAILED\n{violations}");
            std::process::exit(1);
        }
    }
}
