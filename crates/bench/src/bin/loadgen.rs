//! Server soak driver: hosts a query server in-process, drives mixed
//! query/update traffic over real TCP connections for a fixed duration, and
//! exits non-zero on any error, any oracle mismatch, or a busted p99 bar.
//!
//! ```text
//! cargo run --release -p alexander-bench --bin loadgen -- \
//!     --duration-s 30 --clients 4 --update-every-ms 50 --p99-ms 500
//! ```
//!
//! Every reader verifies each epoch-tagged reply bit-identically against a
//! single-threaded oracle for that generation (the chain workload makes the
//! expected answers a pure function of the epoch), so a clean soak is also
//! an end-to-end snapshot-isolation check over the wire. `--addr` points at
//! an externally hosted server instead of self-hosting — useful for manual
//! runs against `alexander serve`; the workload must be the loadgen chain.

use alexander_bench::loadgen::{
    chain_db, percentile_ms, rng_seed, update_fact, Client, Oracle, QUERY, RULES,
};
use alexander_parser::parse;
use alexander_server::{serve_tcp, QueryService, ServerConfig};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Args {
    duration_s: u64,
    clients: usize,
    chain: usize,
    update_every_ms: u64,
    p99_ms: f64,
    addr: Option<String>,
}

const USAGE: &str = "usage: loadgen [--duration-s N] [--clients N] [--chain N] \
                     [--update-every-ms N] [--p99-ms F] [--addr HOST:PORT]";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        duration_s: 10,
        clients: 4,
        chain: 128,
        update_every_ms: 25,
        p99_ms: 0.0,
        addr: None,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let flag = argv[i].as_str();
        let value = |i: usize| -> Result<&str, String> {
            argv.get(i + 1)
                .map(String::as_str)
                .ok_or_else(|| format!("{flag} needs a value\n{USAGE}"))
        };
        match flag {
            "--duration-s" => args.duration_s = value(i)?.parse().map_err(|e| format!("{e}"))?,
            "--clients" => args.clients = value(i)?.parse().map_err(|e| format!("{e}"))?,
            "--chain" => args.chain = value(i)?.parse().map_err(|e| format!("{e}"))?,
            "--update-every-ms" => {
                args.update_every_ms = value(i)?.parse().map_err(|e| format!("{e}"))?
            }
            "--p99-ms" => args.p99_ms = value(i)?.parse().map_err(|e| format!("{e}"))?,
            "--addr" => args.addr = Some(value(i)?.to_string()),
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
        i += 2;
    }
    if args.clients == 0 || args.duration_s == 0 {
        return Err("--clients and --duration-s must be positive".to_string());
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };

    // Self-host unless pointed at an external server. The handle must stay
    // alive for the whole soak; dropping it stops the accept loop.
    let mut _handle = None;
    let addr = match &args.addr {
        Some(a) => a.clone(),
        None => {
            let program = parse(RULES).expect("rules parse").program;
            let config = ServerConfig {
                max_concurrent: args.clients.max(1),
                tenant_cap: args.clients.max(1),
                ..ServerConfig::default()
            };
            let service = Arc::new(
                QueryService::open(program, chain_db(args.chain), None, config)
                    .expect("service opens"),
            );
            let handle = serve_tcp(service, "127.0.0.1:0").expect("bind");
            let addr = handle.tcp_addr().expect("bound").to_string();
            _handle = Some(handle);
            addr
        }
    };

    let oracle = Arc::new(Oracle::new(args.chain));
    let stop = Arc::new(AtomicBool::new(false));
    let errors = Arc::new(AtomicUsize::new(0));
    let mismatches = Arc::new(AtomicUsize::new(0));
    let sheds = Arc::new(AtomicUsize::new(0));
    let deadline = Instant::now() + Duration::from_secs(args.duration_s);
    let start = Instant::now();

    // Writer: one TCP session appending a chain edge per tick.
    let writer = {
        let addr = addr.clone();
        let stop = stop.clone();
        let errors = errors.clone();
        let base = args.chain;
        let every = Duration::from_millis(args.update_every_ms.max(1));
        std::thread::spawn(move || {
            let mut epoch = 0u64;
            let mut client = match Client::connect(&addr) {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("writer connect: {e}");
                    errors.fetch_add(1, Ordering::Relaxed);
                    return 0;
                }
            };
            while !stop.load(Ordering::Relaxed) {
                let next = epoch + 1;
                let step = client
                    .request(&format!("INSERT {}", update_fact(base, next)))
                    .and_then(|_| client.commit());
                match step {
                    Ok(g) if g == next => epoch = next,
                    Ok(g) => {
                        eprintln!("writer: expected epoch {next}, server said {g}");
                        errors.fetch_add(1, Ordering::Relaxed);
                        return epoch;
                    }
                    Err(e) => {
                        eprintln!("writer: {e}");
                        errors.fetch_add(1, Ordering::Relaxed);
                        return epoch;
                    }
                }
                std::thread::sleep(every);
            }
            epoch
        })
    };

    // Readers: query until the deadline, verifying every reply against the
    // oracle for its tagged epoch. Verification runs outside the latency
    // window — the measured interval is request-to-terminal only. A shed
    // (`ERR BUSY retry-after-ms=`) is backed off on and retried, not an
    // error; its latency (including the waits) still counts, so shedding
    // shows up in the tail rather than vanishing from the numbers.
    let readers: Vec<_> = (0..args.clients)
        .map(|c| {
            let addr = addr.clone();
            let oracle = oracle.clone();
            let errors = errors.clone();
            let mismatches = mismatches.clone();
            let sheds = sheds.clone();
            std::thread::spawn(move || {
                let mut latencies: Vec<Duration> = Vec::new();
                let mut rng = rng_seed().wrapping_add(c as u64);
                let mut client = match Client::connect(&addr) {
                    Ok(cl) => cl,
                    Err(e) => {
                        eprintln!("reader {c} connect: {e}");
                        errors.fetch_add(1, Ordering::Relaxed);
                        return (latencies, 0u64);
                    }
                };
                if let Err(e) = client.request(&format!("HELLO tenant{c}")) {
                    eprintln!("reader {c} hello: {e}");
                    errors.fetch_add(1, Ordering::Relaxed);
                    return (latencies, 0);
                }
                let mut max_epoch = 0u64;
                while Instant::now() < deadline {
                    let t0 = Instant::now();
                    match client.query_retrying(QUERY, &mut rng, 8) {
                        Ok((r, shed)) if r.ok => {
                            sheds.fetch_add(shed, Ordering::Relaxed);
                            latencies.push(t0.elapsed());
                            if r.answers != oracle.answers(r.generation) {
                                eprintln!(
                                    "reader {c}: epoch {} reply diverged from oracle",
                                    r.generation
                                );
                                mismatches.fetch_add(1, Ordering::Relaxed);
                            }
                            max_epoch = max_epoch.max(r.generation);
                        }
                        Ok((r, shed)) => {
                            sheds.fetch_add(shed, Ordering::Relaxed);
                            eprintln!("reader {c}: {}", r.terminal);
                            errors.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) => {
                            eprintln!("reader {c}: {e}");
                            errors.fetch_add(1, Ordering::Relaxed);
                            break;
                        }
                    }
                }
                (latencies, max_epoch)
            })
        })
        .collect();

    let mut latencies = Vec::new();
    let mut max_epoch = 0u64;
    for r in readers {
        let (lat, seen) = r.join().expect("reader thread");
        latencies.extend(lat);
        max_epoch = max_epoch.max(seen);
    }
    stop.store(true, Ordering::Relaxed);
    let epochs = writer.join().expect("writer thread");
    let wall = start.elapsed();

    let queries = latencies.len();
    let qps = queries as f64 / wall.as_secs_f64().max(1e-9);
    let p50 = percentile_ms(&mut latencies, 50.0);
    let p99 = percentile_ms(&mut latencies, 99.0);
    let errs = errors.load(Ordering::Relaxed);
    let mism = mismatches.load(Ordering::Relaxed);
    let shed = sheds.load(Ordering::Relaxed);
    println!(
        "loadgen: queries={queries} errors={errs} mismatches={mism} \
         sheds={shed} epochs={epochs} max_epoch_seen={max_epoch} qps={qps:.0} \
         p50_ms={p50:.3} p99_ms={p99:.3} wall_s={:.1}",
        wall.as_secs_f64()
    );

    let mut failed = false;
    if errs > 0 || mism > 0 {
        eprintln!("loadgen: FAILED ({errs} errors, {mism} oracle mismatches)");
        failed = true;
    }
    if queries == 0 {
        eprintln!("loadgen: FAILED (no query completed)");
        failed = true;
    }
    if args.p99_ms > 0.0 && p99 > args.p99_ms {
        eprintln!(
            "loadgen: FAILED (p99 {p99:.3} ms over the {:.3} ms bar)",
            args.p99_ms
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
