//! A counting global allocator for the allocations-per-fact columns of
//! experiment F6.
//!
//! Every binary and test that links this crate routes heap traffic through
//! [`CountingAlloc`]: one relaxed atomic increment per `alloc`/`realloc`
//! on top of the system allocator. The cost is a few nanoseconds per
//! allocation and applies equally to both sides of every before/after
//! comparison, so relative timings are unaffected.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// System allocator wrapper that counts allocation events (not bytes).
pub struct CountingAlloc;

// SAFETY: defers entirely to `System`; the counter is a relaxed atomic
// with no effect on allocation behaviour.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Allocation events since process start (monotone; diff around a region
/// of interest to count its allocations).
pub fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_advances_on_allocation() {
        let before = allocations();
        let v: Vec<u64> = (0..1024).collect();
        assert!(v.len() == 1024);
        assert!(allocations() > before);
    }
}
