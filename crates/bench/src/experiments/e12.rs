//! E12 (Table 12, ablation): round-level parallelism in naive evaluation.
//!
//! Within each naive round the rules are independent joins over a frozen
//! database, so they parallelise embarrassingly. This ablation measures how
//! much that buys on a many-rule workload — and shows the answers are
//! bit-identical to the sequential evaluator's.

use crate::table::{ms, timed, Table};
use alexander_eval::{eval_naive, eval_naive_parallel};
use alexander_ir::Program;
use alexander_parser::parse;
use alexander_workload as workload;

/// A workload with enough independent rules to share out: one chain EDB,
/// many derived views of it.
fn many_rules() -> Program {
    parse(
        "
        tc(X, Y) :- e(X, Y).
        tc(X, Y) :- e(X, Z), tc(Z, Y).
        inv(Y, X) :- e(X, Y).
        two(X, Y) :- e(X, Z), e(Z, Y).
        three(X, Y) :- two(X, Z), e(Z, Y).
        fan(X) :- e(X, Y), e(X, Z), neq(Y, Z).
        mid(Y) :- e(X, Y), e(Y, Z).
        endp(X) :- e(X, Y).
        endp(Y) :- e(X, Y).
        ",
    )
    .unwrap()
    .program
}

pub fn run() -> Table {
    let mut t = Table::new(
        "E12",
        "parallel ablation: naive evaluation with 1, 2, 4 worker threads",
        "Rules within a naive round are independent joins over a frozen \
         database; crossbeam's scoped threads split them across workers. \
         Fact counts must be identical across rows — the correctness half. \
         Wall-clock only improves when per-round join work dwarfs thread \
         spawn/merge overhead; on small workloads the sequential row wins, \
         and the table reports that honestly.",
        &["workload", "threads", "facts", "iterations", "time_ms"],
    );

    let program = many_rules();
    let edb = workload::random_graph("e", 60, 220, 13);

    let (seq, d) = timed(|| eval_naive(&program, &edb).expect("runs"));
    t.row(vec![
        "views over random(60, 220)".into(),
        "sequential".into(),
        (seq.db.total_tuples() - edb.total_tuples()).to_string(),
        seq.metrics.iterations.to_string(),
        ms(d),
    ]);
    for threads in [1usize, 2, 4] {
        let (par, d) = timed(|| eval_naive_parallel(&program, &edb, threads).expect("runs"));
        t.row(vec![
            "views over random(60, 220)".into(),
            threads.to_string(),
            (par.db.total_tuples() - edb.total_tuples()).to_string(),
            par.metrics.iterations.to_string(),
            ms(d),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fact_counts_are_identical_across_thread_counts() {
        let t = run();
        let facts: Vec<&str> = t.rows.iter().map(|r| r[2].as_str()).collect();
        assert!(facts.iter().all(|f| *f == facts[0]), "{facts:?}");
        assert_eq!(t.rows.len(), 4);
    }
}
