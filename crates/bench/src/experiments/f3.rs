//! F3 (Figure 3): negation workload scaling — conditional fixpoint cost on
//! win–move as the game graph grows.

use crate::retrograde;
use crate::table::{ms, timed, Table};
use alexander_eval::eval_conditional;
use alexander_ir::Predicate;
use alexander_workload as workload;

/// (nodes, edges) sweep points; edges = 2.5 × nodes keeps the game dense
/// enough to have interesting alternation.
pub const SIZES: [usize; 4] = [40, 80, 160, 320];

pub fn run() -> Table {
    run_with(&SIZES)
}

/// Parameterised sweep.
pub fn run_with(sizes: &[usize]) -> Table {
    let mut t = Table::new(
        "F3",
        "figure: win–move conditional-fixpoint cost vs game size (DAG and cyclic)",
        "Series: acyclic games (fully decided) and cyclic games (with a \
         drawn residue). The conditional-statement count tracks the number \
         of move edges; the reduction phase's share grows with the drawn \
         core. Every point is verified against retrograde analysis.",
        &[
            "nodes",
            "graph",
            "edges",
            "won",
            "drawn",
            "cond stmts",
            "time_ms",
            "verified",
        ],
    );

    let program = workload::win_move();
    for &n in sizes {
        for (kind, edb) in [
            ("dag", workload::random_dag("move", n, n * 5 / 2, n as u64)),
            (
                "cyclic",
                workload::random_graph("move", n, n * 5 / 2, n as u64),
            ),
        ] {
            let (res, d) = timed(|| eval_conditional(&program, &edb).expect("runs"));
            let truth = retrograde::solve(&edb, Predicate::new("move", 2));
            let wins: std::collections::BTreeSet<String> = res
                .db
                .atoms_of(Predicate::new("win", 1))
                .iter()
                .map(|a| a.terms[0].to_string())
                .collect();
            let wins_truth: std::collections::BTreeSet<String> =
                truth.won.iter().map(|c| c.to_string()).collect();
            let ok = wins == wins_truth && res.undefined.len() == truth.drawn.len();
            t.row(vec![
                n.to_string(),
                kind.to_string(),
                edb.len_of(Predicate::new("move", 2)).to_string(),
                wins.len().to_string(),
                res.undefined.len().to_string(),
                res.metrics.conditional_statements.to_string(),
                ms(d),
                if ok { "yes".into() } else { "NO".into() },
            ]);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_point_verifies() {
        let t = run_with(&[30, 60]);
        for row in &t.rows {
            assert_eq!(row[7], "yes", "{row:?}");
        }
    }

    #[test]
    fn dags_have_no_drawn_residue() {
        let t = run_with(&[30]);
        let dag_row = t.rows.iter().find(|r| r[1] == "dag").unwrap();
        assert_eq!(dag_row[4], "0");
    }
}
