//! E10 (Table 10, ablation): binding-pattern indexes on/off.

use crate::table::{ms, timed, Table};
use alexander_core::{Engine, Strategy};
use alexander_eval::{eval_seminaive_opts, EvalOptions};
use alexander_parser::parse_atom;
use alexander_workload as workload;

fn case(name: &str, n: usize, use_indexes: bool) -> Vec<String> {
    let edb = workload::chain("par", n);
    let program = workload::ancestor();
    let (res, elapsed) = timed(|| {
        eval_seminaive_opts(
            &program,
            &edb,
            EvalOptions {
                use_indexes,
                ..EvalOptions::default()
            },
        )
        .expect("runs")
    });
    vec![
        name.to_string(),
        if use_indexes {
            "on".into()
        } else {
            "off".into()
        },
        res.metrics.probes.to_string(),
        res.metrics.tuples_considered.to_string(),
        res.metrics.new_facts.to_string(),
        ms(elapsed),
    ]
}

pub fn run() -> Table {
    let mut t = Table::new(
        "E10",
        "storage ablation: hash indexes on binding patterns, on vs off",
        "With indexes off, every probe degenerates to a filtered scan of the \
         whole relation: `considered` explodes quadratically while `probes` \
         and the answers stay identical. This is the storage layer's \
         contribution to every other table.",
        &[
            "workload",
            "indexes",
            "probes",
            "considered",
            "new facts",
            "time_ms",
        ],
    );
    for n in [100usize, 200] {
        let name = format!("tc chain({n}), seminaive");
        t.row(case(&name, n, true));
        t.row(case(&name, n, false));
    }

    // The same toggle seen through a full strategy comparison entry point.
    let engine = Engine::new(workload::ancestor(), workload::chain("par", 100)).unwrap();
    let q = parse_atom("anc(n0, X)").unwrap();
    let (r, d) = timed(|| engine.query(&q, Strategy::Alexander).unwrap());
    t.row(vec![
        "alexander chain(100) (indexed, reference)".into(),
        "on".into(),
        r.report.eval.map(|m| m.probes).unwrap_or(0).to_string(),
        r.report
            .eval
            .map(|m| m.tuples_considered)
            .unwrap_or(0)
            .to_string(),
        r.report.facts_materialised.to_string(),
        ms(d),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scans_consider_many_more_tuples() {
        let t = run();
        let on: u64 = t.rows[0][3].parse().unwrap();
        let off: u64 = t.rows[1][3].parse().unwrap();
        assert!(
            off > on * 5,
            "indexes should prune candidates: {on} vs {off}"
        );
        // Same derived facts either way.
        assert_eq!(t.rows[0][4], t.rows[1][4]);
    }
}
