//! E2 (Table 2): every strategy on the bound same-generation query over the
//! classical tree EDB.

use super::{strategy_row, STRATEGY_COLUMNS};
use crate::table::Table;
use alexander_core::{Engine, Strategy};
use alexander_ir::{Atom, Symbol, Term};
use alexander_workload as workload;

/// Tree depth used by the headline table.
pub const DEPTH: usize = 7;

pub fn run() -> Table {
    run_sized(DEPTH)
}

/// Parameterised variant.
pub fn run_sized(depth: usize) -> Table {
    let (edb, seed) = workload::sg_tree(depth);
    let engine = Engine::new(workload::same_generation(), edb).expect("valid");
    let query = Atom {
        pred: Symbol::intern("sg"),
        terms: vec![Term::Const(seed), Term::var("Y")],
    };

    let mut t = Table::new(
        "E2",
        &format!("same-generation(seed, Y) on a depth-{depth} binary tree"),
        "The nonlinear recursion the magic-sets literature is built around. \
         Full bottom-up computes same-generation pairs for every level; the \
         goal-directed strategies only explore generations reachable from \
         the seed. The crossover with E5 shows this reverses on free \
         queries.",
        &STRATEGY_COLUMNS,
    );
    for s in Strategy::ALL {
        t.row(strategy_row(&engine, &query, s));
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategies_agree_on_answers() {
        let t = run_sized(4);
        let answers: Vec<&str> = t.rows.iter().map(|r| r[1].as_str()).collect();
        assert!(answers.iter().all(|a| *a == answers[0]), "{answers:?}");
        let n: usize = answers[0].parse().unwrap();
        assert!(n > 0, "seed must have same-generation partners");
    }
}
