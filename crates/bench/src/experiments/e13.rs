//! E13 (Table 13): the four-way power comparison — magic sets, Alexander
//! templates, OLDT and QSQR issue exactly the same subqueries.
//!
//! The demand set (which subqueries get asked) is *the* measure of a
//! goal-directed method's power: equal demand sets mean equal relevant
//! work. This table puts all four methods' demand and answer counts side by
//! side on the same workloads; they must agree column-for-column.

use crate::table::Table;
use alexander_eval::eval_seminaive;
use alexander_ir::{Atom, Program, Symbol, Term};
use alexander_parser::parse_atom;
use alexander_storage::Database;
use alexander_topdown::{oldt_query, qsqr_query};
use alexander_transform::{alexander, magic_sets, SipOptions};
use alexander_workload as workload;

fn row(name: &str, program: &Program, edb: &Database, query: &Atom) -> Vec<String> {
    let opts = SipOptions::default();
    let m = magic_sets(program, query, opts).unwrap();
    let rm = eval_seminaive(&m.program, edb).unwrap();
    let a = alexander(program, query, opts).unwrap();
    let ra = eval_seminaive(&a.program, edb).unwrap();
    let ol = oldt_query(program, edb, query).unwrap();
    let qs = qsqr_query(program, edb, query).unwrap();

    let magic_demand: u64 = rm
        .db
        .predicates()
        .iter()
        .filter(|p| p.name.as_str().starts_with("magic_"))
        .map(|p| rm.db.len_of(*p) as u64)
        .sum();
    let alex_demand: u64 = ra
        .db
        .predicates()
        .iter()
        .filter(|p| p.name.as_str().starts_with("call_"))
        .map(|p| ra.db.len_of(*p) as u64)
        .sum();
    let agree = magic_demand == alex_demand
        && alex_demand == ol.metrics.calls
        && ol.metrics.calls == qs.metrics.calls;

    vec![
        name.to_string(),
        magic_demand.to_string(),
        alex_demand.to_string(),
        ol.metrics.calls.to_string(),
        qs.metrics.calls.to_string(),
        qs.restarts.to_string(),
        ol.metrics.resolution_steps.to_string(),
        qs.metrics.resolution_steps.to_string(),
        if agree { "yes".into() } else { "NO".into() },
    ]
}

pub fn run() -> Table {
    let mut t = Table::new(
        "E13",
        "four-way demand agreement: magic = alexander = oldt = qsqr subquery counts",
        "All four goal-directed methods, driven by the same SIP, issue \
         exactly the same set of subqueries on every workload — the \
         equal-power statement across the whole 1989 comparison field. \
         `restarts` shows QSQR's completion mechanism (incremental restarts \
         instead of suspension; its step counts stay within a small factor \
         of OLDT's, its demand identical).",
        &[
            "workload",
            "magic demand",
            "alexander calls",
            "oldt calls",
            "qsqr inputs",
            "qsqr restarts",
            "oldt steps",
            "qsqr steps",
            "agree",
        ],
    );

    t.row(row(
        "ancestor chain(60), bf",
        &workload::ancestor(),
        &workload::chain("par", 60),
        &parse_atom("anc(n0, X)").unwrap(),
    ));
    let (edb, seed) = workload::sg_tree(6);
    t.row(row(
        "sg tree(6), bf",
        &workload::same_generation(),
        &edb,
        &Atom {
            pred: Symbol::intern("sg"),
            terms: vec![Term::Const(seed), Term::var("Y")],
        },
    ));
    t.row(row(
        "tc grid(6), bf",
        &workload::transitive_closure(),
        &workload::grid("e", 6),
        &parse_atom("tc(n0, X)").unwrap(),
    ));
    t.row(row(
        "tc cycle(12), bf",
        &workload::transitive_closure(),
        &workload::cycle("e", 12),
        &parse_atom("tc(n0, X)").unwrap(),
    ));
    t.row(row(
        "tc random(30, 90, seed 17), bf",
        &workload::transitive_closure(),
        &workload::random_graph("e", 30, 90, 17),
        &parse_atom("tc(n0, X)").unwrap(),
    ));
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_four_methods_agree_on_every_row() {
        let t = run();
        for row in &t.rows {
            assert_eq!(row[8], "yes", "{row:?}");
        }
    }

    #[test]
    fn qsqr_steps_within_10x_of_oldt_on_every_row() {
        let t = run();
        for row in &t.rows {
            let ol: u64 = row[6].parse().unwrap();
            let qs: u64 = row[7].parse().unwrap();
            assert!(
                qs <= ol * 10,
                "{}: qsqr {qs} vs oldt {ol}: over 10x",
                row[0]
            );
        }
    }
}
