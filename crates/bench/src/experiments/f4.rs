//! F4 (Figure 4): parallel semi-naive speedup vs worker-thread count.
//!
//! Sweeps `EvalOptions::threads` over chain, tree and crossover workloads
//! for the Alexander and supplementary-magic rewritings (plus the plain
//! semi-naive full closure, whose chain case materialises ~100k facts at
//! the default size). Every point re-checks the exactness invariant: the
//! parallel rounds return the same answer count, materialised-fact count
//! and inference counters as the single-threaded baseline.

use crate::table::{ms, timed, Table};
use alexander_core::{Engine, Strategy};
use alexander_parser::parse_atom;
use alexander_workload as workload;

/// Thread counts swept (series of the figure).
pub const THREADS: [usize; 4] = [1, 2, 4, 8];

pub fn run() -> Table {
    // chain(450) puts the semi-naive full closure at 450·451/2 ≈ 101k facts.
    run_with(450, 9, 250)
}

/// Parameterised sweep (tests use small sizes).
pub fn run_with(chain_n: usize, tree_depth: usize, crossover_n: usize) -> Table {
    let mut t = Table::new(
        "F4",
        "figure: parallel semi-naive speedup vs threads (chain / tree / crossover)",
        "Each fixpoint round freezes (total, delta), fans the delta-rewriting \
         variants over scoped workers, and merges worker buffers single- \
         threaded; answers and all inference counters are identical to the \
         sequential run at every thread count (asserted per point). Speedup \
         is wall-clock time at 1 thread over time at N threads; facts/sec is \
         materialised facts over wall-clock time. On a single-core host the \
         sweep degenerates to measuring fan-out overhead (speedup ≤ 1); \
         multi-core hosts should see the chain/crossover cases scale until \
         the per-round merge dominates.",
        &[
            "workload",
            "strategy",
            "threads",
            "answers",
            "facts",
            "speedup",
            "facts_per_sec",
            "time_ms",
        ],
    );

    let chain = workload::chain("par", chain_n);
    let (tree, _) = workload::tree("par", 2, tree_depth);
    let crossover = workload::chain("par", crossover_n);
    let cases: Vec<(String, &alexander_storage::Database, &str, Strategy)> = vec![
        (
            format!("chain({chain_n})"),
            &chain,
            "anc(n0, X)",
            Strategy::Alexander,
        ),
        (
            format!("chain({chain_n})"),
            &chain,
            "anc(n0, X)",
            Strategy::SupplementaryMagic,
        ),
        (
            format!("chain({chain_n})"),
            &chain,
            "anc(n0, X)",
            Strategy::SemiNaive,
        ),
        (
            format!("tree(2,{tree_depth})"),
            &tree,
            "anc(n0, X)",
            Strategy::Alexander,
        ),
        (
            format!("tree(2,{tree_depth})"),
            &tree,
            "anc(n0, X)",
            Strategy::SupplementaryMagic,
        ),
        (
            format!("crossover({crossover_n})"),
            &crossover,
            "anc(X, Y)",
            Strategy::Alexander,
        ),
        (
            format!("crossover({crossover_n})"),
            &crossover,
            "anc(X, Y)",
            Strategy::SemiNaive,
        ),
    ];

    for (name, edb, query, strategy) in cases {
        let q = parse_atom(query).unwrap();
        let mut baseline: Option<(std::time::Duration, alexander_core::Report)> = None;
        for threads in THREADS {
            let engine = Engine::new(workload::ancestor(), (*edb).clone())
                .unwrap()
                .with_threads(threads);
            let (r, d) = timed(|| engine.query(&q, strategy).unwrap());
            if let Some((_, base)) = &baseline {
                // Exactness invariant: parallelism never changes the result.
                assert_eq!(base.eval, r.report.eval, "{name}/{strategy} @ {threads}");
                assert_eq!(
                    base.facts_materialised, r.report.facts_materialised,
                    "{name}/{strategy} @ {threads}"
                );
            }
            let t1 = baseline.as_ref().map(|(d1, _)| *d1).unwrap_or_else(|| {
                baseline = Some((d, r.report.clone()));
                d
            });
            let speedup = t1.as_secs_f64() / d.as_secs_f64().max(1e-9);
            let fps = r.report.facts_materialised as f64 / d.as_secs_f64().max(1e-9);
            t.row(vec![
                name.clone(),
                strategy.name().to_string(),
                threads.to_string(),
                r.answers.len().to_string(),
                r.report.facts_materialised.to_string(),
                format!("{speedup:.2}"),
                format!("{fps:.0}"),
                ms(d),
            ]);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_thread_count_reports_identical_facts() {
        let t = run_with(40, 4, 30);
        // Rows come in blocks of THREADS.len() per (workload, strategy); the
        // run itself asserts metric equality, so here just check the facts
        // column is constant within each block and speedup at 1 thread is 1.
        for block in t.rows.chunks(THREADS.len()) {
            let facts = &block[0][4];
            for row in block {
                assert_eq!(&row[4], facts, "{row:?}");
            }
            assert_eq!(block[0][2], "1");
            assert_eq!(block[0][5], "1.00");
        }
    }
}
