//! F1 (Figure 1): runtime and facts vs chain length, bound ancestor query.
//!
//! The "figure" is emitted as a table with one row per (size, strategy)
//! point; each strategy is one series.

use crate::table::{ms, timed, Table};
use alexander_core::{Engine, Strategy};
use alexander_parser::parse_atom;
use alexander_workload as workload;

/// The sweep sizes.
pub const SIZES: [usize; 5] = [50, 100, 200, 400, 800];

/// The strategies plotted.
pub const SERIES: [Strategy; 5] = [
    Strategy::SemiNaive,
    Strategy::Magic,
    Strategy::SupplementaryMagic,
    Strategy::Alexander,
    Strategy::Oldt,
];

pub fn run() -> Table {
    run_with(&SIZES)
}

/// Parameterised sweep (tests use small sizes).
pub fn run_with(sizes: &[usize]) -> Table {
    let mut t = Table::new(
        "F1",
        "figure: ancestor(n0, X) vs chain length n (series = strategy)",
        "Querying from the chain's head is the rewritings' worst case: every \
         node is demanded, so all strategies are O(n²) in facts and the \
         goal-directed series pay only constant-factor overheads (compare \
         E1, where the query starts mid-chain and the gap is 5x). Expected \
         shape: all series quadratic, tightly clustered, OLDT cheapest by a \
         small margin.",
        &["n", "strategy", "answers", "facts", "inferences", "time_ms"],
    );

    for &n in sizes {
        let engine = Engine::new(workload::ancestor(), workload::chain("par", n)).unwrap();
        let q = parse_atom("anc(n0, X)").unwrap();
        for s in SERIES {
            let (r, d) = timed(|| engine.query(&q, s).unwrap());
            let inferences = r
                .report
                .eval
                .map(|m| m.firings)
                .or(r.report.oldt.map(|m| m.resolution_steps))
                .unwrap_or(0);
            t.row(vec![
                n.to_string(),
                s.name().to_string(),
                r.answers.len().to_string(),
                r.report.facts_materialised.to_string(),
                inferences.to_string(),
                ms(d),
            ]);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn answers_scale_linearly_and_agree() {
        let sizes = [20usize, 40];
        let t = run_with(&sizes);
        for n in sizes {
            let rows: Vec<_> = t.rows.iter().filter(|r| r[0] == n.to_string()).collect();
            assert_eq!(rows.len(), SERIES.len());
            for r in &rows {
                assert_eq!(r[2], n.to_string(), "{r:?}");
            }
        }
    }
}
