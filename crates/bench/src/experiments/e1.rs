//! E1 (Table 1): every strategy on the bound ancestor query over a chain.

use super::{strategy_row, STRATEGY_COLUMNS};
use crate::table::Table;
use alexander_core::{Engine, Strategy};
use alexander_parser::parse_atom;
use alexander_workload as workload;

/// Chain length used by the headline table.
pub const CHAIN: usize = 200;

pub fn run() -> Table {
    run_sized(CHAIN)
}

/// Parameterised variant (used by the criterion benches and tests).
pub fn run_sized(n: usize) -> Table {
    let mut edb = workload::chain("par", n);
    // An irrelevant island the goal-directed strategies must not touch.
    edb.merge(&{
        let mut d = alexander_storage::Database::new();
        for i in 0..n / 2 {
            d.insert(
                alexander_ir::Predicate::new("par", 2),
                alexander_storage::Tuple::new(vec![
                    alexander_ir::Const::sym(&format!("m{i}")),
                    alexander_ir::Const::sym(&format!("m{}", i + 1)),
                ]),
            );
        }
        d
    });
    let engine = Engine::new(workload::ancestor(), edb).expect("valid");
    let query = parse_atom(&format!("anc(n{}, X)", n / 2)).unwrap();

    let mut t = Table::new(
        "E1",
        &format!(
            "ancestor(n{}, X) on a {n}-edge chain plus an irrelevant {}-edge island",
            n / 2,
            n / 2
        ),
        "Bound-argument query. The goal-directed strategies (magic, supmagic, \
         alexander, oldt) touch only the suffix of the chain reachable from \
         the query constant; plain bottom-up materialises the full closure \
         of both components. Who wins: the rewritings, by an order of \
         magnitude in facts.",
        &STRATEGY_COLUMNS,
    );
    for s in Strategy::ALL {
        t.row(strategy_row(&engine, &query, s));
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_all_strategies_and_consistent_answers() {
        let t = run_sized(40);
        assert_eq!(t.rows.len(), Strategy::ALL.len());
        // All strategies report the same number of answers (column 1).
        let answers: Vec<&str> = t.rows.iter().map(|r| r[1].as_str()).collect();
        assert!(answers.iter().all(|a| *a == answers[0]), "{answers:?}");
        assert_eq!(answers[0], "20"); // chain suffix from n20 to n40
    }

    #[test]
    fn qsqr_inferences_within_10x_of_oldt() {
        // The headline table: QSQR's incremental restarts must keep its
        // step count in the same decade as OLDT's suspension machinery.
        let t = run_sized(CHAIN);
        let inferences = |name: &str| -> u64 {
            t.rows.iter().find(|r| r[0] == name).unwrap()[4]
                .parse()
                .unwrap()
        };
        let (qs, ol) = (inferences("qsqr"), inferences("oldt"));
        assert!(qs <= ol * 10, "qsqr {qs} vs oldt {ol}: over 10x");
    }

    #[test]
    fn goal_directed_materialises_fewer_facts() {
        let t = run_sized(40);
        let facts = |name: &str| -> u64 {
            t.rows.iter().find(|r| r[0] == name).unwrap()[2]
                .parse()
                .unwrap()
        };
        assert!(facts("alexander") < facts("seminaive"));
        assert!(facts("magic") < facts("seminaive"));
    }
}
