//! E6 (Table 6): negation — the conditional fixpoint on win–move, verified
//! against retrograde game analysis.

use crate::retrograde;
use crate::table::{ms, timed, Table};
use alexander_eval::eval_conditional;
use alexander_ir::Predicate;
use alexander_storage::Database;
use alexander_workload as workload;

fn game_row(name: &str, edb: &Database) -> Vec<String> {
    let program = workload::win_move();
    let (res, elapsed) = timed(|| eval_conditional(&program, edb).expect("conditional runs"));
    let truth = retrograde::solve(edb, Predicate::new("move", 2));

    let win = Predicate::new("win", 1);
    let wins_found: std::collections::BTreeSet<String> = res
        .db
        .atoms_of(win)
        .iter()
        .map(|a| a.terms[0].to_string())
        .collect();
    let wins_truth: std::collections::BTreeSet<String> =
        truth.won.iter().map(|c| c.to_string()).collect();
    let undef_found = res.undefined.len();
    let verified = wins_found == wins_truth && undef_found == truth.drawn.len();

    vec![
        name.to_string(),
        edb.len_of(Predicate::new("move", 2)).to_string(),
        wins_found.len().to_string(),
        truth.lost.len().to_string(),
        undef_found.to_string(),
        res.metrics.conditional_statements.to_string(),
        ms(elapsed),
        if verified { "yes".into() } else { "NO".into() },
    ]
}

pub fn run() -> Table {
    let mut t = Table::new(
        "E6",
        "win–move under the conditional fixpoint, checked against retrograde analysis",
        "win–move is not stratified (negation through its own recursion), so \
         the stratified evaluator and OLDT reject it; the conditional \
         fixpoint decides it. On DAGs everything is decided (drawn = 0); on \
         cyclic graphs the surviving conditional statements are exactly the \
         game's draws. `verified` compares won/drawn sets against a direct \
         retrograde solver.",
        &[
            "move graph",
            "edges",
            "won",
            "lost",
            "drawn",
            "cond stmts",
            "time_ms",
            "verified",
        ],
    );

    t.row(game_row("chain(20)", &workload::chain("move", 20)));
    t.row(game_row(
        "dag(50, 120, seed 5)",
        &workload::random_dag("move", 50, 120, 5),
    ));
    t.row(game_row(
        "dag(100, 250, seed 6)",
        &workload::random_dag("move", 100, 250, 6),
    ));
    t.row(game_row("cycle(12)", &workload::cycle("move", 12)));
    t.row(game_row(
        "random(40, 90, seed 7)",
        &workload::random_graph("move", 40, 90, 7),
    ));
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_row_verifies_against_retrograde_analysis() {
        let t = run();
        for row in &t.rows {
            assert_eq!(row[7], "yes", "{row:?}");
        }
    }

    #[test]
    fn dags_are_fully_decided_and_cycles_are_not() {
        let t = run();
        let drawn = |name: &str| -> u64 {
            t.rows.iter().find(|r| r[0].starts_with(name)).unwrap()[4]
                .parse()
                .unwrap()
        };
        assert_eq!(drawn("chain"), 0);
        assert_eq!(drawn("dag(50"), 0);
        assert!(drawn("cycle") > 0);
    }
}
