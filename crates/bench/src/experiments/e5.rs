//! E5 (Table 5): the crossover — on all-free queries the rewritings' demand
//! machinery is pure overhead and plain semi-naive wins.

use super::{strategy_row, STRATEGY_COLUMNS};
use crate::table::Table;
use alexander_core::{Engine, Strategy};
use alexander_parser::parse_atom;
use alexander_workload as workload;

pub fn run() -> Table {
    run_sized(150)
}

/// Parameterised variant.
pub fn run_sized(n: usize) -> Table {
    let edb = workload::chain("par", n);
    let engine = Engine::new(workload::ancestor(), edb).expect("valid");
    let query = parse_atom("anc(X, Y)").unwrap();

    let mut t = Table::new(
        "E5",
        &format!("crossover: all-free ancestor(X, Y) on a {n}-edge chain"),
        "With no bindings to push, the rewritings compute the same full \
         closure as semi-naive *plus* the demand/continuation bookkeeping: \
         strictly more facts and more time. Where the crossover falls: as \
         soon as the query binds nothing (or selects most of the database), \
         plain semi-naive is the right strategy — Ullman's \"bottom-up beats \
         top-down\" side of the session this paper appeared in.",
        &STRATEGY_COLUMNS,
    );
    for s in [
        Strategy::SemiNaive,
        Strategy::Magic,
        Strategy::SupplementaryMagic,
        Strategy::Alexander,
        Strategy::Oldt,
    ] {
        t.row(strategy_row(&engine, &query, s));
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rewritings_materialise_more_facts_on_free_queries() {
        let t = run_sized(60);
        let facts = |name: &str| -> u64 {
            t.rows.iter().find(|r| r[0] == name).unwrap()[2]
                .parse()
                .unwrap()
        };
        assert!(facts("magic") > facts("seminaive"));
        assert!(facts("alexander") > facts("seminaive"));
    }

    #[test]
    fn answers_agree() {
        let t = run_sized(60);
        let answers: Vec<&str> = t.rows.iter().map(|r| r[1].as_str()).collect();
        assert!(answers.iter().all(|a| *a == answers[0]), "{answers:?}");
        assert_eq!(answers[0], (60 * 61 / 2).to_string());
    }
}
