//! E8 (Table 8): the magic rewriting destroys stratification but preserves
//! constructive consistency — the conditional fixpoint evaluates the
//! rewritten program to the same answers as stratified evaluation of the
//! original (Bry, Prop. 5.8).
//!
//! The source program puts the negation *inside* the recursion:
//!
//! ```text
//! s(X) :- b1(X).
//! s(Y) :- s(X), e(X, Y), !t(Y).
//! t(X) :- b2(X).
//! t(Y) :- t(X), f(X, Y).
//! ```
//!
//! `s` negates `t` and `t` never mentions `s`, so the source is stratified.
//! But under a bound query the magic rewriting derives the demand for the
//! negated subquery from the recursion's own prefix —
//! `magic_t_b(Y) :- magic_s_b(Y), e(X, Y), s_b(X)` — so `t_b` now depends
//! positively on `s_b` while `s_b` depends negatively on `t_b`: a negative
//! cycle. Stratified evaluation of the rewritten program is impossible; the
//! conditional fixpoint still decides it, and must agree with the direct
//! evaluation of the source.

use crate::table::{ms, timed, Table};
use alexander_eval::{eval_conditional, eval_stratified};
use alexander_ir::analysis::stratify;
use alexander_ir::{Predicate, Program};
use alexander_parser::{parse, parse_atom};
use alexander_storage::{Database, Tuple};
use alexander_transform::{magic_sets, query_answers, SipOptions};
use alexander_workload::node;

fn source_program() -> Program {
    parse(
        "
        s(X) :- b1(X).
        s(Y) :- s(X), e(X, Y), !t(Y).
        t(X) :- b2(X).
        t(Y) :- t(X), f(X, Y).
        ",
    )
    .unwrap()
    .program
}

/// EDB: an e-chain of `n` nodes seeded at n0, with every node divisible by
/// `block_every` in `t` (via b2, extended along a short f-chain).
fn edb(n: usize, block_every: usize) -> Database {
    let mut db = alexander_workload::chain("e", n);
    db.insert(Predicate::new("b1", 1), Tuple::new(vec![node(0)]));
    for i in (block_every..=n).step_by(block_every) {
        db.insert(Predicate::new("b2", 1), Tuple::new(vec![node(i)]));
    }
    // A few f edges so t's recursion is exercised too.
    db.insert(
        Predicate::new("f", 2),
        Tuple::new(vec![node(block_every), node(block_every + 1)]),
    );
    db
}

fn case(name: &str, db: &Database, target: usize) -> Vec<String> {
    let program = source_program();
    let query = parse_atom(&format!("s(n{target})")).unwrap();

    let (direct, t_direct) = timed(|| eval_stratified(&program, db).expect("source is stratified"));
    let direct_yes = direct.db.contains_atom(&query);

    let rw = magic_sets(&program, &query, SipOptions::default()).unwrap();
    let rewritten_stratified = stratify(&rw.program).is_ok();
    let (cond, t_cond) = timed(|| eval_conditional(&rw.program, db).expect("conditional runs"));
    let rewritten_yes = !query_answers(&cond.db, &rw.query).is_empty();

    vec![
        name.to_string(),
        format!("s(n{target})"),
        yn(rewritten_stratified),
        yn(direct_yes),
        yn(rewritten_yes),
        yn(direct_yes == rewritten_yes && cond.is_total()),
        ms(t_direct),
        ms(t_cond),
    ]
}

fn yn(b: bool) -> String {
    if b {
        "yes".into()
    } else {
        "no".into()
    }
}

pub fn run() -> Table {
    let mut t = Table::new(
        "E8",
        "magic on a stratified program: rewritten program unstratified, conditional fixpoint still exact",
        "The source (recursion through a negated subgoal) is stratified; its \
         magic rewriting is not (`rewritten stratified` = no) because the \
         demand for the negated t-subquery is derived from the s-recursion's \
         own prefix. The conditional fixpoint evaluates the rewritten \
         program anyway and `agree` must read yes: the rewriting preserves \
         constructive consistency (Bry Prop. 5.8) even though it destroys \
         stratification.",
        &[
            "instance",
            "query",
            "rewritten stratified",
            "direct answer",
            "rewritten answer",
            "agree",
            "direct_ms",
            "rewritten_ms",
        ],
    );

    let small = edb(30, 7);
    // n5 reachable (before the first block at n7); n10 is past it — blocked.
    t.row(case("chain(30), block every 7", &small, 5));
    t.row(case("chain(30), block every 7", &small, 10));
    t.row(case("chain(30), block every 7", &small, 7)); // exactly a blocked node
    let large = edb(120, 11);
    t.row(case("chain(120), block every 11", &large, 10));
    t.row(case("chain(120), block every 11", &large, 60));
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn source_is_stratified_but_rewriting_is_not() {
        let program = source_program();
        assert!(stratify(&program).is_ok());
        let q = parse_atom("s(n5)").unwrap();
        let rw = magic_sets(&program, &q, SipOptions::default()).unwrap();
        assert!(
            stratify(&rw.program).is_err(),
            "magic must break stratification here:\n{}",
            rw.program
        );
    }

    #[test]
    fn rewriting_agrees_on_every_row() {
        let t = run();
        for row in &t.rows {
            assert_eq!(row[2], "no", "rewritten must be unstratified: {row:?}");
            assert_eq!(row[5], "yes", "answers must agree: {row:?}");
        }
    }

    #[test]
    fn semantics_sanity_check() {
        // On chain(30) blocked at multiples of 7: s holds up to n6 and stops.
        let db = edb(30, 7);
        let direct = eval_stratified(&source_program(), &db).unwrap();
        let s = Predicate::new("s", 1);
        let names: std::collections::BTreeSet<String> = direct
            .db
            .atoms_of(s)
            .iter()
            .map(|a| a.terms[0].to_string())
            .collect();
        assert!(names.contains("n6"));
        assert!(!names.contains("n7"), "{names:?}");
        assert!(!names.contains("n10"));
    }
}
