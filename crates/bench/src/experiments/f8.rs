//! F8 (figure): durability costs — snapshot size and write/load time, and
//! cold-start recovery (snapshot + WAL replay + re-materialisation) vs EDB
//! size.
//!
//! Two kinds of rows:
//!
//! * `reach(nodes,edges)` — single-source reachability over a random graph.
//!   The run commits the bulk of the edges up front, checkpoints, appends a
//!   slice of the edges as committed WAL batches, then recovers from disk
//!   and times the full cold start (read snapshot → re-materialise →
//!   replay). Recovery re-derives the IDB from scratch, so `recover_ms`
//!   bounds the restart latency a durable deployment would see.
//! * `edbload(n)` — a facts-only database (no rules): isolates the snapshot
//!   codec itself. Its `load_facts_per_sec` (best-of-reps decode throughput)
//!   is the number the CI perf gate tracks against the committed
//!   `BENCH_F8.json` (20% band, best-of-2 harness runs, like F6/F7).
//!
//! Snapshot files carry a string table plus tagged cells (9 bytes per
//! 2-symbol row + shared interned names), so `snap_kb` also documents the
//! on-disk footprint per fact.

use crate::table::{ms, timed, Table};
use alexander_durable::{read_snapshot, write_snapshot, DurableEngine};
use alexander_ir::{Const, Predicate, Program, Symbol};
use alexander_parser::parse;
use alexander_storage::{row_atom, Database, Tuple};
use alexander_workload as workload;
use std::path::PathBuf;
use std::time::Duration;

/// Decode repetitions per row; the minimum is reported.
const REPS: usize = 3;

pub fn run() -> Table {
    run_with(
        &[(2_000, 6_000), (8_000, 24_000), (20_000, 60_000)],
        200_000,
        REPS,
    )
}

/// Parameterised run (tests use small sizes and one repetition).
pub fn run_with(graphs: &[(usize, usize)], load_facts: usize, reps: usize) -> Table {
    let mut t = Table::new(
        "F8",
        "figure: snapshot + WAL durability — cold-start load and recovery time vs EDB size",
        "Reachability rows build a random-graph EDB, commit most edges before \
         a checkpoint and the rest as WAL batches, then time a cold-start \
         recovery: read + validate the checksummed snapshot, re-materialise \
         the program over it, and replay the committed batches. Derived \
         facts are never persisted — recovery recomputes them, so \
         `recover_ms` includes re-derivation. The `edbload` row has no \
         rules: its `load_facts_per_sec` is pure snapshot-decode throughput \
         (best-of-reps) and is the row the CI perf gate pins against the \
         committed BENCH_F8.json (20% band, best-of-2).",
        &[
            "workload",
            "edb_facts",
            "derived_facts",
            "snap_kb",
            "snap_write_ms",
            "snap_load_ms",
            "load_facts_per_sec",
            "wal_batches",
            "wal_records",
            "recover_ms",
        ],
    );

    for &(nodes, edges) in graphs {
        t.row(reach_row(nodes, edges, reps));
    }
    t.row(edbload_row(load_facts, reps));
    t
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("alexander_f8_{name}_{}", std::process::id()))
}

fn reach_program() -> Program {
    parse("reach(Y) :- src(Y).\nreach(Y) :- reach(X), edge(X, Y).")
        .expect("parses")
        .program
}

/// Single-source reachability over `random_graph(nodes, edges)`: most edges
/// are in the checkpointed snapshot, the last slice arrives as WAL batches.
fn reach_row(nodes: usize, edges: usize, reps: usize) -> Vec<String> {
    let sp = tmp(&format!("reach_{nodes}.snap"));
    let wp = tmp(&format!("reach_{nodes}.wal"));

    let full = workload::random_graph("edge", nodes, edges, 0xF8);
    let edge_pred = Predicate::new("edge", 2);
    let all_rows: Vec<Vec<Const>> = {
        let rel = full.relation(edge_pred).expect("graph has edges");
        (0..rel.len() as u32).map(|i| rel.row(i).to_vec()).collect()
    };
    // 1% of edges (at least one batch of 32) arrive post-checkpoint.
    let tail = (all_rows.len() / 100).max(32).min(all_rows.len());
    let split = all_rows.len() - tail;

    let mut base = Database::new();
    for row in &all_rows[..split] {
        base.insert(edge_pred, Tuple::new(row.clone()));
    }
    base.insert(
        Predicate::new("src", 1),
        Tuple::new(vec![workload::node(0)]),
    );
    let edb_facts = base.total_tuples() + tail;

    // Build the on-disk pair: create (initial snapshot), then the tail as
    // committed WAL batches of 32.
    let mut eng = DurableEngine::create(reach_program(), base, &sp, &wp).expect("durable create");
    let mut wal_batches = 0usize;
    for chunk in all_rows[split..].chunks(32) {
        for row in chunk {
            eng.insert(&row_atom(Symbol::intern("edge"), row))
                .expect("insert");
        }
        eng.commit().expect("commit");
        wal_batches += 1;
    }
    let total_after = eng.db().total_tuples();
    let derived = total_after - edb_facts;
    drop(eng);

    // Re-checkpoint timing: how long does writing the full EDB snapshot
    // take? (Measured on a fresh engine state via recover-then-checkpoint
    // below; here we time the raw snapshot write of the full EDB.)
    let (rec0, _) = DurableEngine::recover(reach_program(), &sp, &wp).expect("warm recover");
    let full_edb = {
        let mut db = Database::new();
        for row in &all_rows {
            db.insert(edge_pred, Tuple::new(row.clone()));
        }
        db.insert(
            Predicate::new("src", 1),
            Tuple::new(vec![workload::node(0)]),
        );
        db
    };
    drop(rec0);
    let snap_scratch = tmp(&format!("reach_{nodes}_scratch.snap"));
    let ((), write_d) = timed(|| write_snapshot(&full_edb, &snap_scratch).expect("write"));
    let snap_kb = std::fs::metadata(&snap_scratch)
        .expect("snapshot written")
        .len()
        / 1024;
    let (load_best, _) = best_decode(&snap_scratch, reps);
    std::fs::remove_file(&snap_scratch).ok();

    // The headline number: full cold start from the snapshot + WAL pair.
    let mut recover_best = Duration::MAX;
    let mut wal_records = 0usize;
    for _ in 0..reps.max(1) {
        let ((eng, stats), d) =
            timed(|| DurableEngine::recover(reach_program(), &sp, &wp).expect("recover"));
        assert_eq!(
            eng.db().total_tuples(),
            total_after,
            "reach({nodes},{edges}): recovery diverged from the writer's state"
        );
        wal_records = stats.records_replayed;
        recover_best = recover_best.min(d);
    }

    std::fs::remove_file(&sp).ok();
    std::fs::remove_file(&wp).ok();
    vec![
        format!("reach({nodes},{edges})"),
        edb_facts.to_string(),
        derived.to_string(),
        snap_kb.to_string(),
        ms(write_d),
        ms(load_best),
        format!(
            "{:.0}",
            edb_facts as f64 / load_best.as_secs_f64().max(1e-9)
        ),
        wal_batches.to_string(),
        wal_records.to_string(),
        ms(recover_best),
    ]
}

/// Facts-only row: pure snapshot codec throughput, no rules, no WAL.
fn edbload_row(n: usize, reps: usize) -> Vec<String> {
    let sp = tmp(&format!("edbload_{n}.snap"));
    let db = workload::random_graph("edge", (n / 3).max(16), n, 0xED);
    let facts = db.total_tuples();
    let ((), write_d) = timed(|| write_snapshot(&db, &sp).expect("write"));
    let snap_kb = std::fs::metadata(&sp).expect("snapshot written").len() / 1024;
    let (load_best, loaded) = best_decode(&sp, reps);
    assert_eq!(loaded, facts, "edbload({n}): decode dropped facts");
    std::fs::remove_file(&sp).ok();
    vec![
        format!("edbload({n})"),
        facts.to_string(),
        "0".to_string(),
        snap_kb.to_string(),
        ms(write_d),
        ms(load_best),
        format!("{:.0}", facts as f64 / load_best.as_secs_f64().max(1e-9)),
        "0".to_string(),
        "0".to_string(),
        "-".to_string(),
    ]
}

/// Best-of-`reps` snapshot decode; returns (best duration, facts decoded).
fn best_decode(path: &std::path::Path, reps: usize) -> (Duration, usize) {
    let mut best = Duration::MAX;
    let mut facts = 0usize;
    for _ in 0..reps.max(1) {
        let (db, d) = timed(|| read_snapshot(path).expect("decode"));
        facts = db.total_tuples();
        best = best.min(d);
    }
    (best, facts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_f8_produces_consistent_rows() {
        let t = run_with(&[(60, 150)], 500, 1);
        assert_eq!(t.rows.len(), 2);
        for row in &t.rows {
            assert_eq!(row.len(), t.columns.len());
        }
        let reach = &t.rows[0];
        assert!(reach[0].starts_with("reach("), "{reach:?}");
        assert!(
            reach[7].parse::<usize>().unwrap() >= 1,
            "wal batches: {reach:?}"
        );
        let load = &t.rows[1];
        assert_eq!(load[0], "edbload(500)");
        assert!(load[6].parse::<f64>().unwrap() > 0.0, "{load:?}");
    }
}
