//! E9 (Table 9, ablation): the SIP literal reordering — what adornment
//! quality is worth.

use crate::table::{ms, timed, Table};
use alexander_eval::eval_seminaive;
use alexander_ir::{Atom, Program, Symbol, Term};
use alexander_parser::parse;
use alexander_storage::Database;
use alexander_transform::{magic_sets, SipOptions};
use alexander_workload as workload;

/// Same-generation with deliberately adversarial body order: the recursive
/// call written before the binding literal.
fn sg_permuted() -> Program {
    parse(
        "
        sg(X, Y) :- flat(X, Y).
        sg(X, Y) :- sg(U, V), up(X, U), down(V, Y).
        ",
    )
    .unwrap()
    .program
}

fn case(name: &str, program: &Program, edb: &Database, query: &Atom, reorder: bool) -> Vec<String> {
    let rw = magic_sets(program, query, SipOptions { reorder }).unwrap();
    let (res, elapsed) = timed(|| eval_seminaive(&rw.program, edb).expect("runs"));
    vec![
        name.to_string(),
        if reorder { "on".into() } else { "off".into() },
        rw.adorned.map.len().to_string(),
        res.db.len_of(rw.call_pred).to_string(),
        (res.db.total_tuples() - edb.total_tuples()).to_string(),
        res.metrics.firings.to_string(),
        ms(elapsed),
    ]
}

pub fn run() -> Table {
    let mut t = Table::new(
        "E9",
        "SIP ablation: greedy literal reordering on/off (magic sets)",
        "With reordering off, the adversarially-ordered same-generation rule \
         calls the recursion with no bindings (adornment ff): the rewriting \
         degenerates to full evaluation plus overhead. The greedy SIP \
         restores the bf adornment and the goal-directed behaviour. The \
         well-ordered program is insensitive to the toggle.",
        &[
            "workload",
            "reorder",
            "adornments",
            "demand",
            "facts",
            "inferences",
            "time_ms",
        ],
    );

    let (edb, seed) = workload::sg_tree(6);
    let query = Atom {
        pred: Symbol::intern("sg"),
        terms: vec![Term::Const(seed), Term::var("Y")],
    };
    let permuted = sg_permuted();
    let well_ordered = workload::same_generation();

    t.row(case("sg permuted tree(6)", &permuted, &edb, &query, true));
    t.row(case("sg permuted tree(6)", &permuted, &edb, &query, false));
    t.row(case(
        "sg textbook tree(6)",
        &well_ordered,
        &edb,
        &query,
        true,
    ));
    t.row(case(
        "sg textbook tree(6)",
        &well_ordered,
        &edb,
        &query,
        false,
    ));
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reordering_rescues_the_permuted_program() {
        let t = run();
        let facts = |i: usize| -> u64 { t.rows[i][4].parse().unwrap() };
        // Permuted, reorder on (row 0) must beat permuted, reorder off (row 1).
        assert!(
            facts(0) < facts(1),
            "SIP should reduce materialisation: {} vs {}",
            facts(0),
            facts(1)
        );
    }

    #[test]
    fn textbook_order_is_insensitive() {
        let t = run();
        assert_eq!(t.rows[2][4], t.rows[3][4]);
    }
}
