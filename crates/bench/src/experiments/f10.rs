//! F10 (figure): incremental maintenance — update latency vs full recompute
//! across update-batch sizes and workload shapes.
//!
//! Each row materialises transitive closure over one workload, applies one
//! mixed update batch through [`IncrementalEngine::apply_batch`] (counting
//! mode and DRed-forced mode), and compares against recomputing the closure
//! from scratch on the post-update EDB. Correctness comes first: an untimed
//! pass asserts the counting database, the DRed database, and the full
//! recompute are bit-identical before any number is reported. Timings are
//! then taken on fresh engines (materialisation excluded), best-of-3.
//!
//! Batch composition is explicit in the `ops` column — deletions target
//! every `edges/d`-th existing edge starting with the *first* edge, so the
//! single-delete rows remove a boundary edge (`e(n0, n1)`), the case where
//! incremental maintenance should shine: the doomed set is O(n) against an
//! O(n²) recompute. Mid-chain deletions would doom ~half the closure and no
//! maintenance algorithm could beat recompute by a wide margin there.
//! Insertions are fresh disjoint edges, so large batches measure batch
//! plumbing rather than closure growth. Deletions are capped at half the
//! workload's edges (the cap shows up in `ops`, never silently).
//!
//! The `chain(512)` / `batch(1)` row's `speedup` (full recompute over
//! counting apply) is what the CI perf gate pins against the committed
//! BENCH_F10.json (best-of-2 harness runs, 20% band, like F6–F9) with the
//! hard bar speedup ≥ 10.

use crate::table::{ms, Table};
use alexander_eval::{eval_seminaive, IncrementalEngine, Maintenance};
use alexander_ir::{Atom, Program};
use alexander_parser::parse_atom;
use alexander_storage::Database;
use alexander_workload as workload;
use std::time::{Duration, Instant};

/// The four update-batch sizes of the figure.
const BATCHES: [usize; 4] = [1, 16, 256, 4096];

pub fn run() -> Table {
    run_with(512, 12, 192, &BATCHES)
}

/// One workload shape: a label, its EDB, and the edge list in insertion
/// order (deletions are drawn from it, spread evenly from the first edge).
struct Shape {
    label: String,
    edb: Database,
    edges: Vec<(usize, usize)>,
    /// First node id not used by the base graph (fresh inserts start here).
    fresh: usize,
}

fn shapes(chain: usize, tree_depth: usize, cycle: usize) -> Vec<Shape> {
    let mut out = Vec::new();
    out.push(Shape {
        label: format!("chain({chain})"),
        edb: workload::chain("e", chain),
        edges: (0..chain).map(|i| (i, i + 1)).collect(),
        fresh: chain + 1,
    });
    let (db, nodes) = workload::tree("e", 2, tree_depth);
    // BFS order, parent → child: edge i leads to node i+1.
    let parents: Vec<(usize, usize)> = (1..nodes).map(|c| ((c - 1) / 2, c)).collect();
    out.push(Shape {
        label: format!("tree(2,{tree_depth})"),
        edb: db,
        edges: parents,
        fresh: nodes,
    });
    // A cycle plus skip-2 chords: every closure fact has many alternative
    // derivations, so a deletion overdeletes almost the whole closure and
    // phase 2 rederives nearly all of it — DRed's worst case, shown
    // deliberately next to the chain rows where it shines.
    let mut edges: Vec<(usize, usize)> = (0..cycle).map(|i| (i, (i + 1) % cycle)).collect();
    edges.extend((0..cycle).step_by(2).map(|i| (i, (i + 2) % cycle)));
    let mut db = workload::cycle("e", cycle);
    for &(a, b) in &edges[cycle..] {
        db.insert(
            alexander_ir::Predicate::new("e", 2),
            alexander_storage::Tuple::new(vec![workload::node(a), workload::node(b)]),
        );
    }
    out.push(Shape {
        label: format!("dense-cycle({cycle})"),
        edb: db,
        edges,
        fresh: cycle,
    });
    out
}

fn edge_atom(a: usize, b: usize) -> Atom {
    parse_atom(&format!("e(n{a}, n{b})")).expect("ground edge")
}

/// The mixed batch for one (shape, size) cell: `d` deletions spread evenly
/// over the existing edges starting with the first, and `size - d` fresh
/// disjoint insertions. Deletions are capped at half the edges.
fn batch_ops(shape: &Shape, size: usize) -> (Vec<(bool, Atom)>, String) {
    let want = size.div_ceil(2).max(1).min(size);
    let d = want.min(shape.edges.len() / 2).max(1).min(size);
    let inserts = size - d;
    let mut ops = Vec::with_capacity(size);
    for i in 0..d {
        let (a, b) = shape.edges[i * shape.edges.len() / d];
        ops.push((false, edge_atom(a, b)));
    }
    for i in 0..inserts {
        let (a, b) = (shape.fresh + 2 * i, shape.fresh + 2 * i + 1);
        ops.push((true, edge_atom(a, b)));
    }
    (ops, format!("{d}d+{inserts}i"))
}

/// The post-update EDB, built independently of the engines.
fn edb_after(shape: &Shape, ops: &[(bool, Atom)]) -> Database {
    let mut db = shape.edb.clone();
    for (insert, atom) in ops {
        if *insert {
            db.insert_atom(atom).expect("ground");
        }
    }
    // Database has no removal API by design; rebuild without the victims.
    let deleted: std::collections::HashSet<&Atom> = ops
        .iter()
        .filter(|(insert, _)| !insert)
        .map(|(_, a)| a)
        .collect();
    let mut out = Database::new();
    for p in db.predicates() {
        for atom in db.atoms_of(p) {
            if !deleted.contains(&atom) {
                out.insert_atom(&atom).expect("ground");
            }
        }
    }
    out
}

fn sorted_facts(db: &Database) -> Vec<String> {
    let mut out: Vec<String> = db
        .predicates()
        .into_iter()
        .flat_map(|p| db.atoms_of(p))
        .map(|a| a.to_string())
        .collect();
    out.sort();
    out
}

/// Best-of-3 wall time of `f` run against a freshly built state.
fn best_of_3(mut f: impl FnMut() -> Duration) -> Duration {
    (0..3).map(|_| f()).min().expect("three samples")
}

pub fn run_with(chain: usize, tree_depth: usize, cycle: usize, batches: &[usize]) -> Table {
    let mut t = Table::new(
        "F10",
        "figure: incremental update latency vs full recompute, by batch size and workload",
        "Transitive closure is materialised once, then one mixed update \
         batch (deletions spread from the first edge + fresh-edge \
         insertions; exact composition in `ops`) is applied through the \
         counting engine, the DRed-forced engine, and a from-scratch \
         recompute of the post-update EDB. An untimed pass asserts all \
         three databases are bit-identical before anything is timed; \
         timings are best-of-3 on fresh engines, materialisation excluded. \
         Single-delete rows remove the boundary edge `e(n0, n1)` — the \
         O(doomed) vs O(n²) case incremental maintenance exists for — and \
         the chain single-delete `speedup` is the CI-gated headline \
         (hard bar: ≥ 10x, then a 20% band against BENCH_F10.json, \
         best-of-2, like F6–F9).",
        &[
            "workload",
            "edges",
            "batch",
            "ops",
            "counting_ms",
            "dred_ms",
            "recompute_ms",
            "speedup",
            "identical",
        ],
    );
    let program = workload::transitive_closure();
    for shape in shapes(chain, tree_depth, cycle) {
        for &size in batches {
            t.row(cell(&program, &shape, size));
        }
    }
    t
}

fn cell(program: &Program, shape: &Shape, size: usize) -> Vec<String> {
    let (ops, composition) = batch_ops(shape, size);
    let after = edb_after(shape, &ops);

    // Correctness pass, untimed: counting == dred == full recompute,
    // bit-identical, before any number is reported.
    let mut counting =
        IncrementalEngine::with_mode(program.clone(), shape.edb.clone(), Maintenance::Counting)
            .expect("counting engine");
    let mut dred =
        IncrementalEngine::with_mode(program.clone(), shape.edb.clone(), Maintenance::Dred)
            .expect("dred engine");
    counting.apply_batch(&ops).expect("counting batch");
    dred.apply_batch(&ops).expect("dred batch");
    let expected = sorted_facts(&eval_seminaive(program, &after).expect("recompute").db);
    assert_eq!(
        sorted_facts(counting.db()),
        expected,
        "{} batch({size}): counting diverged from recompute",
        shape.label
    );
    assert_eq!(
        sorted_facts(dred.db()),
        expected,
        "{} batch({size}): dred diverged from recompute",
        shape.label
    );

    // Timed pass: fresh engines, apply only (materialisation excluded).
    let timed_apply = |mode: Maintenance| {
        best_of_3(|| {
            let mut engine = IncrementalEngine::with_mode(program.clone(), shape.edb.clone(), mode)
                .expect("engine");
            let start = Instant::now();
            engine.apply_batch(&ops).expect("batch");
            start.elapsed()
        })
    };
    let counting_t = timed_apply(Maintenance::Counting);
    let dred_t = timed_apply(Maintenance::Dred);
    let recompute_t = best_of_3(|| {
        let start = Instant::now();
        eval_seminaive(program, &after).expect("recompute");
        start.elapsed()
    });
    let speedup = recompute_t.as_secs_f64() / counting_t.as_secs_f64().max(1e-9);

    vec![
        shape.label.clone(),
        shape.edges.len().to_string(),
        size.to_string(),
        composition,
        ms(counting_t),
        ms(dred_t),
        ms(recompute_t),
        format!("{speedup:.1}"),
        // Reaching this line means the correctness pass above held.
        "yes".to_string(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_f10_reports_identical_rows_for_every_shape_and_batch() {
        let t = run_with(24, 4, 12, &[1, 8]);
        assert_eq!(t.rows.len(), 6, "three shapes x two batch sizes");
        for row in &t.rows {
            assert_eq!(row.len(), t.columns.len());
            assert_eq!(row[8], "yes", "{row:?}");
            assert!(row[7].parse::<f64>().unwrap() > 0.0, "{row:?}");
        }
        assert_eq!(t.rows[0][0], "chain(24)");
        assert_eq!(t.rows[0][3], "1d+0i", "single delete, boundary edge");
        // Half-and-half until the deletion cap bites.
        assert_eq!(t.rows[1][3], "4d+4i");
        assert_eq!(t.rows[4][0], "dense-cycle(12)");
    }

    #[test]
    fn batches_cap_deletions_at_half_the_edges_without_hiding_it() {
        let shape = &shapes(6, 2, 6)[0]; // chain(6): 6 edges, cap 3
        let (ops, composition) = batch_ops(shape, 4096);
        assert_eq!(composition, "3d+4093i");
        assert_eq!(ops.len(), 4096);
        assert_eq!(ops.iter().filter(|(ins, _)| !ins).count(), 3);
    }
}
