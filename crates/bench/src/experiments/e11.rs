//! E11 (Table 11): why tabulation — plain SLD resolution vs OLDT.
//!
//! This is the motivation the Alexander method inherits from OLDT: without
//! a call table, top-down evaluation re-derives shared subgoals
//! exponentially often and never terminates on cyclic data. The table puts
//! numbers on both failure modes.

use crate::table::{ms, timed, Table};
use alexander_ir::{Atom, Symbol, Term};
use alexander_parser::parse_atom;
use alexander_storage::Database;
use alexander_topdown::{oldt_query, sld_query, SldOptions};
use alexander_workload as workload;

fn row(
    name: &str,
    program: &alexander_ir::Program,
    edb: &Database,
    query: &Atom,
    opts: SldOptions,
) -> Vec<String> {
    let (sld, t_sld) = timed(|| sld_query(program, edb, query, opts).expect("sld runs"));
    let (oldt, t_oldt) = timed(|| oldt_query(program, edb, query).expect("oldt runs"));
    let mut oldt_answers: Vec<Atom> = oldt.answers.clone();
    oldt_answers.sort();
    oldt_answers.dedup();
    vec![
        name.to_string(),
        oldt_answers.len().to_string(),
        if sld.complete {
            sld.metrics.resolution_steps.to_string()
        } else {
            format!("{}+ (cut off)", sld.metrics.resolution_steps)
        },
        oldt.metrics.resolution_steps.to_string(),
        if sld.complete {
            "yes".into()
        } else {
            "NO".into()
        },
        ms(t_sld),
        ms(t_oldt),
    ]
}

pub fn run() -> Table {
    let mut t = Table::new(
        "E11",
        "why tabulation: plain SLD (Prolog strategy) vs OLDT on identical inputs",
        "Without tabling, the nonlinear same-generation recursion re-solves \
         each shared subgoal once per occurrence: SLD steps grow \
         exponentially with depth while OLDT's stay near-linear. On cyclic \
         data SLD does not terminate at all (`terminates` = NO; it is cut \
         off by a step budget), while OLDT completes. This gap is what the \
         Alexander templates transport into the bottom-up world.",
        &[
            "workload",
            "answers",
            "sld steps",
            "oldt steps",
            "terminates",
            "sld_ms",
            "oldt_ms",
        ],
    );

    let sg = workload::same_generation();
    for depth in [3usize, 4, 5, 6] {
        let (edb, seed) = workload::sg_tree(depth);
        let query = Atom {
            pred: Symbol::intern("sg"),
            terms: vec![Term::Const(seed), Term::var("Y")],
        };
        t.row(row(
            &format!("sg tree({depth})"),
            &sg,
            &edb,
            &query,
            SldOptions {
                step_budget: 5_000_000,
                depth_limit: 10_000,
            },
        ));
    }

    let tc = workload::transitive_closure();
    t.row(row(
        "tc cycle(10)",
        &tc,
        &workload::cycle("e", 10),
        &parse_atom("tc(n0, X)").unwrap(),
        SldOptions {
            step_budget: 200_000,
            depth_limit: 500,
        },
    ));
    t.row(row(
        "tc chain(60)",
        &tc,
        &workload::chain("e", 60),
        &parse_atom("tc(n0, X)").unwrap(),
        SldOptions::default(),
    ));
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sld_explodes_and_oldt_does_not() {
        let t = run();
        // On sg trees both complete, but SLD steps grow much faster.
        let steps = |name: &str, col: usize| -> u64 {
            t.rows.iter().find(|r| r[0] == name).unwrap()[col]
                .trim_end_matches("+ (cut off)")
                .parse()
                .unwrap()
        };
        let sld_growth = steps("sg tree(6)", 2) as f64 / steps("sg tree(3)", 2) as f64;
        let oldt_growth = steps("sg tree(6)", 3) as f64 / steps("sg tree(3)", 3) as f64;
        assert!(
            sld_growth > oldt_growth * 2.0,
            "sld {sld_growth:.1}x vs oldt {oldt_growth:.1}x"
        );
        // Cyclic: SLD cut off, OLDT terminates.
        let cyc = t.rows.iter().find(|r| r[0] == "tc cycle(10)").unwrap();
        assert_eq!(cyc[4], "NO");
        assert_eq!(cyc[1], "10");
    }
}
