//! E7 (Table 7): loose stratification — the analysis ladder on programs the
//! plain stratifier rejects.

use crate::table::Table;
use alexander_eval::{eval_conditional, eval_stratified};
use alexander_ir::analysis::{locally_stratified, loosely_stratified, stratify};
use alexander_ir::Program;
use alexander_parser::parse;
use alexander_storage::Database;

fn analyse(name: &str, program: &Program, edb_src: &str) -> Vec<String> {
    let parsed = parse(edb_src).expect("edb parses");
    let mut with_facts = program.clone();
    with_facts.facts = parsed.program.facts.clone();
    let edb = Database::from_program(&with_facts);

    let strat = stratify(program).is_ok();
    let loose = loosely_stratified(program).is_ok();
    let local = locally_stratified(&with_facts, &[]).is_ok();
    let stratified_runs = eval_stratified(program, &edb).is_ok();
    let cond = eval_conditional(program, &edb).expect("conditional always runs");

    vec![
        name.to_string(),
        yn(strat),
        yn(loose),
        yn(local),
        yn(stratified_runs),
        format!("yes ({} undefined)", cond.undefined.len()),
    ]
}

fn yn(b: bool) -> String {
    if b {
        "yes".into()
    } else {
        "no".into()
    }
}

pub fn run() -> Table {
    let mut t = Table::new(
        "E7",
        "the stratification ladder: stratified ⊂ loosely stratified ⊂ decided-by-conditional-fixpoint",
        "Bry's loose stratification admits programs whose negation recursion \
         is broken by constant guards at the atom level. The guard program is \
         rejected by the stratifier but accepted by the loose/local analyses \
         and fully decided by the conditional fixpoint; win–move over an \
         acyclic graph fails even the loose test yet is still decided (its \
         ground instantiation is stratified); win–move over a cycle is \
         genuinely undefined at the cycle.",
        &[
            "program",
            "stratified",
            "loosely strat.",
            "locally strat. (EDB)",
            "stratified eval runs",
            "conditional decides",
        ],
    );

    t.row(analyse(
        "reach/unreach (stratified)",
        &alexander_workload::reach_unreach(),
        "edge(s, a). node(s). node(a). node(z). source(s).",
    ));
    t.row(analyse(
        "loose guard p(X,a) :- q(X,Y), s(Z,X), !p(Z,b)",
        &alexander_workload::loose_guard(),
        "q(c, d). s(e2, c).",
    ));
    t.row(analyse(
        "win-move on a chain",
        &alexander_workload::win_move(),
        "move(a, b). move(b, c). move(c, d).",
    ));
    t.row(analyse(
        "win-move on a 2-cycle",
        &alexander_workload::win_move(),
        "move(a, b). move(b, a).",
    ));
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_is_strictly_ordered() {
        let t = run();
        let row = |name: &str| t.rows.iter().find(|r| r[0].starts_with(name)).unwrap();
        // Stratified program: yes everywhere.
        assert_eq!(row("reach")[1], "yes");
        assert_eq!(row("reach")[2], "yes");
        // Loose guard: not stratified, loosely + locally stratified.
        assert_eq!(row("loose guard")[1], "no");
        assert_eq!(row("loose guard")[2], "yes");
        assert_eq!(row("loose guard")[3], "yes");
        assert_eq!(row("loose guard")[4], "no");
        // Acyclic win-move: not even loosely stratified, but locally so and
        // fully decided.
        assert_eq!(row("win-move on a chain")[2], "no");
        assert_eq!(row("win-move on a chain")[3], "yes");
        assert!(row("win-move on a chain")[5].contains("(0 undefined)"));
        // Cyclic win-move: undefined residue.
        assert!(!row("win-move on a 2-cycle")[5].contains("(0 undefined)"));
    }
}
