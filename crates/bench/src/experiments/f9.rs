//! F9 (figure): serving layer — sustained QPS and tail latency under mixed
//! query/update traffic, at 1–8 client threads.
//!
//! Each row hosts an in-process [`QueryService`] over the chain workload and
//! runs `clients` reader threads issuing `anc(n0, X)` back-to-back while one
//! writer thread commits chain-extending batches paced against reader
//! progress (one commit per `total/commits` queries), so updates land
//! throughout the run rather than all at the start. Every reply is checked
//! bit-identically against a single-threaded oracle for the epoch it is
//! tagged with — a row only reports numbers if every answer matched, which
//! makes the figure double as the epoch-snapshot correctness gate in
//! release mode.
//!
//! `qps` at `clients(1)` is the number the CI perf gate pins against the
//! committed `BENCH_F9.json` (20% band, best-of-2 harness runs, like
//! F6/F7/F8); the higher-thread rows document scaling and p99 under
//! contention.

use crate::loadgen::{
    chain_db, jitter, percentile_ms, rng_seed, update_fact, Oracle, QUERY, RULES,
};
use crate::table::Table;
use alexander_parser::{parse, parse_atom};
use alexander_server::{QueryService, ServerConfig, ServerError};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

pub fn run() -> Table {
    run_with(128, 250, &[1, 2, 4, 8], 16)
}

/// Parameterised run (tests use a short chain and few queries).
pub fn run_with(
    base: usize,
    queries_per_client: usize,
    client_counts: &[usize],
    commits: usize,
) -> Table {
    let mut t = Table::new(
        "F9",
        "figure: query server — sustained QPS and p99 under mixed query/update traffic",
        "Readers hammer `anc(n0, X)` against an in-process multi-tenant \
         service while a writer commits chain-extending epochs paced by \
         reader progress. Every reply is verified bit-identically against a \
         single-threaded oracle for its tagged epoch before any number is \
         reported, so the figure is also the epoch-pinning correctness gate: \
         a reader pinned at generation N sees exactly generation N's \
         answers no matter how many epochs commit mid-query. The \
         `clients(1)` qps row is what the CI perf gate pins against the \
         committed BENCH_F9.json (20% band, best-of-2). The final \
         `overload` row runs twice as many clients as the admission cap \
         allows, with a tiny wait queue: excess queries are shed with \
         `retry-after-ms` hints that the readers honour (jittered backoff), \
         so its `sheds` count must be positive and its p99 — which includes \
         the backoff waits — stays bounded instead of collapsing.",
        &[
            "workload",
            "queries",
            "commits",
            "max_epoch_seen",
            "qps",
            "p50_ms",
            "p99_ms",
            "consistent",
            "sheds",
        ],
    );
    // Warm the oracle outside the timed region: generations are shared
    // across rows (same base, same number of commits).
    let oracle = Oracle::new(base);
    let oracles: Arc<Vec<Vec<String>>> =
        Arc::new((0..=commits as u64).map(|g| oracle.answers(g)).collect());
    for &clients in client_counts {
        // Cap == clients: nothing sheds, the row measures raw throughput.
        t.row(mixed_row(
            base,
            format!("clients({clients})"),
            clients,
            clients,
            queries_per_client,
            commits,
            &oracles,
        ));
    }
    // Overload: twice the clients of the widest row against a quarter of
    // them in slots, with an equally small wait queue — most arrivals shed.
    let widest = client_counts.iter().copied().max().unwrap_or(1);
    let cap = (widest / 2).max(1);
    t.row(mixed_row(
        base,
        format!("overload({}c/cap{cap})", widest * 2),
        widest * 2,
        cap,
        queries_per_client,
        commits,
        &oracles,
    ));
    t
}

fn mixed_row(
    base: usize,
    label: String,
    clients: usize,
    cap: usize,
    queries_per_client: usize,
    commits: usize,
    oracles: &Arc<Vec<Vec<String>>>,
) -> Vec<String> {
    let program = parse(RULES).expect("rules parse").program;
    let config = ServerConfig {
        max_concurrent: cap.max(1),
        tenant_cap: cap.max(1),
        // A queue as small as the cap, and a short retry hint so the
        // overload row spends its time shedding, not sleeping.
        max_queue: cap.max(1),
        shed_retry_after_ms: 2,
        ..ServerConfig::default()
    };
    let service =
        Arc::new(QueryService::open(program, chain_db(base), None, config).expect("service opens"));
    let query = parse_atom(QUERY).expect("query parses");
    let total = clients * queries_per_client;
    let progress = Arc::new(AtomicUsize::new(0));
    // One commit per `stride` completed queries: the writer trails reader
    // progress so epochs keep publishing for the whole run.
    let stride = (total / (commits + 1)).max(1);

    let start = Instant::now();
    let writer = {
        let service = service.clone();
        let progress = progress.clone();
        std::thread::spawn(move || {
            for g in 1..=commits as u64 {
                while progress.load(Ordering::Relaxed) < g as usize * stride
                    && progress.load(Ordering::Relaxed) < total
                {
                    std::thread::sleep(Duration::from_micros(200));
                }
                service
                    .insert(&parse_atom(&update_fact(base, g)).expect("ground"))
                    .expect("insert");
                let info = service.commit().expect("commit");
                assert_eq!(info.generation, g, "single writer, ordered epochs");
            }
        })
    };
    let readers: Vec<_> = (0..clients)
        .map(|c| {
            let service = service.clone();
            let query = query.clone();
            let oracles = oracles.clone();
            let progress = progress.clone();
            std::thread::spawn(move || {
                let tenant = format!("tenant{c}");
                let mut rng = rng_seed().wrapping_add(c as u64);
                let mut latencies = Vec::with_capacity(queries_per_client);
                let mut max_epoch = 0u64;
                for _ in 0..queries_per_client {
                    // A shed is retried after the server's hint (plus
                    // jitter); the measured latency spans the whole retry
                    // loop, so shedding shows up in the tail, not as a
                    // dropped sample.
                    let t0 = Instant::now();
                    let r = loop {
                        match service.query(&tenant, &query, None) {
                            Ok(r) => break r,
                            Err(ServerError::Busy { retry_after_ms }) => {
                                let wait =
                                    retry_after_ms + jitter(&mut rng, retry_after_ms / 2 + 1);
                                std::thread::sleep(Duration::from_millis(wait));
                            }
                            Err(e) => panic!("query: {e}"),
                        }
                    };
                    latencies.push(t0.elapsed());
                    progress.fetch_add(1, Ordering::Relaxed);
                    assert!(r.complete, "unbudgeted query must complete");
                    assert_eq!(
                        r.answers, oracles[r.generation as usize],
                        "epoch {} reply diverged from the single-threaded oracle",
                        r.generation
                    );
                    max_epoch = max_epoch.max(r.generation);
                }
                (latencies, max_epoch)
            })
        })
        .collect();
    let mut latencies = Vec::with_capacity(total);
    let mut max_epoch = 0u64;
    for r in readers {
        let (lat, seen) = r.join().expect("reader thread");
        latencies.extend(lat);
        max_epoch = max_epoch.max(seen);
    }
    writer.join().expect("writer thread");
    let wall = start.elapsed();
    assert_eq!(service.generation(), commits as u64);

    vec![
        label,
        total.to_string(),
        commits.to_string(),
        max_epoch.to_string(),
        format!("{:.0}", total as f64 / wall.as_secs_f64().max(1e-9)),
        format!("{:.3}", percentile_ms(&mut latencies, 50.0)),
        format!("{:.3}", percentile_ms(&mut latencies, 99.0)),
        // Reaching this line means every reply matched its oracle — the
        // asserts above abort the harness otherwise.
        "yes".to_string(),
        service.admission().shed_total().to_string(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_f9_reports_consistent_mixed_rows() {
        let t = run_with(24, 40, &[1, 2], 4);
        assert_eq!(t.rows.len(), 3, "client rows plus the overload row");
        for row in &t.rows {
            assert_eq!(row.len(), t.columns.len());
            assert_eq!(row[1].parse::<usize>().unwrap() % 40, 0);
            assert_eq!(row[2], "4");
            assert!(row[4].parse::<f64>().unwrap() > 0.0, "{row:?}");
            assert_eq!(row[7], "yes");
        }
        assert_eq!(t.rows[0][0], "clients(1)");
        assert_eq!(t.rows[1][0], "clients(2)");
        // Cap == clients rows never queue deep enough to shed.
        assert_eq!(t.rows[0][8], "0");
        assert_eq!(t.rows[1][8], "0");
        // The overload row doubles the widest client count over half the
        // slots; its shed counter is whatever the race produced, but it
        // must be a well-formed count and the row must still verify.
        assert_eq!(t.rows[2][0], "overload(4c/cap1)");
        let _sheds: u64 = t.rows[2][8].parse().expect("shed count");
    }
}
