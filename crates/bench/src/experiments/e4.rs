//! E4 (Table 4): Alexander vs plain magic vs supplementary magic — the
//! three rewritings' inference counts on the same workloads.

use crate::table::{ms, timed, Table};
use alexander_eval::eval_seminaive;
use alexander_ir::{Atom, Program, Symbol, Term};
use alexander_storage::Database;
use alexander_transform::{alexander, magic_sets, sup_magic_sets, Rewritten, SipOptions};
use alexander_workload as workload;

fn rewrite_row(name: &str, style: &str, rw: &Rewritten, edb: &Database) -> Vec<String> {
    let (res, elapsed) = timed(|| eval_seminaive(&rw.program, edb).expect("rewritten runs"));
    vec![
        name.to_string(),
        style.to_string(),
        rw.program.rules.len().to_string(),
        res.db.len_of(rw.call_pred).to_string(),
        res.db.len_of(rw.answer_pred).to_string(),
        (res.db.total_tuples() - edb.total_tuples()).to_string(),
        res.metrics.firings.to_string(),
        ms(elapsed),
    ]
}

pub fn run() -> Table {
    let mut t = Table::new(
        "E4",
        "the three rewritings compared: rules generated, demand set, facts, inferences",
        "Alexander and supplementary magic share rule prefixes through \
         continuation predicates: same demand (call/magic) sets as plain \
         magic, same answers, but fewer inference steps on nonlinear rules \
         at the cost of materialising the continuations. Alexander ≅ \
         supplementary magic, fact for fact.",
        &[
            "workload",
            "rewriting",
            "rules",
            "demand",
            "answers",
            "facts",
            "inferences",
            "time_ms",
        ],
    );

    let cases: Vec<(&str, Program, Database, Atom)> = vec![
        (
            "ancestor chain(200)",
            workload::ancestor(),
            workload::chain("par", 200),
            alexander_parser::parse_atom("anc(n0, X)").unwrap(),
        ),
        (
            "sg tree(7)",
            workload::same_generation(),
            workload::sg_tree(7).0,
            {
                let (_, seed) = workload::sg_tree(7);
                Atom {
                    pred: Symbol::intern("sg"),
                    terms: vec![Term::Const(seed), Term::var("Y")],
                }
            },
        ),
        (
            "tc grid(8)",
            workload::transitive_closure(),
            workload::grid("e", 8),
            alexander_parser::parse_atom("tc(n0, X)").unwrap(),
        ),
    ];

    for (name, program, edb, query) in cases {
        let opts = SipOptions::default();
        let m = magic_sets(&program, &query, opts).unwrap();
        let s = sup_magic_sets(&program, &query, opts).unwrap();
        let a = alexander(&program, &query, opts).unwrap();
        t.row(rewrite_row(name, "magic", &m, &edb));
        t.row(rewrite_row(name, "supmagic", &s, &edb));
        t.row(rewrite_row(name, "alexander", &a, &edb));
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demand_and_answer_sets_agree_across_rewritings() {
        let t = run();
        for chunk in t.rows.chunks(3) {
            let demand: Vec<&str> = chunk.iter().map(|r| r[3].as_str()).collect();
            assert!(demand.iter().all(|d| *d == demand[0]), "{demand:?}");
            let answers: Vec<&str> = chunk.iter().map(|r| r[4].as_str()).collect();
            assert!(answers.iter().all(|a| *a == answers[0]), "{answers:?}");
        }
    }

    #[test]
    fn alexander_matches_supmagic_fact_counts() {
        let t = run();
        for chunk in t.rows.chunks(3) {
            let sup = &chunk[1];
            let alex = &chunk[2];
            assert_eq!(sup[5], alex[5], "facts differ: {sup:?} vs {alex:?}");
            assert_eq!(sup[6], alex[6], "inferences differ");
        }
    }
}
