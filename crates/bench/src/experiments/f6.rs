//! F6 (figure): the arena join kernel vs the boxed-tuple legacy engine —
//! throughput and allocation pressure, before vs after.
//!
//! The "before" side is [`crate::legacy`], a faithful copy of the storage
//! layer and semi-naive loop this workspace shipped prior to the arena
//! rewrite: boxed tuples, `Vec<Const>`-keyed indexes, a key allocation per
//! probe, a head tuple allocation per firing, and per-round delta
//! databases with rebuilt indexes. The "after" side is the current
//! `eval_seminaive`. Both compile rules through the same `compile_rule`,
//! so every literal is visited in the same order and the firing, probe,
//! candidate and duplicate counters must match *exactly* — the run asserts
//! that equality before reporting any timing, which is what makes the
//! throughput ratio a measurement of the kernels rather than of divergent
//! work.
//!
//! The committed `BENCH_F6.json` records a `--release` run; the CI
//! perf-smoke job re-runs `chain(450)/seminaive` and fails on a >20%
//! facts/sec regression against it. The acceptance bar for the rewrite
//! itself was a ≥1.5× facts/sec win on that same row.

use crate::legacy::eval_seminaive_legacy;
use crate::table::{ms, timed, Table};
use alexander_eval::eval_seminaive;
use alexander_ir::Program;
use alexander_parser::parse_atom;
use alexander_storage::Database;
use alexander_transform::{alexander, sup_magic_sets, SipOptions};
use alexander_workload as workload;
use std::time::Duration;

/// Timing repetitions per engine; the minimum is reported.
const REPS: usize = 3;

pub fn run() -> Table {
    run_with(450, 12, 250, REPS)
}

/// Parameterised run (tests use small sizes and one repetition).
pub fn run_with(chain_n: usize, tree_depth: usize, crossover_n: usize, reps: usize) -> Table {
    let mut t = Table::new(
        "F6",
        "figure: arena join kernel vs boxed-tuple legacy engine",
        "Each row evaluates the same program twice: once with the legacy \
         engine (boxed tuples, Vec-keyed indexes, per-probe key \
         allocations, per-round delta databases with index rebuilds) and \
         once with the arena engine (flat tuple pools, hash-of-projection \
         indexes probed without materialising keys, range deltas). Both \
         sides compile rules identically and their firing/probe/duplicate \
         counters are asserted equal, so the facts/sec ratio isolates the \
         kernels. `allocs/fact` counts heap allocation events per derived \
         fact via the counting global allocator. The committed \
         BENCH_F6.json is the CI perf-smoke baseline for \
         chain/seminaive facts/sec.",
        &[
            "workload",
            "strategy",
            "facts",
            "legacy_ms",
            "arena_ms",
            "legacy_facts_per_sec",
            "arena_facts_per_sec",
            "speedup",
            "legacy_allocs_per_fact",
            "arena_allocs_per_fact",
        ],
    );

    let chain = workload::chain("par", chain_n);
    let (tree, _) = workload::tree("par", 2, tree_depth);
    let crossover = workload::chain("par", crossover_n);
    let anc = workload::ancestor();

    let cases: Vec<(String, &Database, &str)> = vec![
        (format!("chain({chain_n})"), &chain, "anc(n0, X)"),
        (format!("tree(2,{tree_depth})"), &tree, "anc(n0, X)"),
        // Free query: the crossover regime where rewriting loses to plain
        // bottom-up (E5); here it exercises the kernels on wide deltas.
        (format!("crossover({crossover_n})"), &crossover, "anc(X, Y)"),
    ];

    for (name, edb, query) in &cases {
        let q = parse_atom(query).unwrap();
        let opts = SipOptions::default();
        let strategies: Vec<(&str, Program)> = vec![
            ("seminaive", anc.clone()),
            ("alexander", alexander(&anc, &q, opts).unwrap().program),
            ("supmagic", sup_magic_sets(&anc, &q, opts).unwrap().program),
        ];
        for (sname, program) in strategies {
            t.row(case_row(name, sname, &program, edb, reps));
        }
    }
    t
}

fn case_row(
    workload: &str,
    strategy: &str,
    program: &Program,
    edb: &Database,
    reps: usize,
) -> Vec<String> {
    let mut legacy_best = Duration::MAX;
    let mut arena_best = Duration::MAX;
    let mut legacy_allocs = 0u64;
    let mut arena_allocs = 0u64;
    let mut facts = 0u64;

    for rep in 0..reps.max(1) {
        // Alternate the order so warm-up and turbo effects do not
        // systematically favour one engine.
        let (legacy, d_legacy, arena, d_arena) = if rep % 2 == 0 {
            let a0 = crate::alloc::allocations();
            let (legacy, dl) = timed(|| eval_seminaive_legacy(program, edb));
            let a1 = crate::alloc::allocations();
            let (arena, da) = timed(|| eval_seminaive(program, edb).unwrap());
            let a2 = crate::alloc::allocations();
            legacy_allocs = a1 - a0;
            arena_allocs = a2 - a1;
            (legacy, dl, arena, da)
        } else {
            let a0 = crate::alloc::allocations();
            let (arena, da) = timed(|| eval_seminaive(program, edb).unwrap());
            let a1 = crate::alloc::allocations();
            let (legacy, dl) = timed(|| eval_seminaive_legacy(program, edb));
            let a2 = crate::alloc::allocations();
            arena_allocs = a1 - a0;
            legacy_allocs = a2 - a1;
            (legacy, dl, arena, da)
        };
        legacy_best = legacy_best.min(d_legacy);
        arena_best = arena_best.min(d_arena);

        // The comparison is only meaningful if both engines did identical
        // logical work, counter for counter.
        assert_eq!(
            legacy.metrics, arena.metrics,
            "{workload}/{strategy}: legacy and arena engines diverged"
        );
        assert_eq!(
            legacy.db.total_tuples(),
            arena.db.total_tuples() as u64,
            "{workload}/{strategy}: fact totals diverged"
        );
        facts = arena.metrics.new_facts;
    }

    let per_sec = |facts: u64, d: Duration| facts as f64 / d.as_secs_f64().max(1e-9);
    let legacy_fps = per_sec(facts, legacy_best);
    let arena_fps = per_sec(facts, arena_best);
    let per_fact = |allocs: u64| allocs as f64 / (facts as f64).max(1.0);
    vec![
        workload.to_string(),
        strategy.to_string(),
        facts.to_string(),
        ms(legacy_best),
        ms(arena_best),
        format!("{legacy_fps:.0}"),
        format!("{arena_fps:.0}"),
        format!("{:.2}", arena_fps / legacy_fps.max(1e-9)),
        format!("{:.1}", per_fact(legacy_allocs)),
        format!("{:.1}", per_fact(arena_allocs)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engines_agree_and_table_is_well_formed() {
        // `case_row` asserts metric equality internally; surviving the run
        // is the differential check. Small sizes keep the debug build fast.
        let t = run_with(60, 6, 40, 1);
        assert_eq!(t.rows.len(), 9);
        for row in &t.rows {
            let facts: u64 = row[2].parse().unwrap();
            assert!(facts > 0, "{row:?}");
            let speedup: f64 = row[7].parse().unwrap();
            assert!(speedup > 0.0, "{row:?}");
        }
    }
}
