//! E3 (Table 3): the power theorem — Alexander-template bottom-up
//! evaluation materialises exactly OLDT's call and answer tables.

use crate::table::Table;
use alexander_core::check_power_correspondence;
use alexander_ir::{Atom, Symbol, Term};
use alexander_parser::parse_atom;
use alexander_storage::Database;
use alexander_workload as workload;

pub fn run() -> Table {
    let mut t = Table::new(
        "E3",
        "power correspondence: |call_p^a| vs OLDT calls, |ans_p^a| vs OLDT answers",
        "The reproduced paper's headline result. For every adorned \
         predicate, the call/answer relations the Alexander-transformed \
         program materialises bottom-up must equal OLDT's call/answer \
         tables exactly — not approximately. `holds` must read `yes` on \
         every row.",
        &[
            "workload",
            "adorned pred",
            "alex calls",
            "oldt calls",
            "alex answers",
            "oldt answers",
            "holds",
        ],
    );

    let cases: Vec<(&str, alexander_ir::Program, Database, Atom)> = vec![
        (
            "ancestor chain(100)",
            workload::ancestor(),
            workload::chain("par", 100),
            parse_atom("anc(n0, X)").unwrap(),
        ),
        (
            "sg tree(6)",
            workload::same_generation(),
            {
                let (db, _) = workload::sg_tree(6);
                db
            },
            {
                let (_, seed) = workload::sg_tree(6);
                Atom {
                    pred: Symbol::intern("sg"),
                    terms: vec![Term::Const(seed), Term::var("Y")],
                }
            },
        ),
        (
            "tc grid(6)",
            workload::transitive_closure(),
            workload::grid("e", 6),
            parse_atom("tc(n0, X)").unwrap(),
        ),
        (
            "tc random(60, 300, seed 11)",
            workload::transitive_closure(),
            workload::random_graph("e", 60, 300, 11),
            parse_atom("tc(n0, X)").unwrap(),
        ),
        (
            "anc all-free chain(30)",
            workload::ancestor(),
            workload::chain("par", 30),
            parse_atom("anc(X, Y)").unwrap(),
        ),
    ];

    for (name, program, edb, query) in cases {
        let c = check_power_correspondence(&program, &edb, &query).expect("both sides run");
        for row in &c.rows {
            t.row(vec![
                name.to_string(),
                format!("{}^{}", row.pred, row.adornment),
                row.alexander_calls.to_string(),
                row.oldt_calls.to_string(),
                row.alexander_answers.to_string(),
                row.oldt_answers.to_string(),
                if row.matches() {
                    "yes".into()
                } else {
                    "NO".into()
                },
            ]);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_theorem_holds_on_every_row() {
        let t = run();
        assert!(!t.rows.is_empty());
        for row in &t.rows {
            assert_eq!(row[6], "yes", "{row:?}");
        }
    }
}
