//! F7 (figure): the blocked columnar executor vs the tuple-at-a-time join.
//!
//! Both sides are the *current* engine: the same `compile_rule` output, the
//! same arena storage, the same governance hooks. The only difference is the
//! rule executor — [`ExecMode::Blocked`] drives compiled plans over
//! fixed-size binding blocks and hashes each head row once, while
//! [`ExecMode::Tuple`] is the retained per-tuple oracle. Every rep asserts
//! the two executors' fact totals, round counts and firing/probe/duplicate
//! counters are exactly equal before any timing is reported, so the
//! facts/sec ratio isolates the execution layer.
//!
//! The committed `BENCH_F7.json` records a `--release` run; the CI
//! perf-smoke job re-runs `chain(450)/seminaive` and fails on a >20%
//! blocked-facts/sec regression against it. The acceptance bar for the
//! blocked executor was a ≥1.5× facts/sec win on that same row.

use crate::table::{ms, timed, Table};
use alexander_eval::{eval_seminaive_opts, EvalOptions, ExecMode};
use alexander_ir::Program;
use alexander_parser::parse_atom;
use alexander_storage::Database;
use alexander_transform::{alexander, sup_magic_sets, SipOptions};
use alexander_workload as workload;
use std::time::Duration;

/// Timing repetitions per executor; the minimum is reported.
const REPS: usize = 3;

pub fn run() -> Table {
    run_with(450, 12, 250, REPS)
}

/// Parameterised run (tests use small sizes and one repetition).
pub fn run_with(chain_n: usize, tree_depth: usize, crossover_n: usize, reps: usize) -> Table {
    let mut t = Table::new(
        "F7",
        "figure: blocked columnar executor vs tuple-at-a-time join",
        "Each row evaluates the same program twice on the same arena \
         engine: once per-tuple (the retained oracle) and once through \
         compiled rule plans driven in 1024-row binding blocks, probing \
         the projection indexes with a single in-place hash per key and \
         hashing each derived head exactly once for the \
         contains/insert/dedup triple. Fact totals, rounds and all \
         inference counters are asserted equal before timing, so the \
         facts/sec ratio isolates the execution layer. `rows/block` is \
         the blocked run's mean occupancy. The committed BENCH_F7.json \
         is the CI perf-smoke baseline for chain/seminaive blocked \
         facts/sec.",
        &[
            "workload",
            "strategy",
            "facts",
            "rounds",
            "firings",
            "tuple_ms",
            "blocked_ms",
            "tuple_facts_per_sec",
            "blocked_facts_per_sec",
            "speedup",
            "rows_per_block",
        ],
    );

    let chain = workload::chain("par", chain_n);
    let (tree, _) = workload::tree("par", 2, tree_depth);
    let crossover = workload::chain("par", crossover_n);
    let anc = workload::ancestor();

    let cases: Vec<(String, &Database, &str)> = vec![
        (format!("chain({chain_n})"), &chain, "anc(n0, X)"),
        (format!("tree(2,{tree_depth})"), &tree, "anc(n0, X)"),
        // Free query: wide deltas, the blocked path's best case — every
        // block runs near capacity.
        (format!("crossover({crossover_n})"), &crossover, "anc(X, Y)"),
    ];

    for (name, edb, query) in &cases {
        let q = parse_atom(query).unwrap();
        let opts = SipOptions::default();
        let strategies: Vec<(&str, Program)> = vec![
            ("seminaive", anc.clone()),
            ("alexander", alexander(&anc, &q, opts).unwrap().program),
            ("supmagic", sup_magic_sets(&anc, &q, opts).unwrap().program),
        ];
        for (sname, program) in strategies {
            t.row(case_row(name, sname, &program, edb, reps));
        }
    }
    t
}

fn case_row(
    workload: &str,
    strategy: &str,
    program: &Program,
    edb: &Database,
    reps: usize,
) -> Vec<String> {
    let tuple_opts = EvalOptions::default().with_exec(ExecMode::Tuple);
    let blocked_opts = EvalOptions::default();
    let mut tuple_best = Duration::MAX;
    let mut blocked_best = Duration::MAX;
    let mut facts = 0u64;
    let mut rounds = 0u64;
    let mut firings = 0u64;
    let mut rows_per_block = 0.0f64;

    for rep in 0..reps.max(1) {
        // Alternate the order so warm-up and turbo effects do not
        // systematically favour one executor.
        let (tuple, d_tuple, blocked, d_blocked) = if rep % 2 == 0 {
            let (tuple, dt) = timed(|| eval_seminaive_opts(program, edb, tuple_opts.clone()));
            let (blocked, db) = timed(|| eval_seminaive_opts(program, edb, blocked_opts.clone()));
            (tuple.unwrap(), dt, blocked.unwrap(), db)
        } else {
            let (blocked, db) = timed(|| eval_seminaive_opts(program, edb, blocked_opts.clone()));
            let (tuple, dt) = timed(|| eval_seminaive_opts(program, edb, tuple_opts.clone()));
            (tuple.unwrap(), dt, blocked.unwrap(), db)
        };
        tuple_best = tuple_best.min(d_tuple);
        blocked_best = blocked_best.min(d_blocked);

        // The comparison is only meaningful if both executors did identical
        // logical work, counter for counter.
        assert_eq!(
            tuple.metrics, blocked.metrics,
            "{workload}/{strategy}: executors diverged"
        );
        assert_eq!(
            tuple.db.total_tuples(),
            blocked.db.total_tuples(),
            "{workload}/{strategy}: fact totals diverged"
        );
        assert!(
            blocked.metrics.exec.blocks_executed > 0,
            "{workload}/{strategy}: blocked run executed no blocks"
        );
        facts = blocked.metrics.new_facts;
        rounds = blocked.metrics.iterations;
        firings = blocked.metrics.firings;
        rows_per_block = blocked.metrics.exec.rows_per_block();
    }

    let per_sec = |facts: u64, d: Duration| facts as f64 / d.as_secs_f64().max(1e-9);
    let tuple_fps = per_sec(facts, tuple_best);
    let blocked_fps = per_sec(facts, blocked_best);
    vec![
        workload.to_string(),
        strategy.to_string(),
        facts.to_string(),
        rounds.to_string(),
        firings.to_string(),
        ms(tuple_best),
        ms(blocked_best),
        format!("{tuple_fps:.0}"),
        format!("{blocked_fps:.0}"),
        format!("{:.2}", blocked_fps / tuple_fps.max(1e-9)),
        format!("{rows_per_block:.1}"),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn executors_agree_and_table_is_well_formed() {
        // `case_row` asserts counter equality internally; surviving the run
        // is the differential check. Small sizes keep the debug build fast.
        let t = run_with(60, 6, 40, 1);
        assert_eq!(t.rows.len(), 9);
        for row in &t.rows {
            let facts: u64 = row[2].parse().unwrap();
            assert!(facts > 0, "{row:?}");
            let speedup: f64 = row[9].parse().unwrap();
            assert!(speedup > 0.0, "{row:?}");
            let occupancy: f64 = row[10].parse().unwrap();
            assert!(occupancy > 0.0, "{row:?}");
        }
    }
}
