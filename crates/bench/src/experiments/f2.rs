//! F2 (Figure 2): runtime and facts vs same-generation tree depth.

use crate::table::{ms, timed, Table};
use alexander_core::{Engine, Strategy};
use alexander_ir::{Atom, Symbol, Term};
use alexander_workload as workload;

/// The sweep depths (binary tree: 2^(d+1)-1 nodes).
pub const DEPTHS: [usize; 4] = [4, 5, 6, 7];

/// The strategies plotted.
pub const SERIES: [Strategy; 5] = [
    Strategy::SemiNaive,
    Strategy::Magic,
    Strategy::SupplementaryMagic,
    Strategy::Alexander,
    Strategy::Oldt,
];

pub fn run() -> Table {
    run_with(&DEPTHS)
}

/// Parameterised sweep.
pub fn run_with(depths: &[usize]) -> Table {
    let mut t = Table::new(
        "F2",
        "figure: same-generation(seed, Y) vs tree depth (series = strategy)",
        "The nonlinear recursion makes full bottom-up explode with the \
         square of the generation width while the goal-directed strategies \
         follow only the seed's ancestor path and its generations. Expected \
         shape: widening gap as depth grows, goal-directed series clustered.",
        &[
            "depth",
            "strategy",
            "answers",
            "facts",
            "inferences",
            "time_ms",
        ],
    );

    for &depth in depths {
        let (edb, seed) = workload::sg_tree(depth);
        let engine = Engine::new(workload::same_generation(), edb).unwrap();
        let q = Atom {
            pred: Symbol::intern("sg"),
            terms: vec![Term::Const(seed), Term::var("Y")],
        };
        for s in SERIES {
            let (r, d) = timed(|| engine.query(&q, s).unwrap());
            let inferences = r
                .report
                .eval
                .map(|m| m.firings)
                .or(r.report.oldt.map(|m| m.resolution_steps))
                .unwrap_or(0);
            t.row(vec![
                depth.to_string(),
                s.name().to_string(),
                r.answers.len().to_string(),
                r.report.facts_materialised.to_string(),
                inferences.to_string(),
                ms(d),
            ]);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_agree_on_answers_per_depth() {
        let t = run_with(&[3, 4]);
        for depth in [3usize, 4] {
            let rows: Vec<_> = t
                .rows
                .iter()
                .filter(|r| r[0] == depth.to_string())
                .collect();
            assert_eq!(rows.len(), SERIES.len());
            let first = &rows[0][2];
            assert!(rows.iter().all(|r| &r[2] == first), "{rows:?}");
        }
    }

    #[test]
    fn goal_directed_beats_full_on_facts() {
        let t = run_with(&[5]);
        let facts = |name: &str| -> u64 {
            t.rows.iter().find(|r| r[1] == name).unwrap()[3]
                .parse()
                .unwrap()
        };
        assert!(facts("alexander") < facts("seminaive"));
    }
}
