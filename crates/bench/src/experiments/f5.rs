//! F5 (figure): governance overhead — a governed-but-never-tripped run vs
//! the ungoverned baseline.
//!
//! The resource governor sits on the hottest path in the system (one check
//! per rule firing, via the claim-before-emit wrapper in `join_rule`), so
//! its cost when budgets are generous must be negligible: the `active: bool`
//! fast path reduces an absent budget to one branch, and a present-but-
//! roomy budget to a couple of relaxed atomic updates amortised over the
//! deadline stride. This experiment pins that claim with numbers: each
//! workload/strategy pair runs ungoverned and then under a budget orders of
//! magnitude larger than what the run consumes, best-of-N each, and the
//! table reports the relative overhead. The committed `BENCH_F5.json`
//! records a `--release` run; the acceptance bar is < 5% overhead. (The
//! bar was < 2% on the tuple-at-a-time engine; the blocked executor cut
//! the per-fact baseline ~1.6×, so the constant per-fact claim is now a
//! proportionally larger slice of a much shorter run.)

use crate::table::{ms, timed, Table};
use alexander_core::eval::Budget;
use alexander_core::{Engine, Strategy};
use alexander_parser::parse_atom;
use alexander_workload as workload;
use std::time::Duration;

/// Timing repetitions; bare and governed runs are interleaved and the
/// minimum of each is reported (least-noise estimator).
const REPS: usize = 25;

pub fn run() -> Table {
    run_with(450, 250, REPS)
}

/// Parameterised run (tests use small sizes and fewer reps).
pub fn run_with(chain_n: usize, crossover_n: usize, reps: usize) -> Table {
    let mut t = Table::new(
        "F5",
        "figure: governance overhead, governed-but-unhit vs ungoverned",
        "Same workloads and strategies as the F4 sweep, sequential rounds. \
         `governed` attaches a budget far above what the run consumes \
         (nothing ever trips), `ungoverned` attaches none. Each repetition \
         times the two back-to-back in alternating order and records their \
         ratio; the reported overhead is the median ratio (adjacent pairing \
         plus the median cancels machine drift and turbo effects; small \
         negative values are noise). The per-firing governor check is one \
         status load plus one relaxed counter bump, with cancellation and \
         the deadline amortised over a 1024-firing stride, so overhead must \
         stay within a few percent (< 5% since the blocked executor \
         shortened the per-fact baseline) — this table is the regression \
         tripwire for that bound.",
        &[
            "workload",
            "strategy",
            "answers",
            "facts",
            "ungoverned_ms",
            "governed_ms",
            "overhead_pct",
        ],
    );

    // A budget no run here comes near: the chain(450) closure derives ~102k
    // facts in ~450 rounds; give two orders of magnitude of headroom.
    let roomy = Budget::default()
        .with_timeout_ms(600_000)
        .with_max_facts(50_000_000)
        .with_max_rounds(1_000_000);

    let chain = workload::chain("par", chain_n);
    let crossover = workload::chain("par", crossover_n);
    let cases: Vec<(String, &alexander_storage::Database, &str, Strategy)> = vec![
        (
            format!("chain({chain_n})"),
            &chain,
            "anc(n0, X)",
            Strategy::Alexander,
        ),
        (
            format!("chain({chain_n})"),
            &chain,
            "anc(n0, X)",
            Strategy::SemiNaive,
        ),
        (
            format!("crossover({crossover_n})"),
            &crossover,
            "anc(X, Y)",
            Strategy::Alexander,
        ),
        (
            format!("crossover({crossover_n})"),
            &crossover,
            "anc(X, Y)",
            Strategy::SemiNaive,
        ),
    ];

    for (name, edb, query, strategy) in cases {
        let q = parse_atom(query).unwrap();
        let bare = Engine::new(workload::ancestor(), (*edb).clone()).unwrap();
        let governed = Engine::new(workload::ancestor(), (*edb).clone())
            .unwrap()
            .with_budget(roomy);

        let mut best_bare = Duration::MAX;
        let mut best_gov = Duration::MAX;
        let mut ratios: Vec<f64> = Vec::with_capacity(reps);
        let mut reference: Option<alexander_core::QueryResult> = None;
        for rep in 0..reps.max(1) {
            // Alternate which variant runs first so warm-up and turbo
            // effects do not systematically favour one side.
            let (r, d_bare, g, d_gov) = if rep % 2 == 0 {
                let (r, db) = timed(|| bare.query(&q, strategy).unwrap());
                let (g, dg) = timed(|| governed.query(&q, strategy).unwrap());
                (r, db, g, dg)
            } else {
                let (g, dg) = timed(|| governed.query(&q, strategy).unwrap());
                let (r, db) = timed(|| bare.query(&q, strategy).unwrap());
                (r, db, g, dg)
            };
            best_bare = best_bare.min(d_bare);
            best_gov = best_gov.min(d_gov);
            ratios.push(d_gov.as_secs_f64() / d_bare.as_secs_f64().max(1e-9));
            // A never-tripped budget must be invisible in the results.
            assert!(g.report.completion.is_complete(), "{name}/{strategy}");
            assert_eq!(g.answers, r.answers, "{name}/{strategy}");
            assert_eq!(g.report.eval, r.report.eval, "{name}/{strategy}");
            reference = Some(r);
        }
        // invariant: reps.max(1) ran the loop at least once.
        let r = reference.expect("at least one timed repetition");
        ratios.sort_by(|a, b| a.total_cmp(b));
        let overhead = ratios[ratios.len() / 2] - 1.0;
        t.row(vec![
            name.clone(),
            strategy.name().to_string(),
            r.answers.len().to_string(),
            r.report.facts_materialised.to_string(),
            ms(best_bare),
            ms(best_gov),
            format!("{:+.2}", overhead * 100.0),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn governed_runs_match_ungoverned_results() {
        // The assertions inside run_with are the test; small sizes keep the
        // debug-mode run quick. Overhead itself is only meaningful under
        // --release, so here just check the table shape.
        let t = run_with(60, 40, 1);
        assert_eq!(t.rows.len(), 4);
        for row in &t.rows {
            assert!(
                row[6].starts_with('+') || row[6].starts_with('-'),
                "{row:?}"
            );
        }
    }
}
