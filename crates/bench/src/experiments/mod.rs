//! The experiment suite: one module per table/figure of EXPERIMENTS.md.
//!
//! Each `run()` returns a [`crate::table::Table`]; the `harness`
//! binary prints them. Sizes are chosen so a debug run of the whole suite
//! stays under a minute; a `--release` run is what EXPERIMENTS.md records.

pub mod e1;
pub mod e10;
pub mod e11;
pub mod e12;
pub mod e13;
pub mod e2;
pub mod e3;
pub mod e4;
pub mod e5;
pub mod e6;
pub mod e7;
pub mod e8;
pub mod e9;
pub mod f1;
pub mod f10;
pub mod f2;
pub mod f3;
pub mod f4;
pub mod f5;
pub mod f6;
pub mod f7;
pub mod f8;
pub mod f9;

use crate::table::{ms, timed, Table};
use alexander_core::{Engine, Strategy};
use alexander_ir::Atom;

/// Every experiment, in report order.
pub fn all() -> Vec<Table> {
    vec![
        e1::run(),
        e2::run(),
        e3::run(),
        e4::run(),
        e5::run(),
        e6::run(),
        e7::run(),
        e8::run(),
        e9::run(),
        e10::run(),
        e11::run(),
        e12::run(),
        e13::run(),
        f1::run(),
        f2::run(),
        f3::run(),
        f4::run(),
        f5::run(),
        f6::run(),
        f7::run(),
        f8::run(),
        f9::run(),
        f10::run(),
    ]
}

/// Looks up one experiment by id (case-insensitive).
pub fn by_id(id: &str) -> Option<Table> {
    let run: fn() -> Table = match id.to_ascii_lowercase().as_str() {
        "e1" => e1::run,
        "e2" => e2::run,
        "e3" => e3::run,
        "e4" => e4::run,
        "e5" => e5::run,
        "e6" => e6::run,
        "e7" => e7::run,
        "e8" => e8::run,
        "e9" => e9::run,
        "e10" => e10::run,
        "e11" => e11::run,
        "e12" => e12::run,
        "e13" => e13::run,
        "f1" => f1::run,
        "f2" => f2::run,
        "f3" => f3::run,
        "f4" => f4::run,
        "f5" => f5::run,
        "f6" => f6::run,
        "f7" => f7::run,
        "f8" => f8::run,
        "f9" => f9::run,
        "f10" => f10::run,
        _ => return None,
    };
    Some(run())
}

/// All experiment ids, in report order.
pub const IDS: [&str; 23] = [
    "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13", "f1", "f2",
    "f3", "f4", "f5", "f6", "f7", "f8", "f9", "f10",
];

/// The per-strategy row every comparison table shares: run the query, report
/// answers / facts / calls / inference counters / time.
pub(crate) fn strategy_row(engine: &Engine, query: &Atom, strategy: Strategy) -> Vec<String> {
    let (result, elapsed) = timed(|| engine.query(query, strategy));
    match result {
        Ok(r) => {
            let (firings, iters) = match (&r.report.eval, &r.report.oldt) {
                (Some(m), _) => (m.firings, m.iterations),
                (None, Some(m)) => (m.resolution_steps, 0),
                _ => (0, 0),
            };
            vec![
                strategy.name().to_string(),
                r.answers.len().to_string(),
                r.report.facts_materialised.to_string(),
                r.report
                    .calls
                    .map(|c| c.to_string())
                    .unwrap_or_else(|| "-".into()),
                firings.to_string(),
                iters.to_string(),
                ms(elapsed),
            ]
        }
        Err(e) => {
            let reason = match e {
                alexander_core::EngineError::Eval(_) => "n/a (needs negation support)",
                alexander_core::EngineError::Oldt(_) => "n/a (not stratified)",
                _ => "error",
            };
            vec![
                strategy.name().to_string(),
                reason.to_string(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
            ]
        }
    }
}

/// Header matching [`strategy_row`].
pub(crate) const STRATEGY_COLUMNS: [&str; 7] = [
    "strategy",
    "answers",
    "facts",
    "calls",
    "inferences",
    "rounds",
    "time_ms",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn by_id_finds_every_listed_experiment() {
        // Only check resolution, not execution (the full suite runs in the
        // harness integration test).
        assert!(by_id("nope").is_none());
        assert!(IDS.contains(&"e3"));
    }
}
