//! Criterion bench for E1: every strategy answering the bound ancestor
//! query on a chain (one benchmark per strategy).

use alexander_core::{Engine, Strategy};
use alexander_parser::parse_atom;
use alexander_workload as workload;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let engine = Engine::new(workload::ancestor(), workload::chain("par", 200)).unwrap();
    let query = parse_atom("anc(n100, X)").unwrap();

    let mut g = c.benchmark_group("e1_ancestor_chain200_bf");
    g.sample_size(20);
    for s in Strategy::ALL {
        g.bench_function(s.name(), |b| {
            b.iter(|| black_box(engine.query(&query, s).unwrap().answers.len()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
