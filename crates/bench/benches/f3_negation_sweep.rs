//! Criterion bench for F3: conditional-fixpoint runtime vs win–move game
//! size, acyclic vs cyclic series.

use alexander_eval::eval_conditional;
use alexander_workload as workload;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let program = workload::win_move();
    let mut g = c.benchmark_group("f3_negation_sweep");
    g.sample_size(10);
    for n in [40usize, 80, 160] {
        let dag = workload::random_dag("move", n, n * 5 / 2, n as u64);
        let cyc = workload::random_graph("move", n, n * 5 / 2, n as u64);
        g.bench_with_input(BenchmarkId::new("dag", n), &n, |b, _| {
            b.iter(|| black_box(eval_conditional(&program, &dag).unwrap().db.total_tuples()))
        });
        g.bench_with_input(BenchmarkId::new("cyclic", n), &n, |b, _| {
            b.iter(|| black_box(eval_conditional(&program, &cyc).unwrap().undefined.len()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
