//! Criterion bench for F1: strategy runtime vs chain length (the figure's
//! series, one benchmark per point).

use alexander_core::{Engine, Strategy};
use alexander_parser::parse_atom;
use alexander_workload as workload;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("f1_chain_sweep_bf");
    g.sample_size(10);
    for n in [50usize, 100, 200, 400] {
        let engine = Engine::new(workload::ancestor(), workload::chain("par", n)).unwrap();
        let query = parse_atom("anc(n0, X)").unwrap();
        for s in [
            Strategy::SemiNaive,
            Strategy::Magic,
            Strategy::SupplementaryMagic,
            Strategy::Alexander,
            Strategy::Oldt,
        ] {
            g.bench_with_input(BenchmarkId::new(s.name(), n), &n, |b, _| {
                b.iter(|| black_box(engine.query(&query, s).unwrap().answers.len()))
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
