//! Criterion bench for E5: the all-free crossover — plain semi-naive vs the
//! rewritings when the query binds nothing.

use alexander_core::{Engine, Strategy};
use alexander_parser::parse_atom;
use alexander_workload as workload;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let engine = Engine::new(workload::ancestor(), workload::chain("par", 120)).unwrap();
    let query = parse_atom("anc(X, Y)").unwrap();

    let mut g = c.benchmark_group("e5_crossover_chain120_ff");
    g.sample_size(10);
    for s in [
        Strategy::SemiNaive,
        Strategy::Magic,
        Strategy::SupplementaryMagic,
        Strategy::Alexander,
        Strategy::Oldt,
    ] {
        g.bench_function(s.name(), |b| {
            b.iter(|| black_box(engine.query(&query, s).unwrap().answers.len()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
