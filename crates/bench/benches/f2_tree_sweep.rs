//! Criterion bench for F2: strategy runtime vs same-generation tree depth.

use alexander_core::{Engine, Strategy};
use alexander_ir::{Atom, Symbol, Term};
use alexander_workload as workload;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("f2_tree_sweep_bf");
    g.sample_size(10);
    for depth in [4usize, 5, 6] {
        let (edb, seed) = workload::sg_tree(depth);
        let engine = Engine::new(workload::same_generation(), edb).unwrap();
        let query = Atom {
            pred: Symbol::intern("sg"),
            terms: vec![Term::Const(seed), Term::var("Y")],
        };
        for s in [
            Strategy::SemiNaive,
            Strategy::Magic,
            Strategy::SupplementaryMagic,
            Strategy::Alexander,
            Strategy::Oldt,
        ] {
            g.bench_with_input(BenchmarkId::new(s.name(), depth), &depth, |b, _| {
                b.iter(|| black_box(engine.query(&query, s).unwrap().answers.len()))
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
