//! Criterion bench for E2: every strategy on the bound same-generation
//! query over the classical tree EDB.

use alexander_core::{Engine, Strategy};
use alexander_ir::{Atom, Symbol, Term};
use alexander_workload as workload;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let (edb, seed) = workload::sg_tree(6);
    let engine = Engine::new(workload::same_generation(), edb).unwrap();
    let query = Atom {
        pred: Symbol::intern("sg"),
        terms: vec![Term::Const(seed), Term::var("Y")],
    };

    let mut g = c.benchmark_group("e2_same_generation_tree6_bf");
    g.sample_size(20);
    for s in Strategy::ALL {
        g.bench_function(s.name(), |b| {
            b.iter(|| black_box(engine.query(&query, s).unwrap().answers.len()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
