//! Criterion bench for F4: parallel semi-naive wall-clock vs thread count.
//!
//! One benchmark per (workload, strategy, threads) point; the companion
//! experiment table (`harness f4`) reports speedup and facts/sec from the
//! same sweep.

use alexander_core::{Engine, Strategy};
use alexander_parser::parse_atom;
use alexander_workload as workload;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("f4_parallel_speedup");
    g.sample_size(10);

    let chain = workload::chain("par", 300);
    let (tree, _) = workload::tree("par", 2, 8);
    let crossover = workload::chain("par", 200);
    let cases: [(&str, &alexander_storage::Database, &str, Strategy); 5] = [
        ("chain/alexander", &chain, "anc(n0, X)", Strategy::Alexander),
        (
            "chain/supmagic",
            &chain,
            "anc(n0, X)",
            Strategy::SupplementaryMagic,
        ),
        ("chain/seminaive", &chain, "anc(n0, X)", Strategy::SemiNaive),
        ("tree/alexander", &tree, "anc(n0, X)", Strategy::Alexander),
        (
            "crossover/seminaive",
            &crossover,
            "anc(X, Y)",
            Strategy::SemiNaive,
        ),
    ];

    for (name, edb, query, strategy) in cases {
        let q = parse_atom(query).unwrap();
        for threads in [1usize, 2, 4, 8] {
            let engine = Engine::new(workload::ancestor(), edb.clone())
                .unwrap()
                .with_threads(threads);
            g.bench_with_input(BenchmarkId::new(name, threads), &threads, |b, _| {
                b.iter(|| black_box(engine.query(&q, strategy).unwrap().answers.len()))
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
