//! Criterion microbenchmarks for the blocked executor's operators: batch
//! hash probes against the key-less projection index, built-in filters over
//! binding blocks, and head projection + single-hash emission. These time
//! the operator kernels in isolation; the end-to-end blocked-vs-tuple
//! comparison is experiment F7 in the harness.

use alexander_eval::BLOCK_ROWS;
use alexander_ir::{hash_row, Builtin, Const, RowHasher};
use alexander_storage::{Mask, Relation};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

/// A chain relation e(i, i+1) over integer constants, indexed on column 0.
fn chain_relation(n: usize) -> Relation {
    let mut rel = Relation::new(2);
    for i in 0..n {
        rel.insert_row(&[Const::int(i as i64), Const::int(i as i64 + 1)]);
    }
    rel.ensure_index(Mask::of_columns(&[0]));
    rel
}

fn bench_batch_probe(c: &mut Criterion) {
    let mut g = c.benchmark_group("f7_batch_probe");
    g.sample_size(20);
    for n in [1_000usize, 10_000, 100_000] {
        let rel = chain_relation(n);
        let mask = Mask::of_columns(&[0]);
        g.bench_with_input(BenchmarkId::new("block_of_keys", n), &n, |b, &n| {
            // One block's worth of probes, the executor's inner loop shape:
            // hash the key in place, narrow by a (non-trivial) id range,
            // verify the candidate column.
            b.iter(|| {
                let mut hits = 0usize;
                for i in 0..BLOCK_ROWS {
                    let key = Const::int((i % n) as i64);
                    let mut h = RowHasher::new();
                    h.push(&key);
                    let ids = rel
                        .probe_ids_in(mask, h.finish(), Some((0, n as u32)), |rep| rep[0] == key)
                        .unwrap_or(&[]);
                    hits += ids.len();
                }
                black_box(hits)
            })
        });
    }
    g.finish();
}

fn bench_batch_filter(c: &mut Criterion) {
    let mut g = c.benchmark_group("f7_batch_filter");
    g.sample_size(20);
    // A full binding block of (lhs, rhs) pairs; the filter keeps ~half.
    let rows: Vec<[Const; 2]> = (0..BLOCK_ROWS)
        .map(|i| [Const::int((i % 64) as i64), Const::int(32)])
        .collect();
    for b_in in [Builtin::Lt, Builtin::Neq] {
        g.bench_with_input(
            BenchmarkId::new("builtin", format!("{b_in:?}")),
            &b_in,
            |bch, &op| {
                bch.iter(|| {
                    let mut kept = 0usize;
                    for r in &rows {
                        if op.eval(r[0], r[1]) {
                            kept += 1;
                        }
                    }
                    black_box(kept)
                })
            },
        );
    }
    g.finish();
}

fn bench_head_project(c: &mut Criterion) {
    let mut g = c.benchmark_group("f7_head_project");
    g.sample_size(20);
    // Binding rows of width 3; the head keeps slots 0 and 2 — projection
    // plus the single `hash_row` the blocked emitter charges per head.
    let stride = 3usize;
    let bindings: Vec<Const> = (0..BLOCK_ROWS * stride)
        .map(|i| Const::int(i as i64))
        .collect();
    g.bench_with_input(
        BenchmarkId::new("project_and_hash", BLOCK_ROWS),
        &stride,
        |b, &stride| {
            let mut head: Vec<Const> = Vec::with_capacity(2);
            b.iter(|| {
                let mut acc = 0u64;
                for row in bindings.chunks_exact(stride) {
                    head.clear();
                    head.push(row[0]);
                    head.push(row[2]);
                    acc = acc.wrapping_add(hash_row(&head));
                }
                black_box(acc)
            })
        },
    );
    g.finish();
}

criterion_group!(
    benches,
    bench_batch_probe,
    bench_batch_filter,
    bench_head_project
);
criterion_main!(benches);
