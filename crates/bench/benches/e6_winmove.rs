//! Criterion bench for E6: the conditional fixpoint on win–move games.

use alexander_eval::eval_conditional;
use alexander_workload as workload;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let program = workload::win_move();
    let dag = workload::random_dag("move", 100, 250, 6);
    let cyc = workload::random_graph("move", 100, 250, 6);

    let mut g = c.benchmark_group("e6_winmove_100nodes");
    g.sample_size(10);
    g.bench_function("conditional_dag", |b| {
        b.iter(|| black_box(eval_conditional(&program, &dag).unwrap().db.total_tuples()))
    });
    g.bench_function("conditional_cyclic", |b| {
        b.iter(|| black_box(eval_conditional(&program, &cyc).unwrap().undefined.len()))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
