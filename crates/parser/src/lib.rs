//! # alexander-parser
//!
//! Text front-end for the alexander Datalog dialect.
//!
//! Syntax summary:
//!
//! ```text
//! % comment                         // comment
//! parent(adam, abel).               facts (ground atoms)
//! anc(X, Y) :- parent(X, Y).        rules
//! win(X) :- move(X, Y), !win(Y).    negation: `!`, `\+` or `not`
//! ?- anc(adam, X).                  queries
//! ```
//!
//! Variables start with an upper-case letter or `_`; `_` alone is an
//! anonymous variable, fresh at each occurrence. Constants are lower-case
//! identifiers, integers, or `'quoted symbols'`.
//!
//! ```
//! let parsed = alexander_parser::parse("p(a). q(X) :- p(X). ?- q(X).").unwrap();
//! assert_eq!(parsed.program.rules.len(), 1);
//! assert_eq!(parsed.queries[0].to_string(), "q(X)");
//! ```

pub mod parser;
pub mod token;

pub use parser::{parse, parse_atom, parse_rule, ParseError, ParsedProgram};
pub use token::{lex, LexError, Pos, Spanned, Tok};
