//! Recursive-descent parser producing [`alexander_ir`] programs.

use crate::token::{lex, Pos, Spanned, Tok};
use alexander_ir::{Atom, Literal, Program, Rule, Term, Var};
use std::fmt;

/// Parse errors with source position.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseError {
    pub pos: Pos,
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<crate::token::LexError> for ParseError {
    fn from(e: crate::token::LexError) -> ParseError {
        ParseError {
            pos: e.pos,
            message: e.message,
        }
    }
}

/// The result of parsing a source file: the program (rules + facts) and any
/// `?- goal.` queries, in source order.
#[derive(Clone, Debug, Default)]
pub struct ParsedProgram {
    pub program: Program,
    pub queries: Vec<Atom>,
}

struct Parser {
    toks: Vec<Spanned>,
    at: usize,
    /// Counter for anonymous `_` variables — each occurrence is fresh.
    anon: u32,
}

impl Parser {
    fn peek(&self) -> &Spanned {
        &self.toks[self.at]
    }

    fn next(&mut self) -> Spanned {
        let t = self.toks[self.at].clone();
        if self.at + 1 < self.toks.len() {
            self.at += 1;
        }
        t
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            pos: self.peek().pos,
            message: message.into(),
        })
    }

    fn expect(&mut self, want: &Tok, what: &str) -> Result<(), ParseError> {
        if &self.peek().tok == want {
            self.next();
            Ok(())
        } else {
            self.err(format!("expected {what}, found {}", self.peek().tok))
        }
    }

    fn term(&mut self) -> Result<Term, ParseError> {
        match self.peek().tok.clone() {
            Tok::Var(name) => {
                self.next();
                if name == "_" {
                    self.anon += 1;
                    Ok(Term::Var(Var::new(&format!("_Anon{}", self.anon))))
                } else {
                    Ok(Term::var(&name))
                }
            }
            Tok::Ident(name) => {
                self.next();
                Ok(Term::sym(&name))
            }
            Tok::Int(n) => {
                self.next();
                Ok(Term::int(n))
            }
            other => self.err(format!("expected a term, found {other}")),
        }
    }

    fn atom(&mut self) -> Result<Atom, ParseError> {
        let name = match self.peek().tok.clone() {
            Tok::Ident(name) => {
                self.next();
                name
            }
            other => return self.err(format!("expected a predicate name, found {other}")),
        };
        let mut terms = Vec::new();
        if self.peek().tok == Tok::LParen {
            self.next();
            loop {
                terms.push(self.term()?);
                match self.peek().tok {
                    Tok::Comma => {
                        self.next();
                    }
                    Tok::RParen => {
                        self.next();
                        break;
                    }
                    _ => return self.err("expected `,` or `)` in argument list"),
                }
            }
        }
        Ok(Atom::new(&name, terms))
    }

    fn literal(&mut self) -> Result<Literal, ParseError> {
        if self.peek().tok == Tok::Neg {
            self.next();
            Ok(Literal::neg(self.atom()?))
        } else {
            Ok(Literal::pos(self.atom()?))
        }
    }

    fn clause(&mut self, out: &mut ParsedProgram) -> Result<(), ParseError> {
        if self.peek().tok == Tok::Query {
            self.next();
            let goal = self.atom()?;
            self.expect(&Tok::Dot, "`.` after query")?;
            out.queries.push(goal);
            return Ok(());
        }
        let head = self.atom()?;
        match self.peek().tok {
            Tok::Dot => {
                self.next();
                if head.is_ground() {
                    out.program.facts.push(head);
                } else {
                    return self.err(format!("fact `{head}` contains variables"));
                }
            }
            Tok::Arrow => {
                self.next();
                let mut body = vec![self.literal()?];
                while self.peek().tok == Tok::Comma {
                    self.next();
                    body.push(self.literal()?);
                }
                self.expect(&Tok::Dot, "`.` after rule body")?;
                out.program.rules.push(Rule::new(head, body));
            }
            _ => return self.err("expected `.` or `:-` after clause head"),
        }
        Ok(())
    }
}

/// Parses a program source text.
///
/// ```
/// let parsed = alexander_parser::parse(
///     "anc(X, Y) :- par(X, Y). \
///      anc(X, Y) :- par(X, Z), anc(Z, Y). \
///      par(adam, abel). \
///      ?- anc(adam, X).",
/// ).unwrap();
/// assert_eq!(parsed.program.rules.len(), 2);
/// assert_eq!(parsed.program.facts.len(), 1);
/// assert_eq!(parsed.queries.len(), 1);
/// ```
pub fn parse(input: &str) -> Result<ParsedProgram, ParseError> {
    let toks = lex(input)?;
    let mut p = Parser {
        toks,
        at: 0,
        anon: 0,
    };
    let mut out = ParsedProgram::default();
    while p.peek().tok != Tok::Eof {
        p.clause(&mut out)?;
    }
    Ok(out)
}

/// Parses a single atom, e.g. a query goal like `anc(adam, X)`.
pub fn parse_atom(input: &str) -> Result<Atom, ParseError> {
    let toks = lex(input)?;
    let mut p = Parser {
        toks,
        at: 0,
        anon: 0,
    };
    let a = p.atom()?;
    if p.peek().tok == Tok::Dot {
        p.next();
    }
    if p.peek().tok != Tok::Eof {
        return p.err("trailing input after atom");
    }
    Ok(a)
}

/// Parses a single rule, e.g. `p(X) :- q(X), !r(X).`.
pub fn parse_rule(input: &str) -> Result<Rule, ParseError> {
    let parsed = parse(input)?;
    match (&parsed.program.rules[..], &parsed.program.facts[..]) {
        ([rule], []) => Ok(rule.clone()),
        ([], [fact]) => Ok(Rule::new(fact.clone(), Vec::new())),
        _ => Err(ParseError {
            pos: Pos { line: 1, col: 1 },
            message: "expected exactly one rule".into(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_facts_rules_and_queries() {
        let src = "
            % the ancestor program
            par(adam, abel).
            par(adam, 'Seth').
            anc(X, Y) :- par(X, Y).
            anc(X, Y) :- par(X, Z), anc(Z, Y).
            ?- anc(adam, X).
        ";
        let p = parse(src).unwrap();
        assert_eq!(p.program.facts.len(), 2);
        assert_eq!(p.program.rules.len(), 2);
        assert_eq!(p.queries.len(), 1);
        assert_eq!(p.queries[0].to_string(), "anc(adam, X)");
        assert!(p.program.validate().is_ok());
    }

    #[test]
    fn parses_negation_variants() {
        let r1 = parse_rule("win(X) :- move(X, Y), !win(Y).").unwrap();
        let r2 = parse_rule("win(X) :- move(X, Y), not win(Y).").unwrap();
        let r3 = parse_rule("win(X) :- move(X, Y), \\+win(Y).").unwrap();
        assert_eq!(r1, r2);
        assert_eq!(r2, r3);
        assert!(r1.body[1].is_negative());
    }

    #[test]
    fn zero_arity_atoms() {
        let p = parse("halt. go :- halt.").unwrap();
        assert_eq!(p.program.facts[0].to_string(), "halt");
        assert_eq!(p.program.rules[0].to_string(), "go :- halt.");
    }

    #[test]
    fn anonymous_variables_are_distinct() {
        let r = parse_rule("p(X) :- q(X, _), r(X, _).").unwrap();
        let v1 = r.body[0].atom.terms[1];
        let v2 = r.body[1].atom.terms[1];
        assert_ne!(v1, v2);
    }

    #[test]
    fn integers_in_facts() {
        let p = parse("age(adam, 930).").unwrap();
        assert_eq!(p.program.facts[0].to_string(), "age(adam, 930)");
    }

    #[test]
    fn non_ground_fact_is_rejected() {
        let e = parse("par(adam, X).").unwrap_err();
        assert!(e.message.contains("contains variables"), "{e}");
    }

    #[test]
    fn missing_dot_is_reported_with_position() {
        let e = parse("p(a)\nq(b).").unwrap_err();
        assert_eq!(e.pos.line, 2);
    }

    #[test]
    fn unbalanced_parens() {
        assert!(parse("p(a.").is_err());
        assert!(parse("p(a,).").is_err());
        assert!(parse("p a).").is_err());
    }

    #[test]
    fn parse_atom_helper() {
        let a = parse_atom("anc(adam, X)").unwrap();
        assert_eq!(a.to_string(), "anc(adam, X)");
        assert!(parse_atom("anc(adam, X) extra").is_err());
    }

    #[test]
    fn parse_rule_accepts_fact_as_bodyless_rule() {
        let r = parse_rule("p(a).").unwrap();
        assert!(r.body.is_empty());
        assert_eq!(r.head.to_string(), "p(a)");
    }

    #[test]
    fn display_parse_roundtrip() {
        let src = "sg(X, Y) :- flat(X, Y). sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).";
        let p1 = parse(src).unwrap();
        let printed = p1.program.to_string();
        let p2 = parse(&printed).unwrap();
        assert_eq!(p1.program.rules, p2.program.rules);
    }

    #[test]
    fn query_with_all_free_variables() {
        let p = parse("?- anc(X, Y).").unwrap();
        assert_eq!(p.queries[0].vars().count(), 2);
    }
}
