//! Lexer for the alexander Datalog dialect.
//!
//! Token classes: lower-case identifiers (predicate names and symbolic
//! constants), upper-case / underscore identifiers (variables), integers,
//! single-quoted symbols, punctuation (`( ) , . :- ? - !`), and the
//! negation keywords `!`, `\+` and `not`. Comments run from `%` or `//` to
//! end of line.

use std::fmt;

/// A source position (1-based line and column).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Pos {
    pub line: u32,
    pub col: u32,
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// One lexical token.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Tok {
    /// Lower-case identifier: predicate name or symbolic constant.
    Ident(String),
    /// Upper-case or `_`-prefixed identifier: variable.
    Var(String),
    /// Integer literal.
    Int(i64),
    LParen,
    RParen,
    Comma,
    Dot,
    /// `:-`
    Arrow,
    /// `?-`
    Query,
    /// `!` or `\+` or the keyword `not`.
    Neg,
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "identifier `{s}`"),
            Tok::Var(s) => write!(f, "variable `{s}`"),
            Tok::Int(n) => write!(f, "integer `{n}`"),
            Tok::LParen => write!(f, "`(`"),
            Tok::RParen => write!(f, "`)`"),
            Tok::Comma => write!(f, "`,`"),
            Tok::Dot => write!(f, "`.`"),
            Tok::Arrow => write!(f, "`:-`"),
            Tok::Query => write!(f, "`?-`"),
            Tok::Neg => write!(f, "negation"),
            Tok::Eof => write!(f, "end of input"),
        }
    }
}

/// A token with its starting position.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Spanned {
    pub tok: Tok,
    pub pos: Pos,
}

/// Lexer errors.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LexError {
    pub pos: Pos,
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenises `input`. The result always ends with [`Tok::Eof`].
pub fn lex(input: &str) -> Result<Vec<Spanned>, LexError> {
    let mut out = Vec::new();
    let bytes: Vec<char> = input.chars().collect();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;

    macro_rules! pos {
        () => {
            Pos { line, col }
        };
    }
    macro_rules! bump {
        () => {{
            if bytes[i] == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
            i += 1;
        }};
    }

    while i < bytes.len() {
        let c = bytes[i];
        let start = pos!();
        match c {
            ' ' | '\t' | '\r' | '\n' => bump!(),
            '%' => {
                while i < bytes.len() && bytes[i] != '\n' {
                    bump!();
                }
            }
            '/' if i + 1 < bytes.len() && bytes[i + 1] == '/' => {
                while i < bytes.len() && bytes[i] != '\n' {
                    bump!();
                }
            }
            '(' => {
                out.push(Spanned {
                    tok: Tok::LParen,
                    pos: start,
                });
                bump!();
            }
            ')' => {
                out.push(Spanned {
                    tok: Tok::RParen,
                    pos: start,
                });
                bump!();
            }
            ',' => {
                out.push(Spanned {
                    tok: Tok::Comma,
                    pos: start,
                });
                bump!();
            }
            '.' => {
                out.push(Spanned {
                    tok: Tok::Dot,
                    pos: start,
                });
                bump!();
            }
            '!' => {
                out.push(Spanned {
                    tok: Tok::Neg,
                    pos: start,
                });
                bump!();
            }
            '\\' if i + 1 < bytes.len() && bytes[i + 1] == '+' => {
                out.push(Spanned {
                    tok: Tok::Neg,
                    pos: start,
                });
                bump!();
                bump!();
            }
            ':' if i + 1 < bytes.len() && bytes[i + 1] == '-' => {
                out.push(Spanned {
                    tok: Tok::Arrow,
                    pos: start,
                });
                bump!();
                bump!();
            }
            '?' if i + 1 < bytes.len() && bytes[i + 1] == '-' => {
                out.push(Spanned {
                    tok: Tok::Query,
                    pos: start,
                });
                bump!();
                bump!();
            }
            '\'' => {
                bump!();
                let mut s = String::new();
                loop {
                    if i >= bytes.len() {
                        return Err(LexError {
                            pos: start,
                            message: "unterminated quoted symbol".into(),
                        });
                    }
                    if bytes[i] == '\'' {
                        bump!();
                        break;
                    }
                    s.push(bytes[i]);
                    bump!();
                }
                out.push(Spanned {
                    tok: Tok::Ident(s),
                    pos: start,
                });
            }
            '-' | '0'..='9' => {
                let negative = c == '-';
                let mut j = i + if negative { 1 } else { 0 };
                if negative && (j >= bytes.len() || !bytes[j].is_ascii_digit()) {
                    return Err(LexError {
                        pos: start,
                        message: "expected digits after `-`".into(),
                    });
                }
                let mut n: i64 = 0;
                let mut any = false;
                while j < bytes.len() && bytes[j].is_ascii_digit() {
                    n = n
                        .checked_mul(10)
                        .and_then(|m| m.checked_add((bytes[j] as u8 - b'0') as i64))
                        .ok_or_else(|| LexError {
                            pos: start,
                            message: "integer literal overflows i64".into(),
                        })?;
                    j += 1;
                    any = true;
                }
                debug_assert!(any || !negative);
                while i < j {
                    bump!();
                }
                out.push(Spanned {
                    tok: Tok::Int(if negative { -n } else { n }),
                    pos: start,
                });
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut s = String::new();
                while i < bytes.len() && (bytes[i].is_alphanumeric() || bytes[i] == '_') {
                    s.push(bytes[i]);
                    bump!();
                }
                // invariant: this arm only matches on an alphanumeric start
                // byte, so `s` holds at least that character.
                let first = s.chars().next().unwrap();
                let tok = if s == "not" {
                    Tok::Neg
                } else if first.is_uppercase() || first == '_' {
                    Tok::Var(s)
                } else {
                    Tok::Ident(s)
                };
                out.push(Spanned { tok, pos: start });
            }
            other => {
                return Err(LexError {
                    pos: start,
                    message: format!("unexpected character {other:?}"),
                });
            }
        }
    }
    out.push(Spanned {
        tok: Tok::Eof,
        pos: pos!(),
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<Tok> {
        lex(s).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn lexes_a_rule() {
        let ts = toks("anc(X, Y) :- par(X, Y).");
        assert_eq!(
            ts,
            vec![
                Tok::Ident("anc".into()),
                Tok::LParen,
                Tok::Var("X".into()),
                Tok::Comma,
                Tok::Var("Y".into()),
                Tok::RParen,
                Tok::Arrow,
                Tok::Ident("par".into()),
                Tok::LParen,
                Tok::Var("X".into()),
                Tok::Comma,
                Tok::Var("Y".into()),
                Tok::RParen,
                Tok::Dot,
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn negation_spellings() {
        assert_eq!(toks("!p")[0], Tok::Neg);
        assert_eq!(toks("\\+p")[0], Tok::Neg);
        assert_eq!(toks("not p")[0], Tok::Neg);
        // `notable` is an identifier, not a negation.
        assert_eq!(toks("notable")[0], Tok::Ident("notable".into()));
    }

    #[test]
    fn comments_are_skipped() {
        let ts = toks("% full line\np. // trailing\nq.");
        assert_eq!(ts.iter().filter(|t| matches!(t, Tok::Ident(_))).count(), 2);
    }

    #[test]
    fn integers_including_negative() {
        assert_eq!(toks("42")[0], Tok::Int(42));
        assert_eq!(toks("-7")[0], Tok::Int(-7));
        assert!(lex("- x").is_err());
    }

    #[test]
    fn quoted_symbols() {
        assert_eq!(toks("'Hello World'")[0], Tok::Ident("Hello World".into()));
        assert!(lex("'unterminated").is_err());
    }

    #[test]
    fn positions_are_tracked() {
        let ts = lex("p.\n q.").unwrap();
        assert_eq!(ts[0].pos, Pos { line: 1, col: 1 });
        assert_eq!(ts[2].pos, Pos { line: 2, col: 2 });
    }

    #[test]
    fn underscore_variables() {
        assert_eq!(toks("_")[0], Tok::Var("_".into()));
        assert_eq!(toks("_X")[0], Tok::Var("_X".into()));
    }

    #[test]
    fn query_marker() {
        assert_eq!(toks("?- p(X).")[0], Tok::Query);
    }

    #[test]
    fn rejects_garbage() {
        assert!(lex("p @ q").is_err());
    }

    #[test]
    fn integer_overflow_is_an_error() {
        assert!(lex("99999999999999999999").is_err());
    }
}
