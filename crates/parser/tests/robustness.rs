//! Parser robustness: arbitrary input must produce `Ok` or a located
//! `Err` — never a panic — and valid programs must round-trip.

use alexander_parser::{lex, parse};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// The lexer totally classifies arbitrary unicode soup.
    #[test]
    fn lexer_never_panics(input in ".*") {
        let _ = lex(&input);
    }

    /// Neither does the parser.
    #[test]
    fn parser_never_panics(input in ".*") {
        let _ = parse(&input);
    }

    /// Datalog-shaped noise: random interleavings of plausible tokens.
    #[test]
    fn parser_never_panics_on_token_soup(
        tokens in proptest::collection::vec(
            prop_oneof![
                Just("p".to_string()),
                Just("X".to_string()),
                Just("(".to_string()),
                Just(")".to_string()),
                Just(",".to_string()),
                Just(".".to_string()),
                Just(":-".to_string()),
                Just("?-".to_string()),
                Just("!".to_string()),
                Just("not".to_string()),
                Just("42".to_string()),
                Just("'q'".to_string()),
            ],
            0..30,
        )
    ) {
        let input = tokens.join(" ");
        let _ = parse(&input);
    }

    /// Error positions always point inside the input (or just past it).
    #[test]
    fn error_positions_are_in_range(input in "[a-zA-Z(),.:?! ]{0,40}") {
        if let Err(e) = parse(&input) {
            let lines: Vec<&str> = input.split('\n').collect();
            prop_assert!(e.pos.line as usize <= lines.len().max(1));
        }
    }
}
