//! Differential property tests for incremental maintenance: random
//! insert/delete sequences applied in mixed batches must leave the counting
//! engine, the DRed-forced engine, and a from-scratch recompute (at one and
//! four evaluation threads) with bit-identical databases — and the counting
//! engine's support column must satisfy its invariant at every step:
//! support > 0 iff the fact is derivable, and for counted (non-recursive)
//! predicates the count equals the distinct rule firings over the final
//! database plus one when the fact is externally stored in the EDB.

use alexander_eval::{
    compile_rule, eval_seminaive_opts, join_rule_bindings, EvalMetrics, EvalOptions,
    IncrementalEngine, JoinInput, JoinScratch, Maintenance,
};
use alexander_ir::{Atom, Predicate, Program};
use alexander_parser::{parse, parse_atom};
use alexander_storage::Database;
use proptest::prelude::*;
use std::collections::BTreeSet;
use std::ops::ControlFlow;

/// Program templates spanning the maintenance regimes: purely counted
/// strata, a recursive SCC (DRed fallback inside the counting engine), and
/// a counted stratum layered over a recursive one.
const TEMPLATES: [(&str, &[&str]); 3] = [
    (
        // Multi-rule counted head plus a counted head joining itself: plenty
        // of alternative derivations, zero recursion.
        "j(X, Z) :- e(X, Y), f(Y, Z).
         j(X, Y) :- g(X, Y).
         top(X, Z) :- j(X, Y), j(Y, Z).",
        &["e", "f", "g"],
    ),
    (
        // The classic recursive SCC: every idb fact may support itself.
        "tc(X, Y) :- e(X, Y).
         tc(X, Y) :- e(X, Z), tc(Z, Y).",
        &["e"],
    ),
    (
        // Counted stratum over a recursive one: the cascade crosses a
        // DRed group into a counting group.
        "tc(X, Y) :- e(X, Y).
         tc(X, Y) :- e(X, Z), tc(Z, Y).
         pair(X, Z) :- tc(X, Y), f(Y, Z).",
        &["e", "f"],
    ),
];

/// Constants the random facts draw from. Small on purpose: collisions are
/// what exercise duplicate support, net-out batches, and rederivation.
const UNIVERSE: usize = 5;

fn fact(pred: &str, a: usize, b: usize) -> Atom {
    parse_atom(&format!("{pred}(n{a}, n{b})")).unwrap()
}

fn snapshot(db: &Database) -> Vec<String> {
    let mut out: Vec<String> = db
        .predicates()
        .into_iter()
        .flat_map(|p| db.atoms_of(p))
        .map(|a| a.to_string())
        .collect();
    out.sort();
    out
}

/// Rebuilds the reference EDB from the model set of fact strings.
fn model_db(model: &BTreeSet<String>) -> Database {
    let mut db = Database::new();
    for f in model {
        db.insert_atom(&parse_atom(f).unwrap()).unwrap();
    }
    db
}

/// The support invariant, checked through the public API only: every atom
/// over the universe has support > 0 exactly when it is in `oracle`, and
/// counted predicates carry the exact firing count (plus external storage).
fn check_supports(inc: &IncrementalEngine, program: &Program, oracle: &Database) {
    let db = inc.db();
    // Distinct firings per counted head fact, recomputed by naive joins
    // over the oracle database.
    let mut firings: std::collections::HashMap<String, u32> = std::collections::HashMap::new();
    let mut scratch = JoinScratch::new();
    let mut metrics = EvalMetrics::default();
    for rule in &program.rules {
        let compiled = compile_rule(rule).unwrap();
        if !inc.is_counted(compiled.head.pred) {
            continue;
        }
        let input = JoinInput {
            total: oracle,
            delta: None,
            sides: None,
            negatives: None,
            governor: None,
        };
        let head = compiled.head.clone();
        let _ = join_rule_bindings(
            &compiled,
            &input,
            &mut scratch,
            &mut metrics,
            &mut |_, bind, _| {
                let t = head.to_tuple(bind).unwrap();
                let atom = t.to_atom(head.pred.name);
                *firings.entry(atom.to_string()).or_insert(0) += 1;
                ControlFlow::Continue(())
            },
        );
    }
    let edb = inc.edb();
    let mut preds: Vec<Predicate> = oracle.predicates();
    preds.extend(db.predicates());
    preds.sort();
    preds.dedup();
    for p in preds {
        for a in 0..UNIVERSE {
            for b in 0..UNIVERSE {
                let atom = fact(&p.name.to_string(), a, b);
                let support = inc.support_of(&atom);
                assert_eq!(
                    support > 0,
                    oracle.contains_atom(&atom),
                    "{atom}: support {support} disagrees with derivability"
                );
                if inc.is_counted(p) && support > 0 {
                    let external = u32::from(edb.contains_atom(&atom));
                    let expected = firings.get(&atom.to_string()).copied().unwrap_or(0) + external;
                    assert_eq!(support, expected, "{atom}: support drifted");
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_update_batches_keep_all_engines_identical(
        template in 0usize..TEMPLATES.len(),
        ops in proptest::collection::vec(
            (proptest::bool::ANY, 0usize..8, 0usize..UNIVERSE, 0usize..UNIVERSE),
            1..40,
        ),
        batch in 1usize..6,
    ) {
        let (rules, edb_preds) = TEMPLATES[template];
        let program = parse(rules).unwrap().program;
        let mut model: BTreeSet<String> = BTreeSet::new();
        let mut counting =
            IncrementalEngine::with_mode(program.clone(), Database::new(), Maintenance::Counting)
                .unwrap();
        let mut dred =
            IncrementalEngine::with_mode(program.clone(), Database::new(), Maintenance::Dred)
                .unwrap();
        for chunk in ops.chunks(batch) {
            let batch_ops: Vec<(bool, Atom)> = chunk
                .iter()
                .map(|&(insert, p, a, b)| (insert, fact(edb_preds[p % edb_preds.len()], a, b)))
                .collect();
            for (insert, atom) in &batch_ops {
                if *insert {
                    model.insert(atom.to_string());
                } else {
                    model.remove(&atom.to_string());
                }
            }
            counting.apply_batch(&batch_ops).unwrap();
            dred.apply_batch(&batch_ops).unwrap();

            let edb = model_db(&model);
            let seq = eval_seminaive_opts(&program, &edb, EvalOptions::with_threads(1))
                .unwrap()
                .db;
            let par = eval_seminaive_opts(&program, &edb, EvalOptions::with_threads(4))
                .unwrap()
                .db;
            let expected = snapshot(&seq);
            prop_assert_eq!(&snapshot(&par), &expected, "parallel recompute diverged");
            prop_assert_eq!(&snapshot(counting.db()), &expected, "counting diverged");
            prop_assert_eq!(&snapshot(dred.db()), &expected, "dred diverged");
            check_supports(&counting, &program, &seq);
        }
    }
}
