//! Fault-injection tests, compiled only with `--features failpoints`.
//!
//! These drive the evaluators through the same entry points production code
//! uses, with panics and delays injected at the instrumented sites, and
//! assert the robustness contract: a panicking worker becomes a structured
//! [`EvalError::WorkerPanicked`] (never a process abort), and a slow round
//! trips the wall-clock deadline into a sound partial result.
#![cfg(feature = "failpoints")]

use std::time::{Duration, Instant};

use alexander_eval::failpoints::{self, Action};
use alexander_eval::{
    eval_naive_parallel_opts, eval_seminaive_opts, Budget, Completion, EvalError, EvalOptions,
    Resource,
};
use alexander_parser::parse;
use alexander_storage::Database;

const TC: &str = "
    e(a, b). e(b, c). e(c, d). e(d, e).
    tc(X, Y) :- e(X, Y).
    tc(X, Y) :- e(X, Z), tc(Z, Y).
";

fn assert_worker_panicked(result: Result<alexander_eval::EvalResult, EvalError>, ctx: &str) {
    match result {
        Err(EvalError::WorkerPanicked { payload }) => {
            assert!(
                payload.contains("injected"),
                "{ctx}: payload should carry the injected message, got {payload:?}"
            );
        }
        Err(other) => panic!("{ctx}: expected WorkerPanicked, got {other}"),
        Ok(_) => panic!("{ctx}: expected WorkerPanicked, run succeeded"),
    }
}

#[test]
fn injected_worker_panic_is_a_structured_error_at_every_thread_count() {
    let _guard = failpoints::scoped();
    failpoints::configure(
        "round-worker",
        Action::Panic("injected worker panic".into()),
    );
    let parsed = parse(TC).unwrap();
    let edb = Database::new();
    for threads in [1, 2, 4, 8] {
        let opts = EvalOptions::with_threads(threads);
        assert_worker_panicked(
            eval_seminaive_opts(&parsed.program, &edb, opts.clone()),
            &format!("seminaive, {threads} threads"),
        );
        assert_worker_panicked(
            eval_naive_parallel_opts(&parsed.program, &edb, &opts),
            &format!("parallel naive, {threads} threads"),
        );
    }
}

#[test]
fn injected_panic_surfaces_after_all_workers_drain() {
    // With many threads alive when one panics, the error must still come
    // back through the normal return path — repeatedly, without poisoning
    // any shared state for subsequent clean runs.
    let _guard = failpoints::scoped();
    let parsed = parse(TC).unwrap();
    let edb = Database::new();
    for _ in 0..3 {
        failpoints::configure("round-worker", Action::Panic("injected repeat".into()));
        assert_worker_panicked(
            eval_seminaive_opts(&parsed.program, &edb, EvalOptions::with_threads(4)),
            "repeat run",
        );
        failpoints::remove("round-worker");
        let clean = eval_seminaive_opts(&parsed.program, &edb, EvalOptions::with_threads(4))
            .expect("clean run after a panicked one must succeed");
        assert_eq!(clean.completion, Completion::Complete);
    }
}

#[test]
fn slow_rounds_trip_the_wall_clock_deadline_deterministically() {
    // A 40ms injected delay per round against a 60ms deadline: the run must
    // stop after a bounded number of rounds, well before the ungoverned
    // fixpoint's worth of slow rounds, and report the deadline.
    let _guard = failpoints::scoped();
    failpoints::configure("round-start", Action::Sleep(Duration::from_millis(40)));
    let parsed = parse(TC).unwrap();
    let opts = EvalOptions::default().with_budget(Budget::default().with_timeout_ms(60));
    let started = Instant::now();
    let r = eval_seminaive_opts(&parsed.program, &Database::new(), opts).unwrap();
    let elapsed = started.elapsed();
    assert_eq!(
        r.completion,
        Completion::BudgetExhausted {
            resource: Resource::WallClock
        },
        "expected the deadline to trip, elapsed {elapsed:?}"
    );
    // The full fixpoint needs 5+ rounds (≥200ms of injected sleep); tripping
    // the deadline must cut that short. Generous bound for slow CI machines.
    assert!(
        elapsed < Duration::from_millis(160),
        "deadline overshot: {elapsed:?}"
    );
    // Partial results stay sound: whatever was derived is a subset of the
    // true fixpoint.
    failpoints::clear();
    let full =
        eval_seminaive_opts(&parsed.program, &Database::new(), EvalOptions::default()).unwrap();
    let tc = alexander_ir::Predicate::new("tc", 2);
    let partial: Vec<Vec<alexander_ir::Const>> =
        r.db.relation(tc)
            .map(|rel| rel.iter().map(<[_]>::to_vec).collect())
            .unwrap_or_default();
    for t in &partial {
        assert!(
            full.db.relation(tc).is_some_and(|rel| rel.contains_row(t)),
            "partial fact {t:?} not in the full fixpoint"
        );
    }
}

#[test]
fn alloc_pressure_rounds_still_complete() {
    // Heavy transient allocation per round must not change the result.
    let _guard = failpoints::scoped();
    failpoints::configure("round-start", Action::AllocPressure(4 << 20));
    let parsed = parse(TC).unwrap();
    let r = eval_seminaive_opts(&parsed.program, &Database::new(), EvalOptions::default()).unwrap();
    assert_eq!(r.completion, Completion::Complete);
    let tc = alexander_ir::Predicate::new("tc", 2);
    assert_eq!(r.db.len_of(tc), 10);
}
