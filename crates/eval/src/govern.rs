//! Resource governance: budgets, cooperative cancellation, and the
//! [`Completion`] status every evaluator reports.
//!
//! The SLD engine has always carried a step budget and a `complete` flag
//! (`alexander_topdown::SldOptions`); this module makes that idea uniform
//! across the whole system. A [`Budget`] declares limits (wall-clock
//! deadline, derived-fact count, fixpoint rounds, resolution/firing steps);
//! a [`Governor`] enforces them at run time; a [`CancelHandle`] lets another
//! thread request a cooperative stop. Evaluators consult the governor at
//! round boundaries *and* inside the join's emission path, so even a single
//! enormous round is interruptible, and on exhaustion they return a
//! well-formed partial result tagged [`Completion::BudgetExhausted`] or
//! [`Completion::Cancelled`] — never a torn state, never an error.
//!
//! ## Exactness of the fact budget
//!
//! The fact budget uses *claim-before-insert* semantics: an evaluator asks
//! the governor for a slot **before** materialising a fact it has verified
//! to be new. When the budget is exhausted the fact is refused and the run
//! stops, so a sequential run reports `BudgetExhausted { Facts }` **iff**
//! its database is a strict subset of the unbudgeted fixpoint (a refusal
//! witnesses a derivable missing fact; conversely, a fixpoint that fits the
//! budget never triggers a refusal). Parallel rounds share the claim
//! counter across workers; two workers claiming the same fresh fact each
//! consume a slot, so enforcement there is (slightly) conservative — the
//! partial database is still always a subset, and `Complete` still implies
//! the full fixpoint.
//!
//! When no limit is set and no cancel token installed, [`Governor::active`]
//! is false and every check is a single branch — governance costs nothing
//! on the default path and the relations/metrics determinism guarantees are
//! untouched.

use std::fmt;
use std::ops::ControlFlow;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The resource whose budget ran out.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Resource {
    /// The wall-clock deadline passed.
    WallClock,
    /// The derived-fact budget was used up.
    Facts,
    /// The fixpoint-round / iteration budget was used up.
    Rounds,
    /// The resolution-step / rule-firing budget was used up.
    Steps,
}

impl fmt::Display for Resource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Resource::WallClock => "wall-clock",
            Resource::Facts => "facts",
            Resource::Rounds => "rounds",
            Resource::Steps => "steps",
        })
    }
}

/// How an evaluation ended. Mirrors (and generalises) the SLD engine's
/// `complete` flag: `Complete` means the result is the full model /
/// answer set; anything else means a well-formed *partial* result.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Completion {
    /// The fixpoint (or search space) was fully computed.
    #[default]
    Complete,
    /// A resource budget ran out first; the result is a sound subset.
    BudgetExhausted { resource: Resource },
    /// A [`CancelHandle`] requested a stop; the result is a sound subset.
    Cancelled,
}

impl Completion {
    /// True iff the evaluation ran to the full fixpoint.
    pub fn is_complete(&self) -> bool {
        matches!(self, Completion::Complete)
    }
}

impl fmt::Display for Completion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Completion::Complete => f.write_str("complete"),
            Completion::BudgetExhausted { resource } => {
                write!(f, "budget exhausted ({resource})")
            }
            Completion::Cancelled => f.write_str("cancelled"),
        }
    }
}

/// Declarative resource limits for one evaluation. `Default` is unlimited.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Budget {
    /// Wall-clock limit for the whole run.
    pub timeout: Option<Duration>,
    /// Maximum *new* facts the run may materialise (derived facts only;
    /// the seed EDB is free).
    pub max_facts: Option<u64>,
    /// Maximum fixpoint rounds / iterations.
    pub max_rounds: Option<u64>,
    /// Maximum rule firings (bottom-up) or resolution steps (top-down).
    pub max_steps: Option<u64>,
}

impl Budget {
    /// No limits at all.
    pub const UNLIMITED: Budget = Budget {
        timeout: None,
        max_facts: None,
        max_rounds: None,
        max_steps: None,
    };

    /// True iff no limit is set.
    pub fn is_unlimited(&self) -> bool {
        self.timeout.is_none()
            && self.max_facts.is_none()
            && self.max_rounds.is_none()
            && self.max_steps.is_none()
    }

    /// Builder: wall-clock limit in milliseconds.
    pub fn with_timeout_ms(mut self, ms: u64) -> Budget {
        self.timeout = Some(Duration::from_millis(ms));
        self
    }

    /// Builder: derived-fact limit.
    pub fn with_max_facts(mut self, n: u64) -> Budget {
        self.max_facts = Some(n);
        self
    }

    /// Builder: fixpoint-round limit.
    pub fn with_max_rounds(mut self, n: u64) -> Budget {
        self.max_rounds = Some(n);
        self
    }

    /// Builder: firing / resolution-step limit.
    pub fn with_max_steps(mut self, n: u64) -> Budget {
        self.max_steps = Some(n);
        self
    }
}

/// A shareable cooperative cancellation token. Clones observe the same
/// flag; cancelling is sticky until [`CancelHandle::reset`].
#[derive(Clone, Debug, Default)]
pub struct CancelHandle(Arc<AtomicBool>);

impl CancelHandle {
    pub fn new() -> CancelHandle {
        CancelHandle::default()
    }

    /// Requests a stop. Running evaluations return partial results tagged
    /// [`Completion::Cancelled`] at their next governance check.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }

    /// Clears the flag so the handle can govern another run.
    pub fn reset(&self) {
        self.0.store(false, Ordering::Relaxed);
    }

    /// Same underlying flag (clones share it).
    pub fn same_token(&self, other: &CancelHandle) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }
}

/// What a run actually consumed, per governed resource.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Consumption {
    /// New facts materialised (claimed fact-budget slots).
    pub facts: u64,
    /// Fixpoint rounds / iterations entered.
    pub rounds: u64,
    /// Rule firings / resolution steps charged.
    pub steps: u64,
}

impl fmt::Display for Consumption {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "facts={} rounds={} steps={}",
            self.facts, self.rounds, self.steps
        )
    }
}

// Stop reasons, encoded for the first-stop-wins CAS.
const STOP_NONE: u8 = 0;
const STOP_WALL: u8 = 1;
const STOP_FACTS: u8 = 2;
const STOP_ROUNDS: u8 = 3;
const STOP_STEPS: u8 = 4;
const STOP_CANCEL: u8 = 5;

/// How many firings/steps go by between cancellation/wall-clock reads on
/// the per-firing path. Reading the clock (and even the shared cancel flag)
/// on every emission shows up in profiles; amortising keeps the
/// set-but-unhit overhead inside the <2% target (experiment F5) while
/// bounding the detection lag to ~a thousand emissions. Round boundaries
/// always run the full check.
const DEADLINE_STRIDE: u64 = 1024;

/// Run-time enforcement of a [`Budget`] plus cancellation. Shared by
/// reference across round workers (all state is atomic). The first limit
/// to trip wins and is sticky: every later check reports stop.
#[derive(Debug)]
pub struct Governor {
    deadline: Option<Instant>,
    max_facts: Option<u64>,
    max_rounds: Option<u64>,
    max_steps: Option<u64>,
    cancel: Option<CancelHandle>,
    facts: AtomicU64,
    rounds: AtomicU64,
    steps: AtomicU64,
    stop: AtomicU8,
    active: bool,
}

impl Governor {
    /// Builds a governor for one run. The deadline clock starts here.
    pub fn new(budget: Budget, cancel: Option<CancelHandle>) -> Governor {
        let active = !budget.is_unlimited() || cancel.is_some();
        Governor {
            deadline: budget.timeout.map(|t| Instant::now() + t),
            max_facts: budget.max_facts,
            max_rounds: budget.max_rounds,
            max_steps: budget.max_steps,
            cancel,
            facts: AtomicU64::new(0),
            rounds: AtomicU64::new(0),
            steps: AtomicU64::new(0),
            stop: AtomicU8::new(STOP_NONE),
            active,
        }
    }

    /// False when no limit and no cancel token are set: evaluators then
    /// skip governance entirely (pass `None` down the join).
    pub fn active(&self) -> bool {
        self.active
    }

    /// True when a step budget is set, i.e. every firing must be claimed
    /// individually through [`Governor::note_firing`] for exact accounting.
    /// Without one, the join layer batches its governance to a periodic
    /// [`Governor::check_interrupt`].
    pub fn counts_steps(&self) -> bool {
        self.max_steps.is_some()
    }

    /// `Some(self)` when active — the form the join input wants.
    pub fn as_join_ref(&self) -> Option<&Governor> {
        if self.active {
            Some(self)
        } else {
            None
        }
    }

    fn trip(&self, reason: u8) -> ControlFlow<()> {
        // First stop wins; later trips keep the original reason.
        let _ = self
            .stop
            .compare_exchange(STOP_NONE, reason, Ordering::Relaxed, Ordering::Relaxed);
        ControlFlow::Break(())
    }

    /// True once any limit tripped or cancellation was requested.
    pub fn should_stop(&self) -> bool {
        if !self.active {
            return false;
        }
        if self.stop.load(Ordering::Relaxed) != STOP_NONE {
            return true;
        }
        if self.cancel.as_ref().is_some_and(|c| c.is_cancelled()) {
            let _ = self.trip(STOP_CANCEL);
            return true;
        }
        false
    }

    /// Forced cancellation + deadline check. Callers have already verified
    /// the governor is active and not yet stopped.
    fn interrupted(&self) -> ControlFlow<()> {
        if self.cancel.as_ref().is_some_and(|c| c.is_cancelled()) {
            return self.trip(STOP_CANCEL);
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return self.trip(STOP_WALL);
            }
        }
        ControlFlow::Continue(())
    }

    /// Claims one rule firing / satisfying assignment **before** it is
    /// emitted. `Break` refuses the firing; like [`Governor::claim_fact`]
    /// this claim protocol lets a run that needs exactly `max_steps` firings
    /// finish `Complete`. Cancellation and the deadline are also observed
    /// here, amortised over [`DEADLINE_STRIDE`] firings — this is the
    /// innermost hot path, and round boundaries run the full check anyway.
    pub fn note_firing(&self) -> ControlFlow<()> {
        if !self.active {
            return ControlFlow::Continue(());
        }
        if self.stop.load(Ordering::Relaxed) != STOP_NONE {
            return ControlFlow::Break(());
        }
        let n = match self.max_steps {
            None => self.steps.fetch_add(1, Ordering::Relaxed) + 1,
            Some(max) => {
                let claimed = self
                    .steps
                    .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| {
                        if n < max {
                            Some(n + 1)
                        } else {
                            None
                        }
                    });
                match claimed {
                    Ok(prev) => prev + 1,
                    Err(_) => return self.trip(STOP_STEPS),
                }
            }
        };
        if n % DEADLINE_STRIDE == 0 {
            self.interrupted()
        } else {
            ControlFlow::Continue(())
        }
    }

    /// Claims one slot of the fact budget **before** a verified-new fact is
    /// materialised. `Break` refuses the fact: the caller must drop it and
    /// stop. This claim-before-insert protocol is what makes sequential
    /// `BudgetExhausted { Facts }` equivalent to "strict subset of the
    /// fixpoint" (see the module docs).
    pub fn claim_fact(&self) -> ControlFlow<()> {
        if !self.active {
            return ControlFlow::Continue(());
        }
        if self.stop.load(Ordering::Relaxed) != STOP_NONE {
            return ControlFlow::Break(());
        }
        match self.max_facts {
            None => {
                self.facts.fetch_add(1, Ordering::Relaxed);
                ControlFlow::Continue(())
            }
            Some(max) => {
                // `fetch_add` hands every concurrent claimer a distinct slot
                // number, so exactly `max` claims are granted — same
                // semantics as a CAS loop at the cost of a single RMW.
                let n = self.facts.fetch_add(1, Ordering::Relaxed);
                if n >= max {
                    // Repair so consumption reports claimed slots, not
                    // refused attempts.
                    self.facts.fetch_sub(1, Ordering::Relaxed);
                    return self.trip(STOP_FACTS);
                }
                ControlFlow::Continue(())
            }
        }
    }

    /// Charged at the top of every fixpoint round / iteration. `Break`
    /// means the round must not start.
    pub fn note_round(&self) -> ControlFlow<()> {
        if !self.active {
            return ControlFlow::Continue(());
        }
        if self.stop.load(Ordering::Relaxed) != STOP_NONE {
            return ControlFlow::Break(());
        }
        let rounds = self.rounds.fetch_add(1, Ordering::Relaxed) + 1;
        if self.max_rounds.is_some_and(|m| rounds > m) {
            return self.trip(STOP_ROUNDS);
        }
        // Round boundaries are rare: always read the cancel flag and clock.
        self.interrupted()
    }

    /// Deadline + cancellation check for call sites that do not charge a
    /// step (e.g. top-down worklist drains between resolution steps).
    pub fn check_interrupt(&self) -> ControlFlow<()> {
        if !self.active {
            return ControlFlow::Continue(());
        }
        if self.stop.load(Ordering::Relaxed) != STOP_NONE {
            return ControlFlow::Break(());
        }
        self.interrupted()
    }

    /// Step-budget check against an externally maintained counter (the
    /// top-down engines keep exact `resolution_steps` in their metrics and
    /// charge the governor with the running total instead of one-by-one).
    pub fn check_steps(&self, total_steps: u64) -> ControlFlow<()> {
        if !self.active {
            return ControlFlow::Continue(());
        }
        if self.stop.load(Ordering::Relaxed) != STOP_NONE {
            return ControlFlow::Break(());
        }
        self.steps.store(total_steps, Ordering::Relaxed);
        if self.max_steps.is_some_and(|m| total_steps >= m) {
            return self.trip(STOP_STEPS);
        }
        ControlFlow::Continue(())
    }

    /// The status a finished run should report.
    pub fn completion(&self) -> Completion {
        match self.stop.load(Ordering::Relaxed) {
            STOP_NONE => Completion::Complete,
            STOP_WALL => Completion::BudgetExhausted {
                resource: Resource::WallClock,
            },
            STOP_FACTS => Completion::BudgetExhausted {
                resource: Resource::Facts,
            },
            STOP_ROUNDS => Completion::BudgetExhausted {
                resource: Resource::Rounds,
            },
            STOP_STEPS => Completion::BudgetExhausted {
                resource: Resource::Steps,
            },
            // invariant: `trip` only ever stores the five codes above.
            _ => Completion::Cancelled,
        }
    }

    /// What the run consumed so far.
    pub fn consumption(&self) -> Consumption {
        Consumption {
            facts: self.facts.load(Ordering::Relaxed),
            rounds: self.rounds.load(Ordering::Relaxed),
            steps: self.steps.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_governor_is_inactive_and_free() {
        let g = Governor::new(Budget::default(), None);
        assert!(!g.active());
        assert!(g.as_join_ref().is_none());
        for _ in 0..10 {
            assert!(g.note_firing().is_continue());
            assert!(g.claim_fact().is_continue());
            assert!(g.note_round().is_continue());
        }
        assert_eq!(g.completion(), Completion::Complete);
        assert_eq!(g.consumption(), Consumption::default());
    }

    #[test]
    fn fact_budget_refuses_the_overflowing_claim() {
        let g = Governor::new(Budget::default().with_max_facts(3), None);
        assert!(g.active());
        for _ in 0..3 {
            assert!(g.claim_fact().is_continue());
        }
        assert!(g.claim_fact().is_break(), "4th claim must be refused");
        assert_eq!(
            g.completion(),
            Completion::BudgetExhausted {
                resource: Resource::Facts
            }
        );
        assert_eq!(g.consumption().facts, 3, "refused claims are not counted");
    }

    #[test]
    fn round_budget_trips_before_the_extra_round() {
        let g = Governor::new(Budget::default().with_max_rounds(2), None);
        assert!(g.note_round().is_continue());
        assert!(g.note_round().is_continue());
        assert!(g.note_round().is_break());
        assert_eq!(
            g.completion(),
            Completion::BudgetExhausted {
                resource: Resource::Rounds
            }
        );
    }

    #[test]
    fn step_budget_trips() {
        let g = Governor::new(Budget::default().with_max_steps(5), None);
        let mut fired = 0;
        while g.note_firing().is_continue() {
            fired += 1;
            assert!(fired < 100, "step budget never tripped");
        }
        assert_eq!(fired, 5);
        assert_eq!(
            g.completion(),
            Completion::BudgetExhausted {
                resource: Resource::Steps
            }
        );
    }

    #[test]
    fn expired_deadline_trips_at_a_round_boundary() {
        let g = Governor::new(Budget::default().with_timeout_ms(0), None);
        std::thread::sleep(Duration::from_millis(2));
        assert!(g.note_round().is_break());
        assert_eq!(
            g.completion(),
            Completion::BudgetExhausted {
                resource: Resource::WallClock
            }
        );
    }

    #[test]
    fn cancellation_is_observed_and_sticky() {
        let cancel = CancelHandle::new();
        let g = Governor::new(Budget::default(), Some(cancel.clone()));
        assert!(g.active());
        assert!(g.note_firing().is_continue());
        cancel.cancel();
        // Round boundaries observe cancellation immediately...
        assert!(g.check_interrupt().is_break());
        assert!(g.should_stop());
        assert_eq!(g.completion(), Completion::Cancelled);
        // Sticky even if the token is reset afterwards.
        cancel.reset();
        assert!(g.should_stop());
    }

    #[test]
    fn firings_observe_cancellation_within_one_stride() {
        let cancel = CancelHandle::new();
        let g = Governor::new(Budget::default(), Some(cancel.clone()));
        assert!(g.note_firing().is_continue());
        cancel.cancel();
        let mut fired = 0u64;
        while g.note_firing().is_continue() {
            fired += 1;
            assert!(
                fired <= DEADLINE_STRIDE,
                "per-firing path never observed cancellation"
            );
        }
        assert_eq!(g.completion(), Completion::Cancelled);
    }

    #[test]
    fn first_stop_reason_wins() {
        let cancel = CancelHandle::new();
        let g = Governor::new(Budget::default().with_max_facts(1), Some(cancel.clone()));
        assert!(g.claim_fact().is_continue());
        assert!(g.claim_fact().is_break()); // Facts trips first...
        cancel.cancel();
        let _ = g.note_firing(); // ...cancellation arrives later
        assert_eq!(
            g.completion(),
            Completion::BudgetExhausted {
                resource: Resource::Facts
            }
        );
    }

    #[test]
    fn cancel_handles_share_state_through_clones() {
        let a = CancelHandle::new();
        let b = a.clone();
        assert!(a.same_token(&b));
        b.cancel();
        assert!(a.is_cancelled());
        a.reset();
        assert!(!b.is_cancelled());
    }

    #[test]
    fn budget_builders_compose() {
        let b = Budget::default()
            .with_timeout_ms(250)
            .with_max_facts(10)
            .with_max_rounds(3)
            .with_max_steps(99);
        assert_eq!(b.timeout, Some(Duration::from_millis(250)));
        assert_eq!(b.max_facts, Some(10));
        assert_eq!(b.max_rounds, Some(3));
        assert_eq!(b.max_steps, Some(99));
        assert!(!b.is_unlimited());
        assert!(Budget::UNLIMITED.is_unlimited());
    }

    #[test]
    fn completion_displays() {
        assert_eq!(Completion::Complete.to_string(), "complete");
        assert_eq!(Completion::Cancelled.to_string(), "cancelled");
        assert_eq!(
            Completion::BudgetExhausted {
                resource: Resource::WallClock
            }
            .to_string(),
            "budget exhausted (wall-clock)"
        );
    }
}
