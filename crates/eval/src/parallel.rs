//! Parallel naive evaluation: within each fixpoint round, rules are joined
//! concurrently over the (immutable) current database using `std::thread`
//! scoped threads, and the per-rule results are merged afterwards.
//!
//! This exists as an ablation point: round-level parallelism is the natural
//! "free" parallelisation of bottom-up Datalog, and the benchmark harness
//! compares it against the sequential evaluators. The parallel *semi-naive*
//! evaluator lives in [`crate::seminaive`] and shares the same freeze →
//! fan-out → merge round structure, the same panic isolation (a worker
//! panic surfaces as [`EvalError::WorkerPanicked`], never an abort), and
//! the same governance checks (round boundary + per-emission).

use crate::error::EvalError;
use crate::exec::{exec_plan, ExecScratch};
use crate::fail_point;
use crate::govern::Governor;
use crate::join::{
    compile_rule, ensure_rule_indexes, join_rule, CompiledRule, Emitted, JoinInput, JoinScratch,
};
use crate::metrics::EvalMetrics;
use crate::naive::{check_semipositive, seed_database, EvalOptions, EvalResult};
use crate::plan::{compile_plans, RulePlan};
use crate::seminaive::payload_string;
use alexander_ir::{Predicate, Program};
use alexander_storage::Database;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Runs naive evaluation with `threads` worker threads per round.
pub fn eval_naive_parallel(
    program: &Program,
    edb: &Database,
    threads: usize,
) -> Result<EvalResult, EvalError> {
    eval_naive_parallel_opts(program, edb, &EvalOptions::with_threads(threads))
}

/// [`eval_naive_parallel`] with full options (budget, cancellation).
pub fn eval_naive_parallel_opts(
    program: &Program,
    edb: &Database,
    opts: &EvalOptions,
) -> Result<EvalResult, EvalError> {
    program.validate().map_err(EvalError::Invalid)?;
    check_semipositive(program)?;
    let rules: Vec<CompiledRule> = program
        .rules
        .iter()
        .map(|r| compile_rule(r).map_err(EvalError::from))
        .collect::<Result<_, _>>()?;
    let threads = opts.threads.max(1);
    let mut db = seed_database(program, edb);
    let mut metrics = EvalMetrics::default();
    let plans: Option<Vec<RulePlan>> = compile_plans(&rules, opts.exec, &mut metrics);
    // Workers chunk over (rule, plan) units so each rule travels with its
    // compiled plan when the blocked executor is selected.
    let units: Vec<(&CompiledRule, Option<&RulePlan>)> = rules
        .iter()
        .enumerate()
        .map(|(i, r)| (r, plans.as_ref().map(|ps| &ps[i])))
        .collect();
    let gov = Governor::new(opts.budget, opts.cancel.clone());
    let governor = gov.as_join_ref();

    loop {
        if gov.note_round().is_break() {
            break;
        }
        fail_point("round-start");
        metrics.iterations += 1;
        for r in &rules {
            ensure_rule_indexes(r, &mut db);
        }

        // Chunk the rules across workers; each worker derives candidate
        // tuples against the frozen database, deduplicating through a
        // worker-local staging database (plus an ordered derivation log) so
        // its own counters match what a sequential pass over the same rules
        // would report. Workers catch their own panics; a panic is surfaced
        // after all siblings drain.
        let chunk = units.len().div_ceil(threads);
        let db_ref = &db;
        type WorkerOut = (EvalMetrics, Database, Vec<(Predicate, u32)>);
        let results: Vec<std::thread::Result<WorkerOut>> = std::thread::scope(|scope| {
            let handles: Vec<_> = units
                .chunks(chunk.max(1))
                .map(|chunk_units| {
                    scope.spawn(move || {
                        catch_unwind(AssertUnwindSafe(|| {
                            let mut local_metrics = EvalMetrics::default();
                            let mut staging = Database::new();
                            let mut log: Vec<(Predicate, u32)> = Vec::new();
                            let mut scratch = JoinScratch::new();
                            let mut exec_scratch = ExecScratch::new();
                            for &(rule, plan) in chunk_units {
                                fail_point("round-worker");
                                let head = rule.head.pred;
                                let input = JoinInput {
                                    total: db_ref,
                                    delta: None,
                                    sides: None,
                                    negatives: None,
                                    governor,
                                };
                                let flow = match plan {
                                    Some(plan) => exec_plan(
                                        plan,
                                        &input,
                                        &mut exec_scratch,
                                        &mut local_metrics,
                                        &mut |h, row| {
                                            if db_ref.contains_row_hashed(head, h, row) {
                                                return Emitted::Duplicate;
                                            }
                                            if staging.contains_row_hashed(head, h, row) {
                                                return Emitted::Duplicate;
                                            }
                                            if governor.is_some_and(|g| g.claim_fact().is_break()) {
                                                return Emitted::Refused;
                                            }
                                            staging.insert_row_hashed(head, h, row);
                                            log.push((head, staging.len_of(head) as u32 - 1));
                                            Emitted::New
                                        },
                                    ),
                                    None => join_rule(
                                        rule,
                                        &input,
                                        &mut scratch,
                                        &mut local_metrics,
                                        &mut |row| {
                                            if db_ref.contains_row(head, row) {
                                                return Emitted::Duplicate;
                                            }
                                            if staging.contains_row(head, row) {
                                                return Emitted::Duplicate;
                                            }
                                            if governor.is_some_and(|g| g.claim_fact().is_break()) {
                                                return Emitted::Refused;
                                            }
                                            staging.insert_row(head, row);
                                            log.push((head, staging.len_of(head) as u32 - 1));
                                            Emitted::New
                                        },
                                    ),
                                };
                                if flow.is_break() {
                                    break;
                                }
                            }
                            (local_metrics, staging, log)
                        }))
                    })
                })
                .collect();
            handles
                .into_iter()
                // invariant: the worker catches its own panics via
                // catch_unwind, so the thread never terminates by panic.
                .map(|h| {
                    h.join()
                        .expect("worker panics are caught inside the worker")
                })
                .collect()
        });

        let mut panicked: Option<String> = None;
        let mut survived: Vec<WorkerOut> = Vec::with_capacity(results.len());
        for r in results {
            match r {
                Ok(out) => survived.push(out),
                Err(p) => {
                    if panicked.is_none() {
                        panicked = Some(payload_string(p));
                    }
                }
            }
        }
        if let Some(payload) = panicked {
            return Err(EvalError::WorkerPanicked { payload });
        }

        let mut grew = false;
        for (m, staging, log) in survived {
            metrics += m;
            for (p, id) in log {
                // invariant: every log entry was appended right after its
                // row was inserted into the worker's staging database.
                let row = staging
                    .relation(p)
                    .expect("logged predicate exists in staging")
                    .row(id);
                if db.insert_row(p, row) {
                    grew = true;
                } else {
                    // Two workers derived the same fresh fact: the sequential
                    // evaluator would have counted the second derivation as a
                    // duplicate, so reclassify it at merge time. Metrics stay
                    // exactly equal to the sequential run.
                    metrics.new_facts -= 1;
                    metrics.duplicate_facts += 1;
                }
            }
        }
        if gov.should_stop() || !grew {
            break;
        }
    }
    Ok(EvalResult {
        db,
        metrics,
        completion: gov.completion(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::govern::{Budget, Completion};
    use crate::naive::eval_naive;
    use alexander_ir::Predicate;
    use alexander_parser::parse;

    #[test]
    fn parallel_matches_sequential_answers() {
        let parsed = parse(
            "
            e(a, b). e(b, c). e(c, d). e(d, e5).
            tc(X, Y) :- e(X, Y).
            tc(X, Y) :- e(X, Z), tc(Z, Y).
            inv(Y, X) :- e(X, Y).
            two(X, Y) :- e(X, Z), e(Z, Y).
        ",
        )
        .unwrap();
        let seq = eval_naive(&parsed.program, &Database::new()).unwrap();
        for threads in [1, 2, 4] {
            let par = eval_naive_parallel(&parsed.program, &Database::new(), threads).unwrap();
            for p in [
                Predicate::new("tc", 2),
                Predicate::new("inv", 2),
                Predicate::new("two", 2),
            ] {
                assert_eq!(seq.db.len_of(p), par.db.len_of(p), "{p} @ {threads}");
            }
            assert_eq!(seq.metrics, par.metrics, "metrics @ {threads} threads");
            assert!(par.completion.is_complete());
        }
    }

    #[test]
    fn cross_worker_duplicates_are_reclassified() {
        // Both rules derive same(X, X) from the same EDB; with 2 workers they
        // land in different chunks, so every fact is derived fresh by both
        // workers and the merge must reclassify one derivation as a duplicate.
        let parsed = parse(
            "
            n(a). n(b). n(c).
            same(X, X) :- n(X).
            same(Y, Y) :- n(Y).
        ",
        )
        .unwrap();
        let seq = eval_naive(&parsed.program, &Database::new()).unwrap();
        let par = eval_naive_parallel(&parsed.program, &Database::new(), 2).unwrap();
        assert_eq!(seq.db.len_of(Predicate::new("same", 2)), 3);
        assert_eq!(seq.metrics, par.metrics);
        assert!(par.metrics.duplicate_facts >= 3, "{}", par.metrics);
    }

    #[test]
    fn zero_threads_is_clamped() {
        let parsed = parse("e(a, b). p(X) :- e(X, Y).").unwrap();
        let r = eval_naive_parallel(&parsed.program, &Database::new(), 0).unwrap();
        assert_eq!(r.db.len_of(Predicate::new("p", 1)), 1);
    }

    #[test]
    fn fact_budget_stops_parallel_rounds_with_sound_subset() {
        let parsed = parse(
            "
            e(a, b). e(b, c). e(c, d). e(d, e5).
            tc(X, Y) :- e(X, Y).
            tc(X, Y) :- e(X, Z), tc(Z, Y).
        ",
        )
        .unwrap();
        let full = eval_naive(&parsed.program, &Database::new()).unwrap();
        let tc = Predicate::new("tc", 2);
        for threads in [1, 2, 4] {
            let opts =
                EvalOptions::with_threads(threads).with_budget(Budget::default().with_max_facts(3));
            let r = eval_naive_parallel_opts(&parsed.program, &Database::new(), &opts).unwrap();
            assert!(
                matches!(r.completion, Completion::BudgetExhausted { .. }),
                "@ {threads} threads: {:?}",
                r.completion
            );
            assert!(r.db.len_of(tc) <= 3, "@ {threads} threads");
            for row in r.db.relation(tc).unwrap().iter() {
                assert!(full.db.relation(tc).unwrap().contains_row(row));
            }
        }
    }

    #[test]
    fn round_budget_stops_parallel_loop() {
        let parsed = parse(
            "
            e(a, b). e(b, c). e(c, d). e(d, e5).
            tc(X, Y) :- e(X, Y).
            tc(X, Y) :- e(X, Z), tc(Z, Y).
        ",
        )
        .unwrap();
        let r = eval_naive_parallel_opts(
            &parsed.program,
            &Database::new(),
            &EvalOptions::with_threads(2).with_budget(Budget::default().with_max_rounds(1)),
        )
        .unwrap();
        assert!(!r.completion.is_complete());
        assert_eq!(r.metrics.iterations, 1);
    }
}
