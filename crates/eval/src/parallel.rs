//! Parallel naive evaluation: within each fixpoint round, rules are joined
//! concurrently over the (immutable) current database using `std::thread`
//! scoped threads, and the per-rule results are merged afterwards.
//!
//! This exists as an ablation point: round-level parallelism is the natural
//! "free" parallelisation of bottom-up Datalog, and the benchmark harness
//! compares it against the sequential evaluators. The parallel *semi-naive*
//! evaluator lives in [`crate::seminaive`] and shares the same freeze →
//! fan-out → merge round structure.

use crate::error::EvalError;
use crate::join::{compile_rule, ensure_rule_indexes, join_rule, CompiledRule, JoinInput};
use crate::metrics::EvalMetrics;
use crate::naive::{check_semipositive, seed_database, EvalResult};
use alexander_ir::{FxHashSet, Predicate, Program};
use alexander_storage::{Database, Tuple};

/// Runs naive evaluation with `threads` worker threads per round.
pub fn eval_naive_parallel(
    program: &Program,
    edb: &Database,
    threads: usize,
) -> Result<EvalResult, EvalError> {
    program.validate().map_err(EvalError::Invalid)?;
    check_semipositive(program)?;
    let rules: Vec<CompiledRule> = program
        .rules
        .iter()
        .map(|r| compile_rule(r).map_err(EvalError::from))
        .collect::<Result<_, _>>()?;
    let threads = threads.max(1);
    let mut db = seed_database(program, edb);
    let mut metrics = EvalMetrics::default();

    loop {
        metrics.iterations += 1;
        for r in &rules {
            ensure_rule_indexes(r, &mut db);
        }

        // Chunk the rules across workers; each worker derives candidate
        // tuples against the frozen database, deduplicating through a
        // worker-local seen-set so its own counters match what a sequential
        // pass over the same rules would report.
        let chunk = rules.len().div_ceil(threads);
        let db_ref = &db;
        let results: Vec<(EvalMetrics, Vec<(Predicate, Tuple)>)> = std::thread::scope(|scope| {
            let handles: Vec<_> = rules
                .chunks(chunk.max(1))
                .map(|chunk_rules| {
                    scope.spawn(move || {
                        let mut local_metrics = EvalMetrics::default();
                        let mut derived: Vec<(Predicate, Tuple)> = Vec::new();
                        let mut seen: FxHashSet<(Predicate, Tuple)> = FxHashSet::default();
                        for rule in chunk_rules {
                            let head = rule.head.pred;
                            let input = JoinInput {
                                total: db_ref,
                                delta: None,
                                negatives: None,
                            };
                            join_rule(rule, &input, &mut local_metrics, &mut |t| {
                                if db_ref.relation(head).is_some_and(|r| r.contains(&t)) {
                                    return false;
                                }
                                let new = seen.insert((head, t.clone()));
                                if new {
                                    derived.push((head, t));
                                }
                                new
                            });
                        }
                        (local_metrics, derived)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });

        let mut grew = false;
        for (m, derived) in results {
            metrics += m;
            for (p, t) in derived {
                if db.insert(p, t) {
                    grew = true;
                } else {
                    // Two workers derived the same fresh fact: the sequential
                    // evaluator would have counted the second derivation as a
                    // duplicate, so reclassify it at merge time. Metrics stay
                    // exactly equal to the sequential run.
                    metrics.new_facts -= 1;
                    metrics.duplicate_facts += 1;
                }
            }
        }
        if !grew {
            break;
        }
    }
    Ok(EvalResult { db, metrics })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::eval_naive;
    use alexander_ir::Predicate;
    use alexander_parser::parse;

    #[test]
    fn parallel_matches_sequential_answers() {
        let parsed = parse(
            "
            e(a, b). e(b, c). e(c, d). e(d, e5).
            tc(X, Y) :- e(X, Y).
            tc(X, Y) :- e(X, Z), tc(Z, Y).
            inv(Y, X) :- e(X, Y).
            two(X, Y) :- e(X, Z), e(Z, Y).
        ",
        )
        .unwrap();
        let seq = eval_naive(&parsed.program, &Database::new()).unwrap();
        for threads in [1, 2, 4] {
            let par = eval_naive_parallel(&parsed.program, &Database::new(), threads).unwrap();
            for p in [
                Predicate::new("tc", 2),
                Predicate::new("inv", 2),
                Predicate::new("two", 2),
            ] {
                assert_eq!(seq.db.len_of(p), par.db.len_of(p), "{p} @ {threads}");
            }
            assert_eq!(seq.metrics, par.metrics, "metrics @ {threads} threads");
        }
    }

    #[test]
    fn cross_worker_duplicates_are_reclassified() {
        // Both rules derive same(X, X) from the same EDB; with 2 workers they
        // land in different chunks, so every fact is derived fresh by both
        // workers and the merge must reclassify one derivation as a duplicate.
        let parsed = parse(
            "
            n(a). n(b). n(c).
            same(X, X) :- n(X).
            same(Y, Y) :- n(Y).
        ",
        )
        .unwrap();
        let seq = eval_naive(&parsed.program, &Database::new()).unwrap();
        let par = eval_naive_parallel(&parsed.program, &Database::new(), 2).unwrap();
        assert_eq!(seq.db.len_of(Predicate::new("same", 2)), 3);
        assert_eq!(seq.metrics, par.metrics);
        assert!(par.metrics.duplicate_facts >= 3, "{}", par.metrics);
    }

    #[test]
    fn zero_threads_is_clamped() {
        let parsed = parse("e(a, b). p(X) :- e(X, Y).").unwrap();
        let r = eval_naive_parallel(&parsed.program, &Database::new(), 0).unwrap();
        assert_eq!(r.db.len_of(Predicate::new("p", 1)), 1);
    }
}
