//! Parallel naive evaluation: within each fixpoint round, rules are joined
//! concurrently over the (immutable) current database using crossbeam's
//! scoped threads, and the per-rule results are merged afterwards.
//!
//! This exists as an ablation point: round-level parallelism is the natural
//! "free" parallelisation of bottom-up Datalog, and the benchmark harness
//! compares it against the sequential evaluators. The deltas of semi-naive
//! evaluation parallelise the same way; naive keeps the ablation simple.

use crate::error::EvalError;
use crate::join::{compile_rule, ensure_rule_indexes, join_rule, CompiledRule, JoinInput};
use crate::metrics::EvalMetrics;
use crate::naive::{check_semipositive, seed_database, EvalResult};
use alexander_ir::Program;
use alexander_storage::{Database, Tuple};

/// Runs naive evaluation with `threads` worker threads per round.
pub fn eval_naive_parallel(
    program: &Program,
    edb: &Database,
    threads: usize,
) -> Result<EvalResult, EvalError> {
    program.validate().map_err(EvalError::Invalid)?;
    check_semipositive(program)?;
    let rules: Vec<CompiledRule> = program
        .rules
        .iter()
        .map(|r| compile_rule(r).map_err(EvalError::from))
        .collect::<Result<_, _>>()?;
    let threads = threads.max(1);
    let mut db = seed_database(program, edb);
    let mut metrics = EvalMetrics::default();

    loop {
        metrics.iterations += 1;
        for r in &rules {
            ensure_rule_indexes(r, &mut db);
        }

        // Chunk the rules across workers; each worker derives candidate
        // tuples against the frozen database.
        let chunk = rules.len().div_ceil(threads);
        let db_ref = &db;
        let results: Vec<(EvalMetrics, Vec<(alexander_ir::Predicate, Tuple)>)> =
            crossbeam::thread::scope(|scope| {
                let handles: Vec<_> = rules
                    .chunks(chunk.max(1))
                    .map(|chunk_rules| {
                        scope.spawn(move |_| {
                            let mut local_metrics = EvalMetrics::default();
                            let mut derived = Vec::new();
                            for rule in chunk_rules {
                                let head = rule.head.pred;
                                let input = JoinInput {
                                    total: db_ref,
                                    delta: None,
                                    negatives: None,
                                };
                                join_rule(rule, &input, &mut local_metrics, &mut |t| {
                                    let new = !db_ref
                                        .relation(head)
                                        .is_some_and(|r| r.contains(&t));
                                    if new {
                                        derived.push((head, t));
                                    }
                                    new
                                });
                            }
                            (local_metrics, derived)
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            })
            .expect("worker threads do not panic");

        let mut grew = false;
        for (m, derived) in results {
            metrics += m;
            // Duplicate counting across workers differs slightly from the
            // sequential evaluator (two workers may both derive a fact that
            // is new w.r.t. the frozen database); the insert below dedups.
            for (p, t) in derived {
                grew |= db.insert(p, t);
            }
        }
        if !grew {
            break;
        }
    }
    Ok(EvalResult { db, metrics })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::eval_naive;
    use alexander_ir::Predicate;
    use alexander_parser::parse;

    #[test]
    fn parallel_matches_sequential_answers() {
        let parsed = parse("
            e(a, b). e(b, c). e(c, d). e(d, e5).
            tc(X, Y) :- e(X, Y).
            tc(X, Y) :- e(X, Z), tc(Z, Y).
            inv(Y, X) :- e(X, Y).
            two(X, Y) :- e(X, Z), e(Z, Y).
        ")
        .unwrap();
        let seq = eval_naive(&parsed.program, &Database::new()).unwrap();
        for threads in [1, 2, 4] {
            let par = eval_naive_parallel(&parsed.program, &Database::new(), threads).unwrap();
            for p in [
                Predicate::new("tc", 2),
                Predicate::new("inv", 2),
                Predicate::new("two", 2),
            ] {
                assert_eq!(seq.db.len_of(p), par.db.len_of(p), "{p} @ {threads}");
            }
        }
    }

    #[test]
    fn zero_threads_is_clamped() {
        let parsed = parse("e(a, b). p(X) :- e(X, Y).").unwrap();
        let r = eval_naive_parallel(&parsed.program, &Database::new(), 0).unwrap();
        assert_eq!(r.db.len_of(Predicate::new("p", 1)), 1);
    }
}
