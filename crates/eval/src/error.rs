//! Evaluation errors.

use crate::order::Unorderable;
use alexander_ir::analysis::NotStratified;
use alexander_ir::{Predicate, ProgramError};
use std::fmt;

/// Anything that can stop an evaluator before it runs.
#[derive(Clone, Debug)]
pub enum EvalError {
    /// The program failed static validation (safety, arities, …).
    Invalid(Vec<ProgramError>),
    /// A rule body could not be ordered for evaluation.
    Unorderable(Unorderable),
    /// Naive/semi-naive evaluation was asked to run a program that negates an
    /// intensional predicate; those require the stratified or conditional
    /// evaluators.
    NegatedIdb(Predicate),
    /// The stratified evaluator was given an unstratifiable program.
    NotStratified(NotStratified),
    /// An incremental update targeted an intensional predicate (only EDB
    /// facts can be inserted or deleted).
    IdbUpdate(Predicate),
    /// A parallel round worker panicked. The panic is caught inside the
    /// worker, every sibling worker is drained first, and the payload is
    /// surfaced here instead of aborting the process or poisoning the
    /// thread scope.
    WorkerPanicked { payload: String },
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::Invalid(errs) => {
                write!(f, "invalid program:")?;
                for e in errs {
                    write!(f, "\n  {e}")?;
                }
                Ok(())
            }
            EvalError::Unorderable(e) => write!(f, "{e}"),
            EvalError::NegatedIdb(p) => write!(
                f,
                "predicate {p} is negated but intensional; use the stratified or conditional evaluator"
            ),
            EvalError::NotStratified(e) => write!(f, "{e}"),
            EvalError::IdbUpdate(p) => write!(
                f,
                "predicate {p} is intensional; only extensional facts can be updated"
            ),
            EvalError::WorkerPanicked { payload } => {
                write!(f, "evaluation worker panicked: {payload}")
            }
        }
    }
}

impl std::error::Error for EvalError {}

impl From<Unorderable> for EvalError {
    fn from(e: Unorderable) -> EvalError {
        EvalError::Unorderable(e)
    }
}

impl From<NotStratified> for EvalError {
    fn from(e: NotStratified) -> EvalError {
        EvalError::NotStratified(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = EvalError::NegatedIdb(Predicate::new("win", 1));
        assert!(e.to_string().contains("win/1"));
        let e = EvalError::Invalid(vec![]);
        assert!(e.to_string().contains("invalid program"));
        let e = EvalError::WorkerPanicked {
            payload: "boom".to_string(),
        };
        assert!(e.to_string().contains("worker panicked: boom"));
    }
}
