//! Evaluable body orderings.
//!
//! Negation as failure can only be decided on a *ground* literal, so a rule
//! body must be ordered such that every negative literal comes after positive
//! literals binding all its variables. Bry (PODS 1989, §3/§5.2) shows this
//! classically "procedural" requirement is exactly the restriction to
//! constructive proofs of *ordered conjunctions* — the `&` connective of his
//! constructive domain independence. The evaluators apply this reordering
//! internally; it never changes the set of answers, only evaluability.

use alexander_ir::{FxHashSet, Literal, Rule, Var};
use std::fmt;

/// Error: a rule body cannot be ordered so that negations are ground when
/// reached. Cannot happen for safe (range-restricted) rules.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Unorderable {
    pub rule: String,
}

impl fmt::Display for Unorderable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "rule `{}` has a negative literal whose variables no positive literal binds",
            self.rule
        )
    }
}

impl std::error::Error for Unorderable {}

/// Reorders the body of `rule` so every negative literal appears after
/// positive literals binding all its variables. Positive literals keep their
/// relative order (the SIP chosen upstream is preserved); each negative
/// literal is placed at the earliest point where it is ground.
pub fn order_for_evaluation(rule: &Rule) -> Result<Rule, Unorderable> {
    // Deferred literals are tests, not generators: negations and built-in
    // comparisons. Both need their variables ground before running.
    let deferred =
        |l: &&Literal| l.is_negative() || alexander_ir::Builtin::of(l.atom.predicate()).is_some();
    let mut pending_neg: Vec<&Literal> = rule.body.iter().filter(deferred).collect();
    let positives: Vec<&Literal> = rule.body.iter().filter(|l| !deferred(l)).collect();

    let mut bound: FxHashSet<Var> = FxHashSet::default();
    let mut out: Vec<Literal> = Vec::with_capacity(rule.body.len());

    let flush_ready =
        |bound: &FxHashSet<Var>, pending: &mut Vec<&Literal>, out: &mut Vec<Literal>| {
            pending.retain(|l| {
                if l.vars().all(|v| bound.contains(&v)) {
                    out.push((*l).clone());
                    false
                } else {
                    true
                }
            });
        };

    flush_ready(&bound, &mut pending_neg, &mut out);
    for l in positives {
        out.push(l.clone());
        bound.extend(l.vars());
        flush_ready(&bound, &mut pending_neg, &mut out);
    }

    if !pending_neg.is_empty() {
        return Err(Unorderable {
            rule: rule.to_string(),
        });
    }
    Ok(Rule::new(rule.head.clone(), out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use alexander_ir::{atom, Term};

    #[test]
    fn negation_moves_after_binding_literal() {
        // p(X) :- !q(X), r(X).   =>   p(X) :- r(X), !q(X).
        let r = Rule::new(
            atom("p", [Term::var("X")]),
            vec![
                Literal::neg(atom("q", [Term::var("X")])),
                Literal::pos(atom("r", [Term::var("X")])),
            ],
        );
        let o = order_for_evaluation(&r).unwrap();
        assert_eq!(o.to_string(), "p(X) :- r(X), !q(X).");
    }

    #[test]
    fn already_ordered_body_is_unchanged() {
        let r = Rule::new(
            atom("win", [Term::var("X")]),
            vec![
                Literal::pos(atom("move", [Term::var("X"), Term::var("Y")])),
                Literal::neg(atom("win", [Term::var("Y")])),
            ],
        );
        let o = order_for_evaluation(&r).unwrap();
        assert_eq!(o, r);
    }

    #[test]
    fn ground_negation_can_come_first() {
        let r = Rule::new(
            atom("p", [Term::var("X")]),
            vec![
                Literal::neg(atom("q", [Term::sym("a")])),
                Literal::pos(atom("r", [Term::var("X")])),
            ],
        );
        let o = order_for_evaluation(&r).unwrap();
        // The ground negation has no variables: it may stay first.
        assert!(o.body[0].is_negative());
    }

    #[test]
    fn positive_order_is_preserved() {
        let r = Rule::new(
            atom("p", [Term::var("X")]),
            vec![
                Literal::pos(atom("a", [Term::var("X")])),
                Literal::pos(atom("b", [Term::var("X"), Term::var("Y")])),
                Literal::neg(atom("c", [Term::var("Y")])),
                Literal::pos(atom("d", [Term::var("Y")])),
            ],
        );
        let o = order_for_evaluation(&r).unwrap();
        let names: Vec<String> = o.body.iter().map(|l| l.atom.pred.to_string()).collect();
        assert_eq!(names, ["a", "b", "c", "d"]);
    }

    #[test]
    fn unsafe_rule_is_unorderable() {
        let r = Rule::new(
            atom("p", [Term::var("X")]),
            vec![
                Literal::pos(atom("r", [Term::var("X")])),
                Literal::neg(atom("q", [Term::var("Z")])),
            ],
        );
        assert!(order_for_evaluation(&r).is_err());
    }
}
