//! Compiled rules and the nested-loop index join at the heart of every
//! bottom-up evaluator.
//!
//! Rules are compiled once per fixpoint run: variables become dense slots,
//! terms become [`Pat`]s, and each body literal gets the static [`Mask`] of
//! positions that are bound when the join reaches it left to right, plus the
//! precomputed `(column, source)` list those positions resolve from. Joining
//! then works on a flat `Vec<Option<Const>>` binding array with a shared
//! trail for backtracking — no hash-map substitutions, and **no heap
//! allocation per probe or per firing**: probe keys are hashed in place with
//! [`RowHasher`] (never materialised), candidates are read as `&[Const]`
//! rows straight out of the relation arena, and the instantiated head is
//! written into a reusable scratch buffer. All reusable buffers live in a
//! [`JoinScratch`] that callers keep for the whole run (one per worker).
//!
//! Semi-naive deltas arrive as [`DeltaSource::Spans`] — id ranges into the
//! total database — so a delta probe reuses the total's indexes and narrows
//! the (id-sorted) posting list with two binary searches. The incremental
//! engine's non-contiguous deltas still pass a separate database via
//! [`DeltaSource::Db`].
//!
//! The join is also where mid-round governance lives: when a
//! [`Governor`](crate::govern::Governor) rides along in the [`JoinInput`],
//! every emission charges it and the join unwinds with
//! [`ControlFlow::Break`] the moment a budget trips or cancellation is
//! requested — so even a single enormous round is interruptible.

use crate::govern::Governor;
use crate::metrics::EvalMetrics;
use crate::order::{order_for_evaluation, Unorderable};
use alexander_ir::{Atom, Const, FxHashMap, Polarity, Predicate, RowHasher, Rule, Term, Var};
use alexander_storage::{Database, DeltaSpans, Mask, Relation, Tuple};
use std::ops::ControlFlow;

/// A compiled term: a constant or a variable slot.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Pat {
    Const(Const),
    Var(u32),
}

/// A compiled atom pattern.
#[derive(Clone, Debug)]
pub struct AtomPat {
    pub pred: Predicate,
    pub args: Vec<Pat>,
}

impl AtomPat {
    /// Instantiates the pattern under `bind` into a tuple; `None` if any slot
    /// is unbound. Allocates — for cold paths (conditional statements,
    /// provenance); the join itself writes into scratch buffers instead.
    pub fn to_tuple(&self, bind: &[Option<Const>]) -> Option<Tuple> {
        let vals: Option<Vec<Const>> = self
            .args
            .iter()
            .map(|p| match p {
                Pat::Const(c) => Some(*c),
                Pat::Var(v) => bind[*v as usize],
            })
            .collect();
        vals.map(Tuple::from)
    }
}

/// One compiled body literal.
#[derive(Clone, Debug)]
pub struct BodyPat {
    pub atom: AtomPat,
    pub polarity: Polarity,
    /// Positions bound when the join reaches this literal (left-to-right).
    pub mask: Mask,
    /// The mask's columns with their value sources, ascending by column —
    /// precomputed so a probe hashes its key straight from the binding
    /// array without consulting the mask or allocating a key vector.
    pub bound: Vec<(u32, Pat)>,
}

/// A rule compiled for bottom-up joining.
#[derive(Clone, Debug)]
pub struct CompiledRule {
    pub head: AtomPat,
    pub body: Vec<BodyPat>,
    pub nvars: usize,
    /// The source rule (after evaluation ordering), for diagnostics.
    pub source: Rule,
}

/// Compiles `rule`, reordering its body for evaluability first. Fails only
/// on rules whose negations cannot be grounded (unsafe rules).
pub fn compile_rule(rule: &Rule) -> Result<CompiledRule, Unorderable> {
    compile_rule_inner(rule, false)
}

/// Compiles `rule` for head-seeded joining ([`join_rule_seeded`]): binding
/// masks are computed as if every head slot were already bound, so body
/// literals sharing head variables probe indexes with those constants
/// instead of scanning. A rederivation check over a seeded compilation is
/// an indexed point lookup; over a plain compilation it would start with a
/// full scan of the first literal.
pub fn compile_rule_seeded(rule: &Rule) -> Result<CompiledRule, Unorderable> {
    compile_rule_inner(rule, true)
}

fn compile_rule_inner(rule: &Rule, seed_head: bool) -> Result<CompiledRule, Unorderable> {
    let ordered = order_for_evaluation(rule)?;
    let mut slots: FxHashMap<Var, u32> = FxHashMap::default();
    let slot_of = |v: Var, slots: &mut FxHashMap<Var, u32>| -> u32 {
        let next = slots.len() as u32;
        *slots.entry(v).or_insert(next)
    };
    let compile_atom = |a: &Atom, slots: &mut FxHashMap<Var, u32>| AtomPat {
        pred: a.predicate(),
        args: a
            .terms
            .iter()
            .map(|t| match t {
                Term::Const(c) => Pat::Const(*c),
                Term::Var(v) => Pat::Var(slot_of(*v, slots)),
            })
            .collect(),
    };

    // Compile body first so masks reflect the evaluation order; safety
    // guarantees head slots are a subset of body slots. The seeded variant
    // compiles the head up front instead and marks its slots bound.
    let mut body = Vec::with_capacity(ordered.body.len());
    let mut bound_slots: Vec<bool> = Vec::new();
    let pre_head = if seed_head {
        let h = compile_atom(&ordered.head, &mut slots);
        bound_slots.resize(slots.len(), false);
        for p in &h.args {
            if let Pat::Var(v) = p {
                bound_slots[*v as usize] = true;
            }
        }
        Some(h)
    } else {
        None
    };
    for l in &ordered.body {
        let atom = compile_atom(&l.atom, &mut slots);
        bound_slots.resize(slots.len(), false);
        let mut cols = Vec::new();
        let mut bound = Vec::new();
        for (i, p) in atom.args.iter().enumerate() {
            let is_bound = match p {
                Pat::Const(_) => true,
                Pat::Var(v) => bound_slots[*v as usize],
            };
            if is_bound {
                cols.push(i);
                bound.push((i as u32, *p));
            }
        }
        let mask = Mask::of_columns(&cols);
        if l.polarity == Polarity::Positive {
            for p in &atom.args {
                if let Pat::Var(v) = p {
                    bound_slots[*v as usize] = true;
                }
            }
        }
        body.push(BodyPat {
            atom,
            polarity: l.polarity,
            mask,
            bound,
        });
    }
    let head = pre_head.unwrap_or_else(|| compile_atom(&ordered.head, &mut slots));
    Ok(CompiledRule {
        head,
        body,
        nvars: slots.len(),
        source: ordered,
    })
}

/// Where a delta-restricted literal reads its facts.
#[derive(Clone, Copy)]
pub enum DeltaSource<'a> {
    /// Per-predicate id ranges into [`JoinInput::total`] (the semi-naive
    /// representation: a delta is the contiguous suffix a round's merge
    /// appended, probed through the total's own indexes).
    Spans(&'a DeltaSpans),
    /// A separate database (the incremental engine's deltas are not
    /// contiguous id ranges of the total, so they stay materialised).
    Db(&'a Database),
}

/// How *non-delta* literals resolve their fact sources during a counting
/// update (see `incremental.rs`). The plain semi-naive delta join reads the
/// full total at every non-delta position, which enumerates a firing once
/// per delta position it matches — fine for set semantics, fatal for
/// counting. The triangle decomposition splits the space so every changed
/// firing is enumerated **exactly once**: position `i` reads the delta,
/// positions before `i` read one side of the change, positions after `i`
/// the other.
#[derive(Clone, Copy)]
pub enum SideSources<'a> {
    /// Insertion triangle (`delta` must be [`DeltaSource::Spans`]): new
    /// firings after a round's merge are `Σ_i join(old_{<i}, Δ_i,
    /// new_{>i})`. Literals *before* the delta position read only the ids
    /// below each span predicate's start (the pre-merge prefix); literals
    /// after it read the full (post-merge) total.
    InsertTriangle,
    /// Deletion triangle, applied after the victims were physically removed
    /// from the total: lost firings are `Σ_i join(new_{<i}, victims_i,
    /// old_{>i})`. Literals before the delta position read the (shrunken)
    /// total alone; literals after it read total ∪ `removed`.
    DeleteTriangle { removed: &'a Database },
    /// DRed overdelete: every non-delta literal reads total ∪ `removed`,
    /// reconstructing the pre-deletion database. Unlike the triangle this
    /// enumerates a lost firing once *per* delta position — sound for the
    /// set-valued doomed computation, and required when a dead derivation
    /// used removed facts at several positions.
    OldTotal { removed: &'a Database },
}

/// The fact sources a join reads from.
pub struct JoinInput<'a> {
    /// Full set of facts derived so far (plus the EDB).
    pub total: &'a Database,
    /// Semi-naive: the literal index that must match the delta, and the
    /// delta itself. `None` runs a naive (full) join.
    pub delta: Option<(usize, DeltaSource<'a>)>,
    /// Triangle/union resolution for the non-delta literals; `None` (the
    /// default) reads the full total there, as plain semi-naive does.
    pub sides: Option<SideSources<'a>>,
    /// Where negative literals are checked. Stratified evaluation passes the
    /// total database (lower strata complete); `None` defaults to `total`.
    pub negatives: Option<&'a Database>,
    /// Resource governor for this run; `None` (the ungoverned default)
    /// makes every check a no-op.
    pub governor: Option<&'a Governor>,
}

impl<'a> JoinInput<'a> {
    /// A plain naive join over `total` with no delta, no separate negative
    /// source, and no governance.
    pub fn naive(total: &'a Database) -> JoinInput<'a> {
        JoinInput {
            total,
            delta: None,
            sides: None,
            negatives: None,
            governor: None,
        }
    }
}

/// One enumerable source for a positive literal: a relation plus an
/// optional `[lo, hi)` id range restricting the scan.
pub(crate) type AccessSource<'a> = (&'a Relation, Option<(u32, u32)>);

/// Resolves the (up to two) `(relation, id range)` sources a positive
/// literal at body position `lit` enumerates, honouring the delta and any
/// [`SideSources`]. Shared by both executors so their emission sequences
/// stay bit-identical; the two sources are always disjoint (a removed fact
/// is by construction absent from the total), so enumerating them in order
/// needs no dedup.
#[inline]
pub(crate) fn resolve_access<'a>(
    input: &JoinInput<'a>,
    lit: usize,
    pred: Predicate,
) -> [Option<AccessSource<'a>>; 2] {
    let full = |db: &'a Database| db.relation(pred).map(|r| (r, None));
    match input.delta {
        Some((d, src)) if d == lit => match src {
            DeltaSource::Spans(spans) => {
                let span = spans.get(pred);
                [
                    span.and_then(|s| input.total.relation(pred).map(|r| (r, Some(s)))),
                    None,
                ]
            }
            DeltaSource::Db(db) => [full(db), None],
        },
        _ => match input.sides {
            None => [full(input.total), None],
            Some(SideSources::InsertTriangle) => {
                let before = matches!(input.delta, Some((d, _)) if lit < d);
                let prefix = if before {
                    match input.delta {
                        Some((_, DeltaSource::Spans(spans))) => spans.get(pred).map(|(lo, _)| lo),
                        _ => None,
                    }
                } else {
                    None
                };
                match prefix {
                    // The pre-merge prefix of a span predicate: ids [0, lo).
                    Some(lo) => [input.total.relation(pred).map(|r| (r, Some((0, lo)))), None],
                    None => [full(input.total), None],
                }
            }
            Some(SideSources::DeleteTriangle { removed }) => {
                if matches!(input.delta, Some((d, _)) if lit > d) {
                    [full(input.total), full(removed)]
                } else {
                    [full(input.total), None]
                }
            }
            Some(SideSources::OldTotal { removed }) => [full(input.total), full(removed)],
        },
    }
}

/// Reusable per-worker buffers for the join: the binding array, the
/// backtracking trail, and the head-row scratch. One `JoinScratch` serves a
/// whole fixpoint run — every `join_rule` call resets what it needs and
/// reuses the capacity, so steady-state joining performs no allocation at
/// all.
#[derive(Default)]
pub struct JoinScratch {
    bind: Vec<Option<Const>>,
    trail: Vec<u32>,
    head: Vec<Const>,
}

impl JoinScratch {
    /// Fresh scratch buffers.
    pub fn new() -> JoinScratch {
        JoinScratch::default()
    }
}

/// Firings between governor cancellation/deadline looks inside one join,
/// when no step budget demands exact per-firing claims. Matches the
/// governor's own deadline stride.
const INTERRUPT_STRIDE: u32 = 1024;

/// What happened to an emitted head tuple.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Emitted {
    /// The tuple was new and was recorded.
    New,
    /// The tuple was already known.
    Duplicate,
    /// The governor refused the fact-budget claim: the tuple was dropped
    /// and the join must stop. Refused emissions touch no metric counters,
    /// which is what keeps sequential `BudgetExhausted { Facts }`
    /// equivalent to "strict subset of the fixpoint".
    Refused,
}

/// Joins `rule`'s body over `input`, calling `emit` with the instantiated
/// head row for every satisfying assignment. The row lives in
/// `scratch.head` and is only valid for the duration of the call — copy it
/// (e.g. via `Database::insert_row`) to keep it. `emit` reports whether the
/// row was new, a duplicate, or refused by the fact budget; the join
/// returns [`ControlFlow::Break`] when it stopped early (refusal, or any
/// governor budget/cancellation trip).
pub fn join_rule(
    rule: &CompiledRule,
    input: &JoinInput<'_>,
    scratch: &mut JoinScratch,
    metrics: &mut EvalMetrics,
    emit: &mut dyn FnMut(&[Const]) -> Emitted,
) -> ControlFlow<()> {
    // With no step budget there is nothing to claim per firing; the
    // governor only needs a periodic cancellation/deadline look, which a
    // local (non-atomic) counter amortises so a governed-but-unhit run
    // costs the same as an ungoverned one (experiment F5).
    let exact_steps = input.governor.is_some_and(|g| g.counts_steps());
    let mut since_check: u32 = 0;
    let JoinScratch { bind, trail, head } = scratch;
    bind.clear();
    bind.resize(rule.nvars, None);
    trail.clear();
    let neg_db = input.negatives.unwrap_or(input.total);
    descend(
        rule,
        input,
        neg_db,
        0,
        bind,
        trail,
        metrics,
        &mut |rule, bind, metrics| {
            // The step claim comes before the emission: a refused firing does
            // no work and touches no counters, so an ungoverned run and a run
            // whose budget is never hit produce identical metrics.
            if let Some(g) = input.governor {
                if exact_steps {
                    g.note_firing()?;
                } else {
                    since_check += 1;
                    if since_check >= INTERRUPT_STRIDE {
                        since_check = 0;
                        g.check_interrupt()?;
                    }
                }
            }
            head.clear();
            for p in &rule.head.args {
                head.push(match p {
                    Pat::Const(c) => *c,
                    // invariant: rule safety (head vars ⊆ positive body vars) is
                    // checked by `Program::validate` before any evaluation.
                    Pat::Var(v) => bind[*v as usize]
                        .expect("safety guarantees a ground head after a full body match"),
                });
            }
            match emit(head) {
                Emitted::New => {
                    metrics.firings += 1;
                    metrics.new_facts += 1;
                    ControlFlow::Continue(())
                }
                Emitted::Duplicate => {
                    metrics.firings += 1;
                    metrics.duplicate_facts += 1;
                    ControlFlow::Continue(())
                }
                Emitted::Refused => ControlFlow::Break(()),
            }
        },
    )
}

/// The callback [`join_rule_bindings`] hands each satisfying assignment to.
/// Returning [`ControlFlow::Break`] unwinds the whole join immediately.
pub type EmitBindings<'a> =
    dyn FnMut(&CompiledRule, &[Option<Const>], &mut EvalMetrics) -> ControlFlow<()> + 'a;

/// Like [`join_rule`], but hands the raw binding array to `emit` on every
/// satisfying assignment, so callers can reconstruct body instances (the
/// conditional-fixpoint procedure needs the ground premises, not just the
/// head). `emit` is responsible for the firing/fact counters and for
/// charging the governor. Returns [`ControlFlow::Break`] iff `emit` did.
pub fn join_rule_bindings(
    rule: &CompiledRule,
    input: &JoinInput<'_>,
    scratch: &mut JoinScratch,
    metrics: &mut EvalMetrics,
    emit: &mut EmitBindings<'_>,
) -> ControlFlow<()> {
    let JoinScratch { bind, trail, .. } = scratch;
    bind.clear();
    bind.resize(rule.nvars, None);
    trail.clear();
    let neg_db = input.negatives.unwrap_or(input.total);
    descend(rule, input, neg_db, 0, bind, trail, metrics, emit)
}

/// A head-seeded derivability probe: pre-binds the rule's head slots from
/// `head_row` and joins the body over `input`, calling `emit` for each
/// satisfying assignment (which may `Break` at the first witness). This is
/// DRed's rederivation question — "does *this specific* doomed fact still
/// have a derivation?" — asked as an indexed point lookup instead of a full
/// rule join: with the head bound, the body literals sharing its variables
/// probe with those constants, so a transitive-closure rederivation check
/// costs a handful of probes rather than a stratum re-evaluation.
///
/// Returns `None` (without joining) when `head_row` cannot match the head
/// pattern (constant mismatch or conflicting repeated variables); otherwise
/// the join's flow — `Break` iff `emit` broke.
pub fn join_rule_seeded(
    rule: &CompiledRule,
    head_row: &[Const],
    input: &JoinInput<'_>,
    scratch: &mut JoinScratch,
    metrics: &mut EvalMetrics,
    emit: &mut EmitBindings<'_>,
) -> Option<ControlFlow<()>> {
    debug_assert_eq!(head_row.len(), rule.head.args.len());
    let JoinScratch { bind, trail, .. } = scratch;
    bind.clear();
    bind.resize(rule.nvars, None);
    trail.clear();
    for (p, &v) in rule.head.args.iter().zip(head_row) {
        match p {
            Pat::Const(c) => {
                if *c != v {
                    return None;
                }
            }
            Pat::Var(s) => match bind[*s as usize] {
                Some(prev) if prev != v => return None,
                _ => bind[*s as usize] = Some(v),
            },
        }
    }
    let neg_db = input.negatives.unwrap_or(input.total);
    Some(descend(rule, input, neg_db, 0, bind, trail, metrics, emit))
}

/// Resolves a compiled term under the binding array. Only called for
/// positions the evaluation order has already bound.
#[inline]
fn resolve(p: Pat, bind: &[Option<Const>]) -> Const {
    match p {
        Pat::Const(c) => c,
        // invariant: the caller consults only positions the ordering has
        // already bound (probe masks, ground negatives, ground built-ins).
        Pat::Var(v) => bind[v as usize].expect("masked position is bound"),
    }
}

#[allow(clippy::too_many_arguments)]
fn descend(
    rule: &CompiledRule,
    input: &JoinInput<'_>,
    neg_db: &Database,
    depth: usize,
    bind: &mut Vec<Option<Const>>,
    trail: &mut Vec<u32>,
    metrics: &mut EvalMetrics,
    emit: &mut EmitBindings<'_>,
) -> ControlFlow<()> {
    if depth == rule.body.len() {
        return emit(rule, bind, metrics);
    }

    let lit = &rule.body[depth];

    // Built-in comparisons are evaluated natively, whatever their polarity;
    // the body ordering guarantees their arguments are ground here.
    if let Some(b) = alexander_ir::Builtin::of(lit.atom.pred) {
        metrics.probes += 1;
        let holds = b.eval(
            resolve(lit.atom.args[0], bind),
            resolve(lit.atom.args[1], bind),
        );
        let want = lit.polarity == Polarity::Positive;
        if holds == want {
            descend(rule, input, neg_db, depth + 1, bind, trail, metrics, emit)?;
        }
        return ControlFlow::Continue(());
    }

    match lit.polarity {
        Polarity::Negative => {
            // invariant: `order_for_evaluation` schedules negative literals
            // only after every variable they use is bound, so the candidate
            // row is checked column by column straight off the binding
            // array — no tuple is built.
            let present = neg_db
                .relation(lit.atom.pred)
                .is_some_and(|r| r.contains_with(|i| resolve(lit.atom.args[i], bind)));
            metrics.probes += 1;
            if !present {
                descend(rule, input, neg_db, depth + 1, bind, trail, metrics, emit)?;
            }
        }
        Polarity::Positive => {
            // Resolve the (up to two) sources this literal enumerates; the
            // second appears only for counting-update side resolutions.
            let sources = resolve_access(input, depth, lit.atom.pred);
            for (relation, range) in sources.into_iter().flatten() {
                let (lo, hi) = range.unwrap_or((0, relation.len() as u32));
                metrics.probes += 1;

                let base = trail.len();
                if lit.mask.is_empty() {
                    // Full scan of the (possibly range-restricted) relation.
                    // `tuples_considered` charges the whole enumeration, which
                    // is what the index ablation (E10) measures.
                    metrics.tuples_considered += u64::from(hi - lo);
                    for row in relation.rows_in(lo, hi) {
                        match_candidate(
                            rule, input, neg_db, depth, row, bind, trail, base, metrics, emit,
                        )?;
                    }
                } else {
                    // Hash the bound columns in place — no key vector. The
                    // digest matches the index's projection hashes because both
                    // sides stream the same constants in ascending column
                    // order.
                    let mut h = RowHasher::new();
                    for &(_, p) in &lit.bound {
                        h.push(&resolve(p, bind));
                    }
                    let ids = relation.probe_ids(lit.mask, h.finish(), |rep| {
                        lit.bound
                            .iter()
                            .all(|&(c, p)| rep[c as usize] == resolve(p, bind))
                    });
                    match ids {
                        Some(ids) => {
                            // Narrow the id-sorted posting list to the delta
                            // range; for a full probe this is the whole list.
                            let ids = match range {
                                Some(_) => {
                                    let from = ids.partition_point(|&id| id < lo);
                                    let to = ids.partition_point(|&id| id < hi);
                                    &ids[from..to]
                                }
                                None => ids,
                            };
                            for &id in ids {
                                metrics.tuples_considered += 1;
                                let row = relation.row(id);
                                match_candidate(
                                    rule, input, neg_db, depth, row, bind, trail, base, metrics,
                                    emit,
                                )?;
                            }
                        }
                        None => {
                            // Fallback scan: storage enumerates the whole range
                            // to filter it, and that cost is what
                            // `tuples_considered` measures (ablation E10).
                            metrics.tuples_considered += u64::from(hi - lo);
                            for row in relation.rows_in(lo, hi) {
                                if lit
                                    .bound
                                    .iter()
                                    .all(|&(c, p)| row[c as usize] == resolve(p, bind))
                                {
                                    match_candidate(
                                        rule, input, neg_db, depth, row, bind, trail, base,
                                        metrics, emit,
                                    )?;
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    ControlFlow::Continue(())
}

/// Matches one candidate row against a positive literal at `depth`: binds
/// its free positions (recording them on the trail), recurses on success,
/// and unwinds the trail back to `base` either way. `Break` propagates
/// after the unwind so the binding array stays clean for the caller.
#[allow(clippy::too_many_arguments)]
#[inline]
fn match_candidate(
    rule: &CompiledRule,
    input: &JoinInput<'_>,
    neg_db: &Database,
    depth: usize,
    row: &[Const],
    bind: &mut Vec<Option<Const>>,
    trail: &mut Vec<u32>,
    base: usize,
    metrics: &mut EvalMetrics,
    emit: &mut EmitBindings<'_>,
) -> ControlFlow<()> {
    let lit = &rule.body[depth];
    let mut ok = true;
    for (i, p) in lit.atom.args.iter().enumerate() {
        match p {
            Pat::Const(c) => {
                if row[i] != *c {
                    ok = false;
                    break;
                }
            }
            Pat::Var(v) => {
                let v = *v as usize;
                match bind[v] {
                    Some(c) => {
                        if row[i] != c {
                            ok = false;
                            break;
                        }
                    }
                    None => {
                        bind[v] = Some(row[i]);
                        trail.push(v as u32);
                    }
                }
            }
        }
    }
    let flow = if ok {
        descend(rule, input, neg_db, depth + 1, bind, trail, metrics, emit)
    } else {
        ControlFlow::Continue(())
    };
    // Unwind this candidate's bindings; on Break later candidates are
    // abandoned by the caller, which sees the propagated flow.
    while trail.len() > base {
        // invariant: entries above `base` were pushed by this candidate.
        let v = trail.pop().expect("trail entries above base exist");
        bind[v as usize] = None;
    }
    flow
}

/// Ensures the indexes a compiled rule will probe exist in `db` (for the
/// masks over its positive body literals).
pub fn ensure_rule_indexes(rule: &CompiledRule, db: &mut Database) {
    for lit in &rule.body {
        if lit.polarity == Polarity::Positive && !lit.mask.is_empty() {
            db.ensure_index(lit.atom.pred, lit.mask);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::govern::{Budget, Completion, Resource};
    use alexander_ir::{atom, Literal};
    use alexander_storage::tuple_of_syms;

    fn edb() -> Database {
        let mut db = Database::new();
        let e = Predicate::new("e", 2);
        for (a, b) in [("a", "b"), ("b", "c"), ("c", "d")] {
            db.insert(e, tuple_of_syms(&[a, b]));
        }
        db
    }

    fn collect_join(
        rule: &CompiledRule,
        input: &JoinInput<'_>,
        metrics: &mut EvalMetrics,
    ) -> (Vec<Tuple>, ControlFlow<()>) {
        let mut scratch = JoinScratch::new();
        let mut out = Vec::new();
        let flow = join_rule(rule, input, &mut scratch, metrics, &mut |row| {
            out.push(Tuple::new(row));
            Emitted::New
        });
        (out, flow)
    }

    #[test]
    fn compile_assigns_slots_masks_and_bound_sources() {
        // p(X, Y) :- e(X, Z), e(Z, Y).
        let r = Rule::new(
            atom("p", [Term::var("X"), Term::var("Y")]),
            vec![
                Literal::pos(atom("e", [Term::var("X"), Term::var("Z")])),
                Literal::pos(atom("e", [Term::var("Z"), Term::var("Y")])),
            ],
        );
        let c = compile_rule(&r).unwrap();
        assert_eq!(c.nvars, 3);
        // First literal: nothing bound.
        assert!(c.body[0].mask.is_empty());
        assert!(c.body[0].bound.is_empty());
        // Second literal: Z (column 0) bound.
        assert_eq!(c.body[1].mask, Mask::of_columns(&[0]));
        assert_eq!(c.body[1].bound.len(), 1);
        assert_eq!(c.body[1].bound[0].0, 0);
    }

    #[test]
    fn join_computes_composition() {
        let r = Rule::new(
            atom("p", [Term::var("X"), Term::var("Y")]),
            vec![
                Literal::pos(atom("e", [Term::var("X"), Term::var("Z")])),
                Literal::pos(atom("e", [Term::var("Z"), Term::var("Y")])),
            ],
        );
        let c = compile_rule(&r).unwrap();
        let db = edb();
        let mut m = EvalMetrics::default();
        let (out, flow) = collect_join(&c, &JoinInput::naive(&db), &mut m);
        assert!(flow.is_continue());
        // a->b->c and b->c->d.
        assert_eq!(out.len(), 2);
        assert!(out.contains(&tuple_of_syms(&["a", "c"])));
        assert!(out.contains(&tuple_of_syms(&["b", "d"])));
        assert_eq!(m.firings, 2);
        assert_eq!(m.new_facts, 2);
    }

    #[test]
    fn join_with_constants_filters() {
        // p(Y) :- e(a, Y).
        let r = Rule::new(
            atom("p", [Term::var("Y")]),
            vec![Literal::pos(atom("e", [Term::sym("a"), Term::var("Y")]))],
        );
        let c = compile_rule(&r).unwrap();
        assert_eq!(c.body[0].mask, Mask::of_columns(&[0]));
        let db = edb();
        let mut m = EvalMetrics::default();
        let (out, _) = collect_join(&c, &JoinInput::naive(&db), &mut m);
        assert_eq!(out, vec![tuple_of_syms(&["b"])]);
    }

    #[test]
    fn repeated_variables_require_equal_columns() {
        // loop(X) :- e(X, X).
        let r = Rule::new(
            atom("loop", [Term::var("X")]),
            vec![Literal::pos(atom("e", [Term::var("X"), Term::var("X")]))],
        );
        let c = compile_rule(&r).unwrap();
        let mut db = edb();
        let mut m = EvalMetrics::default();
        let (out, _) = collect_join(&c, &JoinInput::naive(&db), &mut m);
        assert!(out.is_empty());
        db.insert(Predicate::new("e", 2), tuple_of_syms(&["z", "z"]));
        let (out2, _) = collect_join(&c, &JoinInput::naive(&db), &mut m);
        assert_eq!(out2, vec![tuple_of_syms(&["z"])]);
    }

    #[test]
    fn negative_literal_filters_bound_tuples() {
        // q(X) :- e(X, Y), !blocked(X).
        let r = Rule::new(
            atom("q", [Term::var("X")]),
            vec![
                Literal::pos(atom("e", [Term::var("X"), Term::var("Y")])),
                Literal::neg(atom("blocked", [Term::var("X")])),
            ],
        );
        let c = compile_rule(&r).unwrap();
        let mut db = edb();
        db.insert(Predicate::new("blocked", 1), tuple_of_syms(&["a"]));
        let mut m = EvalMetrics::default();
        let (out, _) = collect_join(&c, &JoinInput::naive(&db), &mut m);
        // a is blocked; b and c survive.
        assert_eq!(out.len(), 2);
        assert!(!out.contains(&tuple_of_syms(&["a"])));
    }

    #[test]
    fn delta_db_restricts_one_literal() {
        let r = Rule::new(
            atom("p", [Term::var("X"), Term::var("Y")]),
            vec![
                Literal::pos(atom("e", [Term::var("X"), Term::var("Z")])),
                Literal::pos(atom("e", [Term::var("Z"), Term::var("Y")])),
            ],
        );
        let c = compile_rule(&r).unwrap();
        let db = edb();
        // Delta holds only (b, c): position 0 restricted to it.
        let mut delta = Database::new();
        delta.insert(Predicate::new("e", 2), tuple_of_syms(&["b", "c"]));
        let mut m = EvalMetrics::default();
        let input = JoinInput {
            total: &db,
            delta: Some((0, DeltaSource::Db(&delta))),
            sides: None,
            negatives: None,
            governor: None,
        };
        let (out, _) = collect_join(&c, &input, &mut m);
        assert_eq!(out, vec![tuple_of_syms(&["b", "d"])]);
    }

    #[test]
    fn delta_spans_restrict_like_a_database() {
        // The same restriction expressed as an id range of the total: grow
        // the edb by (b, c)-like suffix rows and span them.
        let e = Predicate::new("e", 2);
        let r = Rule::new(
            atom("p", [Term::var("X"), Term::var("Y")]),
            vec![
                Literal::pos(atom("e", [Term::var("X"), Term::var("Z")])),
                Literal::pos(atom("e", [Term::var("Z"), Term::var("Y")])),
            ],
        );
        let c = compile_rule(&r).unwrap();
        let mut db = edb(); // rows 0..3
        let mut fresh = Database::new();
        fresh.insert(e, tuple_of_syms(&["d", "q"]));
        db.merge(&fresh);
        let spans = alexander_storage::DeltaSpans::after_merge(&db, &fresh);
        for delta_pos in [0, 1] {
            let mut m = EvalMetrics::default();
            let input = JoinInput {
                total: &db,
                delta: Some((delta_pos, DeltaSource::Spans(&spans))),
                sides: None,
                negatives: None,
                governor: None,
            };
            let (out, _) = collect_join(&c, &input, &mut m);
            // Position 0 in delta: d->q joined with q->? (none). Position 1:
            // ?->d joined with delta d->q gives (c, q).
            if delta_pos == 0 {
                assert!(out.is_empty(), "{out:?}");
            } else {
                assert_eq!(out, vec![tuple_of_syms(&["c", "q"])]);
            }
        }
        // With indexes built, the spans path takes the posting-list route
        // and must agree.
        let mut db2 = db.clone();
        db2.ensure_index(e, Mask::of_columns(&[0]));
        db2.ensure_index(e, Mask::of_columns(&[1]));
        let mut m = EvalMetrics::default();
        let input = JoinInput {
            total: &db2,
            delta: Some((1, DeltaSource::Spans(&spans))),
            sides: None,
            negatives: None,
            governor: None,
        };
        let (out, _) = collect_join(&c, &input, &mut m);
        assert_eq!(out, vec![tuple_of_syms(&["c", "q"])]);
    }

    #[test]
    fn missing_relation_yields_no_matches() {
        let r = Rule::new(
            atom("p", [Term::var("X")]),
            vec![Literal::pos(atom("ghost", [Term::var("X")]))],
        );
        let c = compile_rule(&r).unwrap();
        let db = edb();
        let mut m = EvalMetrics::default();
        let (out, _) = collect_join(&c, &JoinInput::naive(&db), &mut m);
        assert!(out.is_empty());
    }

    #[test]
    fn refused_emission_stops_the_join_and_counts_nothing() {
        let r = Rule::new(
            atom("p", [Term::var("X"), Term::var("Y")]),
            vec![
                Literal::pos(atom("e", [Term::var("X"), Term::var("Z")])),
                Literal::pos(atom("e", [Term::var("Z"), Term::var("Y")])),
            ],
        );
        let c = compile_rule(&r).unwrap();
        let db = edb();
        let mut m = EvalMetrics::default();
        let mut scratch = JoinScratch::new();
        let mut calls = 0;
        let flow = join_rule(
            &c,
            &JoinInput::naive(&db),
            &mut scratch,
            &mut m,
            &mut |_| {
                calls += 1;
                if calls == 1 {
                    Emitted::New
                } else {
                    Emitted::Refused
                }
            },
        );
        assert!(flow.is_break());
        assert_eq!(calls, 2, "join must stop right at the refusal");
        assert_eq!(m.firings, 1, "the refused emission counts no firing");
        assert_eq!(m.new_facts, 1);
        assert_eq!(m.duplicate_facts, 0);
    }

    #[test]
    fn step_governed_join_breaks_mid_rule() {
        let r = Rule::new(
            atom("p", [Term::var("X"), Term::var("Y")]),
            vec![
                Literal::pos(atom("e", [Term::var("X"), Term::var("Z")])),
                Literal::pos(atom("e", [Term::var("Z"), Term::var("Y")])),
            ],
        );
        let c = compile_rule(&r).unwrap();
        let db = edb();
        let gov = crate::govern::Governor::new(Budget::default().with_max_steps(1), None);
        let mut m = EvalMetrics::default();
        let input = JoinInput {
            governor: Some(&gov),
            ..JoinInput::naive(&db)
        };
        let (out, flow) = collect_join(&c, &input, &mut m);
        assert!(flow.is_break());
        assert_eq!(out.len(), 1, "exactly one firing fits a 1-step budget");
        assert_eq!(
            gov.completion(),
            Completion::BudgetExhausted {
                resource: Resource::Steps
            }
        );
    }

    #[test]
    fn ensure_rule_indexes_builds_probe_masks() {
        let r = Rule::new(
            atom("p", [Term::var("X"), Term::var("Y")]),
            vec![
                Literal::pos(atom("e", [Term::var("X"), Term::var("Z")])),
                Literal::pos(atom("e", [Term::var("Z"), Term::var("Y")])),
            ],
        );
        let c = compile_rule(&r).unwrap();
        let mut db = edb();
        ensure_rule_indexes(&c, &mut db);
        assert!(db
            .relation(Predicate::new("e", 2))
            .unwrap()
            .has_index(Mask::of_columns(&[0])));
    }

    #[test]
    fn scratch_is_reused_across_calls() {
        // One scratch serves many joins over rules of different widths.
        let r1 = Rule::new(
            atom("p", [Term::var("X"), Term::var("Y")]),
            vec![
                Literal::pos(atom("e", [Term::var("X"), Term::var("Z")])),
                Literal::pos(atom("e", [Term::var("Z"), Term::var("Y")])),
            ],
        );
        let r2 = Rule::new(
            atom("q", [Term::var("X")]),
            vec![Literal::pos(atom("e", [Term::var("X"), Term::var("Y")]))],
        );
        let c1 = compile_rule(&r1).unwrap();
        let c2 = compile_rule(&r2).unwrap();
        let db = edb();
        let mut scratch = JoinScratch::new();
        let mut m = EvalMetrics::default();
        for _ in 0..3 {
            for c in [&c1, &c2] {
                let mut n = 0;
                let flow = join_rule(c, &JoinInput::naive(&db), &mut scratch, &mut m, &mut |_| {
                    n += 1;
                    Emitted::New
                });
                assert!(flow.is_continue());
                assert!(n > 0);
            }
        }
    }
}
