//! Compiled rules and the nested-loop index join at the heart of every
//! bottom-up evaluator.
//!
//! Rules are compiled once: variables become dense slots, terms become
//! [`Pat`]s, and each body literal gets the static [`Mask`] of positions
//! that are bound when the join reaches it left to right. Joining then works
//! on a flat `Vec<Option<Const>>` binding array with a trail for
//! backtracking — no hash-map substitutions on the hot path.

use crate::metrics::EvalMetrics;
use crate::order::{order_for_evaluation, Unorderable};
use alexander_ir::{Atom, Const, FxHashMap, Polarity, Predicate, Rule, Term, Var};
use alexander_storage::{Database, Mask, Tuple};

/// A compiled term: a constant or a variable slot.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Pat {
    Const(Const),
    Var(u32),
}

/// A compiled atom pattern.
#[derive(Clone, Debug)]
pub struct AtomPat {
    pub pred: Predicate,
    pub args: Vec<Pat>,
}

impl AtomPat {
    /// Instantiates the pattern under `bind` into a tuple; `None` if any slot
    /// is unbound.
    pub fn to_tuple(&self, bind: &[Option<Const>]) -> Option<Tuple> {
        let vals: Option<Vec<Const>> = self
            .args
            .iter()
            .map(|p| match p {
                Pat::Const(c) => Some(*c),
                Pat::Var(v) => bind[*v as usize],
            })
            .collect();
        vals.map(Tuple::from)
    }
}

/// One compiled body literal.
#[derive(Clone, Debug)]
pub struct BodyPat {
    pub atom: AtomPat,
    pub polarity: Polarity,
    /// Positions bound when the join reaches this literal (left-to-right).
    pub mask: Mask,
}

/// A rule compiled for bottom-up joining.
#[derive(Clone, Debug)]
pub struct CompiledRule {
    pub head: AtomPat,
    pub body: Vec<BodyPat>,
    pub nvars: usize,
    /// The source rule (after evaluation ordering), for diagnostics.
    pub source: Rule,
}

/// Compiles `rule`, reordering its body for evaluability first. Fails only
/// on rules whose negations cannot be grounded (unsafe rules).
pub fn compile_rule(rule: &Rule) -> Result<CompiledRule, Unorderable> {
    let ordered = order_for_evaluation(rule)?;
    let mut slots: FxHashMap<Var, u32> = FxHashMap::default();
    let slot_of = |v: Var, slots: &mut FxHashMap<Var, u32>| -> u32 {
        let next = slots.len() as u32;
        *slots.entry(v).or_insert(next)
    };
    let compile_atom = |a: &Atom, slots: &mut FxHashMap<Var, u32>| AtomPat {
        pred: a.predicate(),
        args: a
            .terms
            .iter()
            .map(|t| match t {
                Term::Const(c) => Pat::Const(*c),
                Term::Var(v) => Pat::Var(slot_of(*v, slots)),
            })
            .collect(),
    };

    // Compile body first so masks reflect the evaluation order; safety
    // guarantees head slots are a subset of body slots.
    let mut body = Vec::with_capacity(ordered.body.len());
    let mut bound: Vec<bool> = Vec::new();
    for l in &ordered.body {
        let atom = compile_atom(&l.atom, &mut slots);
        bound.resize(slots.len(), false);
        let mut cols = Vec::new();
        for (i, p) in atom.args.iter().enumerate() {
            match p {
                Pat::Const(_) => cols.push(i),
                Pat::Var(v) => {
                    if bound[*v as usize] {
                        cols.push(i);
                    }
                }
            }
        }
        let mask = Mask::of_columns(&cols);
        if l.polarity == Polarity::Positive {
            for p in &atom.args {
                if let Pat::Var(v) = p {
                    bound[*v as usize] = true;
                }
            }
        }
        body.push(BodyPat {
            atom,
            polarity: l.polarity,
            mask,
        });
    }
    let head = compile_atom(&ordered.head, &mut slots);
    Ok(CompiledRule {
        head,
        body,
        nvars: slots.len(),
        source: ordered,
    })
}

/// The fact sources a join reads from.
pub struct JoinInput<'a> {
    /// Full set of facts derived so far (plus the EDB).
    pub total: &'a Database,
    /// Semi-naive: the literal index that must match the delta, and the
    /// delta database. `None` runs a naive (full) join.
    pub delta: Option<(usize, &'a Database)>,
    /// Where negative literals are checked. Stratified evaluation passes the
    /// total database (lower strata complete); `None` defaults to `total`.
    pub negatives: Option<&'a Database>,
}

/// Joins `rule`'s body over `input`, calling `emit` with the instantiated
/// head tuple for every satisfying assignment. `emit` returns whether the
/// tuple was new, which feeds the duplicate counter.
pub fn join_rule(
    rule: &CompiledRule,
    input: &JoinInput<'_>,
    metrics: &mut EvalMetrics,
    emit: &mut dyn FnMut(Tuple) -> bool,
) {
    join_rule_bindings(rule, input, metrics, &mut |rule, bind, metrics| {
        metrics.firings += 1;
        let head = rule
            .head
            .to_tuple(bind)
            .expect("safety guarantees a ground head after a full body match");
        if emit(head) {
            metrics.new_facts += 1;
        } else {
            metrics.duplicate_facts += 1;
        }
    });
}

/// The callback [`join_rule_bindings`] hands each satisfying assignment to.
pub type EmitBindings<'a> = dyn FnMut(&CompiledRule, &[Option<Const>], &mut EvalMetrics) + 'a;

/// Like [`join_rule`], but hands the raw binding array to `emit` on every
/// satisfying assignment, so callers can reconstruct body instances (the
/// conditional-fixpoint procedure needs the ground premises, not just the
/// head). `emit` is responsible for the firing/fact counters.
pub fn join_rule_bindings(
    rule: &CompiledRule,
    input: &JoinInput<'_>,
    metrics: &mut EvalMetrics,
    emit: &mut EmitBindings<'_>,
) {
    let mut bind: Vec<Option<Const>> = vec![None; rule.nvars];
    let neg_db = input.negatives.unwrap_or(input.total);
    descend(rule, input, neg_db, 0, &mut bind, metrics, emit);
}

fn descend(
    rule: &CompiledRule,
    input: &JoinInput<'_>,
    neg_db: &Database,
    depth: usize,
    bind: &mut Vec<Option<Const>>,
    metrics: &mut EvalMetrics,
    emit: &mut EmitBindings<'_>,
) {
    if depth == rule.body.len() {
        emit(rule, bind, metrics);
        return;
    }

    let lit = &rule.body[depth];

    // Built-in comparisons are evaluated natively, whatever their polarity;
    // the body ordering guarantees their arguments are ground here.
    if let Some(b) = alexander_ir::Builtin::of(lit.atom.pred) {
        let t = lit
            .atom
            .to_tuple(bind)
            .expect("ordering guarantees ground built-ins");
        metrics.probes += 1;
        let holds = b.eval(t.get(0), t.get(1));
        let want = lit.polarity == Polarity::Positive;
        if holds == want {
            descend(rule, input, neg_db, depth + 1, bind, metrics, emit);
        }
        return;
    }

    match lit.polarity {
        Polarity::Negative => {
            // Ordering guarantees groundness here.
            let t = lit
                .atom
                .to_tuple(bind)
                .expect("ordering guarantees ground negative literals");
            let present = neg_db
                .relation(lit.atom.pred)
                .is_some_and(|r| r.contains(&t));
            metrics.probes += 1;
            if !present {
                descend(rule, input, neg_db, depth + 1, bind, metrics, emit);
            }
        }
        Polarity::Positive => {
            let db = match input.delta {
                Some((d, delta)) if d == depth => delta,
                _ => input.total,
            };
            let Some(relation) = db.relation(lit.atom.pred) else {
                return;
            };
            // Build the probe key from the bound positions.
            let cols = lit.mask.columns();
            let key: Vec<Const> = cols
                .iter()
                .map(|&c| match lit.atom.args[c] {
                    Pat::Const(k) => k,
                    Pat::Var(v) => bind[v as usize].expect("masked position is bound"),
                })
                .collect();
            metrics.probes += 1;
            let (candidates, indexed) = relation.probe(lit.mask, &key);
            if !indexed {
                // Fallback scan: storage enumerated the whole relation to
                // filter it, and that cost is what `tuples_considered`
                // measures (ablation E10).
                metrics.tuples_considered += relation.len() as u64;
            }

            // Trail of slots bound while matching one candidate.
            let mut trail: Vec<u32> = Vec::new();
            for t in candidates {
                if indexed {
                    metrics.tuples_considered += 1;
                }
                trail.clear();
                let mut ok = true;
                for (i, p) in lit.atom.args.iter().enumerate() {
                    match p {
                        Pat::Const(c) => {
                            if t.get(i) != *c {
                                ok = false;
                                break;
                            }
                        }
                        Pat::Var(v) => {
                            let v = *v as usize;
                            match bind[v] {
                                Some(c) => {
                                    if t.get(i) != c {
                                        ok = false;
                                        break;
                                    }
                                }
                                None => {
                                    bind[v] = Some(t.get(i));
                                    trail.push(v as u32);
                                }
                            }
                        }
                    }
                }
                if ok {
                    descend(rule, input, neg_db, depth + 1, bind, metrics, emit);
                }
                for &v in &trail {
                    bind[v as usize] = None;
                }
            }
        }
    }
}

/// Ensures the indexes a compiled rule will probe exist in `db` (for the
/// masks over its positive body literals).
pub fn ensure_rule_indexes(rule: &CompiledRule, db: &mut Database) {
    for lit in &rule.body {
        if lit.polarity == Polarity::Positive && !lit.mask.is_empty() {
            db.ensure_index(lit.atom.pred, lit.mask);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alexander_ir::{atom, Literal};
    use alexander_storage::tuple_of_syms;

    fn edb() -> Database {
        let mut db = Database::new();
        let e = Predicate::new("e", 2);
        for (a, b) in [("a", "b"), ("b", "c"), ("c", "d")] {
            db.insert(e, tuple_of_syms(&[a, b]));
        }
        db
    }

    #[test]
    fn compile_assigns_slots_and_masks() {
        // p(X, Y) :- e(X, Z), e(Z, Y).
        let r = Rule::new(
            atom("p", [Term::var("X"), Term::var("Y")]),
            vec![
                Literal::pos(atom("e", [Term::var("X"), Term::var("Z")])),
                Literal::pos(atom("e", [Term::var("Z"), Term::var("Y")])),
            ],
        );
        let c = compile_rule(&r).unwrap();
        assert_eq!(c.nvars, 3);
        // First literal: nothing bound.
        assert!(c.body[0].mask.is_empty());
        // Second literal: Z (column 0) bound.
        assert_eq!(c.body[1].mask, Mask::of_columns(&[0]));
    }

    #[test]
    fn join_computes_composition() {
        let r = Rule::new(
            atom("p", [Term::var("X"), Term::var("Y")]),
            vec![
                Literal::pos(atom("e", [Term::var("X"), Term::var("Z")])),
                Literal::pos(atom("e", [Term::var("Z"), Term::var("Y")])),
            ],
        );
        let c = compile_rule(&r).unwrap();
        let db = edb();
        let mut out = Vec::new();
        let mut m = EvalMetrics::default();
        join_rule(
            &c,
            &JoinInput {
                total: &db,
                delta: None,
                negatives: None,
            },
            &mut m,
            &mut |t| {
                out.push(t);
                true
            },
        );
        // a->b->c and b->c->d.
        assert_eq!(out.len(), 2);
        assert!(out.contains(&tuple_of_syms(&["a", "c"])));
        assert!(out.contains(&tuple_of_syms(&["b", "d"])));
        assert_eq!(m.firings, 2);
        assert_eq!(m.new_facts, 2);
    }

    #[test]
    fn join_with_constants_filters() {
        // p(Y) :- e(a, Y).
        let r = Rule::new(
            atom("p", [Term::var("Y")]),
            vec![Literal::pos(atom("e", [Term::sym("a"), Term::var("Y")]))],
        );
        let c = compile_rule(&r).unwrap();
        assert_eq!(c.body[0].mask, Mask::of_columns(&[0]));
        let db = edb();
        let mut out = Vec::new();
        let mut m = EvalMetrics::default();
        join_rule(
            &c,
            &JoinInput {
                total: &db,
                delta: None,
                negatives: None,
            },
            &mut m,
            &mut |t| {
                out.push(t);
                true
            },
        );
        assert_eq!(out, vec![tuple_of_syms(&["b"])]);
    }

    #[test]
    fn repeated_variables_require_equal_columns() {
        // loop(X) :- e(X, X).
        let r = Rule::new(
            atom("loop", [Term::var("X")]),
            vec![Literal::pos(atom("e", [Term::var("X"), Term::var("X")]))],
        );
        let c = compile_rule(&r).unwrap();
        let mut db = edb();
        let mut m = EvalMetrics::default();
        let mut out = Vec::new();
        join_rule(
            &c,
            &JoinInput {
                total: &db,
                delta: None,
                negatives: None,
            },
            &mut m,
            &mut |t| {
                out.push(t);
                true
            },
        );
        assert!(out.is_empty());
        db.insert(Predicate::new("e", 2), tuple_of_syms(&["z", "z"]));
        let mut out2 = Vec::new();
        join_rule(
            &c,
            &JoinInput {
                total: &db,
                delta: None,
                negatives: None,
            },
            &mut m,
            &mut |t| {
                out2.push(t);
                true
            },
        );
        assert_eq!(out2, vec![tuple_of_syms(&["z"])]);
    }

    #[test]
    fn negative_literal_filters_bound_tuples() {
        // q(X) :- e(X, Y), !blocked(X).
        let r = Rule::new(
            atom("q", [Term::var("X")]),
            vec![
                Literal::pos(atom("e", [Term::var("X"), Term::var("Y")])),
                Literal::neg(atom("blocked", [Term::var("X")])),
            ],
        );
        let c = compile_rule(&r).unwrap();
        let mut db = edb();
        db.insert(Predicate::new("blocked", 1), tuple_of_syms(&["a"]));
        let mut m = EvalMetrics::default();
        let mut out = Vec::new();
        join_rule(
            &c,
            &JoinInput {
                total: &db,
                delta: None,
                negatives: None,
            },
            &mut m,
            &mut |t| {
                out.push(t);
                true
            },
        );
        // a is blocked; b and c survive.
        assert_eq!(out.len(), 2);
        assert!(!out.contains(&tuple_of_syms(&["a"])));
    }

    #[test]
    fn delta_restricts_one_literal() {
        let r = Rule::new(
            atom("p", [Term::var("X"), Term::var("Y")]),
            vec![
                Literal::pos(atom("e", [Term::var("X"), Term::var("Z")])),
                Literal::pos(atom("e", [Term::var("Z"), Term::var("Y")])),
            ],
        );
        let c = compile_rule(&r).unwrap();
        let db = edb();
        // Delta holds only (b, c): position 0 restricted to it.
        let mut delta = Database::new();
        delta.insert(Predicate::new("e", 2), tuple_of_syms(&["b", "c"]));
        let mut m = EvalMetrics::default();
        let mut out = Vec::new();
        join_rule(
            &c,
            &JoinInput {
                total: &db,
                delta: Some((0, &delta)),
                negatives: None,
            },
            &mut m,
            &mut |t| {
                out.push(t);
                true
            },
        );
        assert_eq!(out, vec![tuple_of_syms(&["b", "d"])]);
    }

    #[test]
    fn missing_relation_yields_no_matches() {
        let r = Rule::new(
            atom("p", [Term::var("X")]),
            vec![Literal::pos(atom("ghost", [Term::var("X")]))],
        );
        let c = compile_rule(&r).unwrap();
        let db = edb();
        let mut m = EvalMetrics::default();
        let mut n = 0;
        join_rule(
            &c,
            &JoinInput {
                total: &db,
                delta: None,
                negatives: None,
            },
            &mut m,
            &mut |_| {
                n += 1;
                true
            },
        );
        assert_eq!(n, 0);
    }

    #[test]
    fn ensure_rule_indexes_builds_probe_masks() {
        let r = Rule::new(
            atom("p", [Term::var("X"), Term::var("Y")]),
            vec![
                Literal::pos(atom("e", [Term::var("X"), Term::var("Z")])),
                Literal::pos(atom("e", [Term::var("Z"), Term::var("Y")])),
            ],
        );
        let c = compile_rule(&r).unwrap();
        let mut db = edb();
        ensure_rule_indexes(&c, &mut db);
        assert!(db
            .relation(Predicate::new("e", 2))
            .unwrap()
            .has_index(Mask::of_columns(&[0])));
    }
}
