//! Compiled rules and the nested-loop index join at the heart of every
//! bottom-up evaluator.
//!
//! Rules are compiled once: variables become dense slots, terms become
//! [`Pat`]s, and each body literal gets the static [`Mask`] of positions
//! that are bound when the join reaches it left to right. Joining then works
//! on a flat `Vec<Option<Const>>` binding array with a trail for
//! backtracking — no hash-map substitutions on the hot path.
//!
//! The join is also where mid-round governance lives: when a
//! [`Governor`](crate::govern::Governor) rides along in the [`JoinInput`],
//! every emission charges it and the join unwinds with
//! [`ControlFlow::Break`] the moment a budget trips or cancellation is
//! requested — so even a single enormous round is interruptible.

use crate::govern::Governor;
use crate::metrics::EvalMetrics;
use crate::order::{order_for_evaluation, Unorderable};
use alexander_ir::{Atom, Const, FxHashMap, Polarity, Predicate, Rule, Term, Var};
use alexander_storage::{Database, Mask, Tuple};
use std::ops::ControlFlow;

/// A compiled term: a constant or a variable slot.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Pat {
    Const(Const),
    Var(u32),
}

/// A compiled atom pattern.
#[derive(Clone, Debug)]
pub struct AtomPat {
    pub pred: Predicate,
    pub args: Vec<Pat>,
}

impl AtomPat {
    /// Instantiates the pattern under `bind` into a tuple; `None` if any slot
    /// is unbound.
    pub fn to_tuple(&self, bind: &[Option<Const>]) -> Option<Tuple> {
        let vals: Option<Vec<Const>> = self
            .args
            .iter()
            .map(|p| match p {
                Pat::Const(c) => Some(*c),
                Pat::Var(v) => bind[*v as usize],
            })
            .collect();
        vals.map(Tuple::from)
    }
}

/// One compiled body literal.
#[derive(Clone, Debug)]
pub struct BodyPat {
    pub atom: AtomPat,
    pub polarity: Polarity,
    /// Positions bound when the join reaches this literal (left-to-right).
    pub mask: Mask,
}

/// A rule compiled for bottom-up joining.
#[derive(Clone, Debug)]
pub struct CompiledRule {
    pub head: AtomPat,
    pub body: Vec<BodyPat>,
    pub nvars: usize,
    /// The source rule (after evaluation ordering), for diagnostics.
    pub source: Rule,
}

/// Compiles `rule`, reordering its body for evaluability first. Fails only
/// on rules whose negations cannot be grounded (unsafe rules).
pub fn compile_rule(rule: &Rule) -> Result<CompiledRule, Unorderable> {
    let ordered = order_for_evaluation(rule)?;
    let mut slots: FxHashMap<Var, u32> = FxHashMap::default();
    let slot_of = |v: Var, slots: &mut FxHashMap<Var, u32>| -> u32 {
        let next = slots.len() as u32;
        *slots.entry(v).or_insert(next)
    };
    let compile_atom = |a: &Atom, slots: &mut FxHashMap<Var, u32>| AtomPat {
        pred: a.predicate(),
        args: a
            .terms
            .iter()
            .map(|t| match t {
                Term::Const(c) => Pat::Const(*c),
                Term::Var(v) => Pat::Var(slot_of(*v, slots)),
            })
            .collect(),
    };

    // Compile body first so masks reflect the evaluation order; safety
    // guarantees head slots are a subset of body slots.
    let mut body = Vec::with_capacity(ordered.body.len());
    let mut bound: Vec<bool> = Vec::new();
    for l in &ordered.body {
        let atom = compile_atom(&l.atom, &mut slots);
        bound.resize(slots.len(), false);
        let mut cols = Vec::new();
        for (i, p) in atom.args.iter().enumerate() {
            match p {
                Pat::Const(_) => cols.push(i),
                Pat::Var(v) => {
                    if bound[*v as usize] {
                        cols.push(i);
                    }
                }
            }
        }
        let mask = Mask::of_columns(&cols);
        if l.polarity == Polarity::Positive {
            for p in &atom.args {
                if let Pat::Var(v) = p {
                    bound[*v as usize] = true;
                }
            }
        }
        body.push(BodyPat {
            atom,
            polarity: l.polarity,
            mask,
        });
    }
    let head = compile_atom(&ordered.head, &mut slots);
    Ok(CompiledRule {
        head,
        body,
        nvars: slots.len(),
        source: ordered,
    })
}

/// The fact sources a join reads from.
pub struct JoinInput<'a> {
    /// Full set of facts derived so far (plus the EDB).
    pub total: &'a Database,
    /// Semi-naive: the literal index that must match the delta, and the
    /// delta database. `None` runs a naive (full) join.
    pub delta: Option<(usize, &'a Database)>,
    /// Where negative literals are checked. Stratified evaluation passes the
    /// total database (lower strata complete); `None` defaults to `total`.
    pub negatives: Option<&'a Database>,
    /// Resource governor for this run; `None` (the ungoverned default)
    /// makes every check a no-op.
    pub governor: Option<&'a Governor>,
}

impl<'a> JoinInput<'a> {
    /// A plain naive join over `total` with no delta, no separate negative
    /// source, and no governance.
    pub fn naive(total: &'a Database) -> JoinInput<'a> {
        JoinInput {
            total,
            delta: None,
            negatives: None,
            governor: None,
        }
    }
}

/// Firings between governor cancellation/deadline looks inside one join,
/// when no step budget demands exact per-firing claims. Matches the
/// governor's own deadline stride.
const INTERRUPT_STRIDE: u32 = 1024;

/// What happened to an emitted head tuple.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Emitted {
    /// The tuple was new and was recorded.
    New,
    /// The tuple was already known.
    Duplicate,
    /// The governor refused the fact-budget claim: the tuple was dropped
    /// and the join must stop. Refused emissions touch no metric counters,
    /// which is what keeps sequential `BudgetExhausted { Facts }`
    /// equivalent to "strict subset of the fixpoint".
    Refused,
}

/// Joins `rule`'s body over `input`, calling `emit` with the instantiated
/// head tuple for every satisfying assignment. `emit` reports whether the
/// tuple was new, a duplicate, or refused by the fact budget; the join
/// returns [`ControlFlow::Break`] when it stopped early (refusal, or any
/// governor budget/cancellation trip).
pub fn join_rule(
    rule: &CompiledRule,
    input: &JoinInput<'_>,
    metrics: &mut EvalMetrics,
    emit: &mut dyn FnMut(Tuple) -> Emitted,
) -> ControlFlow<()> {
    // With no step budget there is nothing to claim per firing; the
    // governor only needs a periodic cancellation/deadline look, which a
    // local (non-atomic) counter amortises so a governed-but-unhit run
    // costs the same as an ungoverned one (experiment F5).
    let exact_steps = input.governor.is_some_and(|g| g.counts_steps());
    let mut since_check: u32 = 0;
    join_rule_bindings(rule, input, metrics, &mut |rule, bind, metrics| {
        // The step claim comes before the emission: a refused firing does
        // no work and touches no counters, so an ungoverned run and a run
        // whose budget is never hit produce identical metrics.
        if let Some(g) = input.governor {
            if exact_steps {
                g.note_firing()?;
            } else {
                since_check += 1;
                if since_check >= INTERRUPT_STRIDE {
                    since_check = 0;
                    g.check_interrupt()?;
                }
            }
        }
        let head = rule
            .head
            // invariant: rule safety (head vars ⊆ positive body vars) is
            // checked by `Program::validate` before any evaluation.
            .to_tuple(bind)
            .expect("safety guarantees a ground head after a full body match");
        match emit(head) {
            Emitted::New => {
                metrics.firings += 1;
                metrics.new_facts += 1;
                ControlFlow::Continue(())
            }
            Emitted::Duplicate => {
                metrics.firings += 1;
                metrics.duplicate_facts += 1;
                ControlFlow::Continue(())
            }
            Emitted::Refused => ControlFlow::Break(()),
        }
    })
}

/// The callback [`join_rule_bindings`] hands each satisfying assignment to.
/// Returning [`ControlFlow::Break`] unwinds the whole join immediately.
pub type EmitBindings<'a> =
    dyn FnMut(&CompiledRule, &[Option<Const>], &mut EvalMetrics) -> ControlFlow<()> + 'a;

/// Like [`join_rule`], but hands the raw binding array to `emit` on every
/// satisfying assignment, so callers can reconstruct body instances (the
/// conditional-fixpoint procedure needs the ground premises, not just the
/// head). `emit` is responsible for the firing/fact counters and for
/// charging the governor. Returns [`ControlFlow::Break`] iff `emit` did.
pub fn join_rule_bindings(
    rule: &CompiledRule,
    input: &JoinInput<'_>,
    metrics: &mut EvalMetrics,
    emit: &mut EmitBindings<'_>,
) -> ControlFlow<()> {
    let mut bind: Vec<Option<Const>> = vec![None; rule.nvars];
    let neg_db = input.negatives.unwrap_or(input.total);
    descend(rule, input, neg_db, 0, &mut bind, metrics, emit)
}

fn descend(
    rule: &CompiledRule,
    input: &JoinInput<'_>,
    neg_db: &Database,
    depth: usize,
    bind: &mut Vec<Option<Const>>,
    metrics: &mut EvalMetrics,
    emit: &mut EmitBindings<'_>,
) -> ControlFlow<()> {
    if depth == rule.body.len() {
        return emit(rule, bind, metrics);
    }

    let lit = &rule.body[depth];

    // Built-in comparisons are evaluated natively, whatever their polarity;
    // the body ordering guarantees their arguments are ground here.
    if let Some(b) = alexander_ir::Builtin::of(lit.atom.pred) {
        let t = lit
            .atom
            // invariant: `order_for_evaluation` schedules built-ins only
            // after every variable they use is bound.
            .to_tuple(bind)
            .expect("ordering guarantees ground built-ins");
        metrics.probes += 1;
        let holds = b.eval(t.get(0), t.get(1));
        let want = lit.polarity == Polarity::Positive;
        if holds == want {
            descend(rule, input, neg_db, depth + 1, bind, metrics, emit)?;
        }
        return ControlFlow::Continue(());
    }

    match lit.polarity {
        Polarity::Negative => {
            // invariant: `order_for_evaluation` schedules negative literals
            // only after every variable they use is bound.
            let t = lit
                .atom
                .to_tuple(bind)
                .expect("ordering guarantees ground negative literals");
            let present = neg_db
                .relation(lit.atom.pred)
                .is_some_and(|r| r.contains(&t));
            metrics.probes += 1;
            if !present {
                descend(rule, input, neg_db, depth + 1, bind, metrics, emit)?;
            }
        }
        Polarity::Positive => {
            let db = match input.delta {
                Some((d, delta)) if d == depth => delta,
                _ => input.total,
            };
            let Some(relation) = db.relation(lit.atom.pred) else {
                return ControlFlow::Continue(());
            };
            // Build the probe key from the bound positions.
            let cols = lit.mask.columns();
            let key: Vec<Const> = cols
                .iter()
                .map(|&c| match lit.atom.args[c] {
                    Pat::Const(k) => k,
                    // invariant: the probe mask was built from positions the
                    // ordering has already bound.
                    Pat::Var(v) => bind[v as usize].expect("masked position is bound"),
                })
                .collect();
            metrics.probes += 1;
            let (candidates, indexed) = relation.probe(lit.mask, &key);
            if !indexed {
                // Fallback scan: storage enumerated the whole relation to
                // filter it, and that cost is what `tuples_considered`
                // measures (ablation E10).
                metrics.tuples_considered += relation.len() as u64;
            }

            // Trail of slots bound while matching one candidate.
            let mut trail: Vec<u32> = Vec::new();
            for t in candidates {
                if indexed {
                    metrics.tuples_considered += 1;
                }
                trail.clear();
                let mut ok = true;
                for (i, p) in lit.atom.args.iter().enumerate() {
                    match p {
                        Pat::Const(c) => {
                            if t.get(i) != *c {
                                ok = false;
                                break;
                            }
                        }
                        Pat::Var(v) => {
                            let v = *v as usize;
                            match bind[v] {
                                Some(c) => {
                                    if t.get(i) != c {
                                        ok = false;
                                        break;
                                    }
                                }
                                None => {
                                    bind[v] = Some(t.get(i));
                                    trail.push(v as u32);
                                }
                            }
                        }
                    }
                }
                if ok {
                    let flow = descend(rule, input, neg_db, depth + 1, bind, metrics, emit);
                    if flow.is_break() {
                        // Unwind cleanly: later candidates are abandoned.
                        for &v in &trail {
                            bind[v as usize] = None;
                        }
                        return ControlFlow::Break(());
                    }
                }
                for &v in &trail {
                    bind[v as usize] = None;
                }
            }
        }
    }
    ControlFlow::Continue(())
}

/// Ensures the indexes a compiled rule will probe exist in `db` (for the
/// masks over its positive body literals).
pub fn ensure_rule_indexes(rule: &CompiledRule, db: &mut Database) {
    for lit in &rule.body {
        if lit.polarity == Polarity::Positive && !lit.mask.is_empty() {
            db.ensure_index(lit.atom.pred, lit.mask);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::govern::{Budget, Completion, Resource};
    use alexander_ir::{atom, Literal};
    use alexander_storage::tuple_of_syms;

    fn edb() -> Database {
        let mut db = Database::new();
        let e = Predicate::new("e", 2);
        for (a, b) in [("a", "b"), ("b", "c"), ("c", "d")] {
            db.insert(e, tuple_of_syms(&[a, b]));
        }
        db
    }

    #[test]
    fn compile_assigns_slots_and_masks() {
        // p(X, Y) :- e(X, Z), e(Z, Y).
        let r = Rule::new(
            atom("p", [Term::var("X"), Term::var("Y")]),
            vec![
                Literal::pos(atom("e", [Term::var("X"), Term::var("Z")])),
                Literal::pos(atom("e", [Term::var("Z"), Term::var("Y")])),
            ],
        );
        let c = compile_rule(&r).unwrap();
        assert_eq!(c.nvars, 3);
        // First literal: nothing bound.
        assert!(c.body[0].mask.is_empty());
        // Second literal: Z (column 0) bound.
        assert_eq!(c.body[1].mask, Mask::of_columns(&[0]));
    }

    #[test]
    fn join_computes_composition() {
        let r = Rule::new(
            atom("p", [Term::var("X"), Term::var("Y")]),
            vec![
                Literal::pos(atom("e", [Term::var("X"), Term::var("Z")])),
                Literal::pos(atom("e", [Term::var("Z"), Term::var("Y")])),
            ],
        );
        let c = compile_rule(&r).unwrap();
        let db = edb();
        let mut out = Vec::new();
        let mut m = EvalMetrics::default();
        let flow = join_rule(&c, &JoinInput::naive(&db), &mut m, &mut |t| {
            out.push(t);
            Emitted::New
        });
        assert!(flow.is_continue());
        // a->b->c and b->c->d.
        assert_eq!(out.len(), 2);
        assert!(out.contains(&tuple_of_syms(&["a", "c"])));
        assert!(out.contains(&tuple_of_syms(&["b", "d"])));
        assert_eq!(m.firings, 2);
        assert_eq!(m.new_facts, 2);
    }

    #[test]
    fn join_with_constants_filters() {
        // p(Y) :- e(a, Y).
        let r = Rule::new(
            atom("p", [Term::var("Y")]),
            vec![Literal::pos(atom("e", [Term::sym("a"), Term::var("Y")]))],
        );
        let c = compile_rule(&r).unwrap();
        assert_eq!(c.body[0].mask, Mask::of_columns(&[0]));
        let db = edb();
        let mut out = Vec::new();
        let mut m = EvalMetrics::default();
        let _ = join_rule(&c, &JoinInput::naive(&db), &mut m, &mut |t| {
            out.push(t);
            Emitted::New
        });
        assert_eq!(out, vec![tuple_of_syms(&["b"])]);
    }

    #[test]
    fn repeated_variables_require_equal_columns() {
        // loop(X) :- e(X, X).
        let r = Rule::new(
            atom("loop", [Term::var("X")]),
            vec![Literal::pos(atom("e", [Term::var("X"), Term::var("X")]))],
        );
        let c = compile_rule(&r).unwrap();
        let mut db = edb();
        let mut m = EvalMetrics::default();
        let mut out = Vec::new();
        let _ = join_rule(&c, &JoinInput::naive(&db), &mut m, &mut |t| {
            out.push(t);
            Emitted::New
        });
        assert!(out.is_empty());
        db.insert(Predicate::new("e", 2), tuple_of_syms(&["z", "z"]));
        let mut out2 = Vec::new();
        let _ = join_rule(&c, &JoinInput::naive(&db), &mut m, &mut |t| {
            out2.push(t);
            Emitted::New
        });
        assert_eq!(out2, vec![tuple_of_syms(&["z"])]);
    }

    #[test]
    fn negative_literal_filters_bound_tuples() {
        // q(X) :- e(X, Y), !blocked(X).
        let r = Rule::new(
            atom("q", [Term::var("X")]),
            vec![
                Literal::pos(atom("e", [Term::var("X"), Term::var("Y")])),
                Literal::neg(atom("blocked", [Term::var("X")])),
            ],
        );
        let c = compile_rule(&r).unwrap();
        let mut db = edb();
        db.insert(Predicate::new("blocked", 1), tuple_of_syms(&["a"]));
        let mut m = EvalMetrics::default();
        let mut out = Vec::new();
        let _ = join_rule(&c, &JoinInput::naive(&db), &mut m, &mut |t| {
            out.push(t);
            Emitted::New
        });
        // a is blocked; b and c survive.
        assert_eq!(out.len(), 2);
        assert!(!out.contains(&tuple_of_syms(&["a"])));
    }

    #[test]
    fn delta_restricts_one_literal() {
        let r = Rule::new(
            atom("p", [Term::var("X"), Term::var("Y")]),
            vec![
                Literal::pos(atom("e", [Term::var("X"), Term::var("Z")])),
                Literal::pos(atom("e", [Term::var("Z"), Term::var("Y")])),
            ],
        );
        let c = compile_rule(&r).unwrap();
        let db = edb();
        // Delta holds only (b, c): position 0 restricted to it.
        let mut delta = Database::new();
        delta.insert(Predicate::new("e", 2), tuple_of_syms(&["b", "c"]));
        let mut m = EvalMetrics::default();
        let mut out = Vec::new();
        let _ = join_rule(
            &c,
            &JoinInput {
                total: &db,
                delta: Some((0, &delta)),
                negatives: None,
                governor: None,
            },
            &mut m,
            &mut |t| {
                out.push(t);
                Emitted::New
            },
        );
        assert_eq!(out, vec![tuple_of_syms(&["b", "d"])]);
    }

    #[test]
    fn missing_relation_yields_no_matches() {
        let r = Rule::new(
            atom("p", [Term::var("X")]),
            vec![Literal::pos(atom("ghost", [Term::var("X")]))],
        );
        let c = compile_rule(&r).unwrap();
        let db = edb();
        let mut m = EvalMetrics::default();
        let mut n = 0;
        let _ = join_rule(&c, &JoinInput::naive(&db), &mut m, &mut |_| {
            n += 1;
            Emitted::New
        });
        assert_eq!(n, 0);
    }

    #[test]
    fn refused_emission_stops_the_join_and_counts_nothing() {
        let r = Rule::new(
            atom("p", [Term::var("X"), Term::var("Y")]),
            vec![
                Literal::pos(atom("e", [Term::var("X"), Term::var("Z")])),
                Literal::pos(atom("e", [Term::var("Z"), Term::var("Y")])),
            ],
        );
        let c = compile_rule(&r).unwrap();
        let db = edb();
        let mut m = EvalMetrics::default();
        let mut calls = 0;
        let flow = join_rule(&c, &JoinInput::naive(&db), &mut m, &mut |_| {
            calls += 1;
            if calls == 1 {
                Emitted::New
            } else {
                Emitted::Refused
            }
        });
        assert!(flow.is_break());
        assert_eq!(calls, 2, "join must stop right at the refusal");
        assert_eq!(m.firings, 1, "the refused emission counts no firing");
        assert_eq!(m.new_facts, 1);
        assert_eq!(m.duplicate_facts, 0);
    }

    #[test]
    fn step_governed_join_breaks_mid_rule() {
        let r = Rule::new(
            atom("p", [Term::var("X"), Term::var("Y")]),
            vec![
                Literal::pos(atom("e", [Term::var("X"), Term::var("Z")])),
                Literal::pos(atom("e", [Term::var("Z"), Term::var("Y")])),
            ],
        );
        let c = compile_rule(&r).unwrap();
        let db = edb();
        let gov = crate::govern::Governor::new(Budget::default().with_max_steps(1), None);
        let mut m = EvalMetrics::default();
        let mut out = Vec::new();
        let flow = join_rule(
            &c,
            &JoinInput {
                governor: Some(&gov),
                ..JoinInput::naive(&db)
            },
            &mut m,
            &mut |t| {
                out.push(t);
                Emitted::New
            },
        );
        assert!(flow.is_break());
        assert_eq!(out.len(), 1, "exactly one firing fits a 1-step budget");
        assert_eq!(
            gov.completion(),
            Completion::BudgetExhausted {
                resource: Resource::Steps
            }
        );
    }

    #[test]
    fn ensure_rule_indexes_builds_probe_masks() {
        let r = Rule::new(
            atom("p", [Term::var("X"), Term::var("Y")]),
            vec![
                Literal::pos(atom("e", [Term::var("X"), Term::var("Z")])),
                Literal::pos(atom("e", [Term::var("Z"), Term::var("Y")])),
            ],
        );
        let c = compile_rule(&r).unwrap();
        let mut db = edb();
        ensure_rule_indexes(&c, &mut db);
        assert!(db
            .relation(Predicate::new("e", 2))
            .unwrap()
            .has_index(Mask::of_columns(&[0])));
    }
}
