//! Machine-independent evaluation counters.
//!
//! The power comparisons of the paper are stated in numbers of generated
//! facts and inference steps, not wall-clock seconds; these counters are the
//! quantities every experiment table reports.

use std::fmt;
use std::ops::AddAssign;

/// Counters accumulated by an evaluation run.
#[derive(Clone, Copy, Default, Debug)]
pub struct EvalMetrics {
    /// Successful full-body rule instantiations (inference steps). Includes
    /// firings that re-derive an already-known fact.
    pub firings: u64,
    /// Facts inserted for the first time.
    pub new_facts: u64,
    /// Firings whose conclusion was already known.
    pub duplicate_facts: u64,
    /// Index/scan probes issued while joining rule bodies.
    pub probes: u64,
    /// Candidate tuples enumerated by those probes.
    pub tuples_considered: u64,
    /// Fixpoint rounds until saturation.
    pub iterations: u64,
    /// Conditional statements generated (conditional-fixpoint runs only).
    pub conditional_statements: u64,
    /// Execution-shape statistics of the blocked executor. Excluded from
    /// equality: the logical counters above must agree between the blocked
    /// and tuple-at-a-time paths, but only the blocked path executes blocks.
    pub exec: ExecStats,
}

/// How the blocked executor shaped its work: how many rule plans were
/// compiled, how many binding blocks flowed through operators, and how many
/// binding rows those blocks carried (so rows/block is derivable).
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct ExecStats {
    /// Rule plans compiled (and cached for the run) by the plan compiler.
    pub plans_compiled: u64,
    /// Binding blocks pushed through a plan operator or the emission sink.
    pub blocks_executed: u64,
    /// Binding rows carried by those blocks.
    pub block_rows: u64,
}

impl ExecStats {
    /// Mean binding rows per executed block (0 when nothing ran blocked).
    pub fn rows_per_block(&self) -> f64 {
        if self.blocks_executed == 0 {
            0.0
        } else {
            self.block_rows as f64 / self.blocks_executed as f64
        }
    }
}

impl AddAssign for ExecStats {
    fn add_assign(&mut self, o: ExecStats) {
        self.plans_compiled += o.plans_compiled;
        self.blocks_executed += o.blocks_executed;
        self.block_rows += o.block_rows;
    }
}

impl EvalMetrics {
    /// Total derivations attempted (new + duplicate).
    pub fn derivations(&self) -> u64 {
        self.new_facts + self.duplicate_facts
    }
}

/// Equality compares the logical counters only. The differential tests
/// assert `blocked == tuple == legacy` metric-for-metric; the blocked
/// executor's [`ExecStats`] are shape, not semantics, and necessarily differ
/// across executors.
impl PartialEq for EvalMetrics {
    fn eq(&self, o: &EvalMetrics) -> bool {
        (
            self.firings,
            self.new_facts,
            self.duplicate_facts,
            self.probes,
            self.tuples_considered,
            self.iterations,
            self.conditional_statements,
        ) == (
            o.firings,
            o.new_facts,
            o.duplicate_facts,
            o.probes,
            o.tuples_considered,
            o.iterations,
            o.conditional_statements,
        )
    }
}

impl Eq for EvalMetrics {}

impl AddAssign for EvalMetrics {
    fn add_assign(&mut self, o: EvalMetrics) {
        self.firings += o.firings;
        self.new_facts += o.new_facts;
        self.duplicate_facts += o.duplicate_facts;
        self.probes += o.probes;
        self.tuples_considered += o.tuples_considered;
        self.iterations += o.iterations;
        self.conditional_statements += o.conditional_statements;
        self.exec += o.exec;
    }
}

impl fmt::Display for EvalMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "firings={} new={} dup={} probes={} considered={} iters={}",
            self.firings,
            self.new_facts,
            self.duplicate_facts,
            self.probes,
            self.tuples_considered,
            self.iterations
        )?;
        if self.conditional_statements > 0 {
            write!(f, " cond={}", self.conditional_statements)?;
        }
        if self.exec.blocks_executed > 0 {
            write!(
                f,
                " blocks={} rows/block={:.1}",
                self.exec.blocks_executed,
                self.exec.rows_per_block()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_assign_accumulates() {
        let mut a = EvalMetrics {
            firings: 1,
            new_facts: 2,
            duplicate_facts: 3,
            probes: 4,
            tuples_considered: 5,
            iterations: 6,
            conditional_statements: 7,
            exec: ExecStats {
                plans_compiled: 1,
                blocks_executed: 2,
                block_rows: 8,
            },
        };
        a += a;
        assert_eq!(a.firings, 2);
        assert_eq!(a.new_facts, 4);
        assert_eq!(a.conditional_statements, 14);
        assert_eq!(a.derivations(), 4 + 6);
        assert_eq!(a.exec.plans_compiled, 2);
        assert_eq!(a.exec.blocks_executed, 4);
        assert_eq!(a.exec.block_rows, 16);
    }

    #[test]
    fn display_is_compact() {
        let m = EvalMetrics::default();
        let s = m.to_string();
        assert!(s.contains("firings=0"));
        assert!(!s.contains("cond="));
        assert!(!s.contains("blocks="));
    }

    #[test]
    fn equality_ignores_exec_shape() {
        // blocked vs tuple runs produce the same logical counters but only
        // the blocked one executes blocks; they must still compare equal.
        let a = EvalMetrics {
            firings: 3,
            ..EvalMetrics::default()
        };
        let mut b = a;
        b.exec.blocks_executed = 7;
        b.exec.block_rows = 700;
        assert_eq!(a, b);
        b.firings = 4;
        assert_ne!(a, b);
    }

    #[test]
    fn rows_per_block_is_safe_on_zero() {
        assert_eq!(ExecStats::default().rows_per_block(), 0.0);
        let s = ExecStats {
            plans_compiled: 1,
            blocks_executed: 4,
            block_rows: 10,
        };
        assert_eq!(s.rows_per_block(), 2.5);
    }
}
