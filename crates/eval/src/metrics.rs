//! Machine-independent evaluation counters.
//!
//! The power comparisons of the paper are stated in numbers of generated
//! facts and inference steps, not wall-clock seconds; these counters are the
//! quantities every experiment table reports.

use std::fmt;
use std::ops::AddAssign;

/// Counters accumulated by an evaluation run.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct EvalMetrics {
    /// Successful full-body rule instantiations (inference steps). Includes
    /// firings that re-derive an already-known fact.
    pub firings: u64,
    /// Facts inserted for the first time.
    pub new_facts: u64,
    /// Firings whose conclusion was already known.
    pub duplicate_facts: u64,
    /// Index/scan probes issued while joining rule bodies.
    pub probes: u64,
    /// Candidate tuples enumerated by those probes.
    pub tuples_considered: u64,
    /// Fixpoint rounds until saturation.
    pub iterations: u64,
    /// Conditional statements generated (conditional-fixpoint runs only).
    pub conditional_statements: u64,
}

impl EvalMetrics {
    /// Total derivations attempted (new + duplicate).
    pub fn derivations(&self) -> u64 {
        self.new_facts + self.duplicate_facts
    }
}

impl AddAssign for EvalMetrics {
    fn add_assign(&mut self, o: EvalMetrics) {
        self.firings += o.firings;
        self.new_facts += o.new_facts;
        self.duplicate_facts += o.duplicate_facts;
        self.probes += o.probes;
        self.tuples_considered += o.tuples_considered;
        self.iterations += o.iterations;
        self.conditional_statements += o.conditional_statements;
    }
}

impl fmt::Display for EvalMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "firings={} new={} dup={} probes={} considered={} iters={}",
            self.firings,
            self.new_facts,
            self.duplicate_facts,
            self.probes,
            self.tuples_considered,
            self.iterations
        )?;
        if self.conditional_statements > 0 {
            write!(f, " cond={}", self.conditional_statements)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_assign_accumulates() {
        let mut a = EvalMetrics {
            firings: 1,
            new_facts: 2,
            duplicate_facts: 3,
            probes: 4,
            tuples_considered: 5,
            iterations: 6,
            conditional_statements: 7,
        };
        a += a;
        assert_eq!(a.firings, 2);
        assert_eq!(a.new_facts, 4);
        assert_eq!(a.conditional_statements, 14);
        assert_eq!(a.derivations(), 4 + 6);
    }

    #[test]
    fn display_is_compact() {
        let m = EvalMetrics::default();
        let s = m.to_string();
        assert!(s.contains("firings=0"));
        assert!(!s.contains("cond="));
    }
}
