//! Naive bottom-up evaluation: apply every rule to the whole database until
//! saturation. The baseline every other strategy is measured against.

use crate::error::EvalError;
use crate::exec::{exec_plan, ExecMode, ExecScratch};
use crate::fail_point;
use crate::govern::{Budget, CancelHandle, Completion, Governor};
use crate::join::{
    compile_rule, ensure_rule_indexes, join_rule, CompiledRule, Emitted, JoinInput, JoinScratch,
};
use crate::metrics::EvalMetrics;
use crate::plan::{compile_plans, RulePlan};
use alexander_ir::{Polarity, Program};
use alexander_storage::Database;

/// Evaluator knobs.
#[derive(Clone, Debug)]
pub struct EvalOptions {
    /// Build hash indexes for the masks rules probe. Turning this off forces
    /// every probe into a filtered scan (ablation E10).
    pub use_indexes: bool,
    /// Worker threads for the per-round rule fan-out in semi-naive
    /// evaluation (and everything layered on it: stratified strata,
    /// conditional phase 0). `0` or `1` means sequential; metrics are exact
    /// and identical to the sequential run at any thread count.
    pub threads: usize,
    /// Resource limits for the run; unlimited by default. On exhaustion the
    /// evaluator stops cleanly and reports [`Completion::BudgetExhausted`]
    /// on its (partial but well-formed) result.
    pub budget: Budget,
    /// Cooperative cancellation token: another thread calls
    /// [`CancelHandle::cancel`] and the run stops at its next governance
    /// check, reporting [`Completion::Cancelled`].
    pub cancel: Option<CancelHandle>,
    /// Which executor drives rule bodies: compiled plans over binding
    /// blocks (the default), or the tuple-at-a-time join kept as the
    /// differential-testing oracle. Both produce bit-identical results and
    /// logical metrics.
    pub exec: ExecMode,
}

impl Default for EvalOptions {
    fn default() -> EvalOptions {
        EvalOptions {
            use_indexes: true,
            threads: 1,
            budget: Budget::UNLIMITED,
            cancel: None,
            exec: ExecMode::default(),
        }
    }
}

impl EvalOptions {
    /// `Default` with the given thread count.
    pub fn with_threads(threads: usize) -> EvalOptions {
        EvalOptions {
            threads,
            ..EvalOptions::default()
        }
    }

    /// Builder: attach a resource budget.
    pub fn with_budget(mut self, budget: Budget) -> EvalOptions {
        self.budget = budget;
        self
    }

    /// Builder: attach a cancellation token.
    pub fn with_cancel(mut self, cancel: CancelHandle) -> EvalOptions {
        self.cancel = Some(cancel);
        self
    }

    /// Builder: select the executor.
    pub fn with_exec(mut self, exec: ExecMode) -> EvalOptions {
        self.exec = exec;
        self
    }

    /// Builds the run-time governor for one evaluation under these options.
    pub(crate) fn governor(&self) -> Governor {
        Governor::new(self.budget, self.cancel.clone())
    }
}

/// The outcome of a bottom-up run: the database (EDB + IDB) and the
/// counters. `completion` says whether `db` is the full fixpoint
/// ([`Completion::Complete`]) or a sound partial result cut short by a
/// budget or cancellation.
#[derive(Clone, Debug)]
pub struct EvalResult {
    pub db: Database,
    pub metrics: EvalMetrics,
    pub completion: Completion,
}

/// Checks that negations only touch extensional predicates (the soundness
/// condition for naive and semi-naive runs; stratified programs go through
/// [`crate::stratified`]).
pub(crate) fn check_semipositive(program: &Program) -> Result<(), EvalError> {
    let idb = program.idb_predicates();
    for r in &program.rules {
        for l in &r.body {
            if l.polarity == Polarity::Negative && idb.contains(&l.atom.predicate()) {
                return Err(EvalError::NegatedIdb(l.atom.predicate()));
            }
        }
    }
    Ok(())
}

pub(crate) fn compile_program(program: &Program) -> Result<Vec<CompiledRule>, EvalError> {
    program.rules.iter().map(|r| Ok(compile_rule(r)?)).collect()
}

pub(crate) fn seed_database(program: &Program, edb: &Database) -> Database {
    let mut db = edb.clone();
    for f in &program.facts {
        // invariant: `Program::validate` (run by every caller) rejects
        // non-ground facts before evaluation starts.
        db.insert_atom(f).expect("validated facts are ground");
    }
    db
}

/// Runs naive evaluation of a semipositive `program` over `edb`.
pub fn eval_naive(program: &Program, edb: &Database) -> Result<EvalResult, EvalError> {
    eval_naive_opts(program, edb, EvalOptions::default())
}

/// [`eval_naive`] with explicit options.
pub fn eval_naive_opts(
    program: &Program,
    edb: &Database,
    opts: EvalOptions,
) -> Result<EvalResult, EvalError> {
    program.validate().map_err(EvalError::Invalid)?;
    check_semipositive(program)?;
    let rules = compile_program(program)?;
    let mut db = seed_database(program, edb);
    let mut metrics = EvalMetrics::default();
    let plans: Option<Vec<RulePlan>> = compile_plans(&rules, opts.exec, &mut metrics);
    let gov = opts.governor();
    let gov_ref = gov.as_join_ref();
    let mut scratch = JoinScratch::new();
    let mut exec_scratch = ExecScratch::new();

    loop {
        if gov.note_round().is_break() {
            break;
        }
        fail_point("round-start");
        metrics.iterations += 1;
        if opts.use_indexes {
            for r in &rules {
                ensure_rule_indexes(r, &mut db);
            }
        }
        // Naive semantics: T is applied to the *current* instant; staged
        // facts only become visible next round.
        let mut staged = Database::new();
        let mut interrupted = false;
        for (ri, rule) in rules.iter().enumerate() {
            let head_pred = rule.head.pred;
            let input = JoinInput {
                total: &db,
                delta: None,
                sides: None,
                negatives: None,
                governor: gov_ref,
            };
            let flow = match plans.as_ref() {
                Some(plans) => exec_plan(
                    &plans[ri],
                    &input,
                    &mut exec_scratch,
                    &mut metrics,
                    &mut |h, row| {
                        if db.contains_row_hashed(head_pred, h, row)
                            || staged.contains_row_hashed(head_pred, h, row)
                        {
                            Emitted::Duplicate
                        } else if gov.claim_fact().is_break() {
                            Emitted::Refused
                        } else {
                            staged.insert_row_hashed(head_pred, h, row);
                            Emitted::New
                        }
                    },
                ),
                None => join_rule(rule, &input, &mut scratch, &mut metrics, &mut |row| {
                    if db.contains_row(head_pred, row) || staged.contains_row(head_pred, row) {
                        Emitted::Duplicate
                    } else if gov.claim_fact().is_break() {
                        Emitted::Refused
                    } else {
                        staged.insert_row(head_pred, row);
                        Emitted::New
                    }
                }),
            };
            if flow.is_break() {
                interrupted = true;
                break;
            }
        }
        // Facts staged before an interruption are sound: keep them in the
        // partial result.
        let grew = db.absorb_staged(&staged) > 0;
        if interrupted || !grew {
            break;
        }
    }
    Ok(EvalResult {
        db,
        metrics,
        completion: gov.completion(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::govern::Resource;
    use alexander_parser::parse;
    use alexander_storage::tuple_of_syms;

    fn run(src: &str) -> EvalResult {
        let parsed = parse(src).unwrap();
        let edb = Database::new();
        eval_naive(&parsed.program, &edb).unwrap()
    }

    #[test]
    fn transitive_closure_on_chain() {
        let r = run("
            e(a, b). e(b, c). e(c, d).
            tc(X, Y) :- e(X, Y).
            tc(X, Y) :- e(X, Z), tc(Z, Y).
        ");
        let tc = alexander_ir::Predicate::new("tc", 2);
        assert_eq!(r.db.len_of(tc), 6); // ab ac ad bc bd cd
        assert!(r
            .db
            .relation(tc)
            .unwrap()
            .contains(&tuple_of_syms(&["a", "d"])));
        assert!(r.completion.is_complete());
    }

    #[test]
    fn naive_iterations_track_chain_depth() {
        let r = run("
            e(a, b). e(b, c). e(c, d). e(d, e5).
            tc(X, Y) :- e(X, Y).
            tc(X, Y) :- e(X, Z), tc(Z, Y).
        ");
        // Depth-4 chain: tc grows for 4 rounds, +1 to detect saturation.
        assert!(r.metrics.iterations >= 4);
        assert!(r.metrics.duplicate_facts > 0, "naive re-derives facts");
    }

    #[test]
    fn semipositive_negation_on_edb_is_allowed() {
        let r = run("
            node(a). node(b). bad(b).
            good(X) :- node(X), !bad(X).
        ");
        let good = alexander_ir::Predicate::new("good", 1);
        assert_eq!(r.db.len_of(good), 1);
        assert!(r
            .db
            .relation(good)
            .unwrap()
            .contains(&tuple_of_syms(&["a"])));
    }

    #[test]
    fn negated_idb_is_rejected() {
        let parsed = parse(
            "
            p(X) :- q(X).
            r(X) :- q(X), !p(X).
            q(a).
        ",
        )
        .unwrap();
        let err = eval_naive(&parsed.program, &Database::new()).unwrap_err();
        assert!(matches!(err, EvalError::NegatedIdb(_)));
    }

    #[test]
    fn invalid_program_is_rejected() {
        let parsed = parse("p(X, Y) :- q(X).").unwrap();
        let err = eval_naive(&parsed.program, &Database::new()).unwrap_err();
        assert!(matches!(err, EvalError::Invalid(_)));
    }

    #[test]
    fn without_indexes_same_answers() {
        let parsed = parse(
            "
            e(a, b). e(b, c).
            tc(X, Y) :- e(X, Y).
            tc(X, Y) :- e(X, Z), tc(Z, Y).
        ",
        )
        .unwrap();
        let with = eval_naive(&parsed.program, &Database::new()).unwrap();
        let without = eval_naive_opts(
            &parsed.program,
            &Database::new(),
            EvalOptions {
                use_indexes: false,
                ..EvalOptions::default()
            },
        )
        .unwrap();
        let tc = alexander_ir::Predicate::new("tc", 2);
        assert_eq!(with.db.len_of(tc), without.db.len_of(tc));
    }

    #[test]
    fn empty_program_terminates_immediately() {
        let r = run("");
        assert_eq!(r.db.total_tuples(), 0);
        assert_eq!(r.metrics.iterations, 1);
    }

    #[test]
    fn facts_only_program() {
        let r = run("p(a). p(b).");
        assert_eq!(r.db.len_of(alexander_ir::Predicate::new("p", 1)), 2);
    }

    const TC: &str = "
        e(a, b). e(b, c). e(c, d). e(d, e5).
        tc(X, Y) :- e(X, Y).
        tc(X, Y) :- e(X, Z), tc(Z, Y).
    ";

    #[test]
    fn fact_budget_yields_strict_subset_and_exhausted() {
        let parsed = parse(TC).unwrap();
        let full = eval_naive(&parsed.program, &Database::new()).unwrap();
        let tc = alexander_ir::Predicate::new("tc", 2);
        let limited = eval_naive_opts(
            &parsed.program,
            &Database::new(),
            EvalOptions::default().with_budget(Budget::default().with_max_facts(3)),
        )
        .unwrap();
        assert_eq!(
            limited.completion,
            Completion::BudgetExhausted {
                resource: Resource::Facts
            }
        );
        assert_eq!(limited.db.len_of(tc), 3);
        assert!(limited.db.len_of(tc) < full.db.len_of(tc));
        for row in limited.db.relation(tc).unwrap().iter() {
            assert!(
                full.db.relation(tc).unwrap().contains_row(row),
                "subset violated"
            );
        }
    }

    #[test]
    fn exact_fact_budget_still_completes() {
        let parsed = parse(TC).unwrap();
        let full = eval_naive(&parsed.program, &Database::new()).unwrap();
        let derived = full.metrics.new_facts;
        let exact = eval_naive_opts(
            &parsed.program,
            &Database::new(),
            EvalOptions::default().with_budget(Budget::default().with_max_facts(derived)),
        )
        .unwrap();
        assert!(
            exact.completion.is_complete(),
            "a budget the fixpoint fits in must not report exhaustion"
        );
        assert_eq!(
            exact.db.len_of(alexander_ir::Predicate::new("tc", 2)),
            full.db.len_of(alexander_ir::Predicate::new("tc", 2))
        );
    }

    #[test]
    fn round_budget_stops_naive_loop() {
        let parsed = parse(TC).unwrap();
        let r = eval_naive_opts(
            &parsed.program,
            &Database::new(),
            EvalOptions::default().with_budget(Budget::default().with_max_rounds(1)),
        )
        .unwrap();
        assert_eq!(
            r.completion,
            Completion::BudgetExhausted {
                resource: Resource::Rounds
            }
        );
        assert_eq!(r.metrics.iterations, 1);
        // One naive round derives exactly the base tc facts.
        assert_eq!(r.db.len_of(alexander_ir::Predicate::new("tc", 2)), 4);
    }

    #[test]
    fn cancelled_before_start_yields_seed_only() {
        let parsed = parse(TC).unwrap();
        let cancel = CancelHandle::new();
        cancel.cancel();
        let r = eval_naive_opts(
            &parsed.program,
            &Database::new(),
            EvalOptions::default().with_cancel(cancel),
        )
        .unwrap();
        assert_eq!(r.completion, Completion::Cancelled);
        assert_eq!(r.db.len_of(alexander_ir::Predicate::new("tc", 2)), 0);
        assert_eq!(r.db.len_of(alexander_ir::Predicate::new("e", 2)), 4);
    }
}
