//! Naive bottom-up evaluation: apply every rule to the whole database until
//! saturation. The baseline every other strategy is measured against.

use crate::error::EvalError;
use crate::join::{compile_rule, ensure_rule_indexes, join_rule, CompiledRule, JoinInput};
use crate::metrics::EvalMetrics;
use alexander_ir::{Polarity, Program};
use alexander_storage::Database;

/// Evaluator knobs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EvalOptions {
    /// Build hash indexes for the masks rules probe. Turning this off forces
    /// every probe into a filtered scan (ablation E10).
    pub use_indexes: bool,
    /// Worker threads for the per-round rule fan-out in semi-naive
    /// evaluation (and everything layered on it: stratified strata,
    /// conditional phase 0). `0` or `1` means sequential; metrics are exact
    /// and identical to the sequential run at any thread count.
    pub threads: usize,
}

impl Default for EvalOptions {
    fn default() -> EvalOptions {
        EvalOptions {
            use_indexes: true,
            threads: 1,
        }
    }
}

impl EvalOptions {
    /// `Default` with the given thread count.
    pub fn with_threads(threads: usize) -> EvalOptions {
        EvalOptions {
            threads,
            ..EvalOptions::default()
        }
    }
}

/// The outcome of a bottom-up run: the saturated database (EDB + IDB) and
/// the counters.
#[derive(Clone, Debug)]
pub struct EvalResult {
    pub db: Database,
    pub metrics: EvalMetrics,
}

/// Checks that negations only touch extensional predicates (the soundness
/// condition for naive and semi-naive runs; stratified programs go through
/// [`crate::stratified`]).
pub(crate) fn check_semipositive(program: &Program) -> Result<(), EvalError> {
    let idb = program.idb_predicates();
    for r in &program.rules {
        for l in &r.body {
            if l.polarity == Polarity::Negative && idb.contains(&l.atom.predicate()) {
                return Err(EvalError::NegatedIdb(l.atom.predicate()));
            }
        }
    }
    Ok(())
}

pub(crate) fn compile_program(program: &Program) -> Result<Vec<CompiledRule>, EvalError> {
    program.rules.iter().map(|r| Ok(compile_rule(r)?)).collect()
}

pub(crate) fn seed_database(program: &Program, edb: &Database) -> Database {
    let mut db = edb.clone();
    for f in &program.facts {
        db.insert_atom(f).expect("validated facts are ground");
    }
    db
}

/// Runs naive evaluation of a semipositive `program` over `edb`.
pub fn eval_naive(program: &Program, edb: &Database) -> Result<EvalResult, EvalError> {
    eval_naive_opts(program, edb, EvalOptions::default())
}

/// [`eval_naive`] with explicit options.
pub fn eval_naive_opts(
    program: &Program,
    edb: &Database,
    opts: EvalOptions,
) -> Result<EvalResult, EvalError> {
    program.validate().map_err(EvalError::Invalid)?;
    check_semipositive(program)?;
    let rules = compile_program(program)?;
    let mut db = seed_database(program, edb);
    let mut metrics = EvalMetrics::default();

    loop {
        metrics.iterations += 1;
        if opts.use_indexes {
            for r in &rules {
                ensure_rule_indexes(r, &mut db);
            }
        }
        // Naive semantics: T is applied to the *current* instant; staged
        // facts only become visible next round.
        let mut staged = Database::new();
        for rule in &rules {
            let head_pred = rule.head.pred;
            let input = JoinInput {
                total: &db,
                delta: None,
                negatives: None,
            };
            join_rule(rule, &input, &mut metrics, &mut |t| {
                if db.relation(head_pred).is_some_and(|r| r.contains(&t)) {
                    false
                } else {
                    staged.insert(head_pred, t)
                }
            });
        }
        if db.merge(&staged) == 0 {
            break;
        }
    }
    Ok(EvalResult { db, metrics })
}

#[cfg(test)]
mod tests {
    use super::*;
    use alexander_parser::parse;
    use alexander_storage::tuple_of_syms;

    fn run(src: &str) -> EvalResult {
        let parsed = parse(src).unwrap();
        let edb = Database::new();
        eval_naive(&parsed.program, &edb).unwrap()
    }

    #[test]
    fn transitive_closure_on_chain() {
        let r = run("
            e(a, b). e(b, c). e(c, d).
            tc(X, Y) :- e(X, Y).
            tc(X, Y) :- e(X, Z), tc(Z, Y).
        ");
        let tc = alexander_ir::Predicate::new("tc", 2);
        assert_eq!(r.db.len_of(tc), 6); // ab ac ad bc bd cd
        assert!(r
            .db
            .relation(tc)
            .unwrap()
            .contains(&tuple_of_syms(&["a", "d"])));
    }

    #[test]
    fn naive_iterations_track_chain_depth() {
        let r = run("
            e(a, b). e(b, c). e(c, d). e(d, e5).
            tc(X, Y) :- e(X, Y).
            tc(X, Y) :- e(X, Z), tc(Z, Y).
        ");
        // Depth-4 chain: tc grows for 4 rounds, +1 to detect saturation.
        assert!(r.metrics.iterations >= 4);
        assert!(r.metrics.duplicate_facts > 0, "naive re-derives facts");
    }

    #[test]
    fn semipositive_negation_on_edb_is_allowed() {
        let r = run("
            node(a). node(b). bad(b).
            good(X) :- node(X), !bad(X).
        ");
        let good = alexander_ir::Predicate::new("good", 1);
        assert_eq!(r.db.len_of(good), 1);
        assert!(r
            .db
            .relation(good)
            .unwrap()
            .contains(&tuple_of_syms(&["a"])));
    }

    #[test]
    fn negated_idb_is_rejected() {
        let parsed = parse(
            "
            p(X) :- q(X).
            r(X) :- q(X), !p(X).
            q(a).
        ",
        )
        .unwrap();
        let err = eval_naive(&parsed.program, &Database::new()).unwrap_err();
        assert!(matches!(err, EvalError::NegatedIdb(_)));
    }

    #[test]
    fn invalid_program_is_rejected() {
        let parsed = parse("p(X, Y) :- q(X).").unwrap();
        let err = eval_naive(&parsed.program, &Database::new()).unwrap_err();
        assert!(matches!(err, EvalError::Invalid(_)));
    }

    #[test]
    fn without_indexes_same_answers() {
        let parsed = parse(
            "
            e(a, b). e(b, c).
            tc(X, Y) :- e(X, Y).
            tc(X, Y) :- e(X, Z), tc(Z, Y).
        ",
        )
        .unwrap();
        let with = eval_naive(&parsed.program, &Database::new()).unwrap();
        let without = eval_naive_opts(
            &parsed.program,
            &Database::new(),
            EvalOptions {
                use_indexes: false,
                ..EvalOptions::default()
            },
        )
        .unwrap();
        let tc = alexander_ir::Predicate::new("tc", 2);
        assert_eq!(with.db.len_of(tc), without.db.len_of(tc));
    }

    #[test]
    fn empty_program_terminates_immediately() {
        let r = run("");
        assert_eq!(r.db.total_tuples(), 0);
        assert_eq!(r.metrics.iterations, 1);
    }

    #[test]
    fn facts_only_program() {
        let r = run("p(a). p(b).");
        assert_eq!(r.db.len_of(alexander_ir::Predicate::new("p", 1)), 2);
    }
}
