//! Provenance: record *why* each fact was derived, and extract constructive
//! proof trees.
//!
//! Bry's proof-theoretic reading (PODS 1989, Prop. 5.1) characterises a
//! proof of a fact `F` as `F` itself when `F` is stored, or a rule instance
//! `Hσ ← Bσ` with `Hσ = F` together with proofs of `Bσ`'s positive premises
//! and failure witnesses for its negative ones. This module materialises
//! exactly that object: evaluation with provenance records, for every
//! derived fact, the first rule instance that produced it; proof trees are
//! then read back on demand.
//!
//! The recorded justification graph is acyclic by construction: premises of
//! a fact derived in round *k* were stored in rounds `< k`, so
//! first-justification-wins yields well-founded trees.

use crate::error::EvalError;
use crate::govern::Completion;
use crate::join::{
    compile_rule, ensure_rule_indexes, join_rule_bindings, CompiledRule, JoinInput, JoinScratch,
};
use crate::metrics::EvalMetrics;
use crate::naive::{seed_database, EvalResult};
use alexander_ir::analysis::stratify;
use alexander_ir::{Atom, FxHashMap, Polarity, Program, Rule};
use alexander_storage::Database;
use std::fmt;
use std::ops::ControlFlow;

/// Why one fact holds: the rule instance that first derived it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Justification {
    /// Index of the rule in the source program.
    pub rule: usize,
    /// Ground positive premises, in body order.
    pub premises: Vec<Atom>,
    /// Ground negative premises (atoms whose absence was used).
    pub negatives: Vec<Atom>,
}

/// First-derivation provenance for a whole evaluation.
#[derive(Clone, Debug, Default)]
pub struct Provenance {
    justifications: FxHashMap<Atom, Justification>,
}

impl Provenance {
    /// The recorded justification for `fact`, if it was derived by a rule
    /// (EDB facts have none).
    pub fn justification(&self, fact: &Atom) -> Option<&Justification> {
        self.justifications.get(fact)
    }

    /// Records (or replaces) the justification for `fact`. The incremental
    /// engine uses this to memoise rederivation witnesses: the next deletion
    /// touching `fact` re-checks the stored premises before falling back to
    /// a head-seeded join.
    pub fn record(&mut self, fact: Atom, justification: Justification) {
        self.justifications.insert(fact, justification);
    }

    /// Drops the justification for `fact` (when the fact is retracted for
    /// good, its witness must not outlive it).
    pub fn forget(&mut self, fact: &Atom) {
        self.justifications.remove(fact);
    }

    /// Number of justified facts.
    pub fn len(&self) -> usize {
        self.justifications.len()
    }

    /// True iff nothing was derived.
    pub fn is_empty(&self) -> bool {
        self.justifications.is_empty()
    }

    /// Builds the constructive proof tree of `fact`. Facts with no recorded
    /// justification are leaves if they are in `edb`, otherwise `None`
    /// (the atom does not hold).
    pub fn proof(&self, fact: &Atom, edb: &Database) -> Option<ProofTree> {
        if let Some(j) = self.justifications.get(fact) {
            let children = j
                .premises
                .iter()
                .map(|p| self.proof(p, edb))
                .collect::<Option<Vec<_>>>()?;
            Some(ProofTree::Derived {
                atom: fact.clone(),
                rule: j.rule,
                children,
                negatives: j.negatives.clone(),
            })
        } else if edb.contains_atom(fact) {
            Some(ProofTree::Fact(fact.clone()))
        } else {
            None
        }
    }
}

/// A constructive proof of one fact (Bry Prop. 5.1's tree, materialised).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProofTree {
    /// A stored (extensional) fact: a proof of itself.
    Fact(Atom),
    /// A rule application: proofs of the premises plus the negative
    /// failure witnesses.
    Derived {
        atom: Atom,
        rule: usize,
        children: Vec<ProofTree>,
        negatives: Vec<Atom>,
    },
}

impl ProofTree {
    /// The proven atom.
    pub fn atom(&self) -> &Atom {
        match self {
            ProofTree::Fact(a) => a,
            ProofTree::Derived { atom, .. } => atom,
        }
    }

    /// Tree height: 1 for a leaf.
    pub fn height(&self) -> usize {
        match self {
            ProofTree::Fact(_) => 1,
            ProofTree::Derived { children, .. } => {
                1 + children.iter().map(|c| c.height()).max().unwrap_or(0)
            }
        }
    }

    /// Every atom the proof *depends negatively on* (Bry Def. 5.1),
    /// anywhere in the tree.
    pub fn negative_dependencies(&self) -> Vec<Atom> {
        let mut out = Vec::new();
        self.walk(&mut |t| {
            if let ProofTree::Derived { negatives, .. } = t {
                out.extend(negatives.iter().cloned());
            }
        });
        out.sort();
        out.dedup();
        out
    }

    fn walk(&self, f: &mut impl FnMut(&ProofTree)) {
        f(self);
        if let ProofTree::Derived { children, .. } = self {
            for c in children {
                c.walk(f);
            }
        }
    }

    fn render(&self, indent: usize, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let pad = "  ".repeat(indent);
        match self {
            ProofTree::Fact(a) => writeln!(f, "{pad}{a}  [fact]"),
            ProofTree::Derived {
                atom,
                rule,
                children,
                negatives,
            } => {
                writeln!(f, "{pad}{atom}  [rule {rule}]")?;
                for n in negatives {
                    writeln!(f, "{pad}  !{n}  [fails]")?;
                }
                for c in children {
                    c.render(indent + 1, f)?;
                }
                Ok(())
            }
        }
    }
}

impl fmt::Display for ProofTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.render(0, f)
    }
}

/// Stratified evaluation that records provenance. Accepts any stratified
/// program (definite programs are a single stratum).
pub fn eval_with_provenance(
    program: &Program,
    edb: &Database,
) -> Result<(EvalResult, Provenance), EvalError> {
    program.validate().map_err(EvalError::Invalid)?;
    let strat = stratify(program)?;
    let mut db = seed_database(program, edb);
    let mut metrics = EvalMetrics::default();
    let mut prov = Provenance::default();
    let mut scratch = JoinScratch::new();

    // Indexed rule list per stratum, keeping source indices for the
    // justification records.
    for layer in 0..strat.len().max(1) {
        let rules: Vec<(usize, &Rule)> = program
            .rules
            .iter()
            .enumerate()
            .filter(|(_, r)| strat.stratum_of(r.head.predicate()) == layer)
            .collect();
        if rules.is_empty() {
            continue;
        }
        let compiled: Vec<(usize, CompiledRule)> = rules
            .iter()
            .map(|(i, r)| Ok((*i, compile_rule(r)?)))
            .collect::<Result<_, crate::order::Unorderable>>()?;

        // Naive rounds within the stratum (provenance favours clarity over
        // delta bookkeeping; the recorded trees are identical).
        loop {
            metrics.iterations += 1;
            for (_, r) in &compiled {
                ensure_rule_indexes(r, &mut db);
            }
            let mut fresh: Vec<(Atom, Justification)> = Vec::new();
            for (ri, rule) in &compiled {
                let input = JoinInput {
                    total: &db,
                    delta: None,
                    sides: None,
                    negatives: None,
                    governor: None,
                };
                let _ = join_rule_bindings(
                    rule,
                    &input,
                    &mut scratch,
                    &mut metrics,
                    &mut |rule, bind, metrics| {
                        metrics.firings += 1;
                        let head = rule
                            .head
                            // invariant: rule safety is validated before
                            // evaluation.
                            .to_tuple(bind)
                            .expect("safe heads ground")
                            .to_atom(rule.head.pred.name);
                        if db.contains_atom(&head) {
                            metrics.duplicate_facts += 1;
                            return ControlFlow::Continue(());
                        }
                        let mut premises = Vec::new();
                        let mut negatives = Vec::new();
                        for lit in &rule.body {
                            let atom = lit
                                .atom
                                // invariant: EmitBindings fires after a full
                                // body match, when every body variable is bound.
                                .to_tuple(bind)
                                .expect("ordered bodies ground at emit")
                                .to_atom(lit.atom.pred.name);
                            match lit.polarity {
                                Polarity::Positive => premises.push(atom),
                                Polarity::Negative => negatives.push(atom),
                            }
                        }
                        metrics.new_facts += 1;
                        fresh.push((
                            head,
                            Justification {
                                rule: *ri,
                                premises,
                                negatives,
                            },
                        ));
                        ControlFlow::Continue(())
                    },
                );
            }
            let mut grew = false;
            for (atom, j) in fresh {
                // invariant: `fresh` only holds atoms built from ground
                // tuples above.
                if db.insert_atom(&atom).expect("ground") {
                    prov.justifications.entry(atom).or_insert(j);
                    grew = true;
                }
            }
            if !grew {
                break;
            }
        }
    }
    Ok((
        EvalResult {
            db,
            metrics,
            completion: Completion::Complete,
        },
        prov,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use alexander_parser::{parse, parse_atom};

    fn setup(src: &str) -> (Program, Database) {
        let parsed = parse(src).unwrap();
        let edb = Database::from_program(&parsed.program);
        let program = Program {
            rules: parsed.program.rules,
            facts: Vec::new(),
        };
        (program, edb)
    }

    #[test]
    fn proof_tree_of_a_chain_derivation() {
        let (program, edb) = setup(
            "
            par(a, b). par(b, c). par(c, d).
            anc(X, Y) :- par(X, Y).
            anc(X, Y) :- par(X, Z), anc(Z, Y).
        ",
        );
        let (result, prov) = eval_with_provenance(&program, &edb).unwrap();
        assert_eq!(result.db.len_of(alexander_ir::Predicate::new("anc", 2)), 6);

        let goal = parse_atom("anc(a, d)").unwrap();
        let proof = prov.proof(&goal, &edb).expect("anc(a,d) holds");
        assert_eq!(proof.atom(), &goal);
        // a->d goes through the recursive rule at least twice: height >= 3.
        assert!(proof.height() >= 3, "{proof}");
        let shown = proof.to_string();
        assert!(shown.contains("anc(a, d)"), "{shown}");
        assert!(shown.contains("[fact]"), "{shown}");
    }

    #[test]
    fn edb_facts_prove_themselves() {
        let (program, edb) = setup("par(a, b). anc(X, Y) :- par(X, Y).");
        let (_, prov) = eval_with_provenance(&program, &edb).unwrap();
        let fact = parse_atom("par(a, b)").unwrap();
        assert_eq!(prov.proof(&fact, &edb), Some(ProofTree::Fact(fact.clone())));
        assert!(prov.justification(&fact).is_none());
    }

    #[test]
    fn non_facts_have_no_proof() {
        let (program, edb) = setup("par(a, b). anc(X, Y) :- par(X, Y).");
        let (_, prov) = eval_with_provenance(&program, &edb).unwrap();
        assert!(prov
            .proof(&parse_atom("anc(b, a)").unwrap(), &edb)
            .is_none());
    }

    #[test]
    fn negative_dependencies_are_reported() {
        let (program, edb) = setup(
            "
            node(a). node(b). bad(b).
            blocked(X) :- bad(X).
            good(X) :- node(X), !blocked(X).
        ",
        );
        let (_, prov) = eval_with_provenance(&program, &edb).unwrap();
        let proof = prov
            .proof(&parse_atom("good(a)").unwrap(), &edb)
            .expect("good(a) holds");
        let negs: Vec<String> = proof
            .negative_dependencies()
            .iter()
            .map(|a| a.to_string())
            .collect();
        assert_eq!(negs, ["blocked(a)"]);
        assert!(proof.to_string().contains("!blocked(a)  [fails]"));
    }

    #[test]
    fn justification_records_the_rule_index() {
        let (program, edb) = setup(
            "
            par(a, b). par(b, c).
            anc(X, Y) :- par(X, Y).
            anc(X, Y) :- par(X, Z), anc(Z, Y).
        ",
        );
        let (_, prov) = eval_with_provenance(&program, &edb).unwrap();
        let base = prov
            .justification(&parse_atom("anc(a, b)").unwrap())
            .unwrap();
        assert_eq!(base.rule, 0);
        let step = prov
            .justification(&parse_atom("anc(a, c)").unwrap())
            .unwrap();
        assert_eq!(step.rule, 1);
        assert_eq!(step.premises.len(), 2);
    }

    #[test]
    fn provenance_agrees_with_plain_evaluation() {
        let (program, edb) = setup(
            "
            e(a, b). e(b, c). e(c, a). e(c, d).
            tc(X, Y) :- e(X, Y).
            tc(X, Y) :- e(X, Z), tc(Z, Y).
        ",
        );
        let (with, prov) = eval_with_provenance(&program, &edb).unwrap();
        let plain = crate::seminaive::eval_seminaive(&program, &edb).unwrap();
        let tc = alexander_ir::Predicate::new("tc", 2);
        assert_eq!(with.db.len_of(tc), plain.db.len_of(tc));
        // Every derived fact has a proof, and the proofs are well-founded
        // even on the cyclic graph.
        for a in with.db.atoms_of(tc) {
            let p = prov
                .proof(&a, &edb)
                .unwrap_or_else(|| panic!("no proof for {a}"));
            assert!(p.height() <= 50, "suspiciously deep proof for {a}");
        }
    }

    #[test]
    fn proofs_in_higher_strata_reach_into_lower_ones() {
        let (program, edb) = setup(
            "
            edge(s, a). edge(a, b). node(s). node(a). node(b). node(z).
            source(s).
            reach(X) :- source(S), edge(S, X).
            reach(Y) :- reach(X), edge(X, Y).
            unreach(X) :- node(X), !reach(X).
        ",
        );
        let (_, prov) = eval_with_provenance(&program, &edb).unwrap();
        let proof = prov
            .proof(&parse_atom("unreach(z)").unwrap(), &edb)
            .expect("z is unreachable");
        assert_eq!(proof.negative_dependencies()[0].to_string(), "reach(z)");
    }
}
