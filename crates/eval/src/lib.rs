//! # alexander-eval
//!
//! Bottom-up evaluation of Datalog programs:
//!
//! * [`eval_naive`] — apply every rule to the full database each round.
//! * [`eval_seminaive`] — delta-driven rounds (the standard fixpoint engine).
//! * [`eval_stratified`] — stratify, then semi-naive per stratum; computes
//!   the perfect model of stratified programs with negation.
//! * [`eval_conditional`] — Bry's conditional fixpoint (PODS 1989): delay
//!   negations into conditional statements, then reduce; decides loosely /
//!   locally stratified programs and reports a well-founded-style undefined
//!   residue on cyclic negation. This is the evaluator that runs
//!   magic-rewritten programs, whose stratification the rewriting destroys.
//! * [`eval_naive_parallel`] — round-parallel naive evaluation (ablation).
//!
//! All evaluators return machine-independent [`EvalMetrics`] counters; the
//! benchmark tables of the reproduction are built from these.
//!
//! By default rule bodies are compiled once per run into flat columnar
//! plans ([`plan`]) and driven by a blocked executor ([`exec`]) that moves
//! fixed-size blocks of binding rows through the operator pipeline and
//! hashes each derived head row exactly once. The per-tuple join
//! ([`ExecMode::Tuple`], via [`EvalOptions::with_exec`]) is retained as a
//! differential oracle: both executors produce identical relations,
//! identical emission order, and identical [`EvalMetrics`].
//!
//! The semi-naive engine (and everything layered on it) can parallelise each
//! fixpoint round across worker threads via [`EvalOptions::threads`]; the
//! resulting relations *and* metrics are identical to a sequential run at
//! any thread count (see [`seminaive`] for the round protocol).
//!
//! Every evaluator is resource-governed: [`EvalOptions::budget`] bounds
//! wall-clock time, derived facts, rounds, and rule firings, and
//! [`EvalOptions::cancel`] installs a cooperative cancellation token. On
//! exhaustion or cancellation the evaluators return a well-formed *partial*
//! result tagged with a non-`Complete` [`Completion`] instead of an error
//! (see [`govern`]). Parallel round workers are panic-isolated: a panicking
//! worker surfaces as [`EvalError::WorkerPanicked`] after its siblings
//! drain, never as a process abort.
//!
//! ```
//! use alexander_parser::parse;
//! use alexander_storage::Database;
//! use alexander_ir::Predicate;
//!
//! let parsed = parse("
//!     e(a, b). e(b, c).
//!     tc(X, Y) :- e(X, Y).
//!     tc(X, Y) :- e(X, Z), tc(Z, Y).
//! ").unwrap();
//! let result = alexander_eval::eval_seminaive(&parsed.program, &Database::new()).unwrap();
//! assert_eq!(result.db.len_of(Predicate::new("tc", 2)), 3);
//! ```
#![deny(clippy::redundant_clone)]
// Workspace lint note: `clippy::redundant_clone` is denied in the storage
// and eval crates (the two crates that own the allocation-free hot paths) so
// a stray `.clone()` of a tuple, row buffer, or database cannot land
// silently. It is a nursery lint, hence the per-crate opt-in rather than a
// [workspace.lints] entry; treat these two attributes as the deny-list.

pub mod conditional;
pub mod error;
pub mod exec;
#[cfg(feature = "failpoints")]
pub mod failpoints;
pub mod govern;
pub mod incremental;
pub mod join;
pub mod metrics;
pub mod naive;
pub mod order;
pub mod parallel;
pub mod plan;
pub mod provenance;
pub mod seminaive;
pub mod stratified;

/// Fault-injection hook compiled into evaluator hot paths. A no-op unless
/// the test-only `failpoints` feature is enabled; see [`failpoints`].
#[cfg(feature = "failpoints")]
pub(crate) fn fail_point(site: &str) {
    failpoints::hit(site);
}

#[cfg(not(feature = "failpoints"))]
#[inline(always)]
pub(crate) fn fail_point(_site: &str) {}

pub use conditional::{eval_conditional, eval_conditional_opts, ConditionalResult, Conditions};
pub use error::EvalError;
pub use exec::{exec_plan, ExecMode, ExecScratch, BLOCK_ROWS};
pub use govern::{Budget, CancelHandle, Completion, Consumption, Governor, Resource};
pub use incremental::{BatchOutcome, IncrementalEngine, Maintenance};
pub use join::{
    compile_rule, compile_rule_seeded, ensure_rule_indexes, join_rule, join_rule_bindings,
    join_rule_seeded, CompiledRule, DeltaSource, Emitted, JoinInput, JoinScratch, SideSources,
};
pub use metrics::{EvalMetrics, ExecStats};
pub use naive::{eval_naive, eval_naive_opts, EvalOptions, EvalResult};
pub use order::{order_for_evaluation, Unorderable};
pub use parallel::{eval_naive_parallel, eval_naive_parallel_opts};
pub use plan::{compile_plan, PlanOp, RulePlan};
pub use provenance::{eval_with_provenance, Justification, ProofTree, Provenance};
pub use seminaive::{eval_seminaive, eval_seminaive_opts};
pub use stratified::{eval_stratified, eval_stratified_opts, StratifiedResult};
