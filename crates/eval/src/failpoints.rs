//! Test-only fault injection, compiled in behind the `failpoints` feature.
//!
//! Evaluator hot paths call [`crate::fail_point`] with a site name; without
//! the feature that call is an empty inline function and the registry does
//! not exist. With the feature, tests configure an [`Action`] per site to
//! inject worker panics (exercising the `WorkerPanicked` path), artificial
//! per-round delays (exercising wall-clock deadlines deterministically),
//! or allocation pressure (exercising large-round memory behaviour).
//!
//! Sites currently instrumented:
//! - `"round-worker"` — entry of every round worker (parallel naive and
//!   parallel semi-naive), and of the sequential round-task loop, so
//!   injection also covers `threads = 1`.
//! - `"round-start"` — top of every fixpoint round in the naive loop,
//!   `run_rules`, and the parallel naive loop.
//!
//! The registry also carries **IO-layer** actions ([`Action::ShortWrite`],
//! [`Action::CrashAfterBytes`], [`Action::FsyncError`], [`Action::BitFlip`])
//! that [`hit`] ignores: they are declarative fault descriptions that the
//! durability crate's fault-aware file writer interprets itself via
//! [`action`] (a write wrapper knows its stream position; this registry does
//! not). Sites: `"durable-snapshot-io"` and `"durable-wal-io"` in
//! `alexander-durable`.
//!
//! The registry is global; tests that configure it must serialise through
//! [`scoped`], which holds a lock for the test's duration and clears the
//! registry on drop.

use std::collections::HashMap;
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::Duration;

/// What a triggered fail point does.
#[derive(Clone, Debug)]
pub enum Action {
    /// Panic with this message (the payload surfaced by `WorkerPanicked`).
    Panic(String),
    /// Sleep this long, simulating a slow round / slow worker.
    Sleep(Duration),
    /// Allocate and immediately drop this many bytes, simulating a round
    /// with heavy transient allocation.
    AllocPressure(usize),
    /// IO: the write that would cross byte `0` of its buffer... more
    /// precisely, the *next* write at this site persists only its first `n`
    /// bytes, then the stream fails permanently (a torn write followed by a
    /// crash). Interpreted by the durability writer, ignored by [`hit`].
    ShortWrite(usize),
    /// IO: everything up to stream offset `n` persists; the write crossing
    /// that offset is truncated at it and every later write or sync fails
    /// (the process died after `n` bytes reached the file). Interpreted by
    /// the durability writer, ignored by [`hit`].
    CrashAfterBytes(u64),
    /// IO: `fsync` fails at this site; writes succeed. Interpreted by the
    /// durability writer, ignored by [`hit`].
    FsyncError,
    /// IO: flip bit `bit` of the byte at stream offset `at` as it passes
    /// through the writer — silent media corruption, no error is ever
    /// reported to the writing side. Interpreted by the durability writer,
    /// ignored by [`hit`].
    BitFlip { at: u64, bit: u8 },
}

fn registry() -> &'static Mutex<HashMap<String, Action>> {
    static REGISTRY: OnceLock<Mutex<HashMap<String, Action>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

fn test_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

/// Guard returned by [`scoped`]: serialises failpoint tests and clears the
/// registry when dropped.
pub struct FailPointGuard {
    _lock: MutexGuard<'static, ()>,
}

impl Drop for FailPointGuard {
    fn drop(&mut self) {
        clear();
    }
}

/// Takes the global failpoint test lock (so concurrently running tests
/// cannot see each other's injections) and clears any stale configuration.
/// Configure sites after acquiring the guard; everything is cleared again
/// on drop.
pub fn scoped() -> FailPointGuard {
    // An injected panic can poison the lock of the *previous* test; the
    // registry itself is reset below, so the poison carries no bad state.
    let lock = test_lock().lock().unwrap_or_else(PoisonError::into_inner);
    clear();
    FailPointGuard { _lock: lock }
}

/// Arms `site` with `action`.
pub fn configure(site: &str, action: Action) {
    registry()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .insert(site.to_string(), action);
}

/// Disarms `site`.
pub fn remove(site: &str) {
    registry()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .remove(site);
}

/// Disarms everything.
pub fn clear() {
    registry()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clear();
}

/// The action armed at `site`, if any. This is how the IO fault variants
/// are consumed: a fault-aware writer reads its site's configuration once
/// per operation and applies the byte-level semantics itself.
pub fn action(site: &str) -> Option<Action> {
    registry()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .get(site)
        .cloned()
}

/// Called from instrumented evaluator sites (via [`crate::fail_point`]).
pub fn hit(site: &str) {
    match action(site) {
        None => {}
        // IO-layer actions are declarative; only the durability writer
        // interprets them (see [`action`]).
        Some(
            Action::ShortWrite(_)
            | Action::CrashAfterBytes(_)
            | Action::FsyncError
            | Action::BitFlip { .. },
        ) => {}
        Some(Action::Panic(msg)) => panic!("{msg}"),
        Some(Action::Sleep(d)) => std::thread::sleep(d),
        Some(Action::AllocPressure(bytes)) => {
            // Touch every page so the allocation is not optimised away.
            let mut buf = vec![0u8; bytes];
            for chunk in buf.chunks_mut(4096) {
                chunk[0] = 1;
            }
            std::hint::black_box(&buf);
        }
    }
}
