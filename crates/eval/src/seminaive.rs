//! Semi-naive bottom-up evaluation: each round only joins rule bodies
//! against the facts discovered in the previous round (the *delta*),
//! eliminating the bulk of naive evaluation's re-derivations.
//!
//! ## Parallel rounds
//!
//! With `EvalOptions::threads > 1` each round fans its work items out over
//! scoped worker threads. The round's `(total, delta)` pair is frozen (see
//! [`alexander_storage::Database::freeze`]) before the fan-out, so workers
//! share plain `&Database` views with no interior mutation; all indexes are
//! built up front by the single-threaded prelude. A work item is one
//! delta-rewriting variant — a `(rule, delta position)` pair — so even a
//! program with fewer rules than threads still splits across workers. Each
//! worker deduplicates its derivations against the frozen total *and* a
//! worker-local seen-set, then a single-threaded merge builds the next delta
//! in task order, reclassifying cross-worker duplicates so the metrics are
//! bit-identical to a sequential run at any thread count.

use crate::error::EvalError;
use crate::join::{compile_rule, ensure_rule_indexes, join_rule, CompiledRule, JoinInput};
use crate::metrics::EvalMetrics;
use crate::naive::{check_semipositive, seed_database, EvalOptions, EvalResult};
use alexander_ir::{FxHashSet, Polarity, Predicate, Program, Rule};
use alexander_storage::{Database, Tuple};

/// Runs semi-naive evaluation of a semipositive `program` over `edb`.
pub fn eval_seminaive(program: &Program, edb: &Database) -> Result<EvalResult, EvalError> {
    eval_seminaive_opts(program, edb, EvalOptions::default())
}

/// [`eval_seminaive`] with explicit options.
pub fn eval_seminaive_opts(
    program: &Program,
    edb: &Database,
    opts: EvalOptions,
) -> Result<EvalResult, EvalError> {
    program.validate().map_err(EvalError::Invalid)?;
    check_semipositive(program)?;
    let mut db = seed_database(program, edb);
    let mut metrics = EvalMetrics::default();
    run_rules(&program.rules, &mut db, &mut metrics, opts, None)?;
    Ok(EvalResult { db, metrics })
}

/// The semi-naive engine over an explicit rule set, mutating `db` in place.
///
/// `negatives`: where negative literals are checked; `None` means the current
/// total (correct when negated predicates are already complete in `db`, as in
/// per-stratum evaluation). The delta tracks only the head predicates of
/// `rules` — facts of other predicates are static during the run.
///
/// This is also the engine the stratified evaluator calls once per stratum.
pub(crate) fn run_rules(
    rules: &[Rule],
    db: &mut Database,
    metrics: &mut EvalMetrics,
    opts: EvalOptions,
    negatives: Option<&Database>,
) -> Result<(), EvalError> {
    let compiled: Vec<CompiledRule> = rules
        .iter()
        .map(|r| compile_rule(r).map_err(EvalError::from))
        .collect::<Result<_, _>>()?;
    let derived: FxHashSet<Predicate> = compiled.iter().map(|r| r.head.pred).collect();

    let threads = opts.threads.max(1);

    // Round 0: full join over the seed database, one work item per rule.
    metrics.iterations += 1;
    if opts.use_indexes {
        for r in &compiled {
            ensure_rule_indexes(r, db);
        }
    }
    let mut delta = Database::new();
    let tasks: Vec<RoundTask<'_>> = compiled
        .iter()
        .map(|rule| RoundTask {
            rule,
            delta_pos: None,
        })
        .collect();
    run_round_tasks(&tasks, db, None, negatives, threads, metrics, &mut delta);
    db.merge(&delta);

    // Delta rounds: every derived-predicate literal takes a turn as the
    // delta position. Each (rule, position) pair is one work item — the
    // delta-rewriting variants of a rule split across workers even when the
    // program has fewer rules than threads.
    while delta.total_tuples() > 0 {
        metrics.iterations += 1;
        if opts.use_indexes {
            for r in &compiled {
                ensure_rule_indexes(r, db);
                ensure_rule_indexes(r, &mut delta);
            }
        }
        let mut next = Database::new();
        let mut tasks: Vec<RoundTask<'_>> = Vec::new();
        for rule in &compiled {
            for (i, lit) in rule.body.iter().enumerate() {
                if lit.polarity == Polarity::Positive
                    && derived.contains(&lit.atom.pred)
                    && delta.len_of(lit.atom.pred) > 0
                {
                    tasks.push(RoundTask {
                        rule,
                        delta_pos: Some(i),
                    });
                }
            }
        }
        run_round_tasks(
            &tasks,
            db,
            Some(&delta),
            negatives,
            threads,
            metrics,
            &mut next,
        );
        db.merge(&next);
        delta = next;
    }
    Ok(())
}

/// One unit of per-round work: a compiled rule, optionally specialised to a
/// delta position (one delta-rewriting variant).
struct RoundTask<'a> {
    rule: &'a CompiledRule,
    delta_pos: Option<usize>,
}

/// Executes one round's work items, inserting fresh derivations into `next`.
///
/// `db` (and `delta`, when present) are not mutated for the duration: with
/// more than one thread they are frozen and the items fan out over scoped
/// workers; otherwise the items run in order on the calling thread. Either
/// way the facts in `next` and every metrics counter come out identical —
/// `new_facts` counts the distinct facts absent from `db`, which is a
/// property of the round's input, not of task scheduling.
#[allow(clippy::too_many_arguments)]
fn run_round_tasks(
    tasks: &[RoundTask<'_>],
    db: &Database,
    delta: Option<&Database>,
    negatives: Option<&Database>,
    threads: usize,
    metrics: &mut EvalMetrics,
    next: &mut Database,
) {
    let delta_of = |pos: Option<usize>| {
        pos.map(|i| (i, delta.expect("delta tasks only occur in delta rounds")))
    };
    if threads <= 1 || tasks.len() <= 1 {
        for task in tasks {
            let head_pred = task.rule.head.pred;
            let input = JoinInput {
                total: db,
                delta: delta_of(task.delta_pos),
                negatives,
            };
            join_rule(task.rule, &input, metrics, &mut |t| {
                if db.relation(head_pred).is_some_and(|r| r.contains(&t)) {
                    false
                } else {
                    next.insert(head_pred, t)
                }
            });
        }
        return;
    }

    let frozen = db.freeze();
    let chunk = tasks.len().div_ceil(threads);
    let results: Vec<(EvalMetrics, Vec<(Predicate, Tuple)>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = tasks
            .chunks(chunk)
            .map(|chunk_tasks| {
                scope.spawn(move || {
                    let mut local = EvalMetrics::default();
                    let mut seen: FxHashSet<(Predicate, Tuple)> = FxHashSet::default();
                    let mut buf: Vec<(Predicate, Tuple)> = Vec::new();
                    for task in chunk_tasks {
                        let head_pred = task.rule.head.pred;
                        let input = JoinInput {
                            total: frozen.db(),
                            delta: delta_of(task.delta_pos),
                            negatives,
                        };
                        join_rule(task.rule, &input, &mut local, &mut |t| {
                            if frozen.relation(head_pred).is_some_and(|r| r.contains(&t)) {
                                return false;
                            }
                            // Worker-local dedup; cross-worker collisions are
                            // reclassified at merge time.
                            let new = seen.insert((head_pred, t.clone()));
                            if new {
                                buf.push((head_pred, t));
                            }
                            new
                        });
                    }
                    (local, buf)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("round worker panicked"))
            .collect()
    });

    // Single-threaded merge, in task order so `next`'s insertion order (and
    // hence all downstream iteration) matches the sequential run. A fact two
    // workers both derived was provisionally counted new by each; demote the
    // later copies so the totals equal the sequential classification.
    for (local, buf) in results {
        *metrics += local;
        for (p, t) in buf {
            if !next.insert(p, t) {
                metrics.new_facts -= 1;
                metrics.duplicate_facts += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::eval_naive;
    use alexander_parser::parse;
    use alexander_storage::tuple_of_syms;

    const TC: &str = "
        e(a, b). e(b, c). e(c, d). e(d, e5). e(e5, f).
        tc(X, Y) :- e(X, Y).
        tc(X, Y) :- e(X, Z), tc(Z, Y).
    ";

    #[test]
    fn agrees_with_naive_on_tc() {
        let parsed = parse(TC).unwrap();
        let edb = Database::new();
        let naive = eval_naive(&parsed.program, &edb).unwrap();
        let semi = eval_seminaive(&parsed.program, &edb).unwrap();
        let tc = Predicate::new("tc", 2);
        assert_eq!(naive.db.len_of(tc), semi.db.len_of(tc));
        assert_eq!(semi.db.len_of(tc), 15); // C(6,2) pairs on a 6-node chain
    }

    #[test]
    fn seminaive_rederives_less_than_naive() {
        let parsed = parse(TC).unwrap();
        let edb = Database::new();
        let naive = eval_naive(&parsed.program, &edb).unwrap();
        let semi = eval_seminaive(&parsed.program, &edb).unwrap();
        assert!(
            semi.metrics.duplicate_facts < naive.metrics.duplicate_facts,
            "semi-naive {} vs naive {}",
            semi.metrics.duplicate_facts,
            naive.metrics.duplicate_facts
        );
        assert_eq!(semi.metrics.new_facts, naive.metrics.new_facts);
    }

    #[test]
    fn nonlinear_rules_use_delta_at_each_position() {
        // Nonlinear transitive closure: tc(X,Y) :- tc(X,Z), tc(Z,Y).
        let parsed = parse(
            "
            e(a, b). e(b, c). e(c, d).
            tc(X, Y) :- e(X, Y).
            tc(X, Y) :- tc(X, Z), tc(Z, Y).
        ",
        )
        .unwrap();
        let r = eval_seminaive(&parsed.program, &Database::new()).unwrap();
        assert_eq!(r.db.len_of(Predicate::new("tc", 2)), 6);
        assert!(r
            .db
            .relation(Predicate::new("tc", 2))
            .unwrap()
            .contains(&tuple_of_syms(&["a", "d"])));
    }

    #[test]
    fn same_generation_nonrecursive_base() {
        let parsed = parse(
            "
            up(a, b). up(c, b). flat(b, b2). up(x, b). down(b2, y).
            sg(X, Y) :- flat(X, Y).
            sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).
        ",
        )
        .unwrap();
        let r = eval_seminaive(&parsed.program, &Database::new()).unwrap();
        let sg = Predicate::new("sg", 2);
        // sg(b, b2) from flat; sg(a,y), sg(c,y), sg(x,y) from the recursion.
        assert_eq!(r.db.len_of(sg), 4);
    }

    #[test]
    fn cyclic_graph_terminates() {
        let parsed = parse(
            "
            e(a, b). e(b, a).
            tc(X, Y) :- e(X, Y).
            tc(X, Y) :- e(X, Z), tc(Z, Y).
        ",
        )
        .unwrap();
        let r = eval_seminaive(&parsed.program, &Database::new()).unwrap();
        assert_eq!(r.db.len_of(Predicate::new("tc", 2)), 4); // aa ab ba bb
    }

    #[test]
    fn mutually_recursive_predicates() {
        // Even/odd distance from a.
        let parsed = parse(
            "
            e(a, b). e(b, c). e(c, d).
            even(a).
            odd(Y) :- even(X), e(X, Y).
            even(Y) :- odd(X), e(X, Y).
        ",
        )
        .unwrap();
        let r = eval_seminaive(&parsed.program, &Database::new()).unwrap();
        let even = Predicate::new("even", 1);
        let odd = Predicate::new("odd", 1);
        assert_eq!(r.db.len_of(even), 2); // a, c
        assert_eq!(r.db.len_of(odd), 2); // b, d
    }

    #[test]
    fn thread_count_changes_neither_relations_nor_metrics() {
        // Nonlinear same-generation: multiple rules and delta positions per
        // round, so work genuinely splits across workers.
        let parsed = parse(
            "
            up(a, b). up(c, b). flat(b, b2). up(x, b). down(b2, y).
            e(a, b). e(b, c). e(c, d).
            sg(X, Y) :- flat(X, Y).
            sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).
            tc(X, Y) :- e(X, Y).
            tc(X, Y) :- tc(X, Z), tc(Z, Y).
        ",
        )
        .unwrap();
        let edb = Database::new();
        let seq = eval_seminaive(&parsed.program, &edb).unwrap();
        for threads in [2, 4, 8] {
            let par =
                eval_seminaive_opts(&parsed.program, &edb, EvalOptions::with_threads(threads))
                    .unwrap();
            assert_eq!(seq.metrics, par.metrics, "metrics @ {threads} threads");
            assert_eq!(seq.db.predicates(), par.db.predicates());
            for p in seq.db.predicates() {
                assert_eq!(seq.db.atoms_of(p), par.db.atoms_of(p), "{p} @ {threads}");
            }
        }
    }

    #[test]
    fn negated_idb_is_rejected_here_too() {
        let parsed = parse("q(a). p(X) :- q(X). r(X) :- q(X), !p(X).").unwrap();
        assert!(matches!(
            eval_seminaive(&parsed.program, &Database::new()),
            Err(EvalError::NegatedIdb(_))
        ));
    }

    #[test]
    fn edb_passed_externally() {
        let parsed = parse("tc(X, Y) :- e(X, Y). tc(X, Y) :- e(X, Z), tc(Z, Y).").unwrap();
        let mut edb = Database::new();
        let e = Predicate::new("e", 2);
        for i in 0..20 {
            edb.insert(
                e,
                tuple_of_syms(&[&format!("n{i}"), &format!("n{}", i + 1)]),
            );
        }
        let r = eval_seminaive(&parsed.program, &edb).unwrap();
        assert_eq!(r.db.len_of(Predicate::new("tc", 2)), 20 * 21 / 2);
    }
}
