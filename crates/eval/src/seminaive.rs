//! Semi-naive bottom-up evaluation: each round only joins rule bodies
//! against the facts discovered in the previous round (the *delta*),
//! eliminating the bulk of naive evaluation's re-derivations.

use crate::error::EvalError;
use crate::join::{compile_rule, ensure_rule_indexes, join_rule, CompiledRule, JoinInput};
use crate::metrics::EvalMetrics;
use crate::naive::{check_semipositive, seed_database, EvalOptions, EvalResult};
use alexander_ir::{FxHashSet, Polarity, Predicate, Program, Rule};
use alexander_storage::Database;

/// Runs semi-naive evaluation of a semipositive `program` over `edb`.
pub fn eval_seminaive(program: &Program, edb: &Database) -> Result<EvalResult, EvalError> {
    eval_seminaive_opts(program, edb, EvalOptions::default())
}

/// [`eval_seminaive`] with explicit options.
pub fn eval_seminaive_opts(
    program: &Program,
    edb: &Database,
    opts: EvalOptions,
) -> Result<EvalResult, EvalError> {
    program.validate().map_err(EvalError::Invalid)?;
    check_semipositive(program)?;
    let mut db = seed_database(program, edb);
    let mut metrics = EvalMetrics::default();
    run_rules(&program.rules, &mut db, &mut metrics, opts, None)?;
    Ok(EvalResult { db, metrics })
}

/// The semi-naive engine over an explicit rule set, mutating `db` in place.
///
/// `negatives`: where negative literals are checked; `None` means the current
/// total (correct when negated predicates are already complete in `db`, as in
/// per-stratum evaluation). The delta tracks only the head predicates of
/// `rules` — facts of other predicates are static during the run.
///
/// This is also the engine the stratified evaluator calls once per stratum.
pub(crate) fn run_rules(
    rules: &[Rule],
    db: &mut Database,
    metrics: &mut EvalMetrics,
    opts: EvalOptions,
    negatives: Option<&Database>,
) -> Result<(), EvalError> {
    let compiled: Vec<CompiledRule> = rules
        .iter()
        .map(|r| compile_rule(r).map_err(EvalError::from))
        .collect::<Result<_, _>>()?;
    let derived: FxHashSet<Predicate> = compiled.iter().map(|r| r.head.pred).collect();

    // Round 0: full join over the seed database.
    metrics.iterations += 1;
    if opts.use_indexes {
        for r in &compiled {
            ensure_rule_indexes(r, db);
        }
    }
    let mut delta = Database::new();
    for rule in &compiled {
        let head_pred = rule.head.pred;
        let input = JoinInput {
            total: db,
            delta: None,
            negatives,
        };
        join_rule(rule, &input, metrics, &mut |t| {
            if db.relation(head_pred).is_some_and(|r| r.contains(&t)) {
                false
            } else {
                delta.insert(head_pred, t)
            }
        });
    }
    db.merge(&delta);

    // Delta rounds: every derived-predicate literal takes a turn as the
    // delta position.
    while delta.total_tuples() > 0 {
        metrics.iterations += 1;
        if opts.use_indexes {
            for r in &compiled {
                ensure_rule_indexes(r, db);
                ensure_rule_indexes(r, &mut delta);
            }
        }
        let mut next = Database::new();
        for rule in &compiled {
            let head_pred = rule.head.pred;
            for (i, lit) in rule.body.iter().enumerate() {
                if lit.polarity != Polarity::Positive || !derived.contains(&lit.atom.pred) {
                    continue;
                }
                if delta.len_of(lit.atom.pred) == 0 {
                    continue;
                }
                let input = JoinInput {
                    total: db,
                    delta: Some((i, &delta)),
                    negatives,
                };
                join_rule(rule, &input, metrics, &mut |t| {
                    if db.relation(head_pred).is_some_and(|r| r.contains(&t)) {
                        false
                    } else {
                        next.insert(head_pred, t)
                    }
                });
            }
        }
        db.merge(&next);
        delta = next;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::eval_naive;
    use alexander_parser::parse;
    use alexander_storage::tuple_of_syms;

    const TC: &str = "
        e(a, b). e(b, c). e(c, d). e(d, e5). e(e5, f).
        tc(X, Y) :- e(X, Y).
        tc(X, Y) :- e(X, Z), tc(Z, Y).
    ";

    #[test]
    fn agrees_with_naive_on_tc() {
        let parsed = parse(TC).unwrap();
        let edb = Database::new();
        let naive = eval_naive(&parsed.program, &edb).unwrap();
        let semi = eval_seminaive(&parsed.program, &edb).unwrap();
        let tc = Predicate::new("tc", 2);
        assert_eq!(naive.db.len_of(tc), semi.db.len_of(tc));
        assert_eq!(semi.db.len_of(tc), 15); // C(6,2) pairs on a 6-node chain
    }

    #[test]
    fn seminaive_rederives_less_than_naive() {
        let parsed = parse(TC).unwrap();
        let edb = Database::new();
        let naive = eval_naive(&parsed.program, &edb).unwrap();
        let semi = eval_seminaive(&parsed.program, &edb).unwrap();
        assert!(
            semi.metrics.duplicate_facts < naive.metrics.duplicate_facts,
            "semi-naive {} vs naive {}",
            semi.metrics.duplicate_facts,
            naive.metrics.duplicate_facts
        );
        assert_eq!(semi.metrics.new_facts, naive.metrics.new_facts);
    }

    #[test]
    fn nonlinear_rules_use_delta_at_each_position() {
        // Nonlinear transitive closure: tc(X,Y) :- tc(X,Z), tc(Z,Y).
        let parsed = parse("
            e(a, b). e(b, c). e(c, d).
            tc(X, Y) :- e(X, Y).
            tc(X, Y) :- tc(X, Z), tc(Z, Y).
        ")
        .unwrap();
        let r = eval_seminaive(&parsed.program, &Database::new()).unwrap();
        assert_eq!(r.db.len_of(Predicate::new("tc", 2)), 6);
        assert!(r
            .db
            .relation(Predicate::new("tc", 2))
            .unwrap()
            .contains(&tuple_of_syms(&["a", "d"])));
    }

    #[test]
    fn same_generation_nonrecursive_base() {
        let parsed = parse("
            up(a, b). up(c, b). flat(b, b2). up(x, b). down(b2, y).
            sg(X, Y) :- flat(X, Y).
            sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).
        ")
        .unwrap();
        let r = eval_seminaive(&parsed.program, &Database::new()).unwrap();
        let sg = Predicate::new("sg", 2);
        // sg(b, b2) from flat; sg(a,y), sg(c,y), sg(x,y) from the recursion.
        assert_eq!(r.db.len_of(sg), 4);
    }

    #[test]
    fn cyclic_graph_terminates() {
        let parsed = parse("
            e(a, b). e(b, a).
            tc(X, Y) :- e(X, Y).
            tc(X, Y) :- e(X, Z), tc(Z, Y).
        ")
        .unwrap();
        let r = eval_seminaive(&parsed.program, &Database::new()).unwrap();
        assert_eq!(r.db.len_of(Predicate::new("tc", 2)), 4); // aa ab ba bb
    }

    #[test]
    fn mutually_recursive_predicates() {
        // Even/odd distance from a.
        let parsed = parse("
            e(a, b). e(b, c). e(c, d).
            even(a).
            odd(Y) :- even(X), e(X, Y).
            even(Y) :- odd(X), e(X, Y).
        ")
        .unwrap();
        let r = eval_seminaive(&parsed.program, &Database::new()).unwrap();
        let even = Predicate::new("even", 1);
        let odd = Predicate::new("odd", 1);
        assert_eq!(r.db.len_of(even), 2); // a, c
        assert_eq!(r.db.len_of(odd), 2); // b, d
    }

    #[test]
    fn negated_idb_is_rejected_here_too() {
        let parsed = parse("q(a). p(X) :- q(X). r(X) :- q(X), !p(X).").unwrap();
        assert!(matches!(
            eval_seminaive(&parsed.program, &Database::new()),
            Err(EvalError::NegatedIdb(_))
        ));
    }

    #[test]
    fn edb_passed_externally() {
        let parsed = parse("tc(X, Y) :- e(X, Y). tc(X, Y) :- e(X, Z), tc(Z, Y).").unwrap();
        let mut edb = Database::new();
        let e = Predicate::new("e", 2);
        for i in 0..20 {
            edb.insert(
                e,
                tuple_of_syms(&[&format!("n{i}"), &format!("n{}", i + 1)]),
            );
        }
        let r = eval_seminaive(&parsed.program, &edb).unwrap();
        assert_eq!(r.db.len_of(Predicate::new("tc", 2)), 20 * 21 / 2);
    }
}
