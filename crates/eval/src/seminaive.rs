//! Semi-naive bottom-up evaluation: each round only joins rule bodies
//! against the facts discovered in the previous round (the *delta*),
//! eliminating the bulk of naive evaluation's re-derivations.
//!
//! ## Range deltas
//!
//! Because [`Database::merge`] appends each relation's new rows as a
//! contiguous id suffix, a round's delta is not a separate database but a
//! [`DeltaSpans`] — per-predicate `(lo, hi)` id ranges into the total. A
//! delta-restricted literal probes the total's own indexes and narrows the
//! (id-sorted) posting list to the range with two binary searches, so no
//! per-round delta relations or delta indexes are ever built.
//!
//! ## Parallel rounds
//!
//! With `EvalOptions::threads > 1` each round fans its work items out over
//! scoped worker threads. The round's total is frozen (see
//! [`alexander_storage::Database::freeze`]) before the fan-out, so workers
//! share plain `&Database` views with no interior mutation; all indexes are
//! built up front by the single-threaded prelude. A work item is one
//! delta-rewriting variant — a `(rule, delta position)` pair — so even a
//! program with fewer rules than threads still splits across workers. Each
//! worker deduplicates its derivations against the frozen total *and* a
//! worker-local staging database (keeping an ordered derivation log), then a
//! single-threaded merge builds the next delta in task order, reclassifying
//! cross-worker duplicates so the metrics are bit-identical to a sequential
//! run at any thread count.
//!
//! Workers are panic-isolated: each round unit runs under `catch_unwind`,
//! every sibling is joined, and a panic surfaces as
//! [`EvalError::WorkerPanicked`] instead of aborting the process.
//!
//! ## Governance
//!
//! A [`Governor`] (from [`crate::govern`]) rides along when the options
//! carry a budget or cancel token: rounds check it at their boundary, the
//! join charges it per emission, and new facts are claimed against the fact
//! budget *before* insertion. On a trip the current round's accepted facts
//! are still merged (they are sound) and the run reports a non-`Complete`
//! [`crate::Completion`].

use crate::error::EvalError;
use crate::exec::{exec_plan, ExecScratch};
use crate::fail_point;
use crate::govern::Governor;
use crate::join::{
    compile_rule, ensure_rule_indexes, join_rule, CompiledRule, DeltaSource, Emitted, JoinInput,
    JoinScratch,
};
use crate::metrics::EvalMetrics;
use crate::naive::{check_semipositive, seed_database, EvalOptions, EvalResult};
use crate::plan::{compile_plans, RulePlan};
use alexander_ir::{Polarity, Predicate, Program, Rule};
use alexander_storage::{Database, DeltaSpans};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Runs semi-naive evaluation of a semipositive `program` over `edb`.
pub fn eval_seminaive(program: &Program, edb: &Database) -> Result<EvalResult, EvalError> {
    eval_seminaive_opts(program, edb, EvalOptions::default())
}

/// [`eval_seminaive`] with explicit options.
pub fn eval_seminaive_opts(
    program: &Program,
    edb: &Database,
    opts: EvalOptions,
) -> Result<EvalResult, EvalError> {
    program.validate().map_err(EvalError::Invalid)?;
    check_semipositive(program)?;
    let mut db = seed_database(program, edb);
    let mut metrics = EvalMetrics::default();
    let gov = opts.governor();
    run_rules(
        &program.rules,
        &mut db,
        &mut metrics,
        &opts,
        None,
        Some(&gov),
    )?;
    Ok(EvalResult {
        db,
        metrics,
        completion: gov.completion(),
    })
}

/// The semi-naive engine over an explicit rule set, mutating `db` in place.
///
/// `negatives`: where negative literals are checked; `None` means the current
/// total (correct when negated predicates are already complete in `db`, as in
/// per-stratum evaluation). The delta tracks only the head predicates of
/// `rules` — facts of other predicates are static during the run.
///
/// `gov`: the run's governor, shared across calls when one logical run spans
/// several invocations (the stratified evaluator passes the same governor to
/// every stratum so the budget is global). On a governance stop the function
/// returns `Ok(())` with `db` holding the sound partial result; the caller
/// reads the verdict off the governor.
///
/// This is also the engine the stratified evaluator calls once per stratum.
pub(crate) fn run_rules(
    rules: &[Rule],
    db: &mut Database,
    metrics: &mut EvalMetrics,
    opts: &EvalOptions,
    negatives: Option<&Database>,
    gov: Option<&Governor>,
) -> Result<(), EvalError> {
    let compiled: Vec<CompiledRule> = rules
        .iter()
        .map(|r| compile_rule(r).map_err(EvalError::from))
        .collect::<Result<_, _>>()?;
    let derived: Vec<Predicate> = {
        let mut ps: Vec<Predicate> = compiled.iter().map(|r| r.head.pred).collect();
        ps.sort_unstable();
        ps.dedup();
        ps
    };

    // Rule plans for the blocked executor, compiled once and shared
    // read-only by every round and worker (`None` selects the
    // tuple-at-a-time oracle).
    let plans: Option<Vec<RulePlan>> = compile_plans(&compiled, opts.exec, metrics);
    let plan_of = |rule_index: usize| plans.as_ref().map(|ps| &ps[rule_index]);

    let governor = gov.filter(|g| g.active());
    let threads = opts.threads.max(1);

    // One scratch of each kind for the whole fixpoint: round N+1 reuses
    // round N's grown buffers, so the steady state allocates nothing. The
    // parallel fan-out keeps per-worker scratches instead.
    let mut scratch = JoinScratch::new();
    let mut exec_scratch = ExecScratch::new();

    // Round 0: full join over the seed database, one work item per rule.
    if governor.is_some_and(|g| g.note_round().is_break()) {
        return Ok(());
    }
    fail_point("round-start");
    metrics.iterations += 1;
    if opts.use_indexes {
        for r in &compiled {
            ensure_rule_indexes(r, db);
        }
    }
    let mut staged = Database::new();
    let mut tasks: Vec<RoundTask<'_>> = compiled
        .iter()
        .enumerate()
        .map(|(ri, rule)| RoundTask {
            rule,
            plan: plan_of(ri),
            delta_pos: None,
        })
        .collect();
    run_round_tasks(
        &tasks,
        db,
        None,
        negatives,
        threads,
        metrics,
        &mut staged,
        governor,
        &mut scratch,
        &mut exec_scratch,
    )?;
    db.absorb_staged(&staged);
    let mut spans = DeltaSpans::after_merge(db, &staged);
    if governor.is_some_and(|g| g.should_stop()) {
        return Ok(());
    }

    // Delta rounds: every derived-predicate literal takes a turn as the
    // delta position. Each (rule, position) pair is one work item — the
    // delta-rewriting variants of a rule split across workers even when the
    // program has fewer rules than threads. The delta itself is just the id
    // ranges the previous merge appended; the round probes the total's
    // indexes (kept fresh by `insert_row`) and never builds delta indexes.
    // The staging database and task list are recycled round to round (rows
    // cleared, allocations kept), so steady-state rounds stage and merge
    // without touching the allocator.
    while !spans.is_empty() {
        if governor.is_some_and(|g| g.note_round().is_break()) {
            return Ok(());
        }
        fail_point("round-start");
        metrics.iterations += 1;
        if opts.use_indexes {
            for r in &compiled {
                ensure_rule_indexes(r, db);
            }
        }
        staged.clear_retaining();
        tasks.clear();
        for (ri, rule) in compiled.iter().enumerate() {
            for (i, lit) in rule.body.iter().enumerate() {
                if lit.polarity == Polarity::Positive
                    && derived.binary_search(&lit.atom.pred).is_ok()
                    && spans.len_of(lit.atom.pred) > 0
                {
                    tasks.push(RoundTask {
                        rule,
                        plan: plan_of(ri),
                        delta_pos: Some(i),
                    });
                }
            }
        }
        run_round_tasks(
            &tasks,
            db,
            Some(&spans),
            negatives,
            threads,
            metrics,
            &mut staged,
            governor,
            &mut scratch,
            &mut exec_scratch,
        )?;
        db.absorb_staged(&staged);
        spans = DeltaSpans::after_merge(db, &staged);
        if governor.is_some_and(|g| g.should_stop()) {
            return Ok(());
        }
    }
    Ok(())
}

/// One unit of per-round work: a compiled rule, optionally specialised to a
/// delta position (one delta-rewriting variant). Carries the rule's blocked
/// plan when that executor is selected.
struct RoundTask<'a> {
    rule: &'a CompiledRule,
    plan: Option<&'a RulePlan>,
    delta_pos: Option<usize>,
}

/// Renders a caught panic payload for [`EvalError::WorkerPanicked`].
pub(crate) fn payload_string(payload: Box<dyn std::any::Any + Send>) -> String {
    match payload.downcast::<String>() {
        Ok(s) => *s,
        Err(payload) => match payload.downcast::<&'static str>() {
            Ok(s) => (*s).to_string(),
            Err(_) => "non-string panic payload".to_string(),
        },
    }
}

/// Executes one round's work items, inserting fresh derivations into `next`.
///
/// `db` is not mutated for the duration: with more than one thread it is
/// frozen and the items fan out over scoped workers; otherwise the items run
/// in order on the calling thread. Either way the facts in `next` and every
/// metrics counter come out identical — `new_facts` counts the distinct
/// facts absent from `db`, which is a property of the round's input, not of
/// task scheduling.
///
/// Every execution unit runs under `catch_unwind`; a panic anywhere joins
/// all surviving workers and returns [`EvalError::WorkerPanicked`].
#[allow(clippy::too_many_arguments)]
fn run_round_tasks(
    tasks: &[RoundTask<'_>],
    db: &Database,
    spans: Option<&DeltaSpans>,
    negatives: Option<&Database>,
    threads: usize,
    metrics: &mut EvalMetrics,
    next: &mut Database,
    governor: Option<&Governor>,
    scratch: &mut JoinScratch,
    exec_scratch: &mut ExecScratch,
) -> Result<(), EvalError> {
    let delta_of = |pos: Option<usize>| {
        // invariant: callers set `delta_pos` only on tasks they build for
        // delta rounds, which always pass the round's spans.
        pos.map(|i| {
            (
                i,
                DeltaSource::Spans(spans.expect("delta tasks only occur in delta rounds")),
            )
        })
    };
    if threads <= 1 || tasks.len() <= 1 {
        let run = catch_unwind(AssertUnwindSafe(|| {
            for task in tasks {
                fail_point("round-worker");
                let head_pred = task.rule.head.pred;
                let input = JoinInput {
                    total: db,
                    delta: delta_of(task.delta_pos),
                    sides: None,
                    negatives,
                    governor,
                };
                let flow = match task.plan {
                    Some(plan) if governor.is_some() => {
                        let gov = governor.expect("guarded by the match arm");
                        exec_plan(plan, &input, exec_scratch, metrics, &mut |h, row| {
                            if db.contains_row_hashed(head_pred, h, row)
                                || next.contains_row_hashed(head_pred, h, row)
                            {
                                Emitted::Duplicate
                            } else if gov.claim_fact().is_break() {
                                Emitted::Refused
                            } else {
                                // Both contains checks above just proved the
                                // row absent, so skip insert's dedup find.
                                next.push_new_row_hashed(head_pred, h, row);
                                Emitted::New
                            }
                        })
                    }
                    // Ungoverned fast path: no claim can refuse, so newness
                    // comes straight off the staging insert — one staging
                    // lookup instead of a contains/insert pair.
                    Some(plan) => exec_plan(plan, &input, exec_scratch, metrics, &mut |h, row| {
                        if db.contains_row_hashed(head_pred, h, row) {
                            Emitted::Duplicate
                        } else if next.insert_row_hashed(head_pred, h, row) {
                            Emitted::New
                        } else {
                            Emitted::Duplicate
                        }
                    }),
                    None => join_rule(task.rule, &input, scratch, metrics, &mut |row| {
                        if db.contains_row(head_pred, row) || next.contains_row(head_pred, row) {
                            Emitted::Duplicate
                        } else if governor.is_some_and(|g| g.claim_fact().is_break()) {
                            Emitted::Refused
                        } else {
                            next.insert_row(head_pred, row);
                            Emitted::New
                        }
                    }),
                };
                if flow.is_break() {
                    break;
                }
            }
        }));
        return run.map_err(|p| EvalError::WorkerPanicked {
            payload: payload_string(p),
        });
    }

    let frozen = db.freeze();
    let chunk = tasks.len().div_ceil(threads);
    // A worker's output: its metrics, its staging database (which doubles as
    // the worker-local dedup set — no boxed seen-set keys), and the ordered
    // derivation log of (predicate, staging id) pairs that preserves
    // insertion order for the deterministic merge.
    type WorkerOut = (EvalMetrics, Database, Vec<(Predicate, u32)>);
    let results: Vec<std::thread::Result<WorkerOut>> = std::thread::scope(|scope| {
        let handles: Vec<_> = tasks
            .chunks(chunk)
            .map(|chunk_tasks| {
                scope.spawn(move || {
                    catch_unwind(AssertUnwindSafe(|| {
                        let mut local = EvalMetrics::default();
                        let mut staging = Database::new();
                        let mut log: Vec<(Predicate, u32)> = Vec::new();
                        let mut scratch = JoinScratch::new();
                        let mut exec_scratch = ExecScratch::new();
                        for task in chunk_tasks {
                            fail_point("round-worker");
                            let head_pred = task.rule.head.pred;
                            let input = JoinInput {
                                total: frozen.db(),
                                delta: delta_of(task.delta_pos),
                                sides: None,
                                negatives,
                                governor,
                            };
                            let flow = match task.plan {
                                Some(plan) if governor.is_some() => {
                                    let gov = governor.expect("guarded by the match arm");
                                    exec_plan(
                                        plan,
                                        &input,
                                        &mut exec_scratch,
                                        &mut local,
                                        &mut |h, row| {
                                            if frozen
                                                .relation(head_pred)
                                                .is_some_and(|r| r.contains_row_hashed(h, row))
                                            {
                                                return Emitted::Duplicate;
                                            }
                                            // Worker-local dedup via the staging
                                            // relation; cross-worker collisions
                                            // are reclassified at merge time.
                                            if staging.contains_row_hashed(head_pred, h, row) {
                                                return Emitted::Duplicate;
                                            }
                                            if gov.claim_fact().is_break() {
                                                return Emitted::Refused;
                                            }
                                            // The staging contains check above
                                            // proved the row absent.
                                            staging.push_new_row_hashed(head_pred, h, row);
                                            let id = staging.len_of(head_pred) as u32 - 1;
                                            log.push((head_pred, id));
                                            Emitted::New
                                        },
                                    )
                                }
                                // Ungoverned fast path, as in the sequential
                                // branch: worker-local dedup straight off the
                                // staging insert.
                                Some(plan) => exec_plan(
                                    plan,
                                    &input,
                                    &mut exec_scratch,
                                    &mut local,
                                    &mut |h, row| {
                                        if frozen
                                            .relation(head_pred)
                                            .is_some_and(|r| r.contains_row_hashed(h, row))
                                        {
                                            return Emitted::Duplicate;
                                        }
                                        if staging.insert_row_hashed(head_pred, h, row) {
                                            let id = staging.len_of(head_pred) as u32 - 1;
                                            log.push((head_pred, id));
                                            Emitted::New
                                        } else {
                                            Emitted::Duplicate
                                        }
                                    },
                                ),
                                None => join_rule(
                                    task.rule,
                                    &input,
                                    &mut scratch,
                                    &mut local,
                                    &mut |row| {
                                        if frozen
                                            .relation(head_pred)
                                            .is_some_and(|r| r.contains_row(row))
                                        {
                                            return Emitted::Duplicate;
                                        }
                                        // Worker-local dedup via the staging
                                        // relation; cross-worker collisions
                                        // are reclassified at merge time.
                                        if staging.contains_row(head_pred, row) {
                                            return Emitted::Duplicate;
                                        }
                                        if governor.is_some_and(|g| g.claim_fact().is_break()) {
                                            return Emitted::Refused;
                                        }
                                        staging.insert_row(head_pred, row);
                                        let id = staging.len_of(head_pred) as u32 - 1;
                                        log.push((head_pred, id));
                                        Emitted::New
                                    },
                                ),
                            };
                            if flow.is_break() {
                                break;
                            }
                        }
                        (local, staging, log)
                    }))
                })
            })
            .collect();
        handles
            .into_iter()
            // invariant: the worker catches its own panics via catch_unwind,
            // so the thread itself never terminates by panic.
            .map(|h| {
                h.join()
                    .expect("worker panics are caught inside the worker")
            })
            .collect()
    });

    // All workers are drained at this point; surface the first panic as a
    // structured error instead of a process abort.
    let mut panicked: Option<String> = None;
    let mut survived: Vec<WorkerOut> = Vec::with_capacity(results.len());
    for r in results {
        match r {
            Ok(out) => survived.push(out),
            Err(p) => {
                if panicked.is_none() {
                    panicked = Some(payload_string(p));
                }
            }
        }
    }
    if let Some(payload) = panicked {
        return Err(EvalError::WorkerPanicked { payload });
    }

    // Single-threaded merge, in task order so `next`'s insertion order (and
    // hence all downstream iteration) matches the sequential run. A fact two
    // workers both derived was provisionally counted new by each; demote the
    // later copies so the totals equal the sequential classification.
    for (local, staging, log) in survived {
        *metrics += local;
        for (p, id) in log {
            // invariant: every log entry was appended right after its row
            // was inserted into the worker's staging database.
            let rel = staging
                .relation(p)
                .expect("logged predicate exists in staging");
            let (row, h) = (rel.row(id), rel.row_hashes()[id as usize]);
            if !next.insert_row_hashed(p, h, row) {
                metrics.new_facts -= 1;
                metrics.duplicate_facts += 1;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::govern::{Budget, CancelHandle, Completion, Resource};
    use crate::naive::eval_naive;
    use alexander_parser::parse;
    use alexander_storage::tuple_of_syms;

    const TC: &str = "
        e(a, b). e(b, c). e(c, d). e(d, e5). e(e5, f).
        tc(X, Y) :- e(X, Y).
        tc(X, Y) :- e(X, Z), tc(Z, Y).
    ";

    #[test]
    fn agrees_with_naive_on_tc() {
        let parsed = parse(TC).unwrap();
        let edb = Database::new();
        let naive = eval_naive(&parsed.program, &edb).unwrap();
        let semi = eval_seminaive(&parsed.program, &edb).unwrap();
        let tc = Predicate::new("tc", 2);
        assert_eq!(naive.db.len_of(tc), semi.db.len_of(tc));
        assert_eq!(semi.db.len_of(tc), 15); // C(6,2) pairs on a 6-node chain
        assert!(semi.completion.is_complete());
    }

    #[test]
    fn seminaive_rederives_less_than_naive() {
        let parsed = parse(TC).unwrap();
        let edb = Database::new();
        let naive = eval_naive(&parsed.program, &edb).unwrap();
        let semi = eval_seminaive(&parsed.program, &edb).unwrap();
        assert!(
            semi.metrics.duplicate_facts < naive.metrics.duplicate_facts,
            "semi-naive {} vs naive {}",
            semi.metrics.duplicate_facts,
            naive.metrics.duplicate_facts
        );
        assert_eq!(semi.metrics.new_facts, naive.metrics.new_facts);
    }

    #[test]
    fn nonlinear_rules_use_delta_at_each_position() {
        // Nonlinear transitive closure: tc(X,Y) :- tc(X,Z), tc(Z,Y).
        let parsed = parse(
            "
            e(a, b). e(b, c). e(c, d).
            tc(X, Y) :- e(X, Y).
            tc(X, Y) :- tc(X, Z), tc(Z, Y).
        ",
        )
        .unwrap();
        let r = eval_seminaive(&parsed.program, &Database::new()).unwrap();
        assert_eq!(r.db.len_of(Predicate::new("tc", 2)), 6);
        assert!(r
            .db
            .relation(Predicate::new("tc", 2))
            .unwrap()
            .contains(&tuple_of_syms(&["a", "d"])));
    }

    #[test]
    fn same_generation_nonrecursive_base() {
        let parsed = parse(
            "
            up(a, b). up(c, b). flat(b, b2). up(x, b). down(b2, y).
            sg(X, Y) :- flat(X, Y).
            sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).
        ",
        )
        .unwrap();
        let r = eval_seminaive(&parsed.program, &Database::new()).unwrap();
        let sg = Predicate::new("sg", 2);
        // sg(b, b2) from flat; sg(a,y), sg(c,y), sg(x,y) from the recursion.
        assert_eq!(r.db.len_of(sg), 4);
    }

    #[test]
    fn cyclic_graph_terminates() {
        let parsed = parse(
            "
            e(a, b). e(b, a).
            tc(X, Y) :- e(X, Y).
            tc(X, Y) :- e(X, Z), tc(Z, Y).
        ",
        )
        .unwrap();
        let r = eval_seminaive(&parsed.program, &Database::new()).unwrap();
        assert_eq!(r.db.len_of(Predicate::new("tc", 2)), 4); // aa ab ba bb
    }

    #[test]
    fn mutually_recursive_predicates() {
        // Even/odd distance from a.
        let parsed = parse(
            "
            e(a, b). e(b, c). e(c, d).
            even(a).
            odd(Y) :- even(X), e(X, Y).
            even(Y) :- odd(X), e(X, Y).
        ",
        )
        .unwrap();
        let r = eval_seminaive(&parsed.program, &Database::new()).unwrap();
        let even = Predicate::new("even", 1);
        let odd = Predicate::new("odd", 1);
        assert_eq!(r.db.len_of(even), 2); // a, c
        assert_eq!(r.db.len_of(odd), 2); // b, d
    }

    #[test]
    fn thread_count_changes_neither_relations_nor_metrics() {
        // Nonlinear same-generation: multiple rules and delta positions per
        // round, so work genuinely splits across workers.
        let parsed = parse(
            "
            up(a, b). up(c, b). flat(b, b2). up(x, b). down(b2, y).
            e(a, b). e(b, c). e(c, d).
            sg(X, Y) :- flat(X, Y).
            sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).
            tc(X, Y) :- e(X, Y).
            tc(X, Y) :- tc(X, Z), tc(Z, Y).
        ",
        )
        .unwrap();
        let edb = Database::new();
        let seq = eval_seminaive(&parsed.program, &edb).unwrap();
        for threads in [2, 4, 8] {
            let par =
                eval_seminaive_opts(&parsed.program, &edb, EvalOptions::with_threads(threads))
                    .unwrap();
            assert_eq!(seq.metrics, par.metrics, "metrics @ {threads} threads");
            assert_eq!(seq.db.predicates(), par.db.predicates());
            for p in seq.db.predicates() {
                assert_eq!(seq.db.atoms_of(p), par.db.atoms_of(p), "{p} @ {threads}");
            }
        }
    }

    #[test]
    fn negated_idb_is_rejected_here_too() {
        let parsed = parse("q(a). p(X) :- q(X). r(X) :- q(X), !p(X).").unwrap();
        assert!(matches!(
            eval_seminaive(&parsed.program, &Database::new()),
            Err(EvalError::NegatedIdb(_))
        ));
    }

    #[test]
    fn edb_passed_externally() {
        let parsed = parse("tc(X, Y) :- e(X, Y). tc(X, Y) :- e(X, Z), tc(Z, Y).").unwrap();
        let mut edb = Database::new();
        let e = Predicate::new("e", 2);
        for i in 0..20 {
            edb.insert(
                e,
                tuple_of_syms(&[&format!("n{i}"), &format!("n{}", i + 1)]),
            );
        }
        let r = eval_seminaive(&parsed.program, &edb).unwrap();
        assert_eq!(r.db.len_of(Predicate::new("tc", 2)), 20 * 21 / 2);
    }

    #[test]
    fn fact_budget_is_exact_sequentially() {
        let parsed = parse(TC).unwrap();
        let edb = Database::new();
        let full = eval_seminaive(&parsed.program, &edb).unwrap();
        let tc = Predicate::new("tc", 2);
        for budget in [1, 5, 10] {
            let limited = eval_seminaive_opts(
                &parsed.program,
                &edb,
                EvalOptions::default().with_budget(Budget::default().with_max_facts(budget)),
            )
            .unwrap();
            assert_eq!(
                limited.completion,
                Completion::BudgetExhausted {
                    resource: Resource::Facts
                }
            );
            assert_eq!(limited.db.len_of(tc), budget as usize);
            for row in limited.db.relation(tc).unwrap().iter() {
                assert!(full.db.relation(tc).unwrap().contains_row(row));
            }
        }
        // A budget the fixpoint exactly fits in must complete.
        let exact = eval_seminaive_opts(
            &parsed.program,
            &edb,
            EvalOptions::default()
                .with_budget(Budget::default().with_max_facts(full.metrics.new_facts)),
        )
        .unwrap();
        assert!(exact.completion.is_complete());
        assert_eq!(exact.db.len_of(tc), full.db.len_of(tc));
    }

    #[test]
    fn fact_budget_in_parallel_rounds_yields_sound_subset() {
        let parsed = parse(TC).unwrap();
        let edb = Database::new();
        let full = eval_seminaive(&parsed.program, &edb).unwrap();
        let tc = Predicate::new("tc", 2);
        for threads in [2, 4, 8] {
            let opts =
                EvalOptions::with_threads(threads).with_budget(Budget::default().with_max_facts(6));
            let limited = eval_seminaive_opts(&parsed.program, &edb, opts).unwrap();
            assert!(!limited.completion.is_complete(), "@ {threads} threads");
            assert!(limited.db.len_of(tc) <= 6);
            for row in limited.db.relation(tc).unwrap().iter() {
                assert!(full.db.relation(tc).unwrap().contains_row(row));
            }
        }
    }

    #[test]
    fn round_budget_limits_iterations() {
        let parsed = parse(TC).unwrap();
        let r = eval_seminaive_opts(
            &parsed.program,
            &Database::new(),
            EvalOptions::default().with_budget(Budget::default().with_max_rounds(2)),
        )
        .unwrap();
        assert_eq!(
            r.completion,
            Completion::BudgetExhausted {
                resource: Resource::Rounds
            }
        );
        assert_eq!(r.metrics.iterations, 2);
    }

    #[test]
    fn cancellation_mid_run_returns_partial() {
        let parsed = parse(TC).unwrap();
        let cancel = CancelHandle::new();
        cancel.cancel();
        let r = eval_seminaive_opts(
            &parsed.program,
            &Database::new(),
            EvalOptions::default().with_cancel(cancel),
        )
        .unwrap();
        assert_eq!(r.completion, Completion::Cancelled);
        assert_eq!(r.db.len_of(Predicate::new("tc", 2)), 0);
    }
}
