//! The conditional fixpoint procedure (Bry, PODS 1989, §4).
//!
//! The immediate-consequence operator is non-monotonic on non-Horn programs.
//! Bry restores monotonicity by *delaying* negative literals: instead of
//! facts, the operator `T_c` produces **conditional statements**
//! `H ← ¬A₁ ∧ … ∧ ¬A_k` — the ground negative premises are recorded rather
//! than evaluated, and the conditions of any conditional premises used are
//! inherited. After the (now monotone) fixpoint is reached, a reduction
//! phase in the style of Davis–Putnam decides the delayed negations:
//!
//! * `¬A` is **true** (and removed from a condition) when `A` is neither a
//!   fact nor the head of any surviving statement;
//! * `¬A` is **false** (and kills its statement) when `A` is a fact;
//! * statements whose conditions all vanish become facts, which re-enables
//!   both rules — iterate to fixpoint.
//!
//! On stratified, locally stratified, and loosely stratified programs the
//! residue is empty and the computed facts form the perfect model. On
//! programs with genuinely cyclic negation (e.g. win–move on a cyclic move
//! graph) some statements survive with non-empty conditions; their heads are
//! reported as [`ConditionalResult::undefined`] — exactly the atoms the
//! well-founded model leaves undefined. (Bry handles such programs through
//! his inconsistency schemata instead; we report the residue, which is the
//! more informative behaviour for an engine.)
//!
//! Because every rule is range-restricted (safe), evaluation never needs the
//! `dom` predicates of Bry's Causal Predicate Calculus: rule bodies are
//! *constructively domain independent* and the `dom` proofs would be
//! redundant in the sense of his §5.2.
//!
//! ## Governance and partial results
//!
//! A budget or cancellation can stop any phase. The degrade rule is strict
//! about negation: if the monotone statement fixpoint (phase 1) did not
//! finish, the Davis–Putnam reduction is **not** run — reducing a partial
//! statement store could declare `¬A` true merely because `A`'s statement
//! had not been derived yet. Instead the result falls back to the definite
//! core computed so far (always a sound subset of the perfect/well-founded
//! facts), with `completion` reporting the trip and `undefined` left empty.

use crate::error::EvalError;
use crate::govern::Completion;
use crate::join::{
    compile_rule, ensure_rule_indexes, join_rule_bindings, CompiledRule, JoinInput, JoinScratch,
};
use crate::metrics::EvalMetrics;
use crate::naive::seed_database;
use alexander_ir::{Atom, FxHashMap, FxHashSet, Polarity, Program};
use alexander_storage::Database;
use std::collections::BTreeSet;
use std::ops::ControlFlow;

/// A set of delayed ground negative premises, canonically ordered.
pub type Conditions = BTreeSet<Atom>;

/// The outcome of a conditional-fixpoint run.
#[derive(Clone, Debug)]
pub struct ConditionalResult {
    /// EDB plus every atom decided **true**.
    pub db: Database,
    /// Atoms left with surviving non-empty conditions: undefined under the
    /// well-founded reading. Empty for constructively consistent programs.
    /// Only meaningful when `completion` is `Complete`; a budgeted stop
    /// before the reduction leaves it empty.
    pub undefined: Vec<Atom>,
    pub metrics: EvalMetrics,
    /// Whether the conditional fixpoint and its reduction fully ran.
    pub completion: Completion,
}

impl ConditionalResult {
    /// True iff every atom was decided (no residue). A non-`Complete` run
    /// is never total in this sense even with an empty residue list.
    pub fn is_total(&self) -> bool {
        self.undefined.is_empty() && self.completion.is_complete()
    }
}

/// The statement store: ground head → antichain of minimal condition sets.
#[derive(Default)]
struct Statements {
    by_head: FxHashMap<Atom, Vec<Conditions>>,
}

impl Statements {
    /// Inserts `conds` for `head`, maintaining minimality: drop the insert if
    /// a subset is already present; evict supersets it subsumes. Returns
    /// whether the store changed.
    fn insert(&mut self, head: Atom, conds: Conditions) -> bool {
        let sets = self.by_head.entry(head).or_default();
        if sets.iter().any(|s| s.is_subset(&conds)) {
            return false;
        }
        sets.retain(|s| !conds.is_subset(s));
        sets.push(conds);
        true
    }

    fn heads(&self) -> impl Iterator<Item = &Atom> + '_ {
        self.by_head.keys()
    }
}

/// Runs the conditional fixpoint procedure on `program` over `edb`.
pub fn eval_conditional(program: &Program, edb: &Database) -> Result<ConditionalResult, EvalError> {
    eval_conditional_opts(program, edb, crate::naive::EvalOptions::default())
}

/// [`eval_conditional`] with explicit options. The options (indexes, thread
/// count) govern the semi-naive run of the definite core; the conditional
/// phases themselves are sequential.
pub fn eval_conditional_opts(
    program: &Program,
    edb: &Database,
    opts: crate::naive::EvalOptions,
) -> Result<ConditionalResult, EvalError> {
    program.validate().map_err(EvalError::Invalid)?;
    let mut static_db = seed_database(program, edb);
    let idb = program.idb_predicates();
    let mut metrics = EvalMetrics::default();
    let gov = opts.governor();
    let gov_ref = gov.as_join_ref();

    // ---- Phase 0: the definite core. ----
    // Predicates that never depend (even transitively, through positive
    // premises) on a negated intensional predicate can never carry
    // conditions: evaluate them with plain semi-naive first and treat their
    // facts as static. Only the *tainted* remainder pays the conditional
    // machinery — on a definite program that remainder is empty and this
    // evaluator degenerates to semi-naive.
    let tainted: FxHashSet<alexander_ir::Predicate> = {
        let mut tainted: FxHashSet<alexander_ir::Predicate> = FxHashSet::default();
        loop {
            let mut changed = false;
            for r in &program.rules {
                let head = r.head.predicate();
                if tainted.contains(&head) {
                    continue;
                }
                let dirty = r.body.iter().any(|l| match l.polarity {
                    Polarity::Negative => idb.contains(&l.atom.predicate()),
                    Polarity::Positive => tainted.contains(&l.atom.predicate()),
                });
                if dirty {
                    tainted.insert(head);
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        tainted
    };
    let definite_rules: Vec<alexander_ir::Rule> = program
        .rules
        .iter()
        .filter(|r| !tainted.contains(&r.head.predicate()))
        .cloned()
        .collect();
    crate::seminaive::run_rules(
        &definite_rules,
        &mut static_db,
        &mut metrics,
        &opts,
        None,
        Some(&gov),
    )?;

    // Compile the remaining (tainted) rules. Negative literals over static
    // predicates (EDB and the definite core) are checked inline against the
    // static database; negative *tainted* literals are delayed — their atoms
    // are never in the static database, so the join's inline check passes
    // and the emit callback collects them as conditions.
    let compiled: Vec<CompiledRule> = program
        .rules
        .iter()
        .filter(|r| tainted.contains(&r.head.predicate()))
        .map(|r| compile_rule(r).map_err(EvalError::from))
        .collect::<Result<_, _>>()?;

    // On a definite program (or one whose negations are all static) there
    // is nothing to delay: the phase-0 result IS the answer. Returning here
    // also keeps budget accounting identical to plain semi-naive.
    if compiled.is_empty() || gov.should_stop() {
        return Ok(ConditionalResult {
            db: static_db,
            undefined: Vec::new(),
            metrics,
            completion: gov.completion(),
        });
    }

    // ---- Phase 1: the monotone T_c fixpoint. ----
    let mut stmts = Statements::default();
    let mut scratch = JoinScratch::new();
    let mut stopped = false;
    'phase1: loop {
        if gov.note_round().is_break() {
            stopped = true;
            break 'phase1;
        }
        // `known` carries the EDB plus every conditional head, so positive
        // premises can match conditional statements.
        let mut known = static_db.clone();
        for h in stmts.heads() {
            // invariant: statement heads come out of `to_tuple` on a full
            // body match, which only produces ground atoms.
            known.insert_atom(h).expect("statement heads are ground");
        }
        for r in &compiled {
            ensure_rule_indexes(r, &mut known);
        }

        let mut changed = false;
        for rule in &compiled {
            let input = JoinInput {
                total: &known,
                delta: None,
                sides: None,
                negatives: Some(&static_db),
                governor: gov_ref,
            };
            // Collect matches first: `stmts` is mutated after the join.
            let mut matches: Vec<(Atom, Vec<Atom>, Conditions)> = Vec::new();
            let flow = join_rule_bindings(
                rule,
                &input,
                &mut scratch,
                &mut metrics,
                &mut |rule, bind, metrics| {
                    metrics.firings += 1;
                    let head = rule
                        .head
                        // invariant: rule safety is validated before evaluation.
                        .to_tuple(bind)
                        .expect("safe rules ground their heads")
                        .to_atom(rule.head.pred.name);
                    let mut premises = Vec::new();
                    let mut delayed = Conditions::new();
                    for lit in &rule.body {
                        let atom = lit
                            .atom
                            // invariant: EmitBindings fires after a full body
                            // match, when every body variable is bound.
                            .to_tuple(bind)
                            .expect("ordered bodies are ground at emit")
                            .to_atom(lit.atom.pred.name);
                        match lit.polarity {
                            Polarity::Positive => {
                                if tainted.contains(&lit.atom.pred) {
                                    premises.push(atom);
                                }
                            }
                            Polarity::Negative => {
                                if tainted.contains(&lit.atom.pred) {
                                    delayed.insert(atom);
                                }
                                // Negations over static predicates (EDB and the
                                // definite core) were already decided inline.
                            }
                        }
                    }
                    matches.push((head, premises, delayed));
                    match gov_ref {
                        Some(g) => g.note_firing(),
                        None => ControlFlow::Continue(()),
                    }
                },
            );
            if flow.is_break() {
                stopped = true;
                break 'phase1;
            }

            for (head, premises, delayed) in matches {
                // Choices of condition sets per conditional premise. An
                // unconditionally known premise contributes the empty set.
                let mut combos: Vec<Conditions> = vec![delayed];
                let mut dead = false;
                for p in &premises {
                    if static_db.contains_atom(p) {
                        continue; // unconditional: adds nothing
                    }
                    let Some(sets) = stmts.by_head.get(p) else {
                        dead = true;
                        break;
                    };
                    let mut next = Vec::with_capacity(combos.len() * sets.len());
                    for c in &combos {
                        for s in sets {
                            let mut u = c.clone();
                            u.extend(s.iter().cloned());
                            next.push(u);
                        }
                    }
                    combos = next;
                }
                if dead {
                    continue;
                }
                for conds in combos {
                    if stmts.insert(head.clone(), conds) {
                        metrics.conditional_statements += 1;
                        changed = true;
                        // A new statement is a (conditional) derived fact:
                        // charge the fact budget.
                        if gov.claim_fact().is_break() {
                            stopped = true;
                            break 'phase1;
                        }
                    }
                }
            }
        }
        metrics.iterations += 1;
        if !changed {
            break;
        }
    }

    // A partial statement store must NOT be reduced: the reduction treats
    // "no surviving statement for A" as evidence that ¬A holds, which is
    // unsound if A's statement simply was not derived yet. Fall back to the
    // definite core, which is always sound.
    if stopped {
        return Ok(ConditionalResult {
            db: static_db,
            undefined: Vec::new(),
            metrics,
            completion: gov.completion(),
        });
    }

    // ---- Phase 2: reduction (Davis–Putnam style). ----
    let mut facts: FxHashSet<Atom> = static_db
        .predicates()
        .into_iter()
        .flat_map(|p| static_db.atoms_of(p))
        .collect();
    let mut sets = stmts.by_head;
    let mut reduction_complete = true;
    loop {
        if gov.note_round().is_break() {
            // Facts promoted so far are sound (they followed from a complete
            // statement store); only the residue classification is unknown.
            reduction_complete = false;
            break;
        }
        let mut changed = false;
        let provable: FxHashSet<Atom> = facts
            .iter()
            .cloned()
            .chain(
                sets.iter()
                    .filter(|(_, s)| !s.is_empty())
                    .map(|(h, _)| h.clone()),
            )
            .collect();
        for (head, condsets) in sets.iter_mut() {
            let before = condsets.len();
            // ¬c false when c is a fact: the whole set dies.
            condsets.retain(|set| !set.iter().any(|c| facts.contains(c)));
            changed |= condsets.len() != before;
            for set in condsets.iter_mut() {
                // ¬c true when c is neither fact nor surviving head.
                let before_len = set.len();
                set.retain(|c| provable.contains(c));
                changed |= set.len() != before_len;
            }
            if condsets.iter().any(|s| s.is_empty()) && !facts.contains(head) {
                facts.insert(head.clone());
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    let mut db = static_db.clone();
    for f in &facts {
        // invariant: `facts` only holds statement heads and static atoms,
        // both ground by construction.
        db.insert_atom(f).expect("facts are ground");
    }
    let mut undefined: Vec<Atom> = if reduction_complete {
        sets.into_iter()
            .filter(|(h, s)| !facts.contains(h) && s.iter().any(|c| !c.is_empty()) && !s.is_empty())
            .map(|(h, _)| h)
            .collect()
    } else {
        // An interrupted reduction cannot distinguish "undefined" from
        // "not yet decided"; report nothing rather than guess.
        Vec::new()
    };
    undefined.sort_by_key(|a| a.to_string());

    Ok(ConditionalResult {
        db,
        undefined,
        metrics,
        completion: gov.completion(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stratified::eval_stratified;
    use alexander_ir::Predicate;
    use alexander_parser::parse;
    use alexander_storage::tuple_of_syms;

    fn run(src: &str) -> ConditionalResult {
        let parsed = parse(src).unwrap();
        eval_conditional(&parsed.program, &Database::new()).unwrap()
    }

    #[test]
    fn definite_program_behaves_like_seminaive() {
        let r = run("
            e(a, b). e(b, c).
            tc(X, Y) :- e(X, Y).
            tc(X, Y) :- e(X, Z), tc(Z, Y).
        ");
        assert!(r.is_total());
        assert_eq!(r.db.len_of(Predicate::new("tc", 2)), 3);
    }

    #[test]
    fn win_move_on_chain_matches_game_theory() {
        // a -> b -> c: c has no move (lost), b wins, a loses.
        let r = run("
            move(a, b). move(b, c).
            win(X) :- move(X, Y), !win(Y).
        ");
        assert!(r.is_total());
        let win = Predicate::new("win", 1);
        let names: Vec<String> = r.db.atoms_of(win).iter().map(|a| a.to_string()).collect();
        assert_eq!(names, vec!["win(b)".to_string()]);
    }

    #[test]
    fn win_move_on_cycle_leaves_undefined() {
        let r = run("
            move(a, b). move(b, a).
            win(X) :- move(X, Y), !win(Y).
        ");
        assert!(!r.is_total());
        let names: Vec<String> = r.undefined.iter().map(|a| a.to_string()).collect();
        assert_eq!(names, vec!["win(a)".to_string(), "win(b)".to_string()]);
        assert_eq!(r.db.len_of(Predicate::new("win", 1)), 0);
    }

    #[test]
    fn draw_positions_coexist_with_decided_ones() {
        // Cycle a<->b plus a winning escape c -> d(stuck).
        let r = run("
            move(a, b). move(b, a). move(c, d).
            win(X) :- move(X, Y), !win(Y).
        ");
        let win = Predicate::new("win", 1);
        assert!(r.db.relation(win).unwrap().contains(&tuple_of_syms(&["c"])));
        assert_eq!(r.undefined.len(), 2); // win(a), win(b)
    }

    #[test]
    fn bry_fig1_acyclic_chain() {
        // p(x) :- q(x, y), !p(y): not loosely stratified in general, but on
        // an acyclic q the conditional fixpoint decides everything.
        let r = run("
            q(a, b). q(b, c).
            p(X) :- q(X, Y), !p(Y).
        ");
        assert!(r.is_total());
        let p = Predicate::new("p", 1);
        let names: Vec<String> = r.db.atoms_of(p).iter().map(|a| a.to_string()).collect();
        // p(c): no q(c,_) -> false. p(b) <- !p(c) -> true. p(a) <- !p(b) -> false.
        assert_eq!(names, vec!["p(b)".to_string()]);
    }

    #[test]
    fn agrees_with_stratified_evaluation() {
        let src = "
            edge(s, a). edge(a, b). node(s). node(a). node(b). node(z).
            reach(X) :- edge(s, X).
            reach(Y) :- reach(X), edge(X, Y).
            unreach(X) :- node(X), !reach(X).
        ";
        let parsed = parse(src).unwrap();
        let strat = eval_stratified(&parsed.program, &Database::new()).unwrap();
        let cond = eval_conditional(&parsed.program, &Database::new()).unwrap();
        assert!(cond.is_total());
        for p in [Predicate::new("reach", 1), Predicate::new("unreach", 1)] {
            assert_eq!(strat.db.len_of(p), cond.db.len_of(p), "{p}");
        }
    }

    #[test]
    fn conditions_propagate_through_positive_premises() {
        // s(X) depends on win(X) which is conditional; the condition must
        // travel into s's statements.
        let r = run("
            move(a, b). move(b, c).
            win(X) :- move(X, Y), !win(Y).
            s(X) :- win(X).
        ");
        assert!(r.is_total());
        let names: Vec<String> =
            r.db.atoms_of(Predicate::new("s", 1))
                .iter()
                .map(|a| a.to_string())
                .collect();
        assert_eq!(names, vec!["s(b)".to_string()]);
    }

    #[test]
    fn metrics_count_conditional_statements() {
        let r = run("
            move(a, b).
            win(X) :- move(X, Y), !win(Y).
        ");
        assert!(r.metrics.conditional_statements >= 1);
    }

    #[test]
    fn loosely_stratified_program_is_decided() {
        // Bry's loose-stratification example shape: the a/b constant guard
        // keeps negation acyclic even though the predicate recursion is not.
        let r = run("
            q(c, d). s(e, c).
            p(X, a) :- q(X, Y), s(Z, X), !p(Z, b).
        ");
        assert!(r.is_total());
        let p = Predicate::new("p", 2);
        // p(e, b) is not derivable (no rule makes a `b` head), so !p(e, b)
        // holds and p(c, a) follows from q(c, d), s(e, c).
        assert!(r
            .db
            .relation(p)
            .unwrap()
            .contains(&tuple_of_syms(&["c", "a"])));
    }
}
