//! Incremental view maintenance: keep a materialised IDB up to date under
//! EDB insertions and deletions without recomputing from scratch.
//!
//! ## Counting (the default)
//!
//! Every derived fact carries a **support count** — the number of distinct
//! rule firings currently deriving it — stored as a parallel `u32` column in
//! the tuple arena ([`alexander_storage::Relation::supports`]). The counts
//! are maintained by the blocked executor's emit path:
//!
//! * **Insertion** runs semi-naive continuation rounds. The delta-position
//!   triangle ([`SideSources::InsertTriangle`]) enumerates each *new* firing
//!   exactly once, so a duplicate emission against the total is precisely
//!   "one more derivation of an existing fact": its count is incremented
//!   instead of re-deriving anything.
//! * **Deletion** runs the mirrored triangle
//!   ([`SideSources::DeleteTriangle`]): with the victims physically removed
//!   first, each *lost* firing is enumerated exactly once and decrements its
//!   head's count. Only facts whose count reaches zero are retracted and
//!   cascade further — facts with surviving support are never overdeleted,
//!   never rederived, and never touch the join kernel again.
//!
//! Pure counting is sound only where a fact cannot (transitively) support
//! itself, i.e. for predicates whose rules draw on strictly lower strata.
//! The engine classifies predicates by the SCC decomposition of the
//! dependency graph: a head predicate in a singleton component with no
//! self-loop is **counted**; everything else (direct or mutual recursion)
//! falls back per-SCC to **DRed** (delete-and-rederive,
//! Gupta–Mumick–Subrahmanian). The DRed fallback itself is accelerated two
//! ways: rederivation is asked per doomed fact as a *head-seeded* indexed
//! probe ([`crate::join::join_rule_seeded`]) instead of a stratum re-join,
//! and witnesses found that way are memoised as [`Justification`]s
//! (see [`crate::provenance`]) so the next deletion touching the same fact
//! re-checks the stored premises before joining at all.
//!
//! ## Batches
//!
//! [`IncrementalEngine::apply_batch`] applies one *mixed* batch of inserts
//! and deletes as a single delete cascade plus a single insertion fixpoint —
//! not N sequential per-fact fixpoints. The WAL replay path and the server
//! commit path feed whole batches through it.
//!
//! Restricted to definite programs: deletions under negation flip truth in
//! both directions and need stratified counting, out of scope here.

use crate::error::EvalError;
use crate::exec::{exec_plan, ExecScratch};
use crate::join::{
    compile_rule, compile_rule_seeded, ensure_rule_indexes, join_rule_seeded, CompiledRule,
    DeltaSource, Emitted, JoinInput, JoinScratch, SideSources,
};
use crate::metrics::EvalMetrics;
use crate::naive::seed_database;
use crate::plan::{compile_plan, RulePlan};
use crate::provenance::{Justification, Provenance};
use alexander_ir::analysis::{tarjan, DepGraph};
use alexander_ir::{Atom, FxHashMap, FxHashSet, Predicate, Program};
use alexander_storage::{Database, DeltaSpans, Tuple};
use std::ops::ControlFlow;

/// How deletions are maintained.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Maintenance {
    /// Support counting where sound, per-SCC DRed where recursion makes
    /// counting unsound. The default.
    #[default]
    Counting,
    /// Classic DRed for every predicate (counting disabled). Kept as the
    /// differential oracle: both modes must produce identical databases.
    Dred,
}

/// What one mixed update batch did to the database.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct BatchOutcome {
    /// Facts added (base and derived).
    pub added: usize,
    /// Facts physically removed during the delete cascade, including the
    /// base facts themselves and any overdeletions later rederived.
    pub overdeleted: usize,
    /// Overdeleted facts restored because an alternative derivation
    /// survived.
    pub rederived: usize,
}

/// One strongly-connected component of the head predicates, with the rules
/// that derive into it. Components are kept in dependencies-first order.
struct SccGroup {
    /// Indices into the program's rule list.
    rules: Vec<usize>,
    /// True when a fact in this component can (transitively) support
    /// itself, so counting is unsound and deletions fall back to DRed.
    recursive: bool,
}

/// A materialised deductive database that stays consistent under updates.
pub struct IncrementalEngine {
    program: Program,
    compiled: Vec<CompiledRule>,
    /// One blocked-executor plan per compiled rule; maintenance always runs
    /// the blocked executor (updates are not governed, so the tuple oracle
    /// has nothing extra to offer here).
    plans: Vec<RulePlan>,
    /// Head-seeded compilations of the same rules, for per-fact
    /// rederivation probes during the DRed fallback.
    seeded: Vec<CompiledRule>,
    /// EDB + all derived facts, with the support-count column live.
    total: Database,
    /// The extensional predicates (facts the user may insert/delete).
    edb_preds: FxHashSet<Predicate>,
    /// Program-seeded IDB facts: externally asserted, never retractable by
    /// the cascade.
    protected: FxHashMap<Predicate, FxHashSet<Tuple>>,
    /// Head predicates maintained by exact firing counts.
    counted: FxHashSet<Predicate>,
    /// SCC groups of the rule set, dependencies first.
    groups: Vec<SccGroup>,
    /// Memoised rederivation witnesses (populated lazily by deletions).
    provenance: Provenance,
    metrics: EvalMetrics,
}

impl IncrementalEngine {
    /// Materialises `program` over `edb` with [`Maintenance::Counting`].
    pub fn new(program: Program, edb: Database) -> Result<IncrementalEngine, EvalError> {
        IncrementalEngine::with_mode(program, edb, Maintenance::Counting)
    }

    /// Materialises `program` over `edb` under an explicit maintenance mode.
    pub fn with_mode(
        program: Program,
        edb: Database,
        mode: Maintenance,
    ) -> Result<IncrementalEngine, EvalError> {
        program.validate().map_err(EvalError::Invalid)?;
        if !program.is_definite() {
            return Err(EvalError::NegatedIdb(
                program
                    .rules
                    .iter()
                    .flat_map(|r| r.body.iter())
                    .find(|l| l.is_negative())
                    .map(|l| l.atom.predicate())
                    // invariant: this branch only runs when the definiteness
                    // check already found a negative literal.
                    .expect("non-definite program has a negative literal"),
            ));
        }
        let compiled: Vec<CompiledRule> = program
            .rules
            .iter()
            .map(|r| compile_rule(r).map_err(EvalError::from))
            .collect::<Result<_, _>>()?;
        let seeded: Vec<CompiledRule> = program
            .rules
            .iter()
            .map(|r| compile_rule_seeded(r).map_err(EvalError::from))
            .collect::<Result<_, _>>()?;
        let mut total = seed_database(&program, &edb);
        let mut metrics = EvalMetrics::default();
        let plans: Vec<RulePlan> = compiled.iter().map(compile_plan).collect();
        metrics.exec.plans_compiled += plans.len() as u64;
        let mut edb_preds: FxHashSet<Predicate> = edb.predicates().into_iter().collect();
        let mut protected: FxHashMap<Predicate, FxHashSet<Tuple>> = FxHashMap::default();
        for f in &program.facts {
            edb_preds.insert(f.predicate());
            if program.is_idb(f.predicate()) {
                // invariant: `validate` rejects non-ground facts.
                let t = Tuple::from_atom(f).expect("program facts are ground");
                protected.entry(f.predicate()).or_default().insert(t);
            }
        }
        // Every seeded row is externally supported: base facts hold because
        // they are stored, not because a rule fires. Rule firings add on
        // top, so a protected fact's count can never reach zero.
        for p in total.predicates() {
            let rel = total.relation_mut(p);
            for id in 0..rel.len() as u32 {
                rel.set_support(id, 1);
            }
        }
        let (groups, counted) = classify(&program, mode);
        let mut engine = IncrementalEngine {
            program,
            compiled,
            plans,
            seeded,
            total,
            edb_preds,
            protected,
            counted,
            groups,
            provenance: Provenance::default(),
            metrics,
        };
        // Initial materialisation: the same counting fixpoint the insertion
        // path runs, seeded with a naive round 0. Maintenance is not
        // governed: updates are small deltas and a partially-maintained view
        // would be permanently inconsistent.
        engine.materialise();
        // The DRed rederivation probes run head-seeded plans whose index
        // masks differ from the forward joins'. Build them now, while the
        // database is settled — inserts maintain them incrementally from
        // here on — so the first deletion's phase 2 doesn't pay an
        // O(|relation|) index build inside its cascade.
        for ri in 0..engine.seeded.len() {
            ensure_rule_indexes(&engine.seeded[ri], &mut engine.total);
        }
        Ok(engine)
    }

    /// The maintained database (EDB + IDB).
    pub fn db(&self) -> &Database {
        &self.total
    }

    /// The support count of a fact: how many distinct rule firings (plus
    /// one for externally stored facts) currently derive it. Zero iff the
    /// fact is absent. Exact for counted predicates; recursive predicates
    /// report a presence marker maintained by the DRed fallback.
    pub fn support_of(&self, fact: &Atom) -> u32 {
        let Some(t) = Tuple::from_atom(fact) else {
            return 0;
        };
        self.total
            .relation(fact.predicate())
            .and_then(|r| r.id_of(t.values()))
            .map_or(0, |id| {
                // invariant: id came from this relation's dedup table.
                self.total
                    .relation(fact.predicate())
                    .expect("relation just resolved")
                    .support(id)
            })
    }

    /// True iff deletions on `pred` are maintained by exact support counts
    /// (false means the per-SCC DRed fallback owns it).
    pub fn is_counted(&self, pred: Predicate) -> bool {
        self.counted.contains(&pred)
    }

    /// A copy of just the extensional store — the base facts from which the
    /// maintained database is derivable. This is what durability snapshots
    /// persist: recovery reloads it and re-materialises, instead of trusting
    /// serialized derived state. Row hashes are reused from the maintained
    /// arenas rather than recomputed.
    pub fn edb(&self) -> Database {
        let mut out = Database::new();
        for &p in &self.edb_preds {
            let Some(rel) = self.total.relation(p) else {
                continue;
            };
            for (id, &h) in rel.row_hashes().iter().enumerate() {
                out.push_new_row_hashed(p, h, rel.row(id as u32));
            }
        }
        out
    }

    /// Accumulated counters.
    pub fn metrics(&self) -> EvalMetrics {
        self.metrics
    }

    /// The program being maintained.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Inserts an EDB fact; returns the number of facts (including derived
    /// ones) added to the database.
    pub fn insert(&mut self, fact: &Atom) -> Result<usize, EvalError> {
        self.insert_batch(std::slice::from_ref(fact))
    }

    /// Deletes an EDB fact; returns `(overdeleted, rederived)`.
    /// `overdeleted` is the true count of facts physically removed during
    /// the cascade — including the base fact itself and any facts later
    /// rederived; `rederived` of those were restored.
    pub fn delete(&mut self, fact: &Atom) -> Result<(usize, usize), EvalError> {
        self.delete_batch(std::slice::from_ref(fact))
    }

    /// Inserts a batch of EDB facts and propagates them in **one** shared
    /// fixpoint (not per-fact fixpoints); returns facts added, including
    /// derived ones. Facts already present are no-ops.
    pub fn insert_batch(&mut self, facts: &[Atom]) -> Result<usize, EvalError> {
        // Validate the whole batch before touching any state.
        let tuples: Vec<Tuple> = facts
            .iter()
            .map(|fact| {
                if self.program.is_idb(fact.predicate()) {
                    return Err(EvalError::IdbUpdate(fact.predicate()));
                }
                Tuple::from_atom(fact).ok_or_else(|| {
                    EvalError::Invalid(vec![alexander_ir::ProgramError::NonGroundFact {
                        fact: fact.to_string(),
                    }])
                })
            })
            .collect::<Result<_, _>>()?;
        let mut delta = Database::new();
        for (fact, t) in facts.iter().zip(tuples) {
            let pred = fact.predicate();
            if self.total.contains_atom(fact) {
                continue;
            }
            self.edb_preds.insert(pred);
            if delta.insert(pred, t) {
                let rel = delta.relation_mut(pred);
                let id = rel.len() as u32 - 1;
                rel.set_support(id, 1);
            }
        }
        if delta.total_tuples() == 0 {
            return Ok(0);
        }
        let base = self.total.merge(&delta);
        let spans = DeltaSpans::after_merge(&self.total, &delta);
        Ok(base + self.counting_rounds(spans))
    }

    /// Deletes a batch of EDB facts and retracts their consequences in
    /// **one** shared cascade; returns `(overdeleted, rederived)` as for
    /// [`IncrementalEngine::delete`]. Absent facts are no-ops.
    pub fn delete_batch(&mut self, facts: &[Atom]) -> Result<(usize, usize), EvalError> {
        let mut victims: FxHashMap<Predicate, FxHashSet<Tuple>> = FxHashMap::default();
        let mut removed = Database::new();
        for fact in facts {
            let pred = fact.predicate();
            if self.program.is_idb(pred) {
                return Err(EvalError::IdbUpdate(pred));
            }
            // invariant: a non-ground atom is never `contains_atom`, so
            // ungrounded deletes fall through as no-ops, like misses.
            if !self.total.contains_atom(fact) {
                continue;
            }
            let t = Tuple::from_atom(fact).expect("checked ground");
            if victims.entry(pred).or_default().insert(t.clone()) {
                removed.insert(pred, t);
            }
        }
        if removed.total_tuples() == 0 {
            return Ok((0, 0));
        }
        let mut overdeleted = 0usize;
        for (p, set) in &victims {
            overdeleted += self.total.remove_tuples(*p, set);
        }
        let (cascaded, rederived) = self.cascade_deletions(removed);
        Ok((overdeleted + cascaded, rederived))
    }

    /// Applies one mixed batch of updates (`true` = insert, `false` =
    /// delete) as a single delete cascade followed by a single insertion
    /// fixpoint. Later operations on the same fact win; the net effect
    /// against the current database decides what actually runs.
    pub fn apply_batch(&mut self, ops: &[(bool, Atom)]) -> Result<BatchOutcome, EvalError> {
        // Validate everything up front: a batch either applies or leaves
        // the database untouched.
        for (_, atom) in ops {
            let pred = atom.predicate();
            if self.program.is_idb(pred) {
                return Err(EvalError::IdbUpdate(pred));
            }
        }
        // Net effect per fact: the last operation wins.
        let mut order: Vec<&Atom> = Vec::new();
        let mut net: FxHashMap<&Atom, bool> = FxHashMap::default();
        for (insert, atom) in ops {
            if net.insert(atom, *insert).is_none() {
                order.push(atom);
            }
        }
        let mut deletes: Vec<Atom> = Vec::new();
        let mut inserts: Vec<Atom> = Vec::new();
        for atom in order {
            if net[atom] {
                inserts.push(atom.clone());
            } else {
                deletes.push(atom.clone());
            }
        }
        let (overdeleted, rederived) = self.delete_batch(&deletes)?;
        let added = self.insert_batch(&inserts)?;
        Ok(BatchOutcome {
            added,
            overdeleted,
            rederived,
        })
    }

    /// Initial materialisation: one naive round over the seed database,
    /// then the shared counting delta rounds.
    fn materialise(&mut self) {
        self.metrics.iterations += 1;
        for r in &self.compiled {
            ensure_rule_indexes(r, &mut self.total);
        }
        let mut scratch = ExecScratch::new();
        let mut staged = Database::new();
        let mut inc: Vec<(Predicate, u32)> = Vec::new();
        for (ri, rule) in self.compiled.iter().enumerate() {
            let input = JoinInput {
                total: &self.total,
                delta: None,
                sides: None,
                negatives: None,
                governor: None,
            };
            counting_emit_pass(
                &self.plans[ri],
                rule.head.pred,
                self.counted.contains(&rule.head.pred),
                &input,
                &self.total,
                &mut staged,
                &mut inc,
                &mut scratch,
                &mut self.metrics,
            );
        }
        self.apply_increments(&mut inc);
        self.total.absorb_staged(&staged);
        let spans = DeltaSpans::after_merge(&self.total, &staged);
        self.counting_rounds(spans);
    }

    /// Semi-naive delta rounds over contiguous id spans, with support
    /// counting riding the emit path. [`SideSources::InsertTriangle`]
    /// guarantees each new firing is enumerated exactly once, so duplicate
    /// emissions against the total are exactly the support increments.
    /// Returns the number of facts added.
    fn counting_rounds(&mut self, mut spans: DeltaSpans) -> usize {
        let mut added = 0usize;
        let mut scratch = ExecScratch::new();
        let mut staged = Database::new();
        let mut inc: Vec<(Predicate, u32)> = Vec::new();
        while !spans.is_empty() {
            self.metrics.iterations += 1;
            for r in &self.compiled {
                ensure_rule_indexes(r, &mut self.total);
            }
            staged.clear_retaining();
            for (ri, rule) in self.compiled.iter().enumerate() {
                for (i, lit) in rule.body.iter().enumerate() {
                    if spans.len_of(lit.atom.pred) == 0 {
                        continue;
                    }
                    let input = JoinInput {
                        total: &self.total,
                        delta: Some((i, DeltaSource::Spans(&spans))),
                        sides: Some(SideSources::InsertTriangle),
                        negatives: None,
                        governor: None,
                    };
                    counting_emit_pass(
                        &self.plans[ri],
                        rule.head.pred,
                        self.counted.contains(&rule.head.pred),
                        &input,
                        &self.total,
                        &mut staged,
                        &mut inc,
                        &mut scratch,
                        &mut self.metrics,
                    );
                }
            }
            self.apply_increments(&mut inc);
            added += self.total.absorb_staged(&staged);
            spans = DeltaSpans::after_merge(&self.total, &staged);
        }
        added
    }

    /// Applies deferred support increments (collected while the total was
    /// immutably borrowed by a join pass).
    fn apply_increments(&mut self, inc: &mut Vec<(Predicate, u32)>) {
        for (p, id) in inc.drain(..) {
            self.total.relation_mut(p).add_support(id, 1);
        }
    }

    /// Retraction cascade over the SCC groups in dependencies-first order.
    /// `removed` holds the base victims, already removed from the total;
    /// it accumulates every fact the cascade retracts for good, so later
    /// components see the full `old − new` difference of everything below
    /// them. Returns `(facts removed, facts rederived)`.
    fn cascade_deletions(&mut self, mut removed: Database) -> (usize, usize) {
        let mut overdeleted = 0usize;
        let mut rederived = 0usize;
        let mut scratch = ExecScratch::new();
        let groups = std::mem::take(&mut self.groups);
        for group in &groups {
            if group
                .rules
                .iter()
                .all(|&ri| body_misses_removed(&self.compiled[ri], &removed))
            {
                continue;
            }
            if group.recursive {
                let (over, re) = self.dred_group(group, &mut removed, &mut scratch);
                overdeleted += over;
                rederived += re;
            } else {
                overdeleted += self.counted_group(group, &mut removed, &mut scratch);
            }
        }
        self.groups = groups;
        (overdeleted, rederived)
    }

    /// Counted component: one [`SideSources::DeleteTriangle`] pass per
    /// (rule, body position) enumerates every lost firing exactly once and
    /// decrements its head's support; rows whose count reaches zero are
    /// retracted and join the removed set. Facts with surviving support
    /// never touch the join kernel again. Returns facts removed.
    fn counted_group(
        &mut self,
        group: &SccGroup,
        removed: &mut Database,
        scratch: &mut ExecScratch,
    ) -> usize {
        self.metrics.iterations += 1;
        let mut dec: Vec<(Predicate, u32)> = Vec::new();
        for &ri in &group.rules {
            let rule = &self.compiled[ri];
            ensure_rule_indexes(rule, &mut self.total);
            ensure_rule_indexes(rule, removed);
            let head = rule.head.pred;
            for (i, lit) in rule.body.iter().enumerate() {
                if removed.len_of(lit.atom.pred) == 0 {
                    continue;
                }
                let input = JoinInput {
                    total: &self.total,
                    delta: Some((i, DeltaSource::Db(removed))),
                    sides: Some(SideSources::DeleteTriangle { removed }),
                    negatives: None,
                    governor: None,
                };
                let total_ref = &self.total;
                let _ = exec_plan(
                    &self.plans[ri],
                    &input,
                    scratch,
                    &mut self.metrics,
                    &mut |h, row| {
                        // invariant: a lost firing's head was derivable over
                        // the old state, and this component's rows are only
                        // removed below, after the passes.
                        let id = total_ref
                            .relation(head)
                            .and_then(|r| r.id_of_hashed(h, row))
                            .expect("lost firing's head is still stored");
                        dec.push((head, id));
                        Emitted::Duplicate
                    },
                );
            }
        }
        // Apply the decrements, then retract exactly the rows that lost
        // their last support. Only decremented ids can newly hit zero, so
        // the sweep is O(lost firings), not O(|relation|).
        let mut zero: FxHashMap<Predicate, FxHashSet<Tuple>> = FxHashMap::default();
        for &(p, id) in &dec {
            self.total.relation_mut(p).sub_support(id, 1);
        }
        for &(p, id) in &dec {
            // invariant: ids stay valid until `remove_tuples` below — the
            // decrement loop only touches the support column.
            let rel = self.total.relation(p).expect("decremented relation exists");
            if rel.support(id) == 0 {
                zero.entry(p).or_default().insert(Tuple::new(rel.row(id)));
            }
        }
        let mut dropped = 0usize;
        for (p, set) in &zero {
            dropped += self.total.remove_tuples(*p, set);
            for t in set {
                self.provenance.forget(&t.to_atom(p.name));
                removed.insert(*p, t.clone());
            }
        }
        dropped
    }

    /// Recursive component: DRed. Phase 1 overdeletes every fact with a
    /// derivation through the removed set, joining non-delta positions
    /// against the *old* total ([`SideSources::OldTotal`]). Phase 2 asks
    /// each doomed fact, individually, whether it still has a derivation:
    /// first by re-checking its memoised witness from a previous cascade,
    /// then with a head-seeded indexed probe; fresh witnesses are memoised.
    /// Returns `(facts removed, facts rederived)`.
    fn dred_group(
        &mut self,
        group: &SccGroup,
        removed: &mut Database,
        scratch: &mut ExecScratch,
    ) -> (usize, usize) {
        // ---- Phase 1: overdelete. ----
        let mut doomed: FxHashMap<Predicate, FxHashSet<Tuple>> = FxHashMap::default();
        let mut doomed_list: Vec<(Predicate, Tuple)> = Vec::new();
        let mut delta = Database::new();
        let mut first_round = true;
        loop {
            self.metrics.iterations += 1;
            let mut next = Database::new();
            for &ri in &group.rules {
                let rule = &self.compiled[ri];
                ensure_rule_indexes(rule, &mut self.total);
                ensure_rule_indexes(rule, removed);
                ensure_rule_indexes(rule, &mut delta);
                let head = rule.head.pred;
                let source: &Database = if first_round { removed } else { &delta };
                for (i, lit) in rule.body.iter().enumerate() {
                    if source.len_of(lit.atom.pred) == 0 {
                        continue;
                    }
                    let input = JoinInput {
                        total: &self.total,
                        delta: Some((i, DeltaSource::Db(source))),
                        sides: Some(SideSources::OldTotal { removed }),
                        negatives: None,
                        governor: None,
                    };
                    let doomed_ref = &doomed;
                    let protected_ref = &self.protected;
                    let _ = exec_plan(
                        &self.plans[ri],
                        &input,
                        scratch,
                        &mut self.metrics,
                        &mut |h, row| {
                            let hit = |s: &FxHashSet<Tuple>| s.contains(&Tuple::new(row));
                            if protected_ref.get(&head).is_some_and(hit)
                                || doomed_ref.get(&head).is_some_and(hit)
                            {
                                Emitted::Duplicate
                            } else if next.insert_row_hashed(head, h, row) {
                                Emitted::New
                            } else {
                                Emitted::Duplicate
                            }
                        },
                    );
                }
            }
            first_round = false;
            if next.total_tuples() == 0 {
                break;
            }
            for p in next.predicates() {
                let set = doomed.entry(p).or_default();
                if let Some(rel) = next.relation(p) {
                    for row in rel.iter() {
                        let t = Tuple::new(row);
                        if set.insert(t.clone()) {
                            doomed_list.push((p, t));
                        }
                    }
                }
            }
            delta = next;
        }
        let mut overdeleted = 0usize;
        for (p, set) in &doomed {
            overdeleted += self.total.remove_tuples(*p, set);
        }
        if doomed_list.is_empty() {
            return (0, 0);
        }

        // ---- Phase 2: rederive. ----
        // Passes over the still-doomed facts until a full pass rederives
        // nothing: a fact may only become rederivable after a premise of
        // its alternative derivation came back, so this converges to
        // exactly the facts with support in the new state.
        let mut alive = vec![false; doomed_list.len()];
        let mut rederived = 0usize;
        let mut jscratch = JoinScratch::new();
        loop {
            self.metrics.iterations += 1;
            for &ri in &group.rules {
                ensure_rule_indexes(&self.seeded[ri], &mut self.total);
            }
            let mut progress = false;
            for (idx, (p, t)) in doomed_list.iter().enumerate() {
                if alive[idx] {
                    continue;
                }
                let fact = t.to_atom(p.name);
                let mut witness = self
                    .provenance
                    .justification(&fact)
                    .filter(|j| j.premises.iter().all(|pr| self.total.contains_atom(pr)))
                    .cloned();
                if witness.is_none() {
                    for &ri in &group.rules {
                        let rule = &self.seeded[ri];
                        if rule.head.pred != *p {
                            continue;
                        }
                        let input = JoinInput {
                            total: &self.total,
                            delta: None,
                            sides: None,
                            negatives: None,
                            governor: None,
                        };
                        let mut found: Option<Justification> = None;
                        join_rule_seeded(
                            rule,
                            t.values(),
                            &input,
                            &mut jscratch,
                            &mut self.metrics,
                            &mut |rule, bind, metrics| {
                                metrics.firings += 1;
                                let premises = rule
                                    .body
                                    .iter()
                                    .map(|lit| {
                                        lit.atom
                                            .to_tuple(bind)
                                            // invariant: emit fires after a
                                            // full body match, when every
                                            // body variable is bound.
                                            .expect("ordered bodies ground at emit")
                                            .to_atom(lit.atom.pred.name)
                                    })
                                    .collect();
                                found = Some(Justification {
                                    rule: ri,
                                    premises,
                                    negatives: Vec::new(),
                                });
                                ControlFlow::Break(())
                            },
                        );
                        if found.is_some() {
                            witness = found;
                            break;
                        }
                    }
                }
                if let Some(j) = witness {
                    self.total.insert(*p, t.clone());
                    let rel = self.total.relation_mut(*p);
                    let id = rel.len() as u32 - 1;
                    rel.set_support(id, 1);
                    self.provenance.record(fact, j);
                    alive[idx] = true;
                    progress = true;
                    rederived += 1;
                    self.metrics.new_facts += 1;
                }
            }
            if !progress {
                break;
            }
        }
        for (idx, (p, t)) in doomed_list.iter().enumerate() {
            if !alive[idx] {
                self.provenance.forget(&t.to_atom(p.name));
                removed.insert(*p, t.clone());
            }
        }
        (overdeleted, rederived)
    }
}

/// True iff none of `rule`'s body predicates has rows in `removed` — the
/// cheap skip that keeps unaffected components out of the cascade entirely.
fn body_misses_removed(rule: &CompiledRule, removed: &Database) -> bool {
    rule.body
        .iter()
        .all(|lit| removed.len_of(lit.atom.pred) == 0)
}

/// One blocked-executor pass with the counting emit discipline:
///
/// * head absent everywhere → staged with support 1 (its first firing);
/// * head already staged → counted heads bump the staged support;
/// * head in the total → counted heads defer an increment (ids are taken
///   while the total is immutably borrowed, applied after the pass).
///
/// Recursive heads keep support 1 while present — a presence marker; their
/// retraction is decided by DRed, not by the counter.
#[allow(clippy::too_many_arguments)]
fn counting_emit_pass(
    plan: &RulePlan,
    head: Predicate,
    head_counted: bool,
    input: &JoinInput<'_>,
    total: &Database,
    staged: &mut Database,
    inc: &mut Vec<(Predicate, u32)>,
    scratch: &mut ExecScratch,
    metrics: &mut EvalMetrics,
) {
    let _ = exec_plan(plan, input, scratch, metrics, &mut |h, row| {
        if let Some(id) = total.relation(head).and_then(|r| r.id_of_hashed(h, row)) {
            if head_counted {
                inc.push((head, id));
            }
            Emitted::Duplicate
        } else if staged.insert_row_hashed(head, h, row) {
            let rel = staged.relation_mut(head);
            let id = rel.len() as u32 - 1;
            rel.set_support(id, 1);
            Emitted::New
        } else {
            if head_counted {
                let rel = staged.relation_mut(head);
                // invariant: the insert above found the row already staged.
                let id = rel.id_of_hashed(h, row).expect("duplicate row is staged");
                rel.add_support(id, 1);
            }
            Emitted::Duplicate
        }
    });
}

/// SCC decomposition of the head predicates: groups in dependencies-first
/// order, plus the set of counted predicates (empty under
/// [`Maintenance::Dred`]).
fn classify(program: &Program, mode: Maintenance) -> (Vec<SccGroup>, FxHashSet<Predicate>) {
    let graph = DepGraph::build(program);
    let scc = tarjan(graph.len(), &|v| {
        graph.succs[v].iter().map(|&(w, _)| w).collect()
    });
    let mut counted = FxHashSet::default();
    let mut groups = Vec::new();
    // `components` is already reverse topological — dependencies first.
    for comp in &scc.components {
        let preds: Vec<Predicate> = comp.iter().map(|&v| graph.vertices[v]).collect();
        let rules: Vec<usize> = program
            .rules
            .iter()
            .enumerate()
            .filter(|(_, r)| preds.contains(&r.head.predicate()))
            .map(|(i, _)| i)
            .collect();
        if rules.is_empty() {
            continue; // purely extensional vertex
        }
        let self_dependent = comp.len() > 1
            || comp
                .iter()
                .any(|&v| graph.succs[v].iter().any(|&(w, _)| w == v));
        let recursive = match mode {
            Maintenance::Counting => self_dependent,
            Maintenance::Dred => true,
        };
        if !recursive {
            counted.extend(preds.iter().copied());
        }
        groups.push(SccGroup { rules, recursive });
    }
    (groups, counted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seminaive::eval_seminaive;
    use alexander_parser::{parse, parse_atom};
    use alexander_workload as workload;

    fn snapshot(db: &Database) -> Vec<String> {
        let mut out: Vec<String> = db
            .predicates()
            .into_iter()
            .flat_map(|p| db.atoms_of(p))
            .map(|a| a.to_string())
            .collect();
        out.sort();
        out
    }

    fn from_scratch(program: &Program, edb: &Database) -> Vec<String> {
        snapshot(&eval_seminaive(program, edb).unwrap().db)
    }

    /// Asserts the support invariant: count > 0 iff the fact is stored, and
    /// for counted predicates the count equals the distinct rule firings
    /// over the final database (plus 1 when externally stored).
    fn check_supports(inc: &IncrementalEngine) {
        let db = inc.db();
        // Expected firing counts per counted head fact, recomputed naively.
        let mut expected: FxHashMap<(Predicate, Tuple), u32> = FxHashMap::default();
        let mut scratch = JoinScratch::new();
        let mut metrics = EvalMetrics::default();
        for rule in &inc.program().rules {
            let compiled = compile_rule(rule).unwrap();
            if !inc.is_counted(compiled.head.pred) {
                continue;
            }
            let input = JoinInput {
                total: db,
                delta: None,
                sides: None,
                negatives: None,
                governor: None,
            };
            let head = compiled.head.clone();
            let _ = crate::join::join_rule_bindings(
                &compiled,
                &input,
                &mut scratch,
                &mut metrics,
                &mut |_, bind, _| {
                    let t = head.to_tuple(bind).unwrap();
                    *expected.entry((head.pred, t)).or_insert(0) += 1;
                    ControlFlow::Continue(())
                },
            );
        }
        for p in db.predicates() {
            let rel = db.relation(p).unwrap();
            let is_idb = inc.program().is_idb(p);
            for id in 0..rel.len() as u32 {
                let support = rel.support(id);
                assert!(support > 0, "{p}: stored row with zero support");
                if inc.is_counted(p) {
                    let t = Tuple::new(rel.row(id));
                    let external =
                        u32::from(!is_idb || inc.protected.get(&p).is_some_and(|s| s.contains(&t)));
                    let firings = expected.get(&(p, t)).copied().unwrap_or(0);
                    assert_eq!(
                        support,
                        firings + external,
                        "{p}: support drifted from firing count"
                    );
                }
            }
        }
    }

    #[test]
    fn insertion_matches_recompute() {
        let program = workload::transitive_closure();
        let mut edb = workload::chain("e", 5);
        let mut inc = IncrementalEngine::new(program.clone(), edb.clone()).unwrap();
        let new_edge = parse_atom("e(n5, n6)").unwrap();
        let added = inc.insert(&new_edge).unwrap();
        assert!(added > 1, "the new edge extends the closure");
        edb.insert_atom(&new_edge).unwrap();
        assert_eq!(snapshot(inc.db()), from_scratch(&program, &edb));
        check_supports(&inc);
    }

    #[test]
    fn deletion_splits_a_chain() {
        let program = workload::transitive_closure();
        let edb = workload::chain("e", 6);
        let mut inc = IncrementalEngine::new(program.clone(), edb.clone()).unwrap();
        let victim = parse_atom("e(n2, n3)").unwrap();
        let (over, re) = inc.delete(&victim).unwrap();
        assert!(over > 0);
        assert_eq!(re, 0, "a chain has no alternative derivations");

        let mut edb2 = edb;
        assert!(edb2.remove_atom(&victim));
        assert_eq!(snapshot(inc.db()), from_scratch(&program, &edb2));
        check_supports(&inc);
    }

    #[test]
    fn deletion_with_alternative_paths_rederives() {
        // Diamond: n0->n1->n3 and n0->n2->n3. Deleting one branch must keep
        // tc(n0, n3) via the other.
        let parsed = parse(
            "
            e(n0, n1). e(n1, n3). e(n0, n2). e(n2, n3).
            tc(X, Y) :- e(X, Y).
            tc(X, Y) :- e(X, Z), tc(Z, Y).
        ",
        )
        .unwrap();
        let edb = Database::from_program(&parsed.program);
        let program = Program {
            rules: parsed.program.rules,
            facts: Vec::new(),
        };
        let mut inc = IncrementalEngine::new(program.clone(), edb.clone()).unwrap();
        let victim = parse_atom("e(n1, n3)").unwrap();
        let (over, re) = inc.delete(&victim).unwrap();
        assert!(over > 0);
        assert!(re > 0, "tc(n0, n3) must be rederived via n2");
        assert!(inc.db().contains_atom(&parse_atom("tc(n0, n3)").unwrap()));
        assert!(!inc.db().contains_atom(&parse_atom("tc(n1, n3)").unwrap()));

        let mut edb2 = edb;
        edb2.remove_atom(&victim);
        assert_eq!(snapshot(inc.db()), from_scratch(&program, &edb2));
    }

    #[test]
    fn delete_returns_the_true_overdeleted_count() {
        // chain n0->n1->n2: deleting e(n1, n2) removes the base fact plus
        // tc(n1, n2) and tc(n0, n2) — three facts, none rederived. The old
        // API under-reported this as 2 by excluding the base fact.
        let program = workload::transitive_closure();
        let edb = workload::chain("e", 2);
        let mut inc = IncrementalEngine::new(program, edb).unwrap();
        let (over, re) = inc.delete(&parse_atom("e(n1, n2)").unwrap()).unwrap();
        assert_eq!((over, re), (3, 0));
    }

    #[test]
    fn counted_predicates_keep_surviving_support() {
        // join(X, Z) has two derivations for (a, c): via b1 and via b2.
        // Deleting one support must decrement, not retract.
        let parsed = parse(
            "
            e(a, b1). e(a, b2). f(b1, c). f(b2, c).
            join(X, Z) :- e(X, Y), f(Y, Z).
        ",
        )
        .unwrap();
        let edb = Database::from_program(&parsed.program);
        let program = Program {
            rules: parsed.program.rules,
            facts: Vec::new(),
        };
        let mut inc = IncrementalEngine::new(program.clone(), edb.clone()).unwrap();
        let j = Predicate::new("join", 2);
        assert!(inc.is_counted(j), "non-recursive head must be counted");
        let fact = parse_atom("join(a, c)").unwrap();
        assert_eq!(inc.support_of(&fact), 2);

        // Drop one branch: the fact survives on the other derivation, and
        // the cascade never overdeletes or rederives it.
        let (over, re) = inc.delete(&parse_atom("e(a, b1)").unwrap()).unwrap();
        assert_eq!((over, re), (1, 0), "only the base fact goes");
        assert_eq!(inc.support_of(&fact), 1);
        assert!(inc.db().contains_atom(&fact));

        // Drop the last branch: now the count hits zero and it retracts.
        let (over, re) = inc.delete(&parse_atom("f(b2, c)").unwrap()).unwrap();
        assert_eq!((over, re), (2, 0));
        assert!(!inc.db().contains_atom(&fact));

        let mut edb2 = edb;
        edb2.remove_atom(&parse_atom("e(a, b1)").unwrap());
        edb2.remove_atom(&parse_atom("f(b2, c)").unwrap());
        assert_eq!(snapshot(inc.db()), from_scratch(&program, &edb2));
        check_supports(&inc);
    }

    #[test]
    fn counting_and_dred_modes_agree() {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let program = workload::transitive_closure();
        for seed in [7u64, 8] {
            let edb = workload::random_graph("e", 8, 18, seed);
            let mut counting = IncrementalEngine::new(program.clone(), edb.clone()).unwrap();
            let mut dred =
                IncrementalEngine::with_mode(program.clone(), edb, Maintenance::Dred).unwrap();
            let mut rng = StdRng::seed_from_u64(seed);
            for _ in 0..10 {
                let a = rng.random_range(0..8);
                let b = rng.random_range(0..8);
                let atom = parse_atom(&format!("e(n{a}, n{b})")).unwrap();
                if rng.random_range(0..2) == 0 {
                    counting.insert(&atom).unwrap();
                    dred.insert(&atom).unwrap();
                } else {
                    counting.delete(&atom).unwrap();
                    dred.delete(&atom).unwrap();
                }
                assert_eq!(snapshot(counting.db()), snapshot(dred.db()));
            }
        }
    }

    #[test]
    fn mixed_batch_applies_as_one_cascade() {
        let program = workload::transitive_closure();
        let mut edb = workload::chain("e", 8);
        let mut inc = IncrementalEngine::new(program.clone(), edb.clone()).unwrap();
        let ops: Vec<(bool, Atom)> = vec![
            (false, parse_atom("e(n3, n4)").unwrap()),
            (true, parse_atom("e(n3, n5)").unwrap()),
            (true, parse_atom("e(n8, n9)").unwrap()),
            (false, parse_atom("e(n0, n1)").unwrap()),
        ];
        let out = inc.apply_batch(&ops).unwrap();
        assert!(out.added > 0 && out.overdeleted > 0);
        for (insert, atom) in &ops {
            if *insert {
                edb.insert_atom(atom).unwrap();
            } else {
                edb.remove_atom(atom);
            }
        }
        assert_eq!(snapshot(inc.db()), from_scratch(&program, &edb));
        check_supports(&inc);
    }

    #[test]
    fn batch_nets_out_conflicting_ops_on_one_fact() {
        let program = workload::transitive_closure();
        let edb = workload::chain("e", 4);
        let mut inc = IncrementalEngine::new(program.clone(), edb.clone()).unwrap();
        // Delete-then-insert of a present fact nets to a no-op; insert-then-
        // delete of an absent fact nets to a no-op.
        let out = inc
            .apply_batch(&[
                (false, parse_atom("e(n1, n2)").unwrap()),
                (true, parse_atom("e(n1, n2)").unwrap()),
                (true, parse_atom("e(n9, n8)").unwrap()),
                (false, parse_atom("e(n9, n8)").unwrap()),
            ])
            .unwrap();
        assert_eq!(out, BatchOutcome::default());
        assert_eq!(snapshot(inc.db()), from_scratch(&program, &edb));
    }

    #[test]
    fn random_update_sequences_match_recompute() {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let program = workload::transitive_closure();
        for seed in [1u64, 2, 3] {
            let mut edb = workload::random_graph("e", 10, 25, seed);
            let mut inc = IncrementalEngine::new(program.clone(), edb.clone()).unwrap();
            let mut rng = StdRng::seed_from_u64(seed * 100);
            for step in 0..12 {
                let a = rng.random_range(0..10);
                let b = rng.random_range(0..10);
                if a == b {
                    continue;
                }
                let atom = parse_atom(&format!("e(n{a}, n{b})")).unwrap();
                if step % 2 == 0 {
                    inc.insert(&atom).unwrap();
                    edb.insert_atom(&atom).unwrap();
                } else {
                    inc.delete(&atom).unwrap();
                    edb.remove_atom(&atom);
                }
                assert_eq!(
                    snapshot(inc.db()),
                    from_scratch(&program, &edb),
                    "seed {seed} step {step}"
                );
                check_supports(&inc);
            }
        }
    }

    #[test]
    fn cyclic_closure_survives_deletion_correctly() {
        // On a cycle, deleting one edge must shrink the closure exactly.
        let program = workload::transitive_closure();
        let edb = workload::cycle("e", 5);
        let mut inc = IncrementalEngine::new(program.clone(), edb.clone()).unwrap();
        let victim = parse_atom("e(n2, n3)").unwrap();
        inc.delete(&victim).unwrap();
        let mut edb2 = edb;
        edb2.remove_atom(&victim);
        assert_eq!(snapshot(inc.db()), from_scratch(&program, &edb2));
        check_supports(&inc);
    }

    #[test]
    fn memoised_witnesses_survive_repeated_deletions() {
        // Two parallel paths n0->n1->n3, n0->n2->n3 plus a third n0->n4->n3.
        // Delete branches one at a time: each cascade rederives tc(n0, n3)
        // and the second deletion can reuse (or replace) the stored witness.
        let parsed = parse(
            "
            e(n0, n1). e(n1, n3). e(n0, n2). e(n2, n3). e(n0, n4). e(n4, n3).
            tc(X, Y) :- e(X, Y).
            tc(X, Y) :- e(X, Z), tc(Z, Y).
        ",
        )
        .unwrap();
        let edb = Database::from_program(&parsed.program);
        let program = Program {
            rules: parsed.program.rules,
            facts: Vec::new(),
        };
        let mut inc = IncrementalEngine::new(program.clone(), edb.clone()).unwrap();
        let goal = parse_atom("tc(n0, n3)").unwrap();
        let mut edb2 = edb;
        for gone in ["e(n1, n3)", "e(n2, n3)"] {
            let victim = parse_atom(gone).unwrap();
            let (_, re) = inc.delete(&victim).unwrap();
            assert!(re > 0, "{gone}: tc(n0, n3) survives on another branch");
            assert!(inc.db().contains_atom(&goal));
            edb2.remove_atom(&victim);
            assert_eq!(snapshot(inc.db()), from_scratch(&program, &edb2));
        }
        // Removing the last branch retracts it for good.
        let victim = parse_atom("e(n4, n3)").unwrap();
        inc.delete(&victim).unwrap();
        assert!(!inc.db().contains_atom(&goal));
        edb2.remove_atom(&victim);
        assert_eq!(snapshot(inc.db()), from_scratch(&program, &edb2));
    }

    #[test]
    fn program_seeded_idb_facts_are_protected() {
        // tc(n5, n6) is asserted by the program itself: deleting base edges
        // must never retract it, in either mode.
        let parsed = parse(
            "
            tc(n5, n6).
            tc(X, Y) :- e(X, Y).
            tc(X, Y) :- e(X, Z), tc(Z, Y).
        ",
        )
        .unwrap();
        let mut edb = workload::chain("e", 4);
        for mode in [Maintenance::Counting, Maintenance::Dred] {
            let mut inc =
                IncrementalEngine::with_mode(parsed.program.clone(), edb.clone(), mode).unwrap();
            inc.delete(&parse_atom("e(n1, n2)").unwrap()).unwrap();
            assert!(inc.db().contains_atom(&parse_atom("tc(n5, n6)").unwrap()));
        }
        edb.remove_atom(&parse_atom("e(n1, n2)").unwrap());
    }

    #[test]
    fn idb_updates_are_rejected() {
        let program = workload::transitive_closure();
        let edb = workload::chain("e", 3);
        let mut inc = IncrementalEngine::new(program, edb).unwrap();
        assert!(inc.insert(&parse_atom("tc(n0, n9)").unwrap()).is_err());
        assert!(inc.delete(&parse_atom("tc(n0, n1)").unwrap()).is_err());
        assert!(inc
            .apply_batch(&[(true, parse_atom("tc(n0, n9)").unwrap())])
            .is_err());
    }

    #[test]
    fn non_definite_programs_are_rejected() {
        let parsed = parse("move(a, b). win(X) :- move(X, Y), !win(Y).").unwrap();
        let edb = Database::from_program(&parsed.program);
        let program = Program {
            rules: parsed.program.rules,
            facts: Vec::new(),
        };
        assert!(IncrementalEngine::new(program, edb).is_err());
    }

    #[test]
    fn duplicate_insert_and_missing_delete_are_noops() {
        let program = workload::transitive_closure();
        let edb = workload::chain("e", 3);
        let mut inc = IncrementalEngine::new(program, edb).unwrap();
        assert_eq!(inc.insert(&parse_atom("e(n0, n1)").unwrap()).unwrap(), 0);
        assert_eq!(
            inc.delete(&parse_atom("e(n8, n9)").unwrap()).unwrap(),
            (0, 0)
        );
    }
}
