//! Incremental view maintenance: keep a materialised IDB up to date under
//! EDB insertions and deletions without recomputing from scratch.
//!
//! * **Insertion** is semi-naive continuation: the new facts seed a delta
//!   round over the existing total.
//! * **Deletion** is DRed (delete-and-rederive, Gupta–Mumick–Subrahmanian):
//!   first *overdelete* everything with a derivation through a deleted
//!   fact (a delta fixpoint over the pre-deletion database), then
//!   *rederive* the overdeleted facts that still have an alternative
//!   derivation from what remains (a second fixpoint).
//!
//! Restricted to definite programs: deletions under negation flip truth in
//! both directions and need counting or stratified DRed, out of scope here.

use crate::error::EvalError;
use crate::exec::{exec_plan, ExecScratch};
use crate::join::{
    compile_rule, ensure_rule_indexes, CompiledRule, DeltaSource, Emitted, JoinInput,
};
use crate::metrics::EvalMetrics;
use crate::naive::{seed_database, EvalOptions};
use crate::plan::{compile_plan, RulePlan};
use alexander_ir::{Atom, FxHashMap, FxHashSet, Predicate, Program};
use alexander_storage::{Database, Tuple};

/// A materialised deductive database that stays consistent under updates.
pub struct IncrementalEngine {
    program: Program,
    compiled: Vec<CompiledRule>,
    /// One blocked-executor plan per compiled rule; maintenance always runs
    /// the blocked executor (updates are not governed, so the tuple oracle
    /// has nothing extra to offer here).
    plans: Vec<RulePlan>,
    /// EDB + all derived facts.
    total: Database,
    /// The extensional predicates (facts the user may insert/delete).
    edb_preds: FxHashSet<Predicate>,
    metrics: EvalMetrics,
}

impl IncrementalEngine {
    /// Materialises `program` over `edb`.
    pub fn new(program: Program, edb: Database) -> Result<IncrementalEngine, EvalError> {
        program.validate().map_err(EvalError::Invalid)?;
        if !program.is_definite() {
            return Err(EvalError::NegatedIdb(
                program
                    .rules
                    .iter()
                    .flat_map(|r| r.body.iter())
                    .find(|l| l.is_negative())
                    .map(|l| l.atom.predicate())
                    // invariant: this branch only runs when the definiteness
                    // check already found a negative literal.
                    .expect("non-definite program has a negative literal"),
            ));
        }
        let compiled: Vec<CompiledRule> = program
            .rules
            .iter()
            .map(|r| compile_rule(r).map_err(EvalError::from))
            .collect::<Result<_, _>>()?;
        let mut total = seed_database(&program, &edb);
        let mut metrics = EvalMetrics::default();
        let plans: Vec<RulePlan> = compiled.iter().map(compile_plan).collect();
        metrics.exec.plans_compiled += plans.len() as u64;
        let mut edb_preds: FxHashSet<Predicate> = edb.predicates().into_iter().collect();
        for f in &program.facts {
            edb_preds.insert(f.predicate());
        }
        // Initial materialisation. Maintenance is not governed: updates are
        // small deltas and a partially-maintained view would be permanently
        // inconsistent.
        crate::seminaive::run_rules(
            &program.rules,
            &mut total,
            &mut metrics,
            &EvalOptions::default(),
            None,
            None,
        )?;
        Ok(IncrementalEngine {
            program,
            compiled,
            plans,
            total,
            edb_preds,
            metrics,
        })
    }

    /// The maintained database (EDB + IDB).
    pub fn db(&self) -> &Database {
        &self.total
    }

    /// A copy of just the extensional store — the base facts from which the
    /// maintained database is derivable. This is what durability snapshots
    /// persist: recovery reloads it and re-materialises, instead of trusting
    /// serialized derived state. Row hashes are reused from the maintained
    /// arenas rather than recomputed.
    pub fn edb(&self) -> Database {
        let mut out = Database::new();
        for &p in &self.edb_preds {
            let Some(rel) = self.total.relation(p) else {
                continue;
            };
            for (id, &h) in rel.row_hashes().iter().enumerate() {
                out.push_new_row_hashed(p, h, rel.row(id as u32));
            }
        }
        out
    }

    /// Accumulated counters.
    pub fn metrics(&self) -> EvalMetrics {
        self.metrics
    }

    /// The program being maintained.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Inserts an EDB fact; returns the number of facts (including derived
    /// ones) added to the database.
    pub fn insert(&mut self, fact: &Atom) -> Result<usize, EvalError> {
        let pred = fact.predicate();
        if self.program.is_idb(pred) {
            return Err(EvalError::IdbUpdate(pred));
        }
        self.edb_preds.insert(pred);
        let t = Tuple::from_atom(fact).ok_or_else(|| {
            EvalError::Invalid(vec![alexander_ir::ProgramError::NonGroundFact {
                fact: fact.to_string(),
            }])
        })?;
        if !self.total.insert(pred, t.clone()) {
            return Ok(0);
        }
        let mut delta = Database::new();
        delta.insert(pred, t);
        Ok(1 + self.propagate_insertions(delta))
    }

    /// Semi-naive insertion rounds seeded with `delta`; returns facts added.
    ///
    /// Update deltas are arbitrary fact sets, not contiguous id suffixes of
    /// the total, so they stay materialised databases and the join reads
    /// them through [`DeltaSource::Db`].
    fn propagate_insertions(&mut self, mut delta: Database) -> usize {
        let mut added = 0usize;
        let mut scratch = ExecScratch::new();
        while delta.total_tuples() > 0 {
            self.metrics.iterations += 1;
            for r in &self.compiled {
                ensure_rule_indexes(r, &mut self.total);
                ensure_rule_indexes(r, &mut delta);
            }
            let mut next = Database::new();
            for (rule, plan) in self.compiled.iter().zip(&self.plans) {
                let head = rule.head.pred;
                for (i, lit) in rule.body.iter().enumerate() {
                    if delta.len_of(lit.atom.pred) == 0 {
                        continue;
                    }
                    let input = JoinInput {
                        total: &self.total,
                        delta: Some((i, DeltaSource::Db(&delta))),
                        negatives: None,
                        governor: None,
                    };
                    let total_ref = &self.total;
                    let _ = exec_plan(
                        plan,
                        &input,
                        &mut scratch,
                        &mut self.metrics,
                        &mut |h, row| {
                            if total_ref.contains_row_hashed(head, h, row) {
                                Emitted::Duplicate
                            } else if next.insert_row_hashed(head, h, row) {
                                Emitted::New
                            } else {
                                Emitted::Duplicate
                            }
                        },
                    );
                }
            }
            added += self.total.merge(&next);
            delta = next;
        }
        added
    }

    /// Deletes an EDB fact (DRed); returns `(overdeleted, rederived)` counts
    /// over derived facts.
    pub fn delete(&mut self, fact: &Atom) -> Result<(usize, usize), EvalError> {
        let pred = fact.predicate();
        if self.program.is_idb(pred) {
            return Err(EvalError::IdbUpdate(pred));
        }
        if !self.total.contains_atom(fact) {
            return Ok((0, 0));
        }

        // ---- Phase 1: overdelete. ----
        // Everything with a derivation passing through a deleted fact.
        // invariant: a non-ground atom is never `contains_atom`, so the
        // early return above already filtered it out.
        let t = Tuple::from_atom(fact).expect("checked ground");
        let mut doomed: FxHashMap<Predicate, FxHashSet<Tuple>> = FxHashMap::default();
        doomed.entry(pred).or_default().insert(t.clone());
        let mut delta = Database::new();
        delta.insert(pred, t);

        let mut scratch = ExecScratch::new();
        while delta.total_tuples() > 0 {
            self.metrics.iterations += 1;
            for r in &self.compiled {
                ensure_rule_indexes(r, &mut self.total);
                ensure_rule_indexes(r, &mut delta);
            }
            let mut next = Database::new();
            for (rule, plan) in self.compiled.iter().zip(&self.plans) {
                let head = rule.head.pred;
                for (i, lit) in rule.body.iter().enumerate() {
                    if delta.len_of(lit.atom.pred) == 0 {
                        continue;
                    }
                    let input = JoinInput {
                        total: &self.total,
                        delta: Some((i, DeltaSource::Db(&delta))),
                        negatives: None,
                        governor: None,
                    };
                    let doomed_ref = &doomed;
                    let _ = exec_plan(
                        plan,
                        &input,
                        &mut scratch,
                        &mut self.metrics,
                        &mut |h, row| {
                            let seen = doomed_ref
                                .get(&head)
                                .is_some_and(|s| s.contains(&Tuple::new(row)));
                            if seen {
                                Emitted::Duplicate
                            } else if next.insert_row_hashed(head, h, row) {
                                Emitted::New
                            } else {
                                Emitted::Duplicate
                            }
                        },
                    );
                }
            }
            for p in next.predicates() {
                let set = doomed.entry(p).or_default();
                if let Some(rel) = next.relation(p) {
                    for row in rel.iter() {
                        set.insert(Tuple::new(row));
                    }
                }
            }
            delta = next;
        }

        // Physically remove the doomed facts.
        let mut overdeleted = 0usize;
        for (p, set) in &doomed {
            overdeleted += self.total.remove_tuples(*p, set);
        }

        // ---- Phase 2: rederive. ----
        // A doomed IDB fact survives if some rule derives it from what is
        // left. Re-run the rules to a fixpoint, only accepting heads that
        // were doomed (everything else is already present).
        let mut rederived = 0usize;
        loop {
            self.metrics.iterations += 1;
            for r in &self.compiled {
                ensure_rule_indexes(r, &mut self.total);
            }
            let mut next = Database::new();
            for (rule, plan) in self.compiled.iter().zip(&self.plans) {
                let head = rule.head.pred;
                let Some(candidates) = doomed.get(&head) else {
                    continue;
                };
                let input = JoinInput {
                    total: &self.total,
                    delta: None,
                    negatives: None,
                    governor: None,
                };
                let total_ref = &self.total;
                let _ = exec_plan(
                    plan,
                    &input,
                    &mut scratch,
                    &mut self.metrics,
                    &mut |h, row| {
                        if candidates.contains(&Tuple::new(row))
                            && !total_ref.contains_row_hashed(head, h, row)
                            && next.insert_row_hashed(head, h, row)
                        {
                            Emitted::New
                        } else {
                            Emitted::Duplicate
                        }
                    },
                );
            }
            let n = self.total.merge(&next);
            rederived += n;
            if n == 0 {
                break;
            }
        }

        // The deleted EDB fact itself is not a "derived" casualty.
        Ok((overdeleted.saturating_sub(1), rederived))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seminaive::eval_seminaive;
    use alexander_parser::{parse, parse_atom};
    use alexander_workload as workload;

    fn snapshot(db: &Database) -> Vec<String> {
        let mut out: Vec<String> = db
            .predicates()
            .into_iter()
            .flat_map(|p| db.atoms_of(p))
            .map(|a| a.to_string())
            .collect();
        out.sort();
        out
    }

    fn from_scratch(program: &Program, edb: &Database) -> Vec<String> {
        snapshot(&eval_seminaive(program, edb).unwrap().db)
    }

    #[test]
    fn insertion_matches_recompute() {
        let program = workload::transitive_closure();
        let mut edb = workload::chain("e", 5);
        let mut inc = IncrementalEngine::new(program.clone(), edb.clone()).unwrap();
        let new_edge = parse_atom("e(n5, n6)").unwrap();
        let added = inc.insert(&new_edge).unwrap();
        assert!(added > 1, "the new edge extends the closure");
        edb.insert_atom(&new_edge).unwrap();
        assert_eq!(snapshot(inc.db()), from_scratch(&program, &edb));
    }

    #[test]
    fn deletion_splits_a_chain() {
        let program = workload::transitive_closure();
        let edb = workload::chain("e", 6);
        let mut inc = IncrementalEngine::new(program.clone(), edb.clone()).unwrap();
        let victim = parse_atom("e(n2, n3)").unwrap();
        let (over, re) = inc.delete(&victim).unwrap();
        assert!(over > 0);
        assert_eq!(re, 0, "a chain has no alternative derivations");

        let mut edb2 = edb;
        assert!(edb2.remove_atom(&victim));
        assert_eq!(snapshot(inc.db()), from_scratch(&program, &edb2));
    }

    #[test]
    fn deletion_with_alternative_paths_rederives() {
        // Diamond: n0->n1->n3 and n0->n2->n3. Deleting one branch must keep
        // tc(n0, n3) via the other.
        let parsed = parse(
            "
            e(n0, n1). e(n1, n3). e(n0, n2). e(n2, n3).
            tc(X, Y) :- e(X, Y).
            tc(X, Y) :- e(X, Z), tc(Z, Y).
        ",
        )
        .unwrap();
        let edb = Database::from_program(&parsed.program);
        let program = Program {
            rules: parsed.program.rules,
            facts: Vec::new(),
        };
        let mut inc = IncrementalEngine::new(program.clone(), edb.clone()).unwrap();
        let victim = parse_atom("e(n1, n3)").unwrap();
        let (over, re) = inc.delete(&victim).unwrap();
        assert!(over > 0);
        assert!(re > 0, "tc(n0, n3) must be rederived via n2");
        assert!(inc.db().contains_atom(&parse_atom("tc(n0, n3)").unwrap()));
        assert!(!inc.db().contains_atom(&parse_atom("tc(n1, n3)").unwrap()));

        let mut edb2 = edb;
        edb2.remove_atom(&victim);
        assert_eq!(snapshot(inc.db()), from_scratch(&program, &edb2));
    }

    #[test]
    fn random_update_sequences_match_recompute() {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let program = workload::transitive_closure();
        for seed in [1u64, 2, 3] {
            let mut edb = workload::random_graph("e", 10, 25, seed);
            let mut inc = IncrementalEngine::new(program.clone(), edb.clone()).unwrap();
            let mut rng = StdRng::seed_from_u64(seed * 100);
            for step in 0..12 {
                let a = rng.random_range(0..10);
                let b = rng.random_range(0..10);
                if a == b {
                    continue;
                }
                let atom = parse_atom(&format!("e(n{a}, n{b})")).unwrap();
                if step % 2 == 0 {
                    inc.insert(&atom).unwrap();
                    edb.insert_atom(&atom).unwrap();
                } else {
                    inc.delete(&atom).unwrap();
                    edb.remove_atom(&atom);
                }
                assert_eq!(
                    snapshot(inc.db()),
                    from_scratch(&program, &edb),
                    "seed {seed} step {step}"
                );
            }
        }
    }

    #[test]
    fn cyclic_closure_survives_deletion_correctly() {
        // On a cycle, deleting one edge must shrink the closure exactly.
        let program = workload::transitive_closure();
        let edb = workload::cycle("e", 5);
        let mut inc = IncrementalEngine::new(program.clone(), edb.clone()).unwrap();
        let victim = parse_atom("e(n2, n3)").unwrap();
        inc.delete(&victim).unwrap();
        let mut edb2 = edb;
        edb2.remove_atom(&victim);
        assert_eq!(snapshot(inc.db()), from_scratch(&program, &edb2));
    }

    #[test]
    fn idb_updates_are_rejected() {
        let program = workload::transitive_closure();
        let edb = workload::chain("e", 3);
        let mut inc = IncrementalEngine::new(program, edb).unwrap();
        assert!(inc.insert(&parse_atom("tc(n0, n9)").unwrap()).is_err());
        assert!(inc.delete(&parse_atom("tc(n0, n1)").unwrap()).is_err());
    }

    #[test]
    fn non_definite_programs_are_rejected() {
        let parsed = parse("move(a, b). win(X) :- move(X, Y), !win(Y).").unwrap();
        let edb = Database::from_program(&parsed.program);
        let program = Program {
            rules: parsed.program.rules,
            facts: Vec::new(),
        };
        assert!(IncrementalEngine::new(program, edb).is_err());
    }

    #[test]
    fn duplicate_insert_and_missing_delete_are_noops() {
        let program = workload::transitive_closure();
        let edb = workload::chain("e", 3);
        let mut inc = IncrementalEngine::new(program, edb).unwrap();
        assert_eq!(inc.insert(&parse_atom("e(n0, n1)").unwrap()).unwrap(), 0);
        assert_eq!(
            inc.delete(&parse_atom("e(n8, n9)").unwrap()).unwrap(),
            (0, 0)
        );
    }
}
