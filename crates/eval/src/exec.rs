//! The blocked executor: drives a compiled [`RulePlan`] over the arena in
//! fixed-size blocks of binding rows instead of one tuple at a time.
//!
//! ## Shape
//!
//! A *binding block* is a row-major buffer of up to [`BLOCK_ROWS`] candidate
//! variable assignments, each row `nvars` wide (unbound slots carry a dummy
//! value the plan never reads). Execution starts from a single seed row and
//! pushes blocks through the plan's operators: an
//! [`Access`](crate::plan::PlanOp::Access) extends every input row with each
//! matching arena row (indexed probe, delta-narrowed posting list, or
//! contiguous scan), [`Builtin`](crate::plan::PlanOp::Builtin) and
//! [`Negative`](crate::plan::PlanOp::Negative) filter rows in place, and the
//! sink projects head rows, hashing each one **once** — the digest is reused
//! for the duplicate check and the insert via the storage layer's `_hashed`
//! entry points, where the tuple-at-a-time path hashes the same row three
//! times.
//!
//! When an operator's output block fills, the block is flushed through the
//! remaining operators *before* the operator resumes — downstream work for
//! earlier rows always completes before later rows are generated. Emissions
//! therefore occur in exactly the depth-first order of the tuple-at-a-time
//! join, which is what preserves the bit-identical-across-threads merge
//! discipline: insertion order into staging databases, and hence delta
//! spans and row ids, match the tuple path row for row.
//!
//! ## Governance
//!
//! Budget checks are amortised per block, not per tuple: with no step
//! budget, the governor's cancellation/deadline look happens once per block
//! reaching the emission sink. A step budget still claims per firing
//! (claim-before-work exactness demands it), and fact claims stay in the
//! caller's emit closure — identical to the tuple path, so
//! `consumed.facts == max` exactness carries over unchanged.
//!
//! All buffers live in an [`ExecScratch`] the caller keeps per worker; the
//! steady state allocates nothing.

use crate::join::{Emitted, JoinInput, Pat};
use crate::metrics::EvalMetrics;
use crate::plan::{PlanOp, RulePlan};
use alexander_ir::{hash_row, Const, RowHasher};
use alexander_storage::Database;
use std::fmt;
use std::ops::ControlFlow;

/// Which executor drives rule bodies.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ExecMode {
    /// Compiled plans over binding blocks (the default).
    #[default]
    Blocked,
    /// The tuple-at-a-time nested-loop join — retained as the differential
    ///-testing oracle behind this switch.
    Tuple,
}

impl ExecMode {
    /// The mode's CLI / report name.
    pub fn name(self) -> &'static str {
        match self {
            ExecMode::Blocked => "blocked",
            ExecMode::Tuple => "tuple",
        }
    }
}

impl fmt::Display for ExecMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Rows per binding block. 1024 keeps a block of typical width (2–4 slots
/// × 16-byte `Const`) within L2 while amortising per-block overhead
/// (operator dispatch, governance looks) over enough rows to vanish.
pub const BLOCK_ROWS: usize = 1024;

/// A row-major block of binding rows, `stride` slots wide.
#[derive(Default)]
struct Block {
    stride: usize,
    len: usize,
    data: Vec<Const>,
}

impl Block {
    fn reset(&mut self, stride: usize) {
        self.stride = stride;
        self.len = 0;
        self.data.clear();
    }

    #[inline]
    fn row(&self, i: usize) -> &[Const] {
        &self.data[i * self.stride..(i + 1) * self.stride]
    }

    #[inline]
    fn is_full(&self) -> bool {
        self.len >= BLOCK_ROWS
    }

    #[inline]
    fn clear_rows(&mut self) {
        self.len = 0;
        self.data.clear();
    }

    /// The executor's seed: one row of all-dummy slots (the first operator
    /// has nothing bound, or binds only constants the plan checks itself).
    fn push_seed_row(&mut self) {
        self.data.resize(self.stride, Const::int(0));
        self.len = 1;
    }

    /// Appends `base` extended with the candidate row's `load` columns.
    #[inline]
    fn push_extended(&mut self, base: &[Const], cand: &[Const], load: &[(u32, u32)]) {
        let start = self.data.len();
        self.data.extend_from_slice(base);
        for &(col, slot) in load {
            self.data[start + slot as usize] = cand[col as usize];
        }
        self.len += 1;
    }
}

/// Reusable per-worker buffers for the blocked executor: the seed block,
/// one output block per plan operator, and the head-row scratch. One
/// `ExecScratch` serves a whole fixpoint run.
#[derive(Default)]
pub struct ExecScratch {
    seed: Block,
    bufs: Vec<Block>,
    head: Vec<Const>,
}

impl ExecScratch {
    /// Fresh scratch buffers.
    pub fn new() -> ExecScratch {
        ExecScratch::default()
    }
}

/// Resolves a compiled term against a (full-width) binding row.
#[inline]
fn resolve(p: Pat, row: &[Const]) -> Const {
    match p {
        Pat::Const(c) => c,
        Pat::Var(v) => row[v as usize],
    }
}

/// Executes `plan` over `input` blockwise, calling `emit` with each
/// instantiated head row and its [`hash_row`] digest (computed once here so
/// the sink can reuse it for both the membership check and the insert). The
/// row lives in scratch and is only valid for the duration of the call.
///
/// Emission order, metric counters, and governance semantics replicate
/// [`join_rule`](crate::join::join_rule) exactly — the two executors are
/// interchangeable and differential-tested against each other. Returns
/// [`ControlFlow::Break`] when the run stopped early (budget refusal,
/// cancellation, deadline).
pub fn exec_plan(
    plan: &RulePlan,
    input: &JoinInput<'_>,
    scratch: &mut ExecScratch,
    metrics: &mut EvalMetrics,
    emit: &mut dyn FnMut(u64, &[Const]) -> Emitted,
) -> ControlFlow<()> {
    let exact_steps = input.governor.is_some_and(|g| g.counts_steps());
    let neg_db = input.negatives.unwrap_or(input.total);
    if scratch.bufs.len() < plan.ops.len() {
        scratch.bufs.resize_with(plan.ops.len(), Block::default);
    }
    scratch.seed.reset(plan.nvars);
    scratch.seed.push_seed_row();
    run_ops(
        plan,
        &plan.ops,
        &mut scratch.bufs[..plan.ops.len()],
        &scratch.seed,
        input,
        neg_db,
        exact_steps,
        &mut scratch.head,
        metrics,
        emit,
    )
}

/// Pushes `block` through the remaining operators. `bufs[0]` is this
/// stage's output block; flushing it recursively *before* generating more
/// rows is what keeps emissions in depth-first (tuple-path) order.
#[allow(clippy::too_many_arguments)]
fn run_ops(
    plan: &RulePlan,
    ops: &[PlanOp],
    bufs: &mut [Block],
    block: &Block,
    input: &JoinInput<'_>,
    neg_db: &Database,
    exact_steps: bool,
    head: &mut Vec<Const>,
    metrics: &mut EvalMetrics,
    emit: &mut dyn FnMut(u64, &[Const]) -> Emitted,
) -> ControlFlow<()> {
    metrics.exec.blocks_executed += 1;
    metrics.exec.block_rows += block.len as u64;

    // Sink: every row is a full body match — project, hash once, emit.
    let Some((op, rest_ops)) = ops.split_first() else {
        if !exact_steps {
            // The per-block (amortised) governance look: blocks are at most
            // BLOCK_ROWS rows, matching the tuple path's interrupt stride.
            if let Some(g) = input.governor {
                g.check_interrupt()?;
            }
        }
        for i in 0..block.len {
            let row = block.row(i);
            // The step claim comes before the emission: a refused firing
            // does no work and touches no counters (identical to the tuple
            // path's claim-before-work ordering).
            if exact_steps {
                if let Some(g) = input.governor {
                    g.note_firing()?;
                }
            }
            head.clear();
            for &p in &plan.head {
                head.push(resolve(p, row));
            }
            let h = hash_row(head);
            match emit(h, head) {
                Emitted::New => {
                    metrics.firings += 1;
                    metrics.new_facts += 1;
                }
                Emitted::Duplicate => {
                    metrics.firings += 1;
                    metrics.duplicate_facts += 1;
                }
                Emitted::Refused => return ControlFlow::Break(()),
            }
        }
        return ControlFlow::Continue(());
    };

    let (out, rest_bufs) = bufs.split_first_mut().expect("one buffer per operator");
    out.reset(plan.nvars);

    // Flush the output block through the remaining operators, then make it
    // reusable. Invoked whenever it fills and once for the remainder.
    macro_rules! flush_full {
        () => {
            if out.is_full() {
                run_ops(
                    plan,
                    rest_ops,
                    rest_bufs,
                    out,
                    input,
                    neg_db,
                    exact_steps,
                    head,
                    metrics,
                    emit,
                )?;
                out.clear_rows();
            }
        };
    }

    match op {
        PlanOp::Builtin { b, lhs, rhs, want } => {
            for i in 0..block.len {
                let row = block.row(i);
                metrics.probes += 1;
                if b.eval(resolve(*lhs, row), resolve(*rhs, row)) == *want {
                    out.push_extended(row, &[], &[]);
                    flush_full!();
                }
            }
        }
        PlanOp::Negative { pred, args } => {
            let rel = neg_db.relation(*pred);
            for i in 0..block.len {
                let row = block.row(i);
                let present = rel.is_some_and(|r| r.contains_with(|k| resolve(args[k], row)));
                metrics.probes += 1;
                if !present {
                    out.push_extended(row, &[], &[]);
                    flush_full!();
                }
            }
        }
        PlanOp::Access {
            lit,
            pred,
            mask,
            key,
            load,
            eqs,
        } => {
            // Resolve the (up to two) sources this access reads and the id
            // range the delta (if this is the delta position) restricts
            // each to — once per block; the tuple path resolves identically
            // per binding. An unresolved access matches nothing and charges
            // no probe; a second source appears only under counting-update
            // side resolutions (total ∪ removed).
            let sources = crate::join::resolve_access(input, *lit, *pred);
            for (relation, range) in sources.into_iter().flatten() {
                let (lo, hi) = range.unwrap_or((0, relation.len() as u32));
                let eq_cols = |cand: &[Const]| {
                    eqs.iter()
                        .all(|&(c, c0)| cand[c as usize] == cand[c0 as usize])
                };

                if mask.is_empty() {
                    // Contiguous arena scan of the (possibly delta-restricted)
                    // id range — one slice of the pool, walked in stride-sized
                    // steps; the whole enumeration is charged, as in the tuple
                    // path. (Propositional relations have stride 0 and at most
                    // one row.)
                    let a = relation.arity();
                    for i in 0..block.len {
                        let row = block.row(i);
                        metrics.probes += 1;
                        metrics.tuples_considered += u64::from(hi - lo);
                        if a == 0 {
                            for _ in lo..hi {
                                out.push_extended(row, &[], load);
                                flush_full!();
                            }
                        } else {
                            let window = &relation.pool()[lo as usize * a..hi as usize * a];
                            for cand in window.chunks_exact(a) {
                                if eq_cols(cand) {
                                    out.push_extended(row, cand, load);
                                    flush_full!();
                                }
                            }
                        }
                    }
                } else if let Some(ip) = relation.index_probe(*mask) {
                    // Indexed probes: the index is resolved once for the whole
                    // block; each row hashes its bound columns in place — the
                    // same digest the index maintains (ascending column order).
                    for i in 0..block.len {
                        let row = block.row(i);
                        metrics.probes += 1;
                        let mut hsh = RowHasher::new();
                        for &(_, p) in key {
                            hsh.push(&resolve(p, row));
                        }
                        let ids = ip.probe_in(hsh.finish(), range, |rep| {
                            key.iter().all(|&(c, p)| rep[c as usize] == resolve(p, row))
                        });
                        // Group membership guarantees the key columns; only
                        // repeated-variable equalities remain.
                        for &id in ids {
                            metrics.tuples_considered += 1;
                            let cand = relation.row(id);
                            if eq_cols(cand) {
                                out.push_extended(row, cand, load);
                                flush_full!();
                            }
                        }
                    }
                } else {
                    // No index: filtered scan over the range per input row.
                    for i in 0..block.len {
                        let row = block.row(i);
                        metrics.probes += 1;
                        metrics.tuples_considered += u64::from(hi - lo);
                        for id in lo..hi {
                            let cand = relation.row(id);
                            if key
                                .iter()
                                .all(|&(c, p)| cand[c as usize] == resolve(p, row))
                                && eq_cols(cand)
                            {
                                out.push_extended(row, cand, load);
                                flush_full!();
                            }
                        }
                    }
                }
            }
        }
    }

    if out.len > 0 {
        run_ops(
            plan,
            rest_ops,
            rest_bufs,
            out,
            input,
            neg_db,
            exact_steps,
            head,
            metrics,
            emit,
        )?;
    }
    ControlFlow::Continue(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::govern::{Budget, Completion, Governor, Resource};
    use crate::join::{compile_rule, join_rule, CompiledRule, DeltaSource, JoinScratch};
    use crate::plan::compile_plan;
    use alexander_ir::{atom, Literal, Predicate, Rule, Term};
    use alexander_storage::{tuple_of_syms, DeltaSpans, Mask, Tuple};

    fn edb() -> Database {
        let mut db = Database::new();
        let e = Predicate::new("e", 2);
        for (a, b) in [("a", "b"), ("b", "c"), ("c", "d"), ("a", "d")] {
            db.insert(e, tuple_of_syms(&[a, b]));
        }
        db
    }

    fn composition_rule() -> CompiledRule {
        let r = Rule::new(
            atom("p", [Term::var("X"), Term::var("Y")]),
            vec![
                Literal::pos(atom("e", [Term::var("X"), Term::var("Z")])),
                Literal::pos(atom("e", [Term::var("Z"), Term::var("Y")])),
            ],
        );
        compile_rule(&r).unwrap()
    }

    /// Runs both executors over the same input and asserts identical
    /// emission sequences and identical metrics.
    fn assert_executors_agree(rule: &CompiledRule, input: &JoinInput<'_>) -> Vec<Tuple> {
        let plan = compile_plan(rule);
        let mut tm = EvalMetrics::default();
        let mut ts = JoinScratch::new();
        let mut tuple_out = Vec::new();
        let flow = join_rule(rule, input, &mut ts, &mut tm, &mut |row| {
            tuple_out.push(Tuple::new(row));
            Emitted::New
        });
        assert!(flow.is_continue());

        let mut bm = EvalMetrics::default();
        let mut bs = ExecScratch::new();
        let mut blocked_out = Vec::new();
        let flow = exec_plan(&plan, input, &mut bs, &mut bm, &mut |h, row| {
            assert_eq!(h, hash_row(row), "sink digest must be the row hash");
            blocked_out.push(Tuple::new(row));
            Emitted::New
        });
        assert!(flow.is_continue());

        assert_eq!(tuple_out, blocked_out, "emission order must match");
        assert_eq!(tm, bm, "logical counters must match");
        assert!(
            bm.exec.blocks_executed > 0,
            "blocked path must count blocks"
        );
        assert_eq!(tm.exec.blocks_executed, 0, "tuple path executes no blocks");
        blocked_out
    }

    #[test]
    fn matches_tuple_path_on_naive_composition() {
        let db = edb();
        let out = assert_executors_agree(&composition_rule(), &JoinInput::naive(&db));
        assert!(out.contains(&tuple_of_syms(&["a", "c"])));
        assert!(out.contains(&tuple_of_syms(&["b", "d"])));
    }

    #[test]
    fn matches_tuple_path_with_indexes_and_delta_spans() {
        let e = Predicate::new("e", 2);
        let rule = composition_rule();
        let mut db = edb();
        db.ensure_index(e, Mask::of_columns(&[0]));
        let mut fresh = Database::new();
        fresh.insert(e, tuple_of_syms(&["d", "q"]));
        db.merge(&fresh);
        let spans = DeltaSpans::after_merge(&db, &fresh);
        for delta_pos in [0, 1] {
            let input = JoinInput {
                total: &db,
                delta: Some((delta_pos, DeltaSource::Spans(&spans))),
                sides: None,
                negatives: None,
                governor: None,
            };
            assert_executors_agree(&rule, &input);
        }
    }

    #[test]
    fn matches_tuple_path_on_negation_builtin_and_repeats() {
        // q(X) :- e(X, Y), neq(X, Y), !blocked(X).
        let r = Rule::new(
            atom("q", [Term::var("X")]),
            vec![
                Literal::pos(atom("e", [Term::var("X"), Term::var("Y")])),
                Literal::pos(atom("neq", [Term::var("X"), Term::var("Y")])),
                Literal::neg(atom("blocked", [Term::var("X")])),
            ],
        );
        let rule = compile_rule(&r).unwrap();
        let mut db = edb();
        db.insert(Predicate::new("e", 2), tuple_of_syms(&["z", "z"]));
        db.insert(Predicate::new("blocked", 1), tuple_of_syms(&["a"]));
        assert_executors_agree(&rule, &JoinInput::naive(&db));

        // loop(X) :- e(X, X): repeated free variable inside one literal.
        let r = Rule::new(
            atom("loop", [Term::var("X")]),
            vec![Literal::pos(atom("e", [Term::var("X"), Term::var("X")]))],
        );
        let rule = compile_rule(&r).unwrap();
        let out = assert_executors_agree(&rule, &JoinInput::naive(&db));
        assert_eq!(out, vec![tuple_of_syms(&["z"])]);
    }

    #[test]
    fn missing_relation_matches_nothing_and_counts_nothing() {
        let r = Rule::new(
            atom("p", [Term::var("X")]),
            vec![Literal::pos(atom("ghost", [Term::var("X")]))],
        );
        let rule = compile_rule(&r).unwrap();
        let db = edb();
        let out = assert_executors_agree(&rule, &JoinInput::naive(&db));
        assert!(out.is_empty());
    }

    #[test]
    fn blocks_larger_than_block_rows_flush_in_order() {
        // A cross product wide enough to overflow BLOCK_ROWS several times:
        // emission order must still match the tuple path row for row.
        let d = Predicate::new("d", 1);
        let mut db = Database::new();
        for i in 0..70 {
            db.insert(d, Tuple::new(vec![Const::int(i)]));
        }
        // cross(X, Y) :- d(X), d(Y).   70 * 70 = 4900 > 4 * BLOCK_ROWS.
        let r = Rule::new(
            atom("cross", [Term::var("X"), Term::var("Y")]),
            vec![
                Literal::pos(atom("d", [Term::var("X")])),
                Literal::pos(atom("d", [Term::var("Y")])),
            ],
        );
        let rule = compile_rule(&r).unwrap();
        let out = assert_executors_agree(&rule, &JoinInput::naive(&db));
        assert_eq!(out.len(), 4900);
    }

    #[test]
    fn step_budget_breaks_with_exact_claims() {
        let rule = composition_rule();
        let plan = compile_plan(&rule);
        let db = edb();
        let gov = Governor::new(Budget::default().with_max_steps(1), None);
        let input = JoinInput {
            governor: Some(&gov),
            ..JoinInput::naive(&db)
        };
        let mut m = EvalMetrics::default();
        let mut s = ExecScratch::new();
        let mut out = 0;
        let flow = exec_plan(&plan, &input, &mut s, &mut m, &mut |_, _| {
            out += 1;
            Emitted::New
        });
        assert!(flow.is_break());
        assert_eq!(out, 1, "exactly one firing fits a 1-step budget");
        assert_eq!(
            gov.completion(),
            Completion::BudgetExhausted {
                resource: Resource::Steps
            }
        );
    }

    #[test]
    fn refused_emission_stops_and_counts_nothing() {
        let rule = composition_rule();
        let plan = compile_plan(&rule);
        let db = edb();
        let mut m = EvalMetrics::default();
        let mut s = ExecScratch::new();
        let mut calls = 0;
        let flow = exec_plan(
            &plan,
            &JoinInput::naive(&db),
            &mut s,
            &mut m,
            &mut |_, _| {
                calls += 1;
                if calls == 1 {
                    Emitted::New
                } else {
                    Emitted::Refused
                }
            },
        );
        assert!(flow.is_break());
        assert_eq!(calls, 2, "executor must stop right at the refusal");
        assert_eq!(m.firings, 1, "the refused emission counts no firing");
        assert_eq!(m.new_facts, 1);
    }

    #[test]
    fn propositional_rules_execute() {
        // ok() :- d(X): an arity-0 head over a non-empty body.
        let d = Predicate::new("d", 1);
        let mut db = Database::new();
        db.insert(d, Tuple::new(vec![Const::int(1)]));
        let r = Rule::new(
            atom("ok", []),
            vec![Literal::pos(atom("d", [Term::var("X")]))],
        );
        let rule = compile_rule(&r).unwrap();
        let out = assert_executors_agree(&rule, &JoinInput::naive(&db));
        assert_eq!(out, vec![Tuple::new(Vec::<Const>::new())]);
    }
}
