//! The rule-plan compiler: lowers a [`CompiledRule`] into a flat sequence of
//! columnar operators for the blocked executor.
//!
//! [`compile_rule`](crate::join::compile_rule) already did the semantic
//! work — body reordering, dense variable slots, per-literal bound masks and
//! key sources. This pass finishes the lowering into a shape the executor
//! can drive without re-deriving anything per tuple: each positive literal
//! becomes an [`PlanOp::Access`] that knows, statically, which columns form
//! its probe key, which columns *load* a newly bound variable into which
//! binding slot, and which columns must *equal* an earlier column of the
//! same candidate row (a repeated free variable). Built-ins and negative
//! literals become filter operators over whole binding blocks.
//!
//! One plan serves every join variant of a rule: the semi-naive delta
//! position is a property of the [`JoinInput`](crate::join::JoinInput), not
//! the plan, so the executor compares each access's literal index against
//! the input's delta position at run time. Plans are compiled once per
//! fixpoint run and shared read-only across workers.

use crate::join::{BodyPat, CompiledRule, Pat};
use alexander_ir::{Builtin, Polarity, Predicate};
use alexander_storage::Mask;

/// One columnar operator of a compiled rule plan. Each operator consumes a
/// block of binding rows and produces a block of extended (or filtered)
/// binding rows for the next operator.
#[derive(Clone, Debug)]
pub enum PlanOp {
    /// A positive literal: an arena scan or a hash probe against the
    /// key-less projection index of `pred`, restricted to the delta's id
    /// range when `lit` is the input's delta position.
    Access {
        /// Index of the source literal in the rule body (== this op's
        /// position in the plan); compared against the delta position.
        lit: usize,
        pred: Predicate,
        /// Columns bound when the join reaches this literal.
        mask: Mask,
        /// The mask's columns with their value sources, ascending by
        /// column — the probe key, hashed in place per binding row.
        key: Vec<(u32, Pat)>,
        /// `(column, slot)`: the candidate row's column that binds variable
        /// slot `slot` (first occurrence of each free variable).
        load: Vec<(u32, u32)>,
        /// `(column, earlier_column)`: a repeated free variable — the
        /// candidate row must carry equal values in both columns.
        eqs: Vec<(u32, u32)>,
    },
    /// A built-in comparison over two ground terms; keeps rows where the
    /// comparison's truth equals `want` (negated built-ins want `false`).
    Builtin {
        b: Builtin,
        lhs: Pat,
        rhs: Pat,
        want: bool,
    },
    /// A negative literal: keeps rows whose instantiated atom is *absent*
    /// from the negative-source database.
    Negative { pred: Predicate, args: Vec<Pat> },
}

/// A rule lowered to a flat operator pipeline plus its head projection.
#[derive(Clone, Debug)]
pub struct RulePlan {
    pub head_pred: Predicate,
    /// The head projection: one [`Pat`] per head column, resolved against a
    /// fully bound binding row.
    pub head: Vec<Pat>,
    /// The operator pipeline, one per body literal, in evaluation order.
    pub ops: Vec<PlanOp>,
    /// Width of a binding row (the rule's dense variable slot count).
    pub nvars: usize,
}

/// Compiles the run's plan cache when the blocked executor is selected
/// (`None` keeps the tuple-at-a-time oracle). Charges `plans_compiled` so
/// the metrics expose how many plans the run cached.
pub(crate) fn compile_plans(
    rules: &[CompiledRule],
    exec: crate::exec::ExecMode,
    metrics: &mut crate::metrics::EvalMetrics,
) -> Option<Vec<RulePlan>> {
    if exec != crate::exec::ExecMode::Blocked {
        return None;
    }
    metrics.exec.plans_compiled += rules.len() as u64;
    Some(rules.iter().map(compile_plan).collect())
}

/// Lowers one compiled rule into its operator pipeline.
pub fn compile_plan(rule: &CompiledRule) -> RulePlan {
    let ops = rule
        .body
        .iter()
        .enumerate()
        .map(|(i, lit)| lower_literal(i, lit))
        .collect();
    RulePlan {
        head_pred: rule.head.pred,
        head: rule.head.args.clone(),
        ops,
        nvars: rule.nvars,
    }
}

fn lower_literal(lit_index: usize, lit: &BodyPat) -> PlanOp {
    // Built-in comparisons are native filters whatever their polarity; the
    // body ordering guarantees their arguments are ground here.
    if let Some(b) = Builtin::of(lit.atom.pred) {
        return PlanOp::Builtin {
            b,
            lhs: lit.atom.args[0],
            rhs: lit.atom.args[1],
            want: lit.polarity == Polarity::Positive,
        };
    }
    if lit.polarity == Polarity::Negative {
        return PlanOp::Negative {
            pred: lit.atom.pred,
            args: lit.atom.args.clone(),
        };
    }
    // Positive access. Unmasked positions are always free variables
    // (constants are unconditionally bound): the first occurrence of each
    // free variable loads it, later occurrences become equality constraints
    // against the loading column.
    let mut load: Vec<(u32, u32)> = Vec::new();
    let mut eqs: Vec<(u32, u32)> = Vec::new();
    for (i, p) in lit.atom.args.iter().enumerate() {
        let masked = lit.mask.columns().any(|c| c == i);
        if masked {
            continue;
        }
        match p {
            // invariant: compile_rule masks every constant position.
            Pat::Const(_) => unreachable!("constant at unmasked position"),
            Pat::Var(v) => match load.iter().find(|&&(_, slot)| slot == *v) {
                Some(&(first_col, _)) => eqs.push((i as u32, first_col)),
                None => load.push((i as u32, *v)),
            },
        }
    }
    PlanOp::Access {
        lit: lit_index,
        pred: lit.atom.pred,
        mask: lit.mask,
        key: lit.bound.clone(),
        load,
        eqs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::join::compile_rule;
    use alexander_ir::{atom, Literal, Rule, Term};

    #[test]
    fn lowers_composition_rule() {
        // p(X, Y) :- e(X, Z), e(Z, Y).
        let r = Rule::new(
            atom("p", [Term::var("X"), Term::var("Y")]),
            vec![
                Literal::pos(atom("e", [Term::var("X"), Term::var("Z")])),
                Literal::pos(atom("e", [Term::var("Z"), Term::var("Y")])),
            ],
        );
        let plan = compile_plan(&compile_rule(&r).unwrap());
        assert_eq!(plan.nvars, 3);
        assert_eq!(plan.ops.len(), 2);
        let PlanOp::Access {
            mask,
            key,
            load,
            eqs,
            ..
        } = &plan.ops[0]
        else {
            panic!("first op must be an access");
        };
        assert!(mask.is_empty());
        assert!(key.is_empty());
        assert_eq!(load.len(), 2, "binds X and Z");
        assert!(eqs.is_empty());
        let PlanOp::Access {
            mask, key, load, ..
        } = &plan.ops[1]
        else {
            panic!("second op must be an access");
        };
        assert_eq!(mask.count(), 1, "Z is bound");
        assert_eq!(key.len(), 1);
        assert_eq!(load.len(), 1, "binds Y");
    }

    #[test]
    fn repeated_free_variable_becomes_equality() {
        // loop(X) :- e(X, X).
        let r = Rule::new(
            atom("loop", [Term::var("X")]),
            vec![Literal::pos(atom("e", [Term::var("X"), Term::var("X")]))],
        );
        let plan = compile_plan(&compile_rule(&r).unwrap());
        let PlanOp::Access { load, eqs, .. } = &plan.ops[0] else {
            panic!("must be an access");
        };
        assert_eq!(load, &[(0, 0)], "column 0 loads slot 0");
        assert_eq!(eqs, &[(1, 0)], "column 1 must equal column 0");
    }

    #[test]
    fn negatives_and_builtins_become_filters() {
        // q(X) :- e(X, Y), lt(X, Y), !blocked(X).
        let r = Rule::new(
            atom("q", [Term::var("X")]),
            vec![
                Literal::pos(atom("e", [Term::var("X"), Term::var("Y")])),
                Literal::pos(atom("lt", [Term::var("X"), Term::var("Y")])),
                Literal::neg(atom("blocked", [Term::var("X")])),
            ],
        );
        let plan = compile_plan(&compile_rule(&r).unwrap());
        assert!(matches!(plan.ops[0], PlanOp::Access { .. }));
        assert!(matches!(plan.ops[1], PlanOp::Builtin { want: true, .. }));
        assert!(matches!(plan.ops[2], PlanOp::Negative { .. }));
    }
}
