//! Stratified evaluation: stratify the program, then run semi-naive
//! evaluation stratum by stratum. Negative literals always refer to lower
//! strata, whose predicates are complete when the stratum runs — this
//! computes the perfect model of a stratified program.
//!
//! Under a budget or cancellation the run may stop between (or inside)
//! strata. `strata_completed` records how many strata finished: facts of
//! completed strata are exactly the perfect model restricted to those
//! strata, facts of the stratum that was cut short are a sound subset
//! (its negative premises only read completed lower strata), and higher
//! strata contribute nothing — a partial stratified result is never
//! silently presented as the full perfect model because `completion`
//! reports the trip.

use crate::error::EvalError;
use crate::govern::Completion;
use crate::metrics::EvalMetrics;
use crate::naive::{seed_database, EvalOptions, EvalResult};
use crate::seminaive::run_rules;
use alexander_ir::analysis::stratify;
use alexander_ir::{Program, Rule};
use alexander_storage::Database;

/// The result of a stratified run, with per-stratum bookkeeping.
#[derive(Clone, Debug)]
pub struct StratifiedResult {
    pub db: Database,
    pub metrics: EvalMetrics,
    /// Number of strata in the program.
    pub strata: usize,
    /// Number of strata that ran to their full per-stratum fixpoint. Equals
    /// `strata` when `completion` is `Complete`; on a budget/cancel stop it
    /// is a (conservative) count of the strata whose facts are final.
    pub strata_completed: usize,
    /// Whether the perfect model was fully computed.
    pub completion: Completion,
}

impl From<StratifiedResult> for EvalResult {
    fn from(r: StratifiedResult) -> EvalResult {
        EvalResult {
            db: r.db,
            metrics: r.metrics,
            completion: r.completion,
        }
    }
}

/// Runs stratified evaluation of `program` over `edb`.
pub fn eval_stratified(program: &Program, edb: &Database) -> Result<StratifiedResult, EvalError> {
    eval_stratified_opts(program, edb, EvalOptions::default())
}

/// [`eval_stratified`] with explicit options. The budget is global to the
/// run: one governor spans all strata.
pub fn eval_stratified_opts(
    program: &Program,
    edb: &Database,
    opts: EvalOptions,
) -> Result<StratifiedResult, EvalError> {
    program.validate().map_err(EvalError::Invalid)?;
    let strat = stratify(program)?;
    let mut db = seed_database(program, edb);
    let mut metrics = EvalMetrics::default();
    let gov = opts.governor();
    let mut strata_completed = 0;

    for layer in 0..strat.len() {
        if gov.should_stop() {
            break;
        }
        let rules: Vec<Rule> = program
            .rules
            .iter()
            .filter(|r| strat.stratum_of(r.head.predicate()) == layer)
            .cloned()
            .collect();
        if rules.is_empty() {
            strata_completed += 1;
            continue;
        }
        // Negatives read the running total: all negated predicates live in
        // lower strata and are complete by now.
        run_rules(&rules, &mut db, &mut metrics, &opts, None, Some(&gov))?;
        if gov.should_stop() {
            break;
        }
        strata_completed += 1;
    }
    Ok(StratifiedResult {
        db,
        metrics,
        strata: strat.len(),
        strata_completed,
        completion: gov.completion(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::govern::{Budget, Resource};
    use alexander_ir::Predicate;
    use alexander_parser::parse;
    use alexander_storage::tuple_of_syms;

    #[test]
    fn reach_unreach_two_strata() {
        let parsed = parse(
            "
            edge(s, a). edge(a, b). node(s). node(a). node(b). node(z).
            reach(X) :- edge(s, X).
            reach(Y) :- reach(X), edge(X, Y).
            unreach(X) :- node(X), !reach(X).
        ",
        )
        .unwrap();
        let r = eval_stratified(&parsed.program, &Database::new()).unwrap();
        assert_eq!(r.strata, 2);
        assert_eq!(r.strata_completed, 2);
        assert!(r.completion.is_complete());
        let unreach = Predicate::new("unreach", 1);
        let got = r.db.atoms_of(unreach);
        let names: Vec<String> = got.iter().map(|a| a.to_string()).collect();
        // s has no incoming edge from s; z is isolated.
        assert!(names.contains(&"unreach(z)".to_string()));
        assert!(names.contains(&"unreach(s)".to_string()));
        assert_eq!(got.len(), 2);
    }

    #[test]
    fn win_move_is_rejected() {
        let parsed = parse(
            "
            move(a, b).
            win(X) :- move(X, Y), !win(Y).
        ",
        )
        .unwrap();
        assert!(matches!(
            eval_stratified(&parsed.program, &Database::new()),
            Err(EvalError::NotStratified(_))
        ));
    }

    #[test]
    fn three_strata_chain() {
        let parsed = parse(
            "
            base(a). base(b). mark(a).
            s0(X) :- base(X), mark(X).
            s1(X) :- base(X), !s0(X).
            s2(X) :- base(X), !s1(X).
        ",
        )
        .unwrap();
        let r = eval_stratified(&parsed.program, &Database::new()).unwrap();
        assert_eq!(r.strata, 3);
        assert_eq!(r.db.atoms_of(Predicate::new("s0", 1)).len(), 1); // a
        assert_eq!(r.db.atoms_of(Predicate::new("s1", 1)).len(), 1); // b
        assert_eq!(r.db.atoms_of(Predicate::new("s2", 1)).len(), 1); // a
        assert!(r
            .db
            .relation(Predicate::new("s2", 1))
            .unwrap()
            .contains(&tuple_of_syms(&["a"])));
    }

    #[test]
    fn definite_program_is_one_stratum() {
        let parsed = parse(
            "
            e(a, b). e(b, c).
            tc(X, Y) :- e(X, Y).
            tc(X, Y) :- e(X, Z), tc(Z, Y).
        ",
        )
        .unwrap();
        let r = eval_stratified(&parsed.program, &Database::new()).unwrap();
        assert_eq!(r.strata, 1);
        assert_eq!(r.db.len_of(Predicate::new("tc", 2)), 3);
    }

    #[test]
    fn recursion_with_lower_stratum_negation() {
        // Paths avoiding blocked nodes; blocked is derived in stratum 0... via
        // negation it sits below `safe`.
        let parsed = parse(
            "
            e(a, b). e(b, c). e(c, d). bad(c).
            blocked(X) :- bad(X).
            safe(a).
            safe(Y) :- safe(X), e(X, Y), !blocked(Y).
        ",
        )
        .unwrap();
        let r = eval_stratified(&parsed.program, &Database::new()).unwrap();
        let safe = Predicate::new("safe", 1);
        let names: Vec<String> = r.db.atoms_of(safe).iter().map(|a| a.to_string()).collect();
        assert_eq!(names.len(), 2); // a, b — c blocked, d unreachable
        assert!(names.contains(&"safe(b)".to_string()));
    }

    #[test]
    fn agrees_with_seminaive_on_semipositive() {
        let parsed = parse(
            "
            n(a). n(b). f(b).
            g(X) :- n(X), !f(X).
        ",
        )
        .unwrap();
        let strat = eval_stratified(&parsed.program, &Database::new()).unwrap();
        let semi = crate::seminaive::eval_seminaive(&parsed.program, &Database::new()).unwrap();
        assert_eq!(
            strat.db.len_of(Predicate::new("g", 1)),
            semi.db.len_of(Predicate::new("g", 1))
        );
    }

    #[test]
    fn budget_exhaustion_marks_unfinished_strata() {
        // Stratum 0 derives 4 reach facts; a 2-fact budget stops inside it,
        // so no stratum may be reported complete and unreach must stay empty
        // (its negations would read an incomplete lower stratum).
        let parsed = parse(
            "
            edge(s, a). edge(a, b). edge(b, c). edge(c, d).
            node(s). node(a). node(b). node(z).
            reach(X) :- edge(s, X).
            reach(Y) :- reach(X), edge(X, Y).
            unreach(X) :- node(X), !reach(X).
        ",
        )
        .unwrap();
        let r = eval_stratified_opts(
            &parsed.program,
            &Database::new(),
            EvalOptions::default().with_budget(Budget::default().with_max_facts(2)),
        )
        .unwrap();
        assert_eq!(
            r.completion,
            Completion::BudgetExhausted {
                resource: Resource::Facts
            }
        );
        assert_eq!(r.strata_completed, 0);
        assert_eq!(r.db.len_of(Predicate::new("reach", 1)), 2);
        assert_eq!(r.db.len_of(Predicate::new("unreach", 1)), 0);
    }

    #[test]
    fn ample_budget_completes_all_strata() {
        let parsed = parse(
            "
            edge(s, a). edge(a, b). node(s). node(a). node(b). node(z).
            reach(X) :- edge(s, X).
            reach(Y) :- reach(X), edge(X, Y).
            unreach(X) :- node(X), !reach(X).
        ",
        )
        .unwrap();
        let full = eval_stratified(&parsed.program, &Database::new()).unwrap();
        let budgeted = eval_stratified_opts(
            &parsed.program,
            &Database::new(),
            EvalOptions::default()
                .with_budget(Budget::default().with_max_facts(full.metrics.new_facts)),
        )
        .unwrap();
        assert!(budgeted.completion.is_complete());
        assert_eq!(budgeted.strata_completed, budgeted.strata);
        for p in [Predicate::new("reach", 1), Predicate::new("unreach", 1)] {
            assert_eq!(full.db.len_of(p), budgeted.db.len_of(p), "{p}");
        }
    }
}
