//! The `alexander` CLI: load a Datalog file, answer its queries.
//!
//! See [`alexander_core::cli::USAGE`] or run with `--help`.

use alexander_core::cli;
use std::io::Read;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (path, opts) = match cli::parse_args(&args) {
        Ok(x) => x,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let Some(path) = path else {
        eprintln!("{}", cli::USAGE);
        std::process::exit(2);
    };
    let source = if path == "-" {
        let mut buf = String::new();
        if let Err(e) = std::io::stdin().read_to_string(&mut buf) {
            eprintln!("error reading stdin: {e}");
            std::process::exit(1);
        }
        buf
    } else {
        match std::fs::read_to_string(&path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error reading {path}: {e}");
                std::process::exit(1);
            }
        }
    };
    match cli::run(&source, &opts) {
        Ok(out) => print!("{out}"),
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    }
}
