//! Evaluation strategies and their instrumentation reports.

use alexander_eval::{Completion, Consumption, EvalMetrics, ExecMode};
use alexander_ir::Atom;
use alexander_topdown::OldtMetrics;
use std::fmt;

/// How a query is answered.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Strategy {
    /// Naive bottom-up fixpoint of the whole program.
    Naive,
    /// Semi-naive bottom-up fixpoint of the whole program.
    SemiNaive,
    /// Stratified semi-naive (programs with stratified negation).
    Stratified,
    /// Bry's conditional fixpoint (loosely/locally stratified programs and
    /// rewritten programs whose stratification the rewriting destroyed).
    ConditionalFixpoint,
    /// Generalized Magic Sets rewriting, then bottom-up.
    Magic,
    /// Supplementary Magic Sets rewriting, then bottom-up.
    SupplementaryMagic,
    /// Alexander templates rewriting, then bottom-up.
    Alexander,
    /// OLDT resolution (top-down with tabulation).
    Oldt,
    /// QSQR (Query-Subquery recursive: restart-based tabling).
    Qsqr,
}

impl Strategy {
    /// All strategies, in the order the harness tables report them.
    pub const ALL: [Strategy; 9] = [
        Strategy::Naive,
        Strategy::SemiNaive,
        Strategy::Stratified,
        Strategy::ConditionalFixpoint,
        Strategy::Magic,
        Strategy::SupplementaryMagic,
        Strategy::Alexander,
        Strategy::Oldt,
        Strategy::Qsqr,
    ];

    /// Short stable name used in tables.
    pub fn name(self) -> &'static str {
        match self {
            Strategy::Naive => "naive",
            Strategy::SemiNaive => "seminaive",
            Strategy::Stratified => "stratified",
            Strategy::ConditionalFixpoint => "conditional",
            Strategy::Magic => "magic",
            Strategy::SupplementaryMagic => "supmagic",
            Strategy::Alexander => "alexander",
            Strategy::Oldt => "oldt",
            Strategy::Qsqr => "qsqr",
        }
    }
}

impl fmt::Display for Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Instrumentation attached to a query result.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// Bottom-up counters (absent for pure OLDT runs).
    pub eval: Option<EvalMetrics>,
    /// Top-down counters (OLDT runs only).
    pub oldt: Option<OldtMetrics>,
    /// Total facts materialised (IDB plus rewriting auxiliaries; excludes
    /// the EDB).
    pub facts_materialised: u64,
    /// Size of the demand set: magic/call facts (rewritings) or distinct
    /// tabled calls (OLDT).
    pub calls: Option<u64>,
    /// Atoms the conditional fixpoint left undefined (empty otherwise).
    pub undefined: Vec<Atom>,
    /// Number of rules actually evaluated (after rewriting).
    pub rules_evaluated: usize,
    /// Worker threads the bottom-up fixpoint ran with (0 when no bottom-up
    /// evaluation happened, e.g. pure OLDT runs or EDB lookups).
    pub threads: usize,
    /// Which rule executor the bottom-up fixpoint ran (`None` when no
    /// bottom-up evaluation happened, e.g. pure OLDT runs or EDB lookups).
    pub exec: Option<ExecMode>,
    /// Whether the evaluation ran to its full fixpoint / answer set. A
    /// non-`Complete` value means the answers are a sound *partial* result:
    /// everything reported holds, but more may be derivable.
    pub completion: Completion,
    /// What the run consumed against the governed resources (facts derived,
    /// rounds entered, firings / resolution steps charged).
    pub consumed: Consumption,
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "facts={}", self.facts_materialised)?;
        if let Some(c) = self.calls {
            write!(f, " calls={c}")?;
        }
        if let Some(m) = &self.eval {
            write!(f, " [{m}]")?;
        }
        if let Some(m) = &self.oldt {
            write!(f, " [{m}]")?;
        }
        if !self.undefined.is_empty() {
            write!(f, " undefined={}", self.undefined.len())?;
        }
        if self.threads > 1 {
            write!(f, " threads={}", self.threads)?;
        }
        // The blocked executor is the default; only flag the oracle.
        if self.exec == Some(ExecMode::Tuple) {
            write!(f, " exec=tuple")?;
        }
        if !self.completion.is_complete() {
            write!(f, " PARTIAL: {} ({})", self.completion, self.consumed)?;
        }
        Ok(())
    }
}

/// Answers plus instrumentation.
#[derive(Clone, Debug)]
pub struct QueryResult {
    /// Ground instances of the query, over the *original* predicate,
    /// sorted and deduplicated.
    pub answers: Vec<Atom>,
    pub strategy: Strategy,
    pub report: Report,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique() {
        let names: std::collections::HashSet<&str> =
            Strategy::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(names.len(), Strategy::ALL.len());
    }

    #[test]
    fn report_display_mentions_calls_when_present() {
        let r = Report {
            calls: Some(7),
            ..Report::default()
        };
        assert!(r.to_string().contains("calls=7"));
    }

    #[test]
    fn report_display_flags_partial_results() {
        let complete = Report::default();
        assert!(!complete.to_string().contains("PARTIAL"));
        let partial = Report {
            completion: Completion::BudgetExhausted {
                resource: alexander_eval::Resource::Facts,
            },
            consumed: Consumption {
                facts: 10,
                rounds: 2,
                steps: 40,
            },
            ..Report::default()
        };
        let shown = partial.to_string();
        assert!(shown.contains("PARTIAL"), "{shown}");
        assert!(shown.contains("facts"), "{shown}");
    }

    #[test]
    fn report_display_flags_only_the_tuple_oracle() {
        let blocked = Report {
            exec: Some(ExecMode::Blocked),
            ..Report::default()
        };
        assert!(!blocked.to_string().contains("exec="));
        let tuple = Report {
            exec: Some(ExecMode::Tuple),
            ..Report::default()
        };
        assert!(tuple.to_string().contains("exec=tuple"));
    }

    #[test]
    fn report_display_mentions_threads_only_when_parallel() {
        let seq = Report {
            threads: 1,
            ..Report::default()
        };
        assert!(!seq.to_string().contains("threads"));
        let par = Report {
            threads: 4,
            ..Report::default()
        };
        assert!(par.to_string().contains("threads=4"));
    }
}
