//! The power correspondence (experiment E3): bottom-up evaluation of the
//! Alexander-transformed program materialises exactly OLDT's call and answer
//! tables.
//!
//! For every adorned intensional predicate `p^a` reachable from the query:
//!
//! * `|call_p^a|` (facts of the call predicate) must equal the number of
//!   distinct OLDT tabled calls to `p` whose canonical form binds exactly
//!   the positions `a` binds;
//! * `|ans_p^a|` must equal the number of distinct answers across those
//!   tables.
//!
//! [`check_power_correspondence`] computes both sides and reports them row
//! by row; the integration tests and the harness assert exact equality on
//! definite programs.

use alexander_eval::eval_seminaive;
use alexander_ir::{AdornedPredicate, Adornment, Atom, Bf, FxHashMap, Predicate, Program};
use alexander_storage::Database;
use alexander_topdown::oldt_query;
use alexander_transform::{alexander, SipOptions};
use std::fmt;

/// One adorned predicate's comparison row.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PowerRow {
    /// The original predicate.
    pub pred: Predicate,
    /// The adornment under which it is called.
    pub adornment: String,
    /// Facts of `call_p^a` after bottom-up evaluation of the templates.
    pub alexander_calls: u64,
    /// Distinct OLDT tabled calls with this adornment shape.
    pub oldt_calls: u64,
    /// Facts of `ans_p^a`.
    pub alexander_answers: u64,
    /// Distinct OLDT answers across this adornment's tables.
    pub oldt_answers: u64,
}

impl PowerRow {
    /// True iff both counts agree.
    pub fn matches(&self) -> bool {
        self.alexander_calls == self.oldt_calls && self.alexander_answers == self.oldt_answers
    }
}

impl fmt::Display for PowerRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}^{}: calls {} vs {}, answers {} vs {}{}",
            self.pred,
            self.adornment,
            self.alexander_calls,
            self.oldt_calls,
            self.alexander_answers,
            self.oldt_answers,
            if self.matches() { "" } else { "  <-- MISMATCH" }
        )
    }
}

/// The full correspondence report.
#[derive(Clone, Debug)]
pub struct PowerCorrespondence {
    pub rows: Vec<PowerRow>,
    /// OLDT's total resolution steps (context for the tables).
    pub oldt_steps: u64,
    /// Bottom-up firings evaluating the templates (context).
    pub alexander_firings: u64,
}

impl PowerCorrespondence {
    /// True iff every row matches — the paper's theorem, checked.
    pub fn holds(&self) -> bool {
        self.rows.iter().all(|r| r.matches())
    }
}

impl fmt::Display for PowerCorrespondence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in &self.rows {
            writeln!(f, "{r}")?;
        }
        write!(
            f,
            "oldt steps={}, alexander firings={}",
            self.oldt_steps, self.alexander_firings
        )
    }
}

/// Errors: either side can fail (validation, stratification, …).
#[derive(Debug)]
pub enum PowerError {
    Transform(alexander_transform::AdornError),
    Eval(alexander_eval::EvalError),
    Oldt(alexander_topdown::OldtError),
}

impl fmt::Display for PowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PowerError::Transform(e) => write!(f, "{e}"),
            PowerError::Eval(e) => write!(f, "{e}"),
            PowerError::Oldt(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for PowerError {}

/// The adornment shape of a canonical OLDT call: positions holding constants
/// are bound.
fn call_adornment(call: &Atom) -> Adornment {
    Adornment(
        call.terms
            .iter()
            .map(|t| if t.is_ground() { Bf::Bound } else { Bf::Free })
            .collect(),
    )
}

/// Runs both sides and compares, for a **definite** program (the theorem as
/// stated; negation needs the conditional fixpoint and a completion-aware
/// OLDT, compared separately in E8).
pub fn check_power_correspondence(
    program: &Program,
    edb: &Database,
    query: &Atom,
) -> Result<PowerCorrespondence, PowerError> {
    // Repeated variables inside an intensional subgoal make OLDT's
    // variant-based calls finer than the adornment abstraction the
    // rewritings use; normalise them away on *both* sides so the two
    // engines speak the same call language (see
    // `alexander_transform::normalize`).
    let program = alexander_transform::normalize_repeated_vars(program);
    let program = &program;

    // Bottom-up side: Alexander templates, semi-naive to saturation.
    let rw = alexander(program, query, SipOptions::default()).map_err(PowerError::Transform)?;
    let bu = eval_seminaive(&rw.program, edb).map_err(PowerError::Eval)?;

    // Top-down side: instrumented OLDT.
    let td = oldt_query(program, edb, query).map_err(PowerError::Oldt)?;

    // Group the OLDT call/answer tables by (predicate, adornment).
    let mut oldt_calls: FxHashMap<(Predicate, String), u64> = FxHashMap::default();
    let mut oldt_answers: FxHashMap<(Predicate, String), u64> = FxHashMap::default();
    for (call, n_answers) in td.tables() {
        let key = (call.predicate(), call_adornment(call).suffix());
        *oldt_calls.entry(key.clone()).or_default() += 1;
        *oldt_answers.entry(key).or_default() += n_answers;
    }

    // Read the template relations: one row per adorned predicate.
    let mut rows = Vec::new();
    let mut adorned: Vec<(&alexander_ir::Symbol, &AdornedPredicate)> =
        rw.adorned.map.iter().collect();
    adorned.sort_by_key(|(s, _)| s.as_str());
    for (mangled, ap) in adorned {
        let call_pred = Predicate {
            name: alexander_ir::Symbol::intern(&format!("call_{mangled}")),
            arity: ap.adornment.bound_positions().len(),
        };
        let ans_pred = Predicate {
            name: alexander_ir::Symbol::intern(&format!("ans_{mangled}")),
            arity: ap.pred.arity,
        };
        let key = (ap.pred, ap.adornment.suffix());
        rows.push(PowerRow {
            pred: ap.pred,
            adornment: ap.adornment.suffix(),
            alexander_calls: bu.db.len_of(call_pred) as u64,
            oldt_calls: oldt_calls.get(&key).copied().unwrap_or(0),
            alexander_answers: bu.db.len_of(ans_pred) as u64,
            oldt_answers: oldt_answers.get(&key).copied().unwrap_or(0),
        });
    }

    Ok(PowerCorrespondence {
        rows,
        oldt_steps: td.metrics.resolution_steps,
        alexander_firings: bu.metrics.firings,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use alexander_parser::{parse, parse_atom};
    use alexander_workload as workload;

    fn check(src: &str, q: &str) -> PowerCorrespondence {
        let parsed = parse(src).unwrap();
        let edb = Database::from_program(&parsed.program);
        check_power_correspondence(&parsed.program, &edb, &parse_atom(q).unwrap()).unwrap()
    }

    #[test]
    fn ancestor_chain_correspondence() {
        let c = check(
            "
            par(a, b). par(b, c). par(c, d). par(x, y).
            anc(X, Y) :- par(X, Y).
            anc(X, Y) :- par(X, Z), anc(Z, Y).
            ",
            "anc(a, X)",
        );
        assert!(c.holds(), "{c}");
        assert_eq!(c.rows.len(), 1);
        assert_eq!(c.rows[0].alexander_calls, 4);
        assert_eq!(c.rows[0].alexander_answers, 6);
    }

    #[test]
    fn same_generation_on_tree() {
        let (edb, seed) = workload::sg_tree(4);
        let program = workload::same_generation();
        let q = Atom {
            pred: alexander_ir::Symbol::intern("sg"),
            terms: vec![
                alexander_ir::Term::Const(seed),
                alexander_ir::Term::var("Y"),
            ],
        };
        let c = check_power_correspondence(&program, &edb, &q).unwrap();
        assert!(c.holds(), "{c}");
        assert!(c.rows[0].alexander_calls > 1);
    }

    #[test]
    fn grid_path_correspondence() {
        let edb = workload::grid("e", 4);
        let program = workload::transitive_closure();
        let q = parse_atom("tc(n0, X)").unwrap();
        let c = check_power_correspondence(&program, &edb, &q).unwrap();
        assert!(c.holds(), "{c}");
        // Every cell is reachable from the corner: 15 answers for the seed.
        let row = &c.rows[0];
        assert_eq!(row.oldt_calls, 16); // one call per reachable cell
    }

    #[test]
    fn all_free_query_correspondence() {
        let c = check(
            "
            par(a, b). par(b, c).
            anc(X, Y) :- par(X, Y).
            anc(X, Y) :- par(X, Z), anc(Z, Y).
            ",
            "anc(X, Y)",
        );
        assert!(c.holds(), "{c}");
        // ff call plus the bf calls its sideways bindings spawn.
        assert!(c.rows.len() >= 2, "{c}");
    }
}
