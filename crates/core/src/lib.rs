//! # alexander-core
//!
//! The public facade of the *Alexander templates* reproduction: load a
//! Datalog program and an extensional database into an [`Engine`], then
//! answer queries under any [`Strategy`] — plain bottom-up (naive /
//! semi-naive / stratified / conditional fixpoint), the query-directed
//! rewritings (Generalized Magic Sets, Supplementary Magic Sets, Alexander
//! templates), or top-down OLDT resolution. Every result carries
//! machine-independent instrumentation ([`Report`]) so strategies can be
//! compared the way the paper compares them: in facts materialised and
//! inference steps, not just wall-clock time.
//!
//! The paper's headline claim — bottom-up evaluation of the
//! Alexander-transformed program does exactly the work of OLDT resolution —
//! is checkable on any program/query with
//! [`check_power_correspondence`].
//!
//! ```
//! use alexander_core::{Engine, Strategy};
//! use alexander_parser::parse_atom;
//!
//! let engine = Engine::from_source("
//!     par(adam, seth). par(seth, enos).
//!     anc(X, Y) :- par(X, Y).
//!     anc(X, Y) :- par(X, Z), anc(Z, Y).
//! ").unwrap();
//! let query = parse_atom("anc(adam, X)").unwrap();
//! let result = engine.query(&query, Strategy::Alexander).unwrap();
//! assert_eq!(result.answers.len(), 2);
//! assert_eq!(result.report.calls, Some(3)); // adam, seth, enos
//! ```

pub mod cli;
pub mod engine;
pub mod power;
pub mod strategy;

pub use engine::{answer_predicate, Engine, EngineError};
pub use power::{check_power_correspondence, PowerCorrespondence, PowerError, PowerRow};
pub use strategy::{QueryResult, Report, Strategy};

// Re-export the component crates so downstream users need one dependency.
pub use alexander_eval as eval;
pub use alexander_ir as ir;
pub use alexander_parser as parser;
pub use alexander_storage as storage;
pub use alexander_topdown as topdown;
pub use alexander_transform as transform;
pub use alexander_workload as workload;
