//! The `alexander` command-line interface, as a testable library function.
//!
//! ```text
//! alexander program.dl                        # run the file's ?- queries
//! alexander program.dl -q 'anc(adam, X)'      # ad-hoc query
//! alexander program.dl -s oldt --stats        # choose strategy, show counters
//! alexander program.dl -q 'anc(a, d)' --proof # print a constructive proof
//! alexander program.dl --analyze              # stratification ladder
//! ```

use crate::{Engine, Strategy};
use alexander_eval::{eval_with_provenance, Budget, ExecMode};
use alexander_ir::analysis::{loosely_stratified, stratify};
use alexander_ir::{Atom, Program};
use alexander_parser::{parse, parse_atom};
use alexander_storage::Database;
// invariant: every `writeln!(...).unwrap()` below targets a `String` through
// `fmt::Write`, which cannot fail — there is no I/O in this module; the
// binary decides where the returned text goes.
use std::fmt::Write as _;

/// Parsed command-line options.
#[derive(Clone, Debug, Default)]
pub struct CliOptions {
    pub source: String,
    pub queries: Vec<String>,
    pub strategy: Option<String>,
    pub stats: bool,
    pub proof: bool,
    pub analyze: bool,
    /// `pred/arity=path.csv` specs to bulk-load into the EDB.
    pub loads: Vec<String>,
    /// Worker threads for bottom-up fixpoint rounds (`None` = sequential).
    pub threads: Option<usize>,
    /// Rule executor for bottom-up fixpoints: `blocked` (default) or
    /// `tuple` (the per-tuple oracle).
    pub exec: Option<String>,
    /// Wall-clock budget per query, in milliseconds.
    pub timeout_ms: Option<u64>,
    /// Derived-fact budget per query.
    pub max_facts: Option<u64>,
    /// Fixpoint-round / restart budget per query.
    pub max_rounds: Option<u64>,
    /// Snapshot file: written after loading (default) or read as the EDB
    /// when `--recover` is set.
    pub snapshot: Option<String>,
    /// WAL file replayed on top of the snapshot under `--recover`.
    pub wal: Option<String>,
    /// Rebuild the EDB from the `--snapshot`/`--wal` pair instead of
    /// starting empty.
    pub recover: bool,
    /// Run as a long-lived query server (the `serve` subcommand). The
    /// serving loop itself lives in the `alexander-server` crate; this
    /// module only parses and validates the flags.
    pub serve: bool,
    /// TCP listen address (`host:port`) for serve mode.
    pub listen: Option<String>,
    /// Unix-domain socket path for serve mode.
    pub unix: Option<String>,
    /// Global cap on concurrently executing queries in serve mode.
    pub max_concurrent: Option<usize>,
    /// Per-tenant cap on concurrently executing queries in serve mode.
    pub tenant_cap: Option<usize>,
    /// Admission wait-queue bound in serve mode; arrivals beyond it are
    /// shed with `ERR BUSY retry-after-ms=<hint>` (0 = shed as soon as the
    /// caps are reached).
    pub max_queue: Option<usize>,
    /// Per-session idle budget (ms) in serve mode: silent connections are
    /// closed after this long.
    pub idle_timeout_ms: Option<u64>,
    /// Per-write socket deadline (ms) in serve mode: clients that stop
    /// draining replies are disconnected after this long.
    pub write_timeout_ms: Option<u64>,
}

/// Usage text.
pub const USAGE: &str = "\
usage: alexander <file.dl | -> [options]
       alexander serve <file.dl> (--listen HOST:PORT | --unix PATH) [options]
  -q, --query ATOM    ad-hoc query (repeatable; overrides ?- queries in the file)
  -s, --strategy S    naive | seminaive | stratified | conditional |
                      magic | supmagic | alexander | oldt   (default: alexander)
      --load P/N=FILE bulk-load relation P (arity N) from a CSV/TSV file
      --threads N     worker threads per bottom-up fixpoint round (default 1);
                      answers and counters are identical at any thread count
      --exec E        blocked | tuple — rule executor for bottom-up fixpoints
                      (default blocked); answers and counters are identical
      --timeout-ms N  wall-clock budget per query; on expiry the partial
                      answers derived so far are printed and flagged
      --max-facts N   stop after deriving N facts (partial answers, flagged)
      --max-rounds N  stop after N fixpoint rounds / restarts
      --snapshot FILE with --recover: read the EDB from this checksummed
                      snapshot. In serve mode: the durable store's snapshot
                      half (created if missing, recovered if present)
      --wal FILE      the write-ahead log paired with --snapshot: committed
                      batches are replayed on top of the snapshot
      --recover       rebuild the EDB from the --snapshot/--wal pair instead
                      of starting empty; torn WAL tails are reported and
                      skipped (query mode only — serve recovers by itself)
      --stats         print instrumentation counters per query
      --proof         print a constructive proof tree per answer
      --analyze       print stratification analysis and exit
  -h, --help          this text

serve mode only:
      --listen ADDR   accept the line protocol on this TCP address
      --unix PATH     accept the line protocol on this unix socket
      --max-concurrent N  global cap on concurrently executing queries
      --tenant-cap N  per-tenant cap on concurrently executing queries
      --max-queue N   admission wait-queue bound; arrivals beyond it get
                      `ERR BUSY retry-after-ms=<hint>` (0 = shed when the
                      caps are reached; default 16)
      --idle-timeout-ms N   close sessions silent for N ms (default 300000)
      --write-timeout-ms N  disconnect clients that cannot drain a reply
                      within N ms (default 30000)
";

/// Parses argv-style arguments (without the program name).
pub fn parse_args(args: &[String]) -> Result<(Option<String>, CliOptions), String> {
    let mut opts = CliOptions::default();
    let mut path: Option<String> = None;
    let mut i = 0;
    if args.first().map(String::as_str) == Some("serve") {
        opts.serve = true;
        i = 1;
    }
    while i < args.len() {
        let a = args[i].as_str();
        match a {
            "-h" | "--help" => return Err(USAGE.to_string()),
            "-q" | "--query" => {
                i += 1;
                let q = args.get(i).ok_or("missing argument to --query")?;
                opts.queries.push(q.clone());
            }
            "-s" | "--strategy" => {
                i += 1;
                let s = args.get(i).ok_or("missing argument to --strategy")?;
                opts.strategy = Some(s.clone());
            }
            "--load" => {
                i += 1;
                let l = args.get(i).ok_or("missing argument to --load")?;
                opts.loads.push(l.clone());
            }
            "--threads" => {
                i += 1;
                let t = args.get(i).ok_or("missing argument to --threads")?;
                let n: usize = t
                    .parse()
                    .map_err(|_| format!("--threads expects a positive integer, got `{t}`"))?;
                if n == 0 {
                    return Err("--threads expects a positive integer, got `0`".into());
                }
                opts.threads = Some(n);
            }
            "--exec" => {
                i += 1;
                let e = args.get(i).ok_or("missing argument to --exec")?;
                opts.exec = Some(e.clone());
            }
            "--timeout-ms" | "--max-facts" | "--max-rounds" => {
                let flag = a.to_string();
                i += 1;
                let v = args
                    .get(i)
                    .ok_or_else(|| format!("missing argument to {flag}"))?;
                let n: u64 = v
                    .parse()
                    .map_err(|_| format!("{flag} expects a positive integer, got `{v}`"))?;
                if n == 0 {
                    return Err(format!("{flag} expects a positive integer, got `0`"));
                }
                match flag.as_str() {
                    "--timeout-ms" => opts.timeout_ms = Some(n),
                    "--max-facts" => opts.max_facts = Some(n),
                    // invariant: the outer match arm only admits these three.
                    _ => opts.max_rounds = Some(n),
                }
            }
            "--snapshot" => {
                i += 1;
                let p = args.get(i).ok_or("missing argument to --snapshot")?;
                opts.snapshot = Some(p.clone());
            }
            "--wal" => {
                i += 1;
                let p = args.get(i).ok_or("missing argument to --wal")?;
                opts.wal = Some(p.clone());
            }
            "--recover" => opts.recover = true,
            "--listen" => {
                i += 1;
                let addr = args.get(i).ok_or("missing argument to --listen")?;
                opts.listen = Some(addr.clone());
            }
            "--unix" => {
                i += 1;
                let p = args.get(i).ok_or("missing argument to --unix")?;
                opts.unix = Some(p.clone());
            }
            "--max-concurrent" | "--tenant-cap" => {
                let flag = a.to_string();
                i += 1;
                let v = args
                    .get(i)
                    .ok_or_else(|| format!("missing argument to {flag}"))?;
                let n: usize = v
                    .parse()
                    .map_err(|_| format!("{flag} expects a positive integer, got `{v}`"))?;
                if n == 0 {
                    return Err(format!("{flag} expects a positive integer, got `0`"));
                }
                if flag == "--max-concurrent" {
                    opts.max_concurrent = Some(n);
                } else {
                    opts.tenant_cap = Some(n);
                }
            }
            "--max-queue" => {
                i += 1;
                let v = args.get(i).ok_or("missing argument to --max-queue")?;
                // 0 is meaningful here: shed the moment the caps are hit.
                let n: usize = v
                    .parse()
                    .map_err(|_| format!("--max-queue expects an integer, got `{v}`"))?;
                opts.max_queue = Some(n);
            }
            "--idle-timeout-ms" | "--write-timeout-ms" => {
                let flag = a.to_string();
                i += 1;
                let v = args
                    .get(i)
                    .ok_or_else(|| format!("missing argument to {flag}"))?;
                let n: u64 = v
                    .parse()
                    .map_err(|_| format!("{flag} expects a positive integer, got `{v}`"))?;
                if n == 0 {
                    return Err(format!("{flag} expects a positive integer, got `0`"));
                }
                if flag == "--idle-timeout-ms" {
                    opts.idle_timeout_ms = Some(n);
                } else {
                    opts.write_timeout_ms = Some(n);
                }
            }
            "--stats" => opts.stats = true,
            "--proof" => opts.proof = true,
            "--analyze" => opts.analyze = true,
            other if other.starts_with('-') && other != "-" => {
                return Err(format!("unknown option `{other}`\n{USAGE}"));
            }
            _ => {
                if path.is_some() {
                    return Err(format!("unexpected extra argument `{a}`\n{USAGE}"));
                }
                path = Some(a.to_string());
            }
        }
        i += 1;
    }
    validate(&opts)?;
    Ok((path, opts))
}

/// Rejects contradictory or silently-ignored flag combinations with a
/// usage error naming both flags involved. Called by [`parse_args`] and
/// again by [`run`] (whose callers may build [`CliOptions`] directly).
pub fn validate(opts: &CliOptions) -> Result<(), String> {
    if opts.serve {
        // Serve mode answers queries over the wire against a durable store;
        // one-shot flags would be silently ignored — reject them instead.
        if opts.exec.as_deref() == Some("tuple") {
            return Err(
                "--exec tuple is the per-tuple differential oracle, kept for \
                 cross-checking the blocked executor; it cannot serve concurrent \
                 traffic. Drop --exec (blocked is the default) with `serve`"
                    .into(),
            );
        }
        if opts.analyze {
            return Err(
                "--analyze is a one-shot analysis pass and does nothing under \
                 `serve`; run it without the serve subcommand"
                    .into(),
            );
        }
        if opts.proof {
            return Err(
                "--proof has no wire representation; `serve` cannot honour it (run a \
                 one-shot query with --proof instead)"
                    .into(),
            );
        }
        if !opts.queries.is_empty() {
            return Err(
                "--query is silently ignored by `serve` (queries arrive over the \
                 wire); drop it or run without the serve subcommand"
                    .into(),
            );
        }
        if opts.recover {
            return Err(
                "`serve` recovers by itself when the --snapshot/--wal pair exists; \
                 drop --recover"
                    .into(),
            );
        }
        if opts.snapshot.is_some() != opts.wal.is_some() {
            return Err("`serve` persists through a snapshot + WAL pair; pass both \
                 --snapshot FILE and --wal FILE (or neither for an in-memory \
                 server)"
                .into());
        }
        match (&opts.listen, &opts.unix) {
            (None, None) => {
                return Err(format!(
                    "`serve` needs a listener: --listen HOST:PORT or --unix PATH\n{USAGE}"
                ))
            }
            (Some(_), Some(_)) => {
                return Err("--listen and --unix are mutually exclusive; pick one".into())
            }
            _ => {}
        }
    } else {
        for (flag, set) in [
            ("--listen", opts.listen.is_some()),
            ("--unix", opts.unix.is_some()),
            ("--max-concurrent", opts.max_concurrent.is_some()),
            ("--tenant-cap", opts.tenant_cap.is_some()),
            ("--max-queue", opts.max_queue.is_some()),
            ("--idle-timeout-ms", opts.idle_timeout_ms.is_some()),
            ("--write-timeout-ms", opts.write_timeout_ms.is_some()),
        ] {
            if set {
                return Err(format!(
                    "{flag} only makes sense with the `serve` subcommand\n{USAGE}"
                ));
            }
        }
        if opts.wal.is_some() && !opts.recover {
            return Err(
                "--wal only makes sense with --recover (a query run never writes a log)".into(),
            );
        }
        if opts.recover {
            if opts.snapshot.is_none() {
                return Err("--recover needs --snapshot FILE to read the EDB from".into());
            }
            if opts.wal.is_none() {
                return Err(
                    "--recover without --wal would silently drop every batch committed \
                     after the snapshot; pass the paired --wal FILE (empty is fine)"
                        .into(),
                );
            }
        } else if opts.snapshot.is_some() {
            return Err(
                "--snapshot without --recover would overwrite the snapshot during a \
                 read-only query run; snapshots are written by `alexander serve` \
                 (pass --recover to read one instead)"
                    .into(),
            );
        }
    }
    Ok(())
}

fn strategy_by_name(name: &str) -> Result<Strategy, String> {
    Strategy::ALL
        .into_iter()
        .find(|s| s.name() == name)
        .ok_or_else(|| {
            let names: Vec<&str> = Strategy::ALL.iter().map(|s| s.name()).collect();
            format!("unknown strategy `{name}`; one of: {}", names.join(", "))
        })
}

/// Runs the CLI on already-loaded source text; returns the printable output.
pub fn run(source: &str, opts: &CliOptions) -> Result<String, String> {
    validate(opts)?;
    if opts.serve {
        return Err(
            "serve mode is a long-lived process; the `alexander` binary handles \
             it (cli::run only answers one-shot queries)"
                .into(),
        );
    }
    let parsed = parse(source).map_err(|e| e.to_string())?;
    let mut out = String::new();

    if opts.analyze {
        analyze(&parsed.program, &mut out);
        return Ok(out);
    }

    let strategy = strategy_by_name(opts.strategy.as_deref().unwrap_or("alexander"))?;
    let file_queries = parsed.queries.clone();

    // Bulk-load external relations before building the engine.
    let mut edb = Database::new();
    for spec in &opts.loads {
        let (pred_part, path) = spec
            .split_once('=')
            .ok_or_else(|| format!("--load expects pred/arity=path, got `{spec}`"))?;
        let (name, arity) = pred_part
            .split_once('/')
            .ok_or_else(|| format!("--load expects pred/arity=path, got `{spec}`"))?;
        let arity: usize = arity
            .parse()
            .map_err(|_| format!("bad arity in --load `{spec}`"))?;
        let pred = alexander_ir::Predicate::new(name, arity);
        let n = alexander_storage::load_file(&mut edb, pred, std::path::Path::new(path))
            .map_err(|e| e.to_string())?;
        writeln!(out, "loaded {n} tuples into {pred} from {path}").unwrap();
    }

    // Durability flags (validated above: `--recover` always arrives with
    // the full --snapshot/--wal pair).
    if opts.recover {
        let snap_path = opts
            .snapshot
            .as_deref()
            .ok_or("--recover needs --snapshot FILE to read the EDB from")?;
        let recovered = alexander_durable::read_snapshot(std::path::Path::new(snap_path))
            .map_err(|e| e.to_string())?;
        writeln!(
            out,
            "recovered {} facts from snapshot {snap_path}",
            recovered.total_tuples()
        )
        .unwrap();
        edb.merge(&recovered);
        if let Some(wal_path) = opts.wal.as_deref() {
            let contents = alexander_durable::read_wal(std::path::Path::new(wal_path))
                .map_err(|e| e.to_string())?;
            let records: usize = contents.batches.iter().map(|b| b.records.len()).sum();
            alexander_durable::apply_to_database(&contents.batches, &mut edb);
            writeln!(
                out,
                "replayed {} committed batches ({records} records) from wal {wal_path}",
                contents.batches.len()
            )
            .unwrap();
            if contents.torn {
                // Read-only run: report the torn tail, leave the file alone.
                writeln!(
                    out,
                    "!! wal has a torn tail after byte {} (crash mid-append); ignored",
                    contents.valid_len
                )
                .unwrap();
            }
        }
    }

    let mut engine = Engine::new(parsed.program, edb).map_err(|e| e.to_string())?;

    if let Some(threads) = opts.threads {
        engine = engine.with_threads(threads);
    }
    if let Some(exec) = &opts.exec {
        let mode = match exec.as_str() {
            "blocked" => ExecMode::Blocked,
            "tuple" => ExecMode::Tuple,
            other => {
                return Err(format!(
                    "unknown executor `{other}`; one of: blocked, tuple"
                ))
            }
        };
        engine = engine.with_exec(mode);
    }
    let mut budget = Budget::default();
    if let Some(ms) = opts.timeout_ms {
        budget = budget.with_timeout_ms(ms);
    }
    if let Some(n) = opts.max_facts {
        budget = budget.with_max_facts(n);
    }
    if let Some(n) = opts.max_rounds {
        budget = budget.with_max_rounds(n);
    }
    if !budget.is_unlimited() {
        engine = engine.with_budget(budget);
    }

    let queries: Vec<Atom> = if opts.queries.is_empty() {
        file_queries
    } else {
        opts.queries
            .iter()
            .map(|q| parse_atom(q).map_err(|e| e.to_string()))
            .collect::<Result<_, _>>()?
    };
    if queries.is_empty() {
        return Err("no queries: add `?- goal.` lines to the file or pass --query".into());
    }

    // Provenance is computed once if proofs were requested (stratified
    // programs only — report a friendly error otherwise).
    let provenance = if opts.proof {
        let (_, prov) = eval_with_provenance(engine.program(), engine.edb())
            .map_err(|e| format!("--proof needs a stratified program: {e}"))?;
        Some(prov)
    } else {
        None
    };

    for query in &queries {
        writeln!(out, "?- {query}.  [{}]", strategy.name()).unwrap();
        match engine.query(query, strategy) {
            Ok(result) => {
                if result.answers.is_empty() {
                    writeln!(out, "  no").unwrap();
                }
                for a in &result.answers {
                    writeln!(out, "  {a}").unwrap();
                    if let Some(prov) = &provenance {
                        match prov.proof(a, engine.edb()) {
                            Some(tree) => {
                                for line in tree.to_string().lines() {
                                    writeln!(out, "    | {line}").unwrap();
                                }
                            }
                            None => writeln!(out, "    | (no recorded proof)").unwrap(),
                        }
                    }
                }
                if !result.report.completion.is_complete() {
                    writeln!(
                        out,
                        "  !! partial result: {} — answers above are sound but incomplete",
                        result.report.completion
                    )
                    .unwrap();
                }
                if opts.stats {
                    writeln!(out, "  -- {}", result.report).unwrap();
                }
            }
            Err(e) => writeln!(out, "  error: {e}").unwrap(),
        }
    }
    Ok(out)
}

fn analyze(program: &Program, out: &mut String) {
    writeln!(out, "rules: {}", program.rules.len()).unwrap();
    writeln!(out, "inline facts: {}", program.facts.len()).unwrap();
    let mut idb: Vec<String> = program
        .idb_predicates()
        .into_iter()
        .map(|p| p.to_string())
        .collect();
    idb.sort();
    writeln!(out, "intensional: {}", idb.join(", ")).unwrap();
    let mut edb: Vec<String> = program
        .edb_predicates()
        .into_iter()
        .map(|p| p.to_string())
        .collect();
    edb.sort();
    writeln!(out, "extensional: {}", edb.join(", ")).unwrap();
    match stratify(program) {
        Ok(s) => writeln!(out, "stratified: yes ({} strata)", s.len()).unwrap(),
        Err(e) => writeln!(out, "stratified: no — {e}").unwrap(),
    }
    match loosely_stratified(program) {
        Ok(()) => writeln!(out, "loosely stratified: yes").unwrap(),
        Err(w) => writeln!(out, "loosely stratified: no — {w}").unwrap(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = "
        par(adam, seth). par(seth, enos).
        anc(X, Y) :- par(X, Y).
        anc(X, Y) :- par(X, Z), anc(Z, Y).
        ?- anc(adam, X).
    ";

    #[test]
    fn runs_file_queries_with_default_strategy() {
        let out = run(SRC, &CliOptions::default()).unwrap();
        assert!(out.contains("?- anc(adam, X).  [alexander]"), "{out}");
        assert!(out.contains("anc(adam, seth)"), "{out}");
        assert!(out.contains("anc(adam, enos)"), "{out}");
    }

    #[test]
    fn adhoc_query_overrides_file_queries() {
        let opts = CliOptions {
            queries: vec!["anc(seth, X)".into()],
            strategy: Some("oldt".into()),
            stats: true,
            ..CliOptions::default()
        };
        let out = run(SRC, &opts).unwrap();
        assert!(out.contains("[oldt]"), "{out}");
        assert!(out.contains("anc(seth, enos)"), "{out}");
        assert!(!out.contains("anc(adam"), "{out}");
        assert!(out.contains("--"), "stats line expected: {out}");
    }

    #[test]
    fn proof_mode_prints_trees() {
        let opts = CliOptions {
            queries: vec!["anc(adam, enos)".into()],
            proof: true,
            ..CliOptions::default()
        };
        let out = run(SRC, &opts).unwrap();
        assert!(out.contains("[rule 1]"), "{out}");
        assert!(out.contains("[fact]"), "{out}");
    }

    #[test]
    fn analyze_mode() {
        let opts = CliOptions {
            analyze: true,
            ..CliOptions::default()
        };
        let out = run(SRC, &opts).unwrap();
        assert!(out.contains("stratified: yes"), "{out}");
        assert!(out.contains("intensional: anc/2"), "{out}");
        assert!(out.contains("extensional: par/2"), "{out}");
    }

    #[test]
    fn failing_query_prints_no() {
        let opts = CliOptions {
            queries: vec!["anc(enos, adam)".into()],
            ..CliOptions::default()
        };
        let out = run(SRC, &opts).unwrap();
        assert!(out.contains("  no\n"), "{out}");
    }

    #[test]
    fn bad_strategy_is_reported() {
        let opts = CliOptions {
            strategy: Some("quantum".into()),
            ..CliOptions::default()
        };
        let err = run(SRC, &opts).unwrap_err();
        assert!(err.contains("unknown strategy"), "{err}");
    }

    #[test]
    fn no_queries_is_an_error() {
        let err = run("p(a).", &CliOptions::default()).unwrap_err();
        assert!(err.contains("no queries"), "{err}");
    }

    #[test]
    fn bulk_loading_via_load_flag() {
        let dir = std::env::temp_dir();
        let path = dir.join("alexander_cli_load.csv");
        std::fs::write(
            &path,
            "adam,seth
seth,enos
",
        )
        .unwrap();
        let opts = CliOptions {
            queries: vec!["anc(adam, X)".into()],
            loads: vec![format!("par/2={}", path.display())],
            ..CliOptions::default()
        };
        let out = run(
            "anc(X, Y) :- par(X, Y). anc(X, Y) :- par(X, Z), anc(Z, Y).",
            &opts,
        )
        .unwrap();
        std::fs::remove_file(&path).ok();
        assert!(out.contains("loaded 2 tuples into par/2"), "{out}");
        assert!(out.contains("anc(adam, enos)"), "{out}");
    }

    #[test]
    fn bad_load_specs_are_reported() {
        for spec in ["nopath", "p=file.csv", "p/x=file.csv"] {
            let opts = CliOptions {
                queries: vec!["p(X)".into()],
                loads: vec![spec.into()],
                ..CliOptions::default()
            };
            assert!(run("p(X) :- q(X).", &opts).is_err(), "{spec}");
        }
    }

    #[test]
    fn parse_args_roundtrip() {
        let args: Vec<String> = [
            "prog.dl",
            "-q",
            "p(X)",
            "-s",
            "oldt",
            "--stats",
            "--threads",
            "4",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let (path, opts) = parse_args(&args).unwrap();
        assert_eq!(path.as_deref(), Some("prog.dl"));
        assert_eq!(opts.queries, ["p(X)"]);
        assert_eq!(opts.strategy.as_deref(), Some("oldt"));
        assert!(opts.stats);
        assert_eq!(opts.threads, Some(4));
        assert!(parse_args(&["--bogus".to_string()]).is_err());
        assert!(parse_args(&["--help".to_string()]).is_err());
    }

    #[test]
    fn budget_flags_are_validated_and_parsed() {
        for flag in ["--timeout-ms", "--max-facts", "--max-rounds"] {
            for bad in [
                vec!["prog.dl".to_string(), flag.to_string()],
                vec!["prog.dl".to_string(), flag.to_string(), "soon".to_string()],
                vec!["prog.dl".to_string(), flag.to_string(), "0".to_string()],
            ] {
                assert!(parse_args(&bad).is_err(), "{bad:?}");
            }
        }
        let args: Vec<String> = [
            "prog.dl",
            "--timeout-ms",
            "200",
            "--max-facts",
            "1000",
            "--max-rounds",
            "7",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let (_, opts) = parse_args(&args).unwrap();
        assert_eq!(opts.timeout_ms, Some(200));
        assert_eq!(opts.max_facts, Some(1000));
        assert_eq!(opts.max_rounds, Some(7));
    }

    #[test]
    fn fact_budget_prints_flagged_partial_answers() {
        let opts = CliOptions {
            queries: vec!["anc(X, Y)".into()],
            strategy: Some("seminaive".into()),
            max_facts: Some(1),
            stats: true,
            ..CliOptions::default()
        };
        let out = run(SRC, &opts).unwrap();
        assert!(out.contains("partial result"), "{out}");
        assert!(out.contains("budget exhausted (facts)"), "{out}");
        assert!(out.contains("PARTIAL"), "stats line flags it too: {out}");
    }

    #[test]
    fn ample_budget_stays_silent() {
        let opts = CliOptions {
            queries: vec!["anc(adam, X)".into()],
            strategy: Some("seminaive".into()),
            max_facts: Some(10_000),
            timeout_ms: Some(60_000),
            ..CliOptions::default()
        };
        let out = run(SRC, &opts).unwrap();
        assert!(!out.contains("partial result"), "{out}");
        assert!(out.contains("anc(adam, enos)"), "{out}");
    }

    #[test]
    fn exec_flag_selects_the_executor() {
        let args: Vec<String> = ["prog.dl", "--exec", "tuple"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let (_, opts) = parse_args(&args).unwrap();
        assert_eq!(opts.exec.as_deref(), Some("tuple"));

        // The oracle is flagged in the stats line; the default is silent.
        let base = CliOptions {
            queries: vec!["anc(adam, X)".into()],
            strategy: Some("seminaive".into()),
            stats: true,
            ..CliOptions::default()
        };
        let tuple = CliOptions {
            exec: Some("tuple".into()),
            ..base.clone()
        };
        let out = run(SRC, &tuple).unwrap();
        assert!(out.contains("exec=tuple"), "{out}");
        assert!(out.contains("anc(adam, enos)"), "{out}");
        let out = run(SRC, &base).unwrap();
        assert!(!out.contains("exec="), "{out}");

        let bad = CliOptions {
            exec: Some("quantum".into()),
            ..base
        };
        let err = run(SRC, &bad).unwrap_err();
        assert!(err.contains("unknown executor"), "{err}");
    }

    #[test]
    fn recover_reads_a_snapshot_wal_pair_back() {
        let dir = std::env::temp_dir();
        let pid = std::process::id();
        let snap = dir.join(format!("alexander_cli_snap_{pid}.snap"));
        let wal = dir.join(format!("alexander_cli_snap_{pid}.wal"));
        let mut db = Database::new();
        let par = alexander_ir::Predicate::new("par", 2);
        for (a, b) in [("adam", "seth"), ("seth", "enos")] {
            db.insert(
                par,
                alexander_storage::Tuple::new(vec![
                    alexander_ir::Const::sym(a),
                    alexander_ir::Const::sym(b),
                ]),
            );
        }
        alexander_durable::write_snapshot(&db, &snap).unwrap();
        drop(alexander_durable::Wal::create(&wal).unwrap()); // empty log

        // Rules but NO facts — they come from the snapshot; the empty WAL
        // adds nothing but is required so committed batches can't be lost.
        let rules_only = "anc(X, Y) :- par(X, Y). anc(X, Y) :- par(X, Z), anc(Z, Y).";
        let opts = CliOptions {
            queries: vec!["anc(adam, X)".into()],
            snapshot: Some(snap.display().to_string()),
            wal: Some(wal.display().to_string()),
            recover: true,
            ..CliOptions::default()
        };
        let out = run(rules_only, &opts).unwrap();
        std::fs::remove_file(&snap).ok();
        std::fs::remove_file(&wal).ok();
        assert!(out.contains("recovered 2 facts"), "{out}");
        assert!(out.contains("replayed 0 committed batches"), "{out}");
        assert!(out.contains("anc(adam, enos)"), "{out}");
    }

    #[test]
    fn recover_replays_committed_wal_batches() {
        let dir = std::env::temp_dir();
        let pid = std::process::id();
        let snap = dir.join(format!("alexander_cli_rec_{pid}.snap"));
        let wal = dir.join(format!("alexander_cli_rec_{pid}.wal"));
        // Snapshot: par(adam, seth) only. WAL: insert par(seth, enos),
        // then delete par(adam, seth) — recovery must honour both.
        let mut db = Database::new();
        let par = alexander_ir::Predicate::new("par", 2);
        db.insert(
            par,
            alexander_storage::Tuple::new(vec![
                alexander_ir::Const::sym("adam"),
                alexander_ir::Const::sym("seth"),
            ]),
        );
        alexander_durable::write_snapshot(&db, &snap).unwrap();
        let mut w = alexander_durable::Wal::create(&wal).unwrap();
        let rec = |op, a: &str, b: &str| alexander_durable::WalRecord {
            op,
            pred: par,
            values: vec![alexander_ir::Const::sym(a), alexander_ir::Const::sym(b)],
        };
        w.append_batch(&[rec(alexander_durable::Op::Insert, "seth", "enos")])
            .unwrap();
        w.append_batch(&[rec(alexander_durable::Op::Delete, "adam", "seth")])
            .unwrap();
        drop(w);

        let opts = CliOptions {
            queries: vec!["anc(X, Y)".into()],
            snapshot: Some(snap.display().to_string()),
            wal: Some(wal.display().to_string()),
            recover: true,
            ..CliOptions::default()
        };
        let out = run(
            "anc(X, Y) :- par(X, Y). anc(X, Y) :- par(X, Z), anc(Z, Y).",
            &opts,
        )
        .unwrap();
        std::fs::remove_file(&snap).ok();
        std::fs::remove_file(&wal).ok();
        assert!(
            out.contains("replayed 2 committed batches (2 records)"),
            "{out}"
        );
        assert!(out.contains("anc(seth, enos)"), "{out}");
        assert!(
            !out.contains("anc(adam"),
            "deleted base fact resurfaced: {out}"
        );
    }

    #[test]
    fn torn_wal_tails_are_reported_and_skipped() {
        let dir = std::env::temp_dir();
        let pid = std::process::id();
        let snap = dir.join(format!("alexander_cli_torn_{pid}.snap"));
        let wal = dir.join(format!("alexander_cli_torn_{pid}.wal"));
        alexander_durable::write_snapshot(&Database::new(), &snap).unwrap();
        let par = alexander_ir::Predicate::new("par", 2);
        let mut w = alexander_durable::Wal::create(&wal).unwrap();
        w.append_batch(&[alexander_durable::WalRecord {
            op: alexander_durable::Op::Insert,
            pred: par,
            values: vec![
                alexander_ir::Const::sym("adam"),
                alexander_ir::Const::sym("seth"),
            ],
        }])
        .unwrap();
        drop(w);
        // Simulate a crash mid-append: chop the last 3 bytes of a second,
        // hand-appended frame header.
        let mut bytes = std::fs::read(&wal).unwrap();
        bytes.extend_from_slice(&[9, 0, 0]);
        std::fs::write(&wal, &bytes).unwrap();

        let opts = CliOptions {
            queries: vec!["anc(X, Y)".into()],
            snapshot: Some(snap.display().to_string()),
            wal: Some(wal.display().to_string()),
            recover: true,
            ..CliOptions::default()
        };
        let out = run("anc(X, Y) :- par(X, Y).", &opts).unwrap();
        std::fs::remove_file(&snap).ok();
        std::fs::remove_file(&wal).ok();
        assert!(out.contains("torn tail"), "{out}");
        assert!(
            out.contains("anc(adam, seth)"),
            "committed batch lost: {out}"
        );
    }

    #[test]
    fn durability_flag_combinations_are_validated() {
        let base = CliOptions {
            queries: vec!["anc(adam, X)".into()],
            ..CliOptions::default()
        };
        let err = run(
            SRC,
            &CliOptions {
                wal: Some("x.wal".into()),
                ..base.clone()
            },
        )
        .unwrap_err();
        assert!(
            err.contains("--wal only makes sense with --recover"),
            "{err}"
        );
        let err = run(
            SRC,
            &CliOptions {
                recover: true,
                ..base.clone()
            },
        )
        .unwrap_err();
        assert!(err.contains("--recover needs --snapshot"), "{err}");
        // Recovering a snapshot without its paired log would silently drop
        // committed batches — rejected.
        let err = run(
            SRC,
            &CliOptions {
                recover: true,
                snapshot: Some("x.snap".into()),
                ..base.clone()
            },
        )
        .unwrap_err();
        assert!(err.contains("--recover without --wal"), "{err}");
        // A bare --snapshot on the read-only query path would overwrite the
        // file as a side effect — rejected.
        let err = run(
            SRC,
            &CliOptions {
                snapshot: Some("x.snap".into()),
                ..base.clone()
            },
        )
        .unwrap_err();
        assert!(err.contains("--snapshot without --recover"), "{err}");
        // A missing snapshot file is a structured error, not a panic.
        let err = run(
            SRC,
            &CliOptions {
                recover: true,
                snapshot: Some("/nonexistent/alexander.snap".into()),
                wal: Some("/nonexistent/alexander.wal".into()),
                ..base
            },
        )
        .unwrap_err();
        assert!(err.contains("io error"), "{err}");
    }

    #[test]
    fn serve_args_parse_and_are_validated() {
        let parse = |args: &[&str]| {
            let v: Vec<String> = args.iter().map(|s| s.to_string()).collect();
            parse_args(&v)
        };
        let (path, opts) = parse(&[
            "serve",
            "prog.dl",
            "--listen",
            "127.0.0.1:7171",
            "--max-concurrent",
            "8",
            "--tenant-cap",
            "2",
        ])
        .unwrap();
        assert_eq!(path.as_deref(), Some("prog.dl"));
        assert!(opts.serve);
        assert_eq!(opts.listen.as_deref(), Some("127.0.0.1:7171"));
        assert_eq!(opts.max_concurrent, Some(8));
        assert_eq!(opts.tenant_cap, Some(2));

        // `serve` needs exactly one listener.
        let err = parse(&["serve", "prog.dl"]).unwrap_err();
        assert!(err.contains("needs a listener"), "{err}");
        let err = parse(&[
            "serve",
            "prog.dl",
            "--listen",
            "x:1",
            "--unix",
            "/tmp/s.sock",
        ])
        .unwrap_err();
        assert!(err.contains("mutually exclusive"), "{err}");

        // The per-tuple oracle cannot serve concurrent traffic.
        let err = parse(&["serve", "prog.dl", "--listen", "x:1", "--exec", "tuple"]).unwrap_err();
        assert!(err.contains("--exec tuple"), "{err}");

        // One-shot flags are rejected rather than silently ignored.
        for extra in [
            vec!["--analyze"],
            vec!["--proof"],
            vec!["-q", "p(X)"],
            vec!["--recover"],
            vec!["--snapshot", "x.snap"], // snapshot without its wal half
        ] {
            let mut args = vec!["serve", "prog.dl", "--listen", "x:1"];
            args.extend(extra.iter());
            assert!(parse(&args).is_err(), "{extra:?}");
        }
        // The full pair is fine.
        let (_, opts) = parse(&[
            "serve",
            "prog.dl",
            "--listen",
            "x:1",
            "--snapshot",
            "x.snap",
            "--wal",
            "x.wal",
        ])
        .unwrap();
        assert_eq!(opts.snapshot.as_deref(), Some("x.snap"));
        assert_eq!(opts.wal.as_deref(), Some("x.wal"));

        // Serve-only flags outside serve mode are located errors.
        for args in [
            vec!["prog.dl", "--listen", "x:1"],
            vec!["prog.dl", "--unix", "/tmp/s.sock"],
            vec!["prog.dl", "--max-concurrent", "4"],
            vec!["prog.dl", "--tenant-cap", "2"],
            vec!["prog.dl", "--max-queue", "8"],
            vec!["prog.dl", "--idle-timeout-ms", "1000"],
            vec!["prog.dl", "--write-timeout-ms", "1000"],
        ] {
            let err = parse(&args).unwrap_err();
            assert!(err.contains("serve` subcommand"), "{args:?}: {err}");
        }
        // Zero caps are rejected like every other count flag.
        assert!(parse(&[
            "serve",
            "prog.dl",
            "--listen",
            "x:1",
            "--max-concurrent",
            "0"
        ])
        .is_err());

        // Session-robustness knobs parse; --max-queue 0 is meaningful
        // (shed the moment the caps are hit), zero deadlines are not.
        let (_, opts) = parse(&[
            "serve",
            "prog.dl",
            "--listen",
            "x:1",
            "--max-queue",
            "0",
            "--idle-timeout-ms",
            "2000",
            "--write-timeout-ms",
            "500",
        ])
        .unwrap();
        assert_eq!(opts.max_queue, Some(0));
        assert_eq!(opts.idle_timeout_ms, Some(2000));
        assert_eq!(opts.write_timeout_ms, Some(500));
        for bad in [
            vec!["serve", "prog.dl", "--listen", "x:1", "--max-queue", "many"],
            vec![
                "serve",
                "prog.dl",
                "--listen",
                "x:1",
                "--idle-timeout-ms",
                "0",
            ],
            vec![
                "serve",
                "prog.dl",
                "--listen",
                "x:1",
                "--write-timeout-ms",
                "0",
            ],
        ] {
            assert!(parse(&bad).is_err(), "{bad:?}");
        }

        // run() refuses to host serve mode.
        let err = run(
            SRC,
            &CliOptions {
                serve: true,
                listen: Some("127.0.0.1:0".into()),
                ..CliOptions::default()
            },
        )
        .unwrap_err();
        assert!(err.contains("serve mode"), "{err}");
    }

    #[test]
    fn durability_args_parse() {
        let args: Vec<String> = [
            "prog.dl",
            "--snapshot",
            "db.snap",
            "--wal",
            "db.wal",
            "--recover",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let (_, opts) = parse_args(&args).unwrap();
        assert_eq!(opts.snapshot.as_deref(), Some("db.snap"));
        assert_eq!(opts.wal.as_deref(), Some("db.wal"));
        assert!(opts.recover);
        for bad in [
            vec!["prog.dl".to_string(), "--snapshot".to_string()],
            vec!["prog.dl".to_string(), "--wal".to_string()],
        ] {
            assert!(parse_args(&bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn threads_flag_is_validated_and_applied() {
        for bad in [
            vec!["prog.dl".to_string(), "--threads".to_string()],
            vec![
                "prog.dl".to_string(),
                "--threads".to_string(),
                "zero".to_string(),
            ],
            vec![
                "prog.dl".to_string(),
                "--threads".to_string(),
                "0".to_string(),
            ],
        ] {
            assert!(parse_args(&bad).is_err(), "{bad:?}");
        }
        let opts = CliOptions {
            queries: vec!["anc(adam, X)".into()],
            strategy: Some("seminaive".into()),
            stats: true,
            threads: Some(4),
            ..CliOptions::default()
        };
        let out = run(SRC, &opts).unwrap();
        assert!(out.contains("anc(adam, enos)"), "{out}");
        assert!(out.contains("threads=4"), "{out}");
    }
}
