//! The engine: one program + EDB, queried under any [`Strategy`].

use crate::strategy::{QueryResult, Report, Strategy};
use alexander_eval::{
    eval_conditional_opts, eval_naive_opts, eval_seminaive_opts, eval_stratified_opts, Budget,
    CancelHandle, Completion, Consumption, EvalError, EvalOptions, ExecMode,
};
use alexander_ir::{match_atom, Atom, Polarity, Predicate, Program, Subst};
use alexander_parser::{parse, ParseError};
use alexander_storage::Database;
use alexander_topdown::{
    oldt_query_opts, qsqr_query_opts, OldtError, OldtMetrics, OldtOptions, QsqrError, QsqrOptions,
};
use alexander_transform::{alexander, magic_sets, sup_magic_sets, Rewritten, SipOptions};
use std::fmt;

/// Everything that can go wrong constructing or querying an [`Engine`].
#[derive(Debug)]
pub enum EngineError {
    Parse(ParseError),
    Invalid(Vec<alexander_ir::ProgramError>),
    Eval(EvalError),
    Oldt(OldtError),
    Qsqr(QsqrError),
    Adorn(alexander_transform::AdornError),
    /// The conditional fixpoint left atoms matching the query undefined; the
    /// answer set would be ill-defined.
    UndefinedAnswers(Vec<Atom>),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Parse(e) => write!(f, "{e}"),
            EngineError::Invalid(errs) => {
                write!(f, "invalid program:")?;
                for e in errs {
                    write!(f, "\n  {e}")?;
                }
                Ok(())
            }
            EngineError::Eval(e) => write!(f, "{e}"),
            EngineError::Oldt(e) => write!(f, "{e}"),
            EngineError::Qsqr(e) => write!(f, "{e}"),
            EngineError::Adorn(e) => write!(f, "{e}"),
            EngineError::UndefinedAnswers(atoms) => {
                write!(f, "query answers are undefined (cyclic negation) for:")?;
                for a in atoms {
                    write!(f, " {a}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for EngineError {}

impl From<ParseError> for EngineError {
    fn from(e: ParseError) -> Self {
        EngineError::Parse(e)
    }
}
impl From<EvalError> for EngineError {
    fn from(e: EvalError) -> Self {
        EngineError::Eval(e)
    }
}
impl From<OldtError> for EngineError {
    fn from(e: OldtError) -> Self {
        EngineError::Oldt(e)
    }
}
impl From<QsqrError> for EngineError {
    fn from(e: QsqrError) -> Self {
        EngineError::Qsqr(e)
    }
}
impl From<alexander_transform::AdornError> for EngineError {
    fn from(e: alexander_transform::AdornError) -> Self {
        EngineError::Adorn(e)
    }
}

/// A loaded deductive database: rules plus extensional facts.
#[derive(Clone, Debug)]
pub struct Engine {
    program: Program,
    edb: Database,
    sip: SipOptions,
    opts: EvalOptions,
}

impl Engine {
    /// Builds an engine from a validated program and an extensional
    /// database. Inline program facts are merged into the EDB.
    pub fn new(program: Program, edb: Database) -> Result<Engine, EngineError> {
        program.validate().map_err(EngineError::Invalid)?;
        let mut edb = edb;
        for f in &program.facts {
            // invariant: `Program::validate` (just above) rejects non-ground
            // facts.
            edb.insert_atom(f).expect("validated facts are ground");
        }
        let program = Program {
            rules: program.rules,
            facts: Vec::new(),
        };
        Ok(Engine {
            program,
            edb,
            sip: SipOptions::default(),
            opts: EvalOptions::default(),
        })
    }

    /// Parses `src` (rules + facts) into an engine.
    pub fn from_source(src: &str) -> Result<Engine, EngineError> {
        let parsed = parse(src)?;
        Engine::new(parsed.program, Database::new())
    }

    /// Overrides the SIP options used by the rewriting strategies.
    pub fn with_sip(mut self, sip: SipOptions) -> Engine {
        self.sip = sip;
        self
    }

    /// Overrides the evaluator options used by the bottom-up strategies.
    pub fn with_eval_options(mut self, opts: EvalOptions) -> Engine {
        self.opts = opts;
        self
    }

    /// Sets the worker-thread count for the bottom-up fixpoint rounds
    /// (1 = sequential; answers and metrics are identical either way).
    pub fn with_threads(mut self, threads: usize) -> Engine {
        self.opts.threads = threads;
        self
    }

    /// Selects the rule executor for the bottom-up fixpoint: the blocked
    /// columnar executor (default) or the per-tuple join retained as a
    /// differential oracle. Answers and metrics are identical either way.
    pub fn with_exec(mut self, exec: ExecMode) -> Engine {
        self.opts.exec = exec;
        self
    }

    /// Sets the resource budget every query runs under (wall-clock
    /// deadline, derived-fact cap, round cap, firing/step cap). On
    /// exhaustion queries return *partial* answers flagged in
    /// [`Report::completion`] rather than an error.
    pub fn with_budget(mut self, budget: Budget) -> Engine {
        self.opts.budget = budget;
        self
    }

    /// A cancellation handle for this engine's queries. Cancelling it from
    /// any thread makes in-flight (and future) queries stop cooperatively
    /// and return partial results tagged `Cancelled`; call
    /// [`CancelHandle::reset`] to reuse the engine afterwards.
    pub fn cancel_handle(&mut self) -> CancelHandle {
        self.opts
            .cancel
            .get_or_insert_with(CancelHandle::default)
            .clone()
    }

    /// The evaluator options bottom-up strategies run with.
    pub fn eval_options(&self) -> EvalOptions {
        self.opts.clone()
    }

    /// The loaded rules.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The extensional database.
    pub fn edb(&self) -> &Database {
        &self.edb
    }

    /// Adds a fact to the EDB; returns whether it was new.
    pub fn insert_fact(&mut self, atom: &Atom) -> Result<bool, EngineError> {
        self.edb.insert_atom(atom).map_err(|e| {
            EngineError::Invalid(vec![alexander_ir::ProgramError::NonGroundFact {
                fact: e.0,
            }])
        })
    }

    /// Answers `query` under `strategy`. Answers are ground instances of the
    /// query over its original predicate, sorted and deduplicated.
    pub fn query(&self, query: &Atom, strategy: Strategy) -> Result<QueryResult, EngineError> {
        // Extensional queries are lookups under every strategy.
        if !self.program.is_idb(query.predicate()) {
            let answers = filter_matching(self.edb.atoms_of(query.predicate()), query);
            return Ok(QueryResult {
                answers,
                strategy,
                report: Report::default(),
            });
        }

        match strategy {
            Strategy::Naive => {
                let r = eval_naive_opts(&self.program, &self.edb, self.opts.clone())?;
                Ok(self.direct_result(query, strategy, r.db, r.metrics, r.completion))
            }
            Strategy::SemiNaive => {
                let r = eval_seminaive_opts(&self.program, &self.edb, self.opts.clone())?;
                Ok(self.direct_result(query, strategy, r.db, r.metrics, r.completion))
            }
            Strategy::Stratified => {
                let r = eval_stratified_opts(&self.program, &self.edb, self.opts.clone())?;
                Ok(self.direct_result(query, strategy, r.db, r.metrics, r.completion))
            }
            Strategy::ConditionalFixpoint => {
                let r = eval_conditional_opts(&self.program, &self.edb, self.opts.clone())?;
                let undefined_matching: Vec<Atom> = filter_matching(r.undefined.clone(), query);
                if !undefined_matching.is_empty() {
                    return Err(EngineError::UndefinedAnswers(undefined_matching));
                }
                let mut out = self.direct_result(query, strategy, r.db, r.metrics, r.completion);
                out.report.undefined = r.undefined;
                Ok(out)
            }
            Strategy::Magic => {
                let rw = magic_sets(&self.program, query, self.sip)?;
                self.rewritten_result(query, strategy, rw)
            }
            Strategy::SupplementaryMagic => {
                let rw = sup_magic_sets(&self.program, query, self.sip)?;
                self.rewritten_result(query, strategy, rw)
            }
            Strategy::Alexander => {
                let rw = alexander(&self.program, query, self.sip)?;
                self.rewritten_result(query, strategy, rw)
            }
            Strategy::Oldt => {
                let opts = OldtOptions::default().with_budget(self.opts.budget);
                let opts = match &self.opts.cancel {
                    Some(c) => opts.with_cancel(c.clone()),
                    None => opts,
                };
                let r = oldt_query_opts(&self.program, &self.edb, query, opts)?;
                let answers = normalise(r.answers);
                Ok(QueryResult {
                    answers,
                    strategy,
                    report: Report {
                        oldt: Some(r.metrics),
                        calls: Some(r.metrics.calls),
                        facts_materialised: r.metrics.answers,
                        rules_evaluated: self.program.rules.len(),
                        completion: r.completion,
                        consumed: topdown_consumption(&r.metrics, 0),
                        ..Report::default()
                    },
                })
            }
            Strategy::Qsqr => {
                let opts = QsqrOptions::default().with_budget(self.opts.budget);
                let opts = match &self.opts.cancel {
                    Some(c) => opts.with_cancel(c.clone()),
                    None => opts,
                };
                let r = qsqr_query_opts(&self.program, &self.edb, query, opts)?;
                let answers = normalise(r.answers);
                Ok(QueryResult {
                    answers,
                    strategy,
                    report: Report {
                        oldt: Some(r.metrics),
                        calls: Some(r.metrics.calls),
                        facts_materialised: r.metrics.answers,
                        rules_evaluated: self.program.rules.len(),
                        completion: r.completion,
                        consumed: topdown_consumption(&r.metrics, r.restarts),
                        ..Report::default()
                    },
                })
            }
        }
    }

    /// Result assembly for whole-program bottom-up strategies.
    fn direct_result(
        &self,
        query: &Atom,
        strategy: Strategy,
        db: Database,
        metrics: alexander_eval::EvalMetrics,
        completion: Completion,
    ) -> QueryResult {
        let answers = filter_matching(db.atoms_of(query.predicate()), query);
        QueryResult {
            answers,
            strategy,
            report: Report {
                eval: Some(metrics),
                facts_materialised: (db.total_tuples() - self.edb.total_tuples()) as u64,
                rules_evaluated: self.program.rules.len(),
                threads: self.opts.threads.max(1),
                exec: Some(self.opts.exec),
                completion,
                consumed: eval_consumption(&metrics),
                ..Report::default()
            },
        }
    }

    /// Result assembly for the rewriting strategies: evaluate the rewritten
    /// program (semi-naive when it is semipositive, conditional fixpoint
    /// otherwise — rewriting destroys stratification), then map answers back
    /// to the original predicate.
    fn rewritten_result(
        &self,
        query: &Atom,
        strategy: Strategy,
        rw: Rewritten,
    ) -> Result<QueryResult, EngineError> {
        let idb = rw.program.idb_predicates();
        let semipositive = rw.program.rules.iter().all(|r| {
            r.body
                .iter()
                .all(|l| l.polarity == Polarity::Positive || !idb.contains(&l.atom.predicate()))
        });
        let (db, metrics, undefined, completion) = if semipositive {
            let r = eval_seminaive_opts(&rw.program, &self.edb, self.opts.clone())?;
            (r.db, r.metrics, Vec::new(), r.completion)
        } else {
            let r = eval_conditional_opts(&rw.program, &self.edb, self.opts.clone())?;
            (r.db, r.metrics, r.undefined, r.completion)
        };

        let raw = alexander_transform::query_answers(&db, &rw.query);
        let undefined_matching = filter_matching_pattern(&undefined, &rw.query);
        if !undefined_matching.is_empty() {
            return Err(EngineError::UndefinedAnswers(undefined_matching));
        }
        // Map back: same terms, original predicate name.
        let answers = normalise(
            raw.into_iter()
                .map(|a| Atom {
                    pred: query.pred,
                    terms: a.terms,
                })
                .collect(),
        );
        let calls = db.len_of(rw.call_pred) as u64;
        Ok(QueryResult {
            answers,
            strategy,
            report: Report {
                eval: Some(metrics),
                facts_materialised: (db.total_tuples() - self.edb.total_tuples()) as u64,
                calls: Some(calls),
                undefined,
                rules_evaluated: rw.program.rules.len(),
                threads: self.opts.threads.max(1),
                exec: Some(self.opts.exec),
                completion,
                consumed: eval_consumption(&metrics),
                ..Report::default()
            },
        })
    }
}

fn eval_consumption(m: &alexander_eval::EvalMetrics) -> Consumption {
    Consumption {
        facts: m.new_facts,
        rounds: m.iterations,
        steps: m.firings,
    }
}

fn topdown_consumption(m: &OldtMetrics, restarts: u64) -> Consumption {
    Consumption {
        facts: m.answers,
        rounds: restarts,
        steps: m.resolution_steps,
    }
}

fn filter_matching(atoms: Vec<Atom>, pattern: &Atom) -> Vec<Atom> {
    normalise(
        atoms
            .into_iter()
            .filter(|a| {
                let mut s = Subst::new();
                match_atom(pattern, a, &mut s)
            })
            .collect(),
    )
}

fn filter_matching_pattern(atoms: &[Atom], pattern: &Atom) -> Vec<Atom> {
    atoms
        .iter()
        .filter(|a| {
            a.predicate() == pattern.predicate() && {
                let mut s = Subst::new();
                match_atom(pattern, a, &mut s)
            }
        })
        .cloned()
        .collect()
}

fn normalise(mut atoms: Vec<Atom>) -> Vec<Atom> {
    atoms.sort();
    atoms.dedup();
    atoms
}

/// Convenience: the predicates a query result's answers range over (mostly
/// for examples).
pub fn answer_predicate(result: &QueryResult) -> Option<Predicate> {
    result.answers.first().map(|a| a.predicate())
}

#[cfg(test)]
mod tests {
    use super::*;
    use alexander_parser::parse_atom;

    const ANCESTOR: &str = "
        par(a, b). par(b, c). par(c, d). par(x, y).
        anc(X, Y) :- par(X, Y).
        anc(X, Y) :- par(X, Z), anc(Z, Y).
    ";

    fn engine() -> Engine {
        Engine::from_source(ANCESTOR).unwrap()
    }

    #[test]
    fn all_strategies_agree_on_ancestor_bf() {
        let e = engine();
        let q = parse_atom("anc(a, X)").unwrap();
        let baseline = e.query(&q, Strategy::SemiNaive).unwrap();
        let want: Vec<String> = baseline.answers.iter().map(|a| a.to_string()).collect();
        assert_eq!(want, ["anc(a, b)", "anc(a, c)", "anc(a, d)"]);
        for s in Strategy::ALL {
            let r = e.query(&q, s).unwrap();
            let got: Vec<String> = r.answers.iter().map(|a| a.to_string()).collect();
            assert_eq!(got, want, "strategy {s}");
        }
    }

    #[test]
    fn rewriting_strategies_report_calls() {
        let e = engine();
        let q = parse_atom("anc(a, X)").unwrap();
        for s in [
            Strategy::Magic,
            Strategy::SupplementaryMagic,
            Strategy::Alexander,
            Strategy::Oldt,
        ] {
            let r = e.query(&q, s).unwrap();
            assert_eq!(r.report.calls, Some(4), "strategy {s}"); // a, b, c, d
        }
    }

    #[test]
    fn goal_directed_strategies_materialise_fewer_facts() {
        let e = engine();
        let q = parse_atom("anc(a, X)").unwrap();
        let full = e.query(&q, Strategy::SemiNaive).unwrap();
        let alex = e.query(&q, Strategy::Alexander).unwrap();
        // Full closure materialises anc over the x->y island too; Alexander
        // only touches the reachable chain. (Absolute counts include the
        // rewriting's auxiliary facts.)
        assert!(full.answers.len() == 3 && alex.answers.len() == 3);
        assert!(alex.report.calls.unwrap() < 6);
    }

    #[test]
    fn ground_query_yes_no() {
        let e = engine();
        let yes = e
            .query(&parse_atom("anc(a, d)").unwrap(), Strategy::Alexander)
            .unwrap();
        assert_eq!(yes.answers.len(), 1);
        let no = e
            .query(&parse_atom("anc(d, a)").unwrap(), Strategy::Alexander)
            .unwrap();
        assert!(no.answers.is_empty());
    }

    #[test]
    fn edb_query_is_a_lookup_under_any_strategy() {
        let e = engine();
        let q = parse_atom("par(a, X)").unwrap();
        for s in Strategy::ALL {
            let r = e.query(&q, s).unwrap();
            assert_eq!(r.answers.len(), 1, "strategy {s}");
            assert_eq!(r.answers[0].to_string(), "par(a, b)");
        }
    }

    #[test]
    fn stratified_negation_via_engine() {
        let e = Engine::from_source(
            "
            edge(s, a). edge(a, b). node(s). node(a). node(b). node(z).
            source(s).
            reach(X) :- source(S), edge(S, X).
            reach(Y) :- reach(X), edge(X, Y).
            unreach(X) :- node(X), !reach(X).
        ",
        )
        .unwrap();
        let q = parse_atom("unreach(X)").unwrap();
        for s in [
            Strategy::Stratified,
            Strategy::ConditionalFixpoint,
            Strategy::Oldt,
        ] {
            let r = e.query(&q, s).unwrap();
            let got: Vec<String> = r.answers.iter().map(|a| a.to_string()).collect();
            assert_eq!(got, ["unreach(s)", "unreach(z)"], "strategy {s}");
        }
    }

    #[test]
    fn win_move_conditional_and_undefined_detection() {
        let e = Engine::from_source(
            "
            move(a, b). move(b, c). move(d, d2). move(d2, d).
            win(X) :- move(X, Y), !win(Y).
        ",
        )
        .unwrap();
        // Decided part of the game works:
        let r = e
            .query(
                &parse_atom("win(b)").unwrap(),
                Strategy::ConditionalFixpoint,
            )
            .unwrap();
        assert_eq!(r.answers.len(), 1);
        assert!(!r.report.undefined.is_empty()); // the d-cycle is undefined
                                                 // Asking about the undefined cycle is an error, not a silent no.
        let err = e.query(
            &parse_atom("win(d)").unwrap(),
            Strategy::ConditionalFixpoint,
        );
        assert!(matches!(err, Err(EngineError::UndefinedAnswers(_))));
    }

    #[test]
    fn threads_change_neither_answers_nor_metrics() {
        let q = parse_atom("anc(a, X)").unwrap();
        let seq = engine();
        for threads in [2, 4, 8] {
            let par = Engine::from_source(ANCESTOR).unwrap().with_threads(threads);
            for s in [
                Strategy::SemiNaive,
                Strategy::Stratified,
                Strategy::Magic,
                Strategy::SupplementaryMagic,
                Strategy::Alexander,
            ] {
                let a = seq.query(&q, s).unwrap();
                let b = par.query(&q, s).unwrap();
                assert_eq!(a.answers, b.answers, "{s} @ {threads} threads");
                assert_eq!(a.report.eval, b.report.eval, "{s} @ {threads} threads");
                assert_eq!(b.report.threads, threads);
            }
        }
    }

    #[test]
    fn executors_agree_on_answers_and_metrics() {
        let q = parse_atom("anc(a, X)").unwrap();
        let blocked = engine();
        let tuple = engine().with_exec(ExecMode::Tuple);
        for s in [
            Strategy::SemiNaive,
            Strategy::Stratified,
            Strategy::Magic,
            Strategy::SupplementaryMagic,
            Strategy::Alexander,
        ] {
            let a = blocked.query(&q, s).unwrap();
            let b = tuple.query(&q, s).unwrap();
            assert_eq!(a.answers, b.answers, "{s}");
            assert_eq!(a.report.eval, b.report.eval, "{s}");
            assert_eq!(a.report.exec, Some(ExecMode::Blocked), "{s}");
            assert_eq!(b.report.exec, Some(ExecMode::Tuple), "{s}");
            let am = a.report.eval.unwrap();
            assert!(am.exec.blocks_executed > 0, "{s} ran no blocks");
            assert_eq!(b.report.eval.unwrap().exec.blocks_executed, 0, "{s}");
        }
    }

    #[test]
    fn fact_budget_gives_partial_answers_on_every_strategy() {
        let q = parse_atom("anc(X, Y)").unwrap();
        let full = engine().query(&q, Strategy::SemiNaive).unwrap();
        for s in Strategy::ALL {
            let e = engine().with_budget(Budget::default().with_max_facts(1));
            let r = e.query(&q, s).unwrap();
            assert!(
                !r.report.completion.is_complete(),
                "strategy {s}: {:?}",
                r.report.completion
            );
            for a in &r.answers {
                assert!(full.answers.contains(a), "strategy {s}: spurious {a}");
            }
            assert!(r.answers.len() < full.answers.len(), "strategy {s}");
        }
    }

    #[test]
    fn cancel_handle_stops_queries_until_reset() {
        let mut e = engine();
        let handle = e.cancel_handle();
        let q = parse_atom("anc(a, X)").unwrap();
        handle.cancel();
        let r = e.query(&q, Strategy::SemiNaive).unwrap();
        assert_eq!(r.report.completion, alexander_eval::Completion::Cancelled);
        handle.reset();
        let r = e.query(&q, Strategy::SemiNaive).unwrap();
        assert!(r.report.completion.is_complete());
        assert_eq!(r.answers.len(), 3);
    }

    #[test]
    fn report_carries_consumption_counters() {
        let e = engine();
        let q = parse_atom("anc(a, X)").unwrap();
        let r = e.query(&q, Strategy::SemiNaive).unwrap();
        assert!(r.report.consumed.facts > 0);
        assert!(r.report.consumed.rounds > 0);
        assert!(r.report.consumed.steps > 0);
        let o = e.query(&q, Strategy::Oldt).unwrap();
        assert!(o.report.consumed.steps > 0);
    }

    #[test]
    fn insert_fact_extends_the_edb() {
        let mut e = engine();
        let q = parse_atom("anc(a, X)").unwrap();
        assert_eq!(e.query(&q, Strategy::Alexander).unwrap().answers.len(), 3);
        e.insert_fact(&parse_atom("par(d, z)").unwrap()).unwrap();
        assert_eq!(e.query(&q, Strategy::Alexander).unwrap().answers.len(), 4);
    }

    #[test]
    fn invalid_program_is_rejected_at_construction() {
        assert!(matches!(
            Engine::from_source("p(X, Y) :- q(X)."),
            Err(EngineError::Invalid(_))
        ));
    }

    #[test]
    fn repeated_variable_query() {
        let e = Engine::from_source(
            "
            e(a, a). e(a, b).
            p(X, Y) :- e(X, Y).
        ",
        )
        .unwrap();
        let q = parse_atom("p(X, X)").unwrap();
        for s in [Strategy::SemiNaive, Strategy::Oldt] {
            let r = e.query(&q, s).unwrap();
            assert_eq!(r.answers.len(), 1, "strategy {s}");
            assert_eq!(r.answers[0].to_string(), "p(a, a)");
        }
    }
}
