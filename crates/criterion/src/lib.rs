//! A self-contained wall-clock microbenchmark runner exposing the subset of
//! the `criterion` API the `benches/` files use. The build environment has no
//! access to crates.io, so external crates are vendored as minimal shims.
//!
//! Unlike upstream criterion there is no statistical analysis or HTML report:
//! each benchmark runs a short warm-up, then `sample_size` timed samples, and
//! prints the per-iteration median, min, and max.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level handle passed to benchmark functions.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        println!("\n== {name}");
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 10,
        }
    }
}

/// A named benchmark id, optionally parameterised (`name/param`).
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    pub fn new(name: impl Display, param: impl Display) -> BenchmarkId {
        BenchmarkId {
            full: format!("{name}/{param}"),
        }
    }
}

pub struct BenchmarkGroup {
    #[allow(dead_code)]
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn bench_function(&mut self, id: impl Display, mut f: impl FnMut(&mut Bencher)) {
        self.run(&id.to_string(), &mut f);
    }

    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        self.run(&id.full, &mut |b| f(b, input));
    }

    fn run(&mut self, label: &str, f: &mut dyn FnMut(&mut Bencher)) {
        // Warm-up: let caches and lazy indexes settle.
        let mut warmup = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
        };
        f(&mut warmup);
        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                elapsed: Duration::ZERO,
                iters: 0,
            };
            f(&mut b);
            if b.iters > 0 {
                samples.push(b.elapsed.as_secs_f64() / b.iters as f64);
            }
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        if samples.is_empty() {
            println!("{label:<40} (no samples)");
            return;
        }
        let median = samples[samples.len() / 2];
        println!(
            "{label:<40} median {}  min {}  max {}",
            fmt_time(median),
            fmt_time(samples[0]),
            fmt_time(samples[samples.len() - 1]),
        );
    }

    pub fn finish(&mut self) {}
}

/// Per-sample timing handle: `b.iter(|| work())`.
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    pub fn iter<T>(&mut self, mut f: impl FnMut() -> T) {
        let start = Instant::now();
        std::hint::black_box(f());
        self.elapsed += start.elapsed();
        self.iters += 1;
    }
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:>8.3} s ")
    } else if secs >= 1e-3 {
        format!("{:>8.3} ms", secs * 1e3)
    } else {
        format!("{:>8.3} µs", secs * 1e6)
    }
}

/// Defines the runner function for a set of benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Defines `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim_smoke");
        g.sample_size(3);
        let mut calls = 0u32;
        g.bench_function("noop", |b| {
            calls += 1;
            b.iter(|| 1 + 1)
        });
        g.bench_with_input(BenchmarkId::new("param", 42), &7usize, |b, i| {
            b.iter(|| i * 2)
        });
        g.finish();
        // Warm-up + 3 samples.
        assert_eq!(calls, 4);
    }

    #[test]
    fn time_formatting_picks_units() {
        assert!(fmt_time(2.0).contains("s"));
        assert!(fmt_time(2e-3).contains("ms"));
        assert!(fmt_time(2e-6).contains("µs"));
    }
}
