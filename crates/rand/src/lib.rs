//! A self-contained, deterministic stand-in for the tiny slice of the `rand`
//! crate this workspace uses (`StdRng::seed_from_u64` + `random_range`).
//!
//! The build environment has no access to crates.io, so external crates are
//! vendored as minimal shims. This one implements xoshiro256** seeded through
//! SplitMix64 — high-quality, fast, and *stable across releases*, which the
//! workload generators rely on (random graphs are keyed by explicit seeds and
//! must not change between runs or toolchains).

use std::ops::Range;

/// A seedable random number generator. Mirrors `rand::SeedableRng` for the
/// single constructor the workspace uses.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, expanding it into the full
    /// internal state.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Core sampling interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// The next uniformly distributed 64-bit word.
    fn next_u64(&mut self) -> u64;
}

/// Convenience sampling methods, mirroring `rand::Rng`/`RngExt`.
pub trait RngExt: RngCore {
    /// A uniform sample from `range` (half-open). Panics on empty ranges.
    fn random_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        assert!(range.start < range.end, "cannot sample an empty range");
        T::sample(self, range)
    }

    /// A uniform boolean.
    fn random_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Types that can be sampled uniformly from a half-open range.
pub trait SampleUniform: Copy + PartialOrd {
    fn sample<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                // Widening to u64/i128-free math: span fits in u64 for every
                // implemented type (the workspace never samples i64::MIN).
                let span = (range.end as i128 - range.start as i128) as u64;
                let v = rng.next_u64() % span;
                ((range.start as i128) + v as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard generator: xoshiro256** (Blackman & Vigna), seeded by
    /// SplitMix64 state expansion.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random_range(0usize..1000), b.random_range(0usize..1000));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let xs: Vec<u64> = (0..16).map(|_| a.random_range(0u64..u64::MAX)).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.random_range(0u64..u64::MAX)).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn range_bounds_are_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.random_range(10i32..20);
            assert!((10..20).contains(&v));
        }
        for _ in 0..1000 {
            let v = rng.random_range(0u8..6);
            assert!(v < 6);
        }
    }

    #[test]
    fn negative_ranges_work() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            let v = rng.random_range(-5i32..5);
            assert!((-5..5).contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = rng.random_range(3usize..3);
    }
}
