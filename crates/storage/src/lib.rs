//! # alexander-storage
//!
//! Relation storage for the Alexander-templates reproduction: duplicate-free
//! tuple sets per predicate, with lazily built hash indexes keyed by binding
//! pattern ([`Mask`]). The evaluators' join loops probe these indexes; the
//! EDB, the materialised IDB, and the semi-naive deltas are all
//! [`Database`]s.
//!
//! ```
//! use alexander_ir::Predicate;
//! use alexander_storage::{Database, Mask, Tuple};
//! use alexander_ir::Const;
//!
//! let edge = Predicate::new("edge", 2);
//! let mut db = Database::new();
//! db.insert(edge, Tuple::new(vec![Const::sym("a"), Const::sym("b")]));
//! db.ensure_index(edge, Mask::of_columns(&[0]));
//! let rel = db.relation(edge).unwrap();
//! let key = [Const::sym("a")];
//! let (hits, indexed) = rel.probe(Mask::of_columns(&[0]), &key);
//! assert!(indexed);
//! assert_eq!(hits.count(), 1);
//! ```

pub mod database;
pub mod load;
pub mod relation;
pub mod tuple;

pub use database::{Database, Frozen, NonGround};
pub use load::{load_delimited, load_file, LoadError};
pub use relation::{Mask, Relation};
pub use tuple::{tuple_of_syms, Tuple};
