//! # alexander-storage
//!
//! Relation storage for the Alexander-templates reproduction: duplicate-free
//! tuple sets per predicate, arena-backed (one flat `Vec<Const>` pool per
//! relation, tuples addressed by dense `u32` ids), with lazily built
//! hash-of-projection indexes keyed by binding pattern ([`Mask`]). The
//! evaluators' join loops probe these indexes without materialising keys;
//! the EDB, the materialised IDB, and the semi-naive deltas (id ranges, see
//! [`DeltaSpans`]) all live in [`Database`]s.
//!
//! ```
//! use alexander_ir::Predicate;
//! use alexander_storage::{Database, Mask, Tuple};
//! use alexander_ir::Const;
//!
//! let edge = Predicate::new("edge", 2);
//! let mut db = Database::new();
//! db.insert(edge, Tuple::new(vec![Const::sym("a"), Const::sym("b")]));
//! db.ensure_index(edge, Mask::of_columns(&[0]));
//! let rel = db.relation(edge).unwrap();
//! let key = [Const::sym("a")];
//! let (hits, indexed) = rel.probe(Mask::of_columns(&[0]), &key);
//! assert!(indexed);
//! assert_eq!(hits.count(), 1);
//! ```
#![deny(clippy::redundant_clone)]
// Workspace lint note: `clippy::redundant_clone` is denied in the storage
// and eval crates (the two crates that own the allocation-free hot paths) so
// a stray `.clone()` of a tuple, row buffer, or database cannot land
// silently. It is a nursery lint, hence the per-crate opt-in rather than a
// [workspace.lints] entry; treat these two attributes as the deny-list.

pub mod database;
pub mod load;
pub mod relation;
pub mod tuple;

pub use database::{Database, DeltaSpans, Frozen, NonGround};
pub use load::{load_delimited, load_file, LoadError};
pub use relation::{IndexProbe, Mask, MaskColumns, Relation, Rows};
pub use tuple::{row_atom, tuple_of_syms, Tuple};
