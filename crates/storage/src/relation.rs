//! A single stored relation with binding-pattern indexes.

use crate::tuple::Tuple;
use alexander_ir::{Const, FxHashMap};
use std::fmt;

/// A binding pattern over argument positions, as a bitmask: bit `i` set means
/// column `i` is bound (part of the lookup key). Arity is limited to 64.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Mask(pub u64);

impl Mask {
    /// The mask binding exactly `columns`.
    pub fn of_columns(columns: &[usize]) -> Mask {
        let mut m = 0u64;
        for &c in columns {
            assert!(c < 64, "arity limit is 64");
            m |= 1 << c;
        }
        Mask(m)
    }

    /// The bound columns, ascending.
    pub fn columns(self) -> Vec<usize> {
        (0..64).filter(|&i| self.0 & (1 << i) != 0).collect()
    }

    /// True iff no column is bound (full scan).
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }
}

/// One secondary index: key = constants at the mask's columns, value = ids of
/// matching tuples. The mask's column list is precomputed once so the
/// per-insert maintenance loop and every probe key projection run without
/// re-deriving (or allocating) it.
#[derive(Clone, Default)]
struct Index {
    columns: Vec<usize>,
    map: FxHashMap<Vec<Const>, Vec<u32>>,
}

/// A stored relation: a duplicate-free multiset of ground tuples of a fixed
/// arity, with lazily built hash indexes per binding pattern.
///
/// Tuples are kept both in insertion order (`by_id`, for stable iteration and
/// delta slicing) and in a hash map (`ids`, for O(1) duplicate detection).
/// The duplication costs one extra boxed slice per tuple; in exchange,
/// iteration is cache-friendly and deterministic.
///
/// **Incremental-index invariant:** once an index is built (via
/// [`Relation::ensure_index`]), every subsequent [`Relation::insert`] updates
/// it in place — O(1) per (tuple, index) — so a semi-naive round pays index
/// cost proportional to its *delta*, never to the whole relation. Bulk
/// deletion ([`Relation::remove_all`]) is the one rebuild point.
#[derive(Clone, Default)]
pub struct Relation {
    arity: usize,
    by_id: Vec<Tuple>,
    ids: FxHashMap<Tuple, u32>,
    indexes: FxHashMap<Mask, Index>,
}

impl Relation {
    /// An empty relation of the given arity.
    pub fn new(arity: usize) -> Relation {
        Relation {
            arity,
            ..Relation::default()
        }
    }

    /// The relation's arity.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.by_id.len()
    }

    /// True iff the relation is empty.
    pub fn is_empty(&self) -> bool {
        self.by_id.is_empty()
    }

    /// Inserts `t`; returns `true` if it was new. Panics on arity mismatch.
    pub fn insert(&mut self, t: Tuple) -> bool {
        assert_eq!(t.arity(), self.arity, "tuple arity mismatch");
        if self.ids.contains_key(&t) {
            return false;
        }
        // invariant: tuple ids are dense u32s; 2^32 tuples per relation
        // exceeds addressable memory for any workload this engine targets.
        let id = u32::try_from(self.by_id.len()).expect("relation overflow");
        // Maintain every already-built index incrementally: one projection
        // and one hash probe per index, O(|delta|) per round rather than the
        // O(|relation|) a lazy rebuild would cost.
        for index in self.indexes.values_mut() {
            let key = t.project(&index.columns);
            index.map.entry(key).or_default().push(id);
        }
        self.ids.insert(t.clone(), id);
        self.by_id.push(t);
        true
    }

    /// Membership test.
    pub fn contains(&self, t: &Tuple) -> bool {
        self.ids.contains_key(t)
    }

    /// Iterates over all tuples in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> + '_ {
        self.by_id.iter()
    }

    /// The tuples inserted at or after position `from` (delta slicing for
    /// semi-naive evaluation).
    pub fn since(&self, from: usize) -> &[Tuple] {
        &self.by_id[from.min(self.by_id.len())..]
    }

    /// Ensures a hash index for `mask` exists (no-op for the empty mask).
    pub fn ensure_index(&mut self, mask: Mask) {
        if mask.is_empty() || self.indexes.contains_key(&mask) {
            return;
        }
        let columns = mask.columns();
        let mut map: FxHashMap<Vec<Const>, Vec<u32>> = FxHashMap::default();
        for (id, t) in self.by_id.iter().enumerate() {
            map.entry(t.project(&columns)).or_default().push(id as u32);
        }
        self.indexes.insert(mask, Index { columns, map });
    }

    /// True iff an index for `mask` has been built.
    pub fn has_index(&self, mask: Mask) -> bool {
        self.indexes.contains_key(&mask)
    }

    /// Looks up the tuples whose `mask` columns equal `key`. Uses the index
    /// when present, otherwise falls back to a filtered scan (the second
    /// element of the returned pair is `true` when the index was used).
    pub fn probe<'a>(
        &'a self,
        mask: Mask,
        key: &'a [Const],
    ) -> (Box<dyn Iterator<Item = &'a Tuple> + 'a>, bool) {
        if mask.is_empty() {
            return (Box::new(self.by_id.iter()), false);
        }
        if let Some(index) = self.indexes.get(&mask) {
            let hits = index.map.get(key).map(|v| v.as_slice()).unwrap_or(&[]);
            return (
                Box::new(hits.iter().map(move |&id| &self.by_id[id as usize])),
                true,
            );
        }
        let columns = mask.columns();
        (
            Box::new(
                self.by_id
                    .iter()
                    .filter(move |t| t.project(&columns) == key),
            ),
            false,
        )
    }

    /// All tuples matching `key` under `mask`, materialised (convenience for
    /// tests).
    pub fn select(&self, mask: Mask, key: &[Const]) -> Vec<Tuple> {
        self.probe(mask, key).0.cloned().collect()
    }

    /// Removes every tuple in `victims`; returns how many were present.
    ///
    /// Deletion rebuilds the id table and any existing indexes (they key
    /// tuple ids by position). Incremental maintenance deletes in batches,
    /// so one rebuild per batch amortises fine.
    pub fn remove_all(&mut self, victims: &alexander_ir::FxHashSet<Tuple>) -> usize {
        let before = self.by_id.len();
        if victims.is_empty() {
            return 0;
        }
        let masks: Vec<Mask> = self.indexes.keys().copied().collect();
        self.by_id.retain(|t| !victims.contains(t));
        self.ids.clear();
        for (i, t) in self.by_id.iter().enumerate() {
            self.ids.insert(t.clone(), i as u32);
        }
        self.indexes.clear();
        for m in masks {
            self.ensure_index(m);
        }
        before - self.by_id.len()
    }

    /// Removes a single tuple; returns whether it was present.
    pub fn remove(&mut self, t: &Tuple) -> bool {
        let mut set = alexander_ir::FxHashSet::default();
        set.insert(t.clone());
        self.remove_all(&set) == 1
    }
}

impl fmt::Debug for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Relation(arity={}, {} tuples)", self.arity, self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::tuple_of_syms;

    fn edges() -> Relation {
        let mut r = Relation::new(2);
        for (a, b) in [("a", "b"), ("b", "c"), ("a", "c")] {
            r.insert(tuple_of_syms(&[a, b]));
        }
        r
    }

    #[test]
    fn insert_deduplicates() {
        let mut r = Relation::new(2);
        assert!(r.insert(tuple_of_syms(&["a", "b"])));
        assert!(!r.insert(tuple_of_syms(&["a", "b"])));
        assert_eq!(r.len(), 1);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_is_enforced() {
        let mut r = Relation::new(2);
        r.insert(tuple_of_syms(&["a"]));
    }

    #[test]
    fn probe_without_index_scans() {
        let r = edges();
        let mask = Mask::of_columns(&[0]);
        let key = [Const::sym("a")];
        let (it, indexed) = r.probe(mask, &key);
        assert!(!indexed);
        assert_eq!(it.count(), 2);
    }

    #[test]
    fn probe_with_index() {
        let mut r = edges();
        let mask = Mask::of_columns(&[0]);
        r.ensure_index(mask);
        assert!(r.has_index(mask));
        let key = [Const::sym("a")];
        let (it, indexed) = r.probe(mask, &key);
        assert!(indexed);
        let got: Vec<_> = it.cloned().collect();
        assert_eq!(got.len(), 2);
        // Missing key yields nothing.
        assert_eq!(r.select(mask, &[Const::sym("zzz")]).len(), 0);
    }

    #[test]
    fn index_is_maintained_on_insert() {
        let mut r = edges();
        let mask = Mask::of_columns(&[1]);
        r.ensure_index(mask);
        r.insert(tuple_of_syms(&["d", "c"]));
        assert_eq!(r.select(mask, &[Const::sym("c")]).len(), 3);
    }

    #[test]
    fn empty_mask_probes_everything() {
        let r = edges();
        let (it, indexed) = r.probe(Mask(0), &[]);
        assert!(!indexed);
        assert_eq!(it.count(), 3);
    }

    #[test]
    fn multi_column_mask() {
        let mut r = edges();
        let mask = Mask::of_columns(&[0, 1]);
        r.ensure_index(mask);
        assert_eq!(r.select(mask, &[Const::sym("a"), Const::sym("c")]).len(), 1);
        assert_eq!(mask.columns(), vec![0, 1]);
    }

    #[test]
    fn since_slices_new_tuples() {
        let mut r = edges();
        let watermark = r.len();
        r.insert(tuple_of_syms(&["x", "y"]));
        assert_eq!(r.since(watermark).len(), 1);
        assert_eq!(r.since(0).len(), 4);
        assert_eq!(r.since(999).len(), 0);
    }

    #[test]
    fn iteration_is_insertion_ordered() {
        let r = edges();
        let first = r.iter().next().unwrap();
        assert_eq!(first, &tuple_of_syms(&["a", "b"]));
    }
}
