//! A single stored relation: an arena-backed column store with
//! binding-pattern indexes.
//!
//! ## Layout
//!
//! Tuples live in one flat `Vec<Const>` pool with fixed stride = arity;
//! a tuple is addressed by its dense `u32` id and read back as the slice
//! `pool[id * arity .. (id + 1) * arity]`. Every row's 64-bit Fx hash is
//! precomputed at insert time (`hashes[id]`), so duplicate detection is an
//! open-addressing probe over ids — hash compare first, then a direct
//! column compare against the pool. No tuple is ever boxed, and no key is
//! ever materialised: probes hash the lookup values in place with
//! [`RowHasher`] and verify candidates by comparing columns in the arena.
//!
//! ## Invariants
//!
//! - Ids are dense: rows occupy `0..len` with no holes. Inserts append in
//!   insertion order; a small deletion may swap the tail row into the
//!   vacated id, so relative order is only insertion order until the first
//!   removal. Iteration (and everything downstream: merge order, metrics,
//!   parallel-round determinism) follows ids, which stay deterministic for
//!   a deterministic operation sequence.
//! - `hashes[id]` is always the [`alexander_ir::hash_row`] digest of row
//!   `id`; the dedup table and every index group key off these digests.
//! - Index posting lists are sorted ascending by id, so a semi-naive
//!   delta — an id range `[lo, hi)` — restricts a posting list with two
//!   binary searches instead of probing a separate delta database.
//!   Appends keep lists sorted for free; deletions re-sort the two
//!   patched lists ([`Relation::remove_all`]).
//! - Once an index exists, every insert *and every delete* maintains it in
//!   place: O(1) per (tuple, index) on insert, O(|group|) per victim on
//!   small deletes, one order-preserving remap pass on mass deletes —
//!   never a from-scratch rebuild.

use crate::tuple::Tuple;
use alexander_ir::{hash_row, Const, FxHashMap, RowHasher};
use std::fmt;

/// A binding pattern over argument positions, as a bitmask: bit `i` set means
/// column `i` is bound (part of the lookup key). Arity is limited to 64.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Mask(pub u64);

impl Mask {
    /// The mask binding exactly `columns`.
    pub fn of_columns(columns: &[usize]) -> Mask {
        let mut m = 0u64;
        for &c in columns {
            assert!(c < 64, "arity limit is 64");
            m |= 1 << c;
        }
        Mask(m)
    }

    /// The bound columns, ascending. Iterates the set bits directly — no
    /// allocation, so the join's per-probe key construction stays on the
    /// stack.
    #[inline]
    pub fn columns(self) -> MaskColumns {
        MaskColumns(self.0)
    }

    /// Number of bound columns.
    #[inline]
    pub fn count(self) -> usize {
        self.0.count_ones() as usize
    }

    /// True iff no column is bound (full scan).
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }
}

/// Iterator over a [`Mask`]'s bound columns, ascending (bit-scan, no heap).
#[derive(Clone, Copy, Debug)]
pub struct MaskColumns(u64);

impl Iterator for MaskColumns {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        if self.0 == 0 {
            return None;
        }
        let i = self.0.trailing_zeros() as usize;
        self.0 &= self.0 - 1;
        Some(i)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.0.count_ones() as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for MaskColumns {}

/// Sentinel for an unused open-addressing slot.
const EMPTY: u32 = u32::MAX;

/// A minimal open-addressing table of `u32` entries keyed by externally
/// supplied 64-bit hashes. The entries are indices into some side structure
/// (row ids for the dedup table, group ids for an index); equality
/// verification is delegated to the caller's closure, which compares columns
/// directly in the arena — the table itself stores no keys at all.
#[derive(Clone, Default)]
struct RawTable {
    slots: Vec<u32>,
    len: usize,
}

impl RawTable {
    /// True when the next insert would push the load factor past 7/8.
    #[inline]
    fn needs_grow(&self) -> bool {
        // The capacity is always a power of two; `* 8 / 7` keeps probes short.
        self.slots.is_empty() || (self.len + 1) * 8 > self.slots.len() * 7
    }

    /// Doubles capacity and re-slots every entry; `hash_of` recovers an
    /// entry's hash (from the side structure that owns the real data).
    fn grow(&mut self, mut hash_of: impl FnMut(u32) -> u64) {
        let cap = (self.slots.len() * 2).max(16);
        let mut slots = vec![EMPTY; cap];
        for &v in self.slots.iter().filter(|&&v| v != EMPTY) {
            let mut i = hash_of(v) as usize & (cap - 1);
            while slots[i] != EMPTY {
                i = (i + 1) & (cap - 1);
            }
            slots[i] = v;
        }
        self.slots = slots;
    }

    /// Linear-probes for an entry with this hash accepted by `eq`.
    #[inline]
    fn find(&self, hash: u64, mut eq: impl FnMut(u32) -> bool) -> Option<u32> {
        if self.slots.is_empty() {
            return None;
        }
        let cap = self.slots.len();
        let mut i = hash as usize & (cap - 1);
        loop {
            let v = self.slots[i];
            if v == EMPTY {
                return None;
            }
            if eq(v) {
                return Some(v);
            }
            i = (i + 1) & (cap - 1);
        }
    }

    /// Inserts an entry. The caller must have handled `needs_grow` first and
    /// established (via [`RawTable::find`]) that no equal entry exists.
    #[inline]
    fn insert_no_grow(&mut self, hash: u64, value: u32) {
        let cap = self.slots.len();
        let mut i = hash as usize & (cap - 1);
        while self.slots[i] != EMPTY {
            i = (i + 1) & (cap - 1);
        }
        self.slots[i] = value;
        self.len += 1;
    }

    /// Overwrites the slot holding `value` (an entry with hash `hash`) with
    /// `new`. The probe chain is untouched — `new` answers to the same hash.
    fn replace(&mut self, hash: u64, value: u32, new: u32) {
        let cap = self.slots.len();
        let mut i = hash as usize & (cap - 1);
        while self.slots[i] != value {
            debug_assert!(self.slots[i] != EMPTY, "entry to replace exists");
            i = (i + 1) & (cap - 1);
        }
        self.slots[i] = new;
    }

    /// Backward-shift deletion of the slot holding `value` (hash `hash`):
    /// entries later in the same probe chain slide back over the hole, so
    /// `find` never stops early at a spurious empty slot. `hash_of`
    /// recovers an entry's hash from the owning side structure. The entry
    /// must exist.
    fn delete(&mut self, hash: u64, value: u32, mut hash_of: impl FnMut(u32) -> u64) {
        let cap = self.slots.len();
        let mut hole = hash as usize & (cap - 1);
        while self.slots[hole] != value {
            debug_assert!(self.slots[hole] != EMPTY, "entry to delete exists");
            hole = (hole + 1) & (cap - 1);
        }
        let mut j = hole;
        loop {
            j = (j + 1) & (cap - 1);
            let v = self.slots[j];
            if v == EMPTY {
                break;
            }
            // `v` may slide into the hole iff its home slot is cyclically
            // outside `(hole, j]` — otherwise it is already as close to
            // home as the chain allows.
            let home = hash_of(v) as usize & (cap - 1);
            let in_gap = if hole <= j {
                home > hole && home <= j
            } else {
                home > hole || home <= j
            };
            if !in_gap {
                self.slots[hole] = v;
                hole = j;
            }
        }
        self.slots[hole] = EMPTY;
        self.len -= 1;
    }

    /// Empties the table while keeping its slot array, so a recycled
    /// staging relation stays allocation-free round to round.
    fn clear_retaining(&mut self) {
        self.slots.fill(EMPTY);
        self.len = 0;
    }
}

/// Row `id` of an arena with the given stride, as a slice.
#[inline]
fn row_of(pool: &[Const], arity: usize, id: u32) -> &[Const] {
    &pool[id as usize * arity..id as usize * arity + arity]
}

/// One key group of an index: every row whose projection onto the index
/// columns hashes to `hash` *and* equals the group's representative
/// projection. Ids are ascending (insertion order), which is what lets a
/// delta probe narrow a group to an id range by binary search.
#[derive(Clone)]
struct Group {
    hash: u64,
    ids: Vec<u32>,
}

/// One secondary index: a hash-of-projection table. `table` maps a
/// projection hash to a group id; groups hold the matching row ids. Distinct
/// projections that collide on the 64-bit hash stay distinct groups (the
/// representative-row comparison separates them), so a probe's candidate set
/// is exactly the rows whose key columns equal the probe values.
#[derive(Clone)]
struct Index {
    /// The mask's columns, ascending, precomputed once.
    cols: Vec<u32>,
    table: RawTable,
    groups: Vec<Group>,
}

impl Index {
    fn new(mask: Mask) -> Index {
        Index {
            cols: mask.columns().map(|c| c as u32).collect(),
            table: RawTable::default(),
            groups: Vec::new(),
        }
    }

    /// Hash of `row` projected onto this index's columns.
    #[inline]
    fn projection_hash(&self, row: &[Const]) -> u64 {
        let mut h = RowHasher::new();
        for &c in &self.cols {
            h.push(&row[c as usize]);
        }
        h.finish()
    }

    /// Adds row `id` (whose data is `row`) to its key group, creating the
    /// group on first sight. `row_at` reads an existing row from the arena.
    fn add<'p>(&mut self, id: u32, row: &[Const], row_at: impl Fn(u32) -> &'p [Const]) {
        let h = self.projection_hash(row);
        let cols = &self.cols;
        let groups = &self.groups;
        let found = self.table.find(h, |g| {
            let grp = &groups[g as usize];
            grp.hash == h && {
                // invariant: groups are never empty — they are created with
                // their first id and only ever grow.
                let rep = row_at(grp.ids[0]);
                cols.iter().all(|&c| rep[c as usize] == row[c as usize])
            }
        });
        match found {
            Some(g) => self.groups[g as usize].ids.push(id),
            None => {
                let g = u32::try_from(self.groups.len()).expect("index group overflow");
                self.groups.push(Group {
                    hash: h,
                    ids: vec![id],
                });
                if self.table.needs_grow() {
                    let groups = &self.groups;
                    self.table.grow(|g| groups[g as usize].hash);
                }
                self.table.insert_no_grow(h, g);
            }
        }
    }

    /// Resolves the position in `groups` of the group holding `row` (which
    /// must be indexed; `row_at` reads representative rows from the arena).
    fn group_of<'p>(&self, row: &[Const], row_at: impl Fn(u32) -> &'p [Const]) -> u32 {
        let h = self.projection_hash(row);
        let cols = &self.cols;
        let groups = &self.groups;
        self.table
            .find(h, |g| {
                let grp = &groups[g as usize];
                grp.hash == h && {
                    let rep = row_at(grp.ids[0]);
                    cols.iter().all(|&c| rep[c as usize] == row[c as usize])
                }
            })
            .expect("indexed row's group exists")
    }

    /// Drops row `id` (data `row`) from its posting list; a group emptied
    /// by the drop is deleted, with the swapped-in tail group's table entry
    /// redirected. O(|group|) — independent of the relation's size.
    fn remove_id<'p>(&mut self, id: u32, row: &[Const], row_at: impl Fn(u32) -> &'p [Const]) {
        let g = self.group_of(row, &row_at);
        let grp = &mut self.groups[g as usize];
        let pos = grp
            .ids
            .binary_search(&id)
            .expect("indexed row in its group");
        grp.ids.remove(pos);
        if !grp.ids.is_empty() {
            return;
        }
        let hash = grp.hash;
        let groups = &self.groups;
        self.table.delete(hash, g, |gg| groups[gg as usize].hash);
        self.groups.swap_remove(g as usize);
        let last = self.groups.len() as u32;
        if g != last {
            // The former tail group now lives at `g`.
            self.table.replace(self.groups[g as usize].hash, last, g);
        }
    }

    /// Renames row `old` to `new` in its posting list (`row` is its data).
    /// `old` must be the relation's current maximum id, so it is the last
    /// element of its ascending posting list; `new` re-inserts in sorted
    /// position. O(|group|).
    fn move_id<'p>(
        &mut self,
        old: u32,
        new: u32,
        row: &[Const],
        row_at: impl Fn(u32) -> &'p [Const],
    ) {
        let g = self.group_of(row, &row_at);
        let ids = &mut self.groups[g as usize].ids;
        debug_assert_eq!(ids.last(), Some(&old), "max id ends its posting list");
        ids.pop();
        let pos = ids.partition_point(|&x| x < new);
        ids.insert(pos, new);
    }

    /// Rewrites the index after a bulk removal: `remap[old_id]` is a
    /// surviving row's new id, or [`EMPTY`] for a removed row. Survivors
    /// keep their relative order, so substituting ids in place preserves
    /// every posting list's ascending invariant — no projection is ever
    /// rehashed. Emptied groups are dropped and the group table re-slotted
    /// (group ids shift when groups die, and open addressing cannot delete
    /// in place anyway).
    fn remove_remap(&mut self, remap: &[u32]) {
        for grp in &mut self.groups {
            grp.ids.retain_mut(|id| {
                let nid = remap[*id as usize];
                *id = nid;
                nid != EMPTY
            });
        }
        self.groups.retain(|g| !g.ids.is_empty());
        self.table.clear_retaining();
        for (g, grp) in self.groups.iter().enumerate() {
            self.table.insert_no_grow(grp.hash, g as u32);
        }
    }

    /// The ids whose projection hashes to `hash` and satisfies `key_eq`
    /// (checked against one representative row). Empty when no group
    /// matches.
    #[inline]
    fn probe<'p>(
        &self,
        hash: u64,
        row_at: impl Fn(u32) -> &'p [Const],
        mut key_eq: impl FnMut(&[Const]) -> bool,
    ) -> &[u32] {
        let groups = &self.groups;
        match self.table.find(hash, |g| {
            let grp = &groups[g as usize];
            grp.hash == hash && key_eq(row_at(grp.ids[0]))
        }) {
            Some(g) => &self.groups[g as usize].ids,
            None => &[],
        }
    }
}

/// A stored relation: a duplicate-free set of ground tuples of a fixed
/// arity, arena-backed, with lazily built hash indexes per binding pattern.
///
/// See the module docs for the layout and its invariants. The public
/// surface speaks both languages: allocation-free rows (`&[Const]`) for the
/// evaluators' hot paths, and [`Tuple`] wrappers for loading, tests, and
/// cold paths.
#[derive(Clone, Default)]
pub struct Relation {
    arity: usize,
    /// Number of rows. Tracked separately from `pool.len() / arity` so
    /// arity-0 relations (the propositional edge case) still count to 1.
    len: u32,
    pool: Vec<Const>,
    hashes: Vec<u64>,
    /// Per-row support count, parallel to `hashes`: the number of distinct
    /// rule firings currently deriving row `id`. Plain evaluators leave it
    /// at 0 (they never read it); the counting incremental engine maintains
    /// it and retracts a row only when its count reaches zero. The column
    /// rides the arena layout — deletion rebuilds carry it, merges copy it.
    supports: Vec<u32>,
    dedup: RawTable,
    indexes: FxHashMap<Mask, Index>,
}

impl Relation {
    /// An empty relation of the given arity.
    pub fn new(arity: usize) -> Relation {
        Relation {
            arity,
            ..Relation::default()
        }
    }

    /// The relation's arity.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True iff the relation is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The row with this id, as a slice into the arena.
    #[inline]
    pub fn row(&self, id: u32) -> &[Const] {
        let a = self.arity;
        &self.pool[id as usize * a..id as usize * a + a]
    }

    /// The whole arena: every row concatenated, stride = arity. Row `id`
    /// occupies `pool()[id * arity .. (id + 1) * arity]`. This is the
    /// contiguous surface blocked executors scan directly.
    #[inline]
    pub fn pool(&self) -> &[Const] {
        &self.pool
    }

    /// The precomputed [`hash_row`] digest of every row, indexed by id.
    #[inline]
    pub fn row_hashes(&self) -> &[u64] {
        &self.hashes
    }

    /// Inserts a row; returns `true` if it was new. Panics on arity
    /// mismatch.
    pub fn insert_row(&mut self, row: &[Const]) -> bool {
        self.insert_row_hashed(hash_row(row), row)
    }

    /// Inserts a row whose [`hash_row`] digest the caller already computed
    /// (blocked executors hash each head row once and reuse the digest for
    /// the membership check and the insert); returns `true` if it was new.
    /// Panics on arity mismatch.
    pub fn insert_row_hashed(&mut self, h: u64, row: &[Const]) -> bool {
        if self.find_id(h, row).is_some() {
            debug_assert_eq!(
                h,
                hash_row(row),
                "caller-supplied hash must be the row digest"
            );
            return false;
        }
        self.push_new_row_hashed(h, row);
        true
    }

    /// Appends a row the caller guarantees is **absent**, with its
    /// [`hash_row`] digest already computed — the dedup probe is skipped
    /// entirely. This is the round-merge entry point: every staged row was
    /// membership-checked against the target while the target was immutable
    /// for the round, so probing again on merge would only repeat a lookup
    /// that is known to miss. Debug builds re-verify the absence.
    ///
    /// Panics on arity mismatch.
    pub fn push_new_row_hashed(&mut self, h: u64, row: &[Const]) {
        assert_eq!(row.len(), self.arity, "tuple arity mismatch");
        debug_assert_eq!(
            h,
            hash_row(row),
            "caller-supplied hash must be the row digest"
        );
        debug_assert!(
            self.find_id(h, row).is_none(),
            "push_new_row_hashed caller promised the row was absent"
        );
        // invariant: tuple ids are dense u32s; 2^32 tuples per relation
        // exceeds addressable memory for any workload this engine targets.
        let id = self.len;
        assert!(id != u32::MAX, "relation overflow");
        // Maintain every already-built index incrementally: one projection
        // hash and one table probe per index, O(|delta|) per round rather
        // than the O(|relation|) a lazy rebuild would cost.
        let (arity, pool) = (self.arity, &self.pool);
        for index in self.indexes.values_mut() {
            index.add(id, row, |rid| {
                &pool[rid as usize * arity..rid as usize * arity + arity]
            });
        }
        if self.dedup.needs_grow() {
            let hashes = &self.hashes;
            self.dedup.grow(|rid| hashes[rid as usize]);
        }
        self.dedup.insert_no_grow(h, id);
        self.pool.extend_from_slice(row);
        self.hashes.push(h);
        self.supports.push(0);
        self.len = id + 1;
    }

    /// Inserts a tuple; returns `true` if it was new.
    pub fn insert(&mut self, t: Tuple) -> bool {
        self.insert_row(t.values())
    }

    /// The id of the stored row equal to `row` (whose hash is `h`), if any.
    #[inline]
    fn find_id(&self, h: u64, row: &[Const]) -> Option<u32> {
        self.dedup
            .find(h, |id| self.hashes[id as usize] == h && self.row(id) == row)
    }

    /// The id of the stored row equal to `row`, if present. Arity
    /// mismatches simply miss.
    #[inline]
    pub fn id_of(&self, row: &[Const]) -> Option<u32> {
        if row.len() != self.arity {
            return None;
        }
        self.find_id(hash_row(row), row)
    }

    /// As [`Relation::id_of`], with the row's [`hash_row`] digest already
    /// computed by the caller.
    #[inline]
    pub fn id_of_hashed(&self, h: u64, row: &[Const]) -> Option<u32> {
        if row.len() != self.arity {
            return None;
        }
        self.find_id(h, row)
    }

    /// The support count of row `id`.
    #[inline]
    pub fn support(&self, id: u32) -> u32 {
        self.supports[id as usize]
    }

    /// The whole support column, indexed by id (parallel to
    /// [`Relation::row_hashes`]).
    #[inline]
    pub fn supports(&self) -> &[u32] {
        &self.supports
    }

    /// Overwrites row `id`'s support count.
    #[inline]
    pub fn set_support(&mut self, id: u32, count: u32) {
        self.supports[id as usize] = count;
    }

    /// Adds `by` firings to row `id`'s support; returns the new count.
    #[inline]
    pub fn add_support(&mut self, id: u32, by: u32) -> u32 {
        let s = &mut self.supports[id as usize];
        *s = s.checked_add(by).expect("support overflow");
        *s
    }

    /// Removes `by` firings from row `id`'s support (saturating at zero);
    /// returns the new count.
    #[inline]
    pub fn sub_support(&mut self, id: u32, by: u32) -> u32 {
        let s = &mut self.supports[id as usize];
        *s = s.saturating_sub(by);
        *s
    }

    /// Membership test for a row slice.
    #[inline]
    pub fn contains_row(&self, row: &[Const]) -> bool {
        row.len() == self.arity && self.find_id(hash_row(row), row).is_some()
    }

    /// Membership test for a row whose [`hash_row`] digest the caller
    /// already computed.
    #[inline]
    pub fn contains_row_hashed(&self, h: u64, row: &[Const]) -> bool {
        debug_assert_eq!(
            h,
            hash_row(row),
            "caller-supplied hash must be the row digest"
        );
        row.len() == self.arity && self.find_id(h, row).is_some()
    }

    /// Membership test without materialising the row: `get(i)` resolves the
    /// `i`-th value. This is how the join checks negative literals — the
    /// candidate is hashed and compared column by column straight from the
    /// binding array.
    #[inline]
    pub fn contains_with(&self, get: impl Fn(usize) -> Const) -> bool {
        let mut h = RowHasher::new();
        for i in 0..self.arity {
            h.push(&get(i));
        }
        self.dedup
            .find(h.finish(), |id| {
                let row = self.row(id);
                (0..self.arity).all(|i| row[i] == get(i))
            })
            .is_some()
    }

    /// Membership test.
    pub fn contains(&self, t: &Tuple) -> bool {
        t.arity() == self.arity && self.contains_row(t.values())
    }

    /// Iterates over all rows in insertion (id) order.
    pub fn iter(&self) -> Rows<'_> {
        self.rows_in(0, self.len)
    }

    /// The rows with ids in `[lo, hi)` — delta slicing for semi-naive
    /// evaluation is an id range into the arena, never a copied relation.
    pub fn rows_in(&self, lo: u32, hi: u32) -> Rows<'_> {
        let hi = hi.min(self.len);
        Rows {
            rel: self,
            next: lo.min(hi),
            end: hi,
        }
    }

    /// The rows inserted at or after position `from`.
    pub fn since(&self, from: usize) -> Rows<'_> {
        let lo = u32::try_from(from.min(self.len as usize)).expect("relation overflow");
        self.rows_in(lo, self.len)
    }

    /// Ensures a hash index for `mask` exists (no-op for the empty mask).
    pub fn ensure_index(&mut self, mask: Mask) {
        if mask.is_empty() || self.indexes.contains_key(&mask) {
            return;
        }
        let mut index = Index::new(mask);
        let (arity, pool) = (self.arity, &self.pool);
        for id in 0..self.len {
            let row = &pool[id as usize * arity..id as usize * arity + arity];
            index.add(id, row, |rid| {
                &pool[rid as usize * arity..rid as usize * arity + arity]
            });
        }
        self.indexes.insert(mask, index);
    }

    /// True iff an index for `mask` has been built.
    pub fn has_index(&self, mask: Mask) -> bool {
        self.indexes.contains_key(&mask)
    }

    /// The ids whose `mask` columns hash to `hash` and satisfy `key_eq`
    /// (invoked with a representative row; compare the mask's columns).
    /// `None` when no index exists for `mask` — the caller falls back to a
    /// scan. The returned ids are ascending, so a delta restriction is two
    /// `partition_point`s.
    ///
    /// `hash` must be a [`RowHasher`] digest of the bound values in
    /// ascending column order — the same digest the index maintains for its
    /// stored projections.
    #[inline]
    pub fn probe_ids(
        &self,
        mask: Mask,
        hash: u64,
        key_eq: impl FnMut(&[Const]) -> bool,
    ) -> Option<&[u32]> {
        let index = self.indexes.get(&mask)?;
        Some(index.probe(hash, |rid| self.row(rid), key_eq))
    }

    /// [`Relation::probe_ids`] restricted to the id range `[lo, hi)` — the
    /// semi-naive delta restriction as a single entry point. Posting lists
    /// are ascending, so the restriction is at most two binary searches;
    /// `None` still means "no index for this mask, fall back to a scan".
    #[inline]
    pub fn probe_ids_in(
        &self,
        mask: Mask,
        hash: u64,
        range: Option<(u32, u32)>,
        key_eq: impl FnMut(&[Const]) -> bool,
    ) -> Option<&[u32]> {
        let ids = self.probe_ids(mask, hash, key_eq)?;
        Some(narrow(ids, range, self.len))
    }

    /// Resolves the index for `mask` once — `None` when no index exists
    /// (the caller falls back to a scan). Blocked executors hold the handle
    /// for a whole block of probes, so the per-probe mask lookup the
    /// tuple-at-a-time path pays disappears.
    #[inline]
    pub fn index_probe(&self, mask: Mask) -> Option<IndexProbe<'_>> {
        let index = self.indexes.get(&mask)?;
        Some(IndexProbe { rel: self, index })
    }

    /// Looks up the rows whose `mask` columns equal `key`. Uses the index
    /// when present, otherwise falls back to a filtered scan (the second
    /// element of the returned pair is `true` when the index was used).
    pub fn probe<'a>(
        &'a self,
        mask: Mask,
        key: &'a [Const],
    ) -> (Box<dyn Iterator<Item = &'a [Const]> + 'a>, bool) {
        if mask.is_empty() {
            return (Box::new(self.iter()), false);
        }
        if self.has_index(mask) {
            let hits = self
                .probe_ids(mask, hash_row(key), |rep| {
                    mask.columns().zip(key).all(|(c, k)| rep[c] == *k)
                })
                .unwrap_or(&[]);
            return (Box::new(hits.iter().map(move |&id| self.row(id))), true);
        }
        (
            Box::new(
                self.iter()
                    .filter(move |row| mask.columns().zip(key).all(|(c, k)| row[c] == *k)),
            ),
            false,
        )
    }

    /// All tuples matching `key` under `mask`, materialised (convenience for
    /// tests).
    pub fn select(&self, mask: Mask, key: &[Const]) -> Vec<Tuple> {
        self.probe(mask, key).0.map(Tuple::new).collect()
    }

    /// Removes every tuple in `victims`; returns how many were present.
    ///
    /// Two strategies, picked by how much of the relation dies. A small
    /// victim set takes the O(|victims|) path: each victim is resolved
    /// through the dedup table and the current tail row swaps into its
    /// hole — the dedup table takes a backward-shift deletion plus one
    /// renamed entry, and each index patches two posting lists. Ids stay
    /// dense but the relative order of rows that crossed a removal is no
    /// longer insertion order (nothing downstream depends on order across
    /// a deletion; ascending posting lists are restored on insert).
    ///
    /// A large victim set (an eighth of the relation or more) amortises
    /// better as a compaction: survivors slide left in one pass preserving
    /// their order, the dedup table re-slots the surviving precomputed
    /// hashes, and posting lists substitute remapped ids. O(|relation|),
    /// but in cheap moves — no hash is recomputed and no row compared.
    pub fn remove_all(&mut self, victims: &alexander_ir::FxHashSet<Tuple>) -> usize {
        if victims.is_empty() || self.len == 0 {
            return 0;
        }
        if victims.len().saturating_mul(8) < self.len() {
            self.remove_swap(victims)
        } else {
            self.remove_compact(victims)
        }
    }

    /// The small-delete path: per-victim tail swaps, O(|victims|) overall.
    /// See [`Relation::remove_all`].
    fn remove_swap(&mut self, victims: &alexander_ir::FxHashSet<Tuple>) -> usize {
        let mut dropped = 0;
        for t in victims {
            if t.arity() != self.arity {
                continue;
            }
            let h = hash_row(t.values());
            let Some(id) = self.find_id(h, t.values()) else {
                continue;
            };
            self.swap_remove_id(h, id);
            dropped += 1;
        }
        dropped
    }

    /// Removes row `id` (whose hash is `h`) by swapping the tail row into
    /// its slot. All derived structures are patched in place.
    fn swap_remove_id(&mut self, h: u64, id: u32) {
        let last = self.len - 1;
        let arity = self.arity;
        // Drop the victim from the dedup table and every index while its
        // row is still addressable.
        let hashes = &self.hashes;
        self.dedup.delete(h, id, |v| hashes[v as usize]);
        let pool = &self.pool;
        for index in self.indexes.values_mut() {
            index.remove_id(id, row_of(pool, arity, id), |rid| row_of(pool, arity, rid));
        }
        if id != last {
            // Rename the tail row to `id`: dedup entry first, then each
            // index's posting entry, then the arena columns.
            let lh = self.hashes[last as usize];
            self.dedup.replace(lh, last, id);
            for index in self.indexes.values_mut() {
                index.move_id(last, id, row_of(pool, arity, last), |rid| {
                    row_of(pool, arity, rid)
                });
            }
            self.pool.copy_within(
                last as usize * arity..(last as usize + 1) * arity,
                id as usize * arity,
            );
            self.hashes[id as usize] = lh;
            self.supports[id as usize] = self.supports[last as usize];
        }
        self.pool.truncate(last as usize * arity);
        self.hashes.truncate(last as usize);
        self.supports.truncate(last as usize);
        self.len = last;
    }

    /// The mass-delete path: one order-preserving compaction pass,
    /// O(|relation|) in moves. See [`Relation::remove_all`].
    fn remove_compact(&mut self, victims: &alexander_ir::FxHashSet<Tuple>) -> usize {
        // Resolve victims to ids; absent (or wrong-arity) victims fall out.
        let mut victim_ids: Vec<u32> = victims
            .iter()
            .filter(|t| t.arity() == self.arity)
            .filter_map(|t| self.find_id(hash_row(t.values()), t.values()))
            .collect();
        if victim_ids.is_empty() {
            return 0;
        }
        victim_ids.sort_unstable();
        // Dense remap: `remap[old] = new` for survivors, EMPTY for victims.
        // Survivors keep their relative (insertion) order.
        let mut remap = vec![EMPTY; self.len as usize];
        {
            let mut vi = 0;
            let mut next = 0u32;
            for old in 0..self.len {
                if vi < victim_ids.len() && victim_ids[vi] == old {
                    vi += 1;
                } else {
                    remap[old as usize] = next;
                    next += 1;
                }
            }
        }
        let new_len = self.len - victim_ids.len() as u32;
        // Compact the arena columns. Rows only ever move left, so the
        // destination slot is always dead (a victim or already moved).
        let arity = self.arity;
        for (old, &nid) in remap.iter().enumerate() {
            if nid == EMPTY || nid as usize == old {
                continue;
            }
            let nid = nid as usize;
            self.pool
                .copy_within(old * arity..old * arity + arity, nid * arity);
            self.hashes[nid] = self.hashes[old];
            self.supports[nid] = self.supports[old];
        }
        self.pool.truncate(new_len as usize * arity);
        self.hashes.truncate(new_len as usize);
        self.supports.truncate(new_len as usize);
        self.len = new_len;
        // Open addressing cannot delete in place; re-slot the surviving
        // hashes instead. No row is rehashed or compared — survivors are
        // distinct by the relation's own invariant.
        self.dedup.clear_retaining();
        for id in 0..new_len {
            self.dedup.insert_no_grow(self.hashes[id as usize], id);
        }
        for index in self.indexes.values_mut() {
            index.remove_remap(&remap);
        }
        victim_ids.len()
    }

    /// Removes a single tuple; returns whether it was present.
    pub fn remove(&mut self, t: &Tuple) -> bool {
        let mut set = alexander_ir::FxHashSet::default();
        set.insert(t.clone());
        self.remove_all(&set) == 1
    }

    /// Removes every row while retaining the arena's and dedup table's
    /// allocations (indexes are dropped). Fixpoint engines recycle their
    /// staging relations through this, so the steady state stages rounds
    /// without allocating.
    pub fn clear_rows(&mut self) {
        self.pool.clear();
        self.hashes.clear();
        self.supports.clear();
        self.dedup.clear_retaining();
        self.indexes.clear();
        self.len = 0;
    }
}

/// A resolved `(relation, index)` pair: one mask lookup buys a whole block
/// of probes. See [`Relation::index_probe`].
#[derive(Clone, Copy)]
pub struct IndexProbe<'r> {
    rel: &'r Relation,
    index: &'r Index,
}

impl<'r> IndexProbe<'r> {
    /// As [`Relation::probe_ids_in`], minus the per-call index resolution
    /// (and never `None` — holding the handle proves the index exists).
    #[inline]
    pub fn probe_in(
        &self,
        hash: u64,
        range: Option<(u32, u32)>,
        key_eq: impl FnMut(&[Const]) -> bool,
    ) -> &'r [u32] {
        let ids = self.index.probe(hash, |rid| self.rel.row(rid), key_eq);
        narrow(ids, range, self.rel.len)
    }
}

/// Restricts an ascending posting list to the id range `[lo, hi)`. Deltas
/// are suffixes of their relation, so `hi` is almost always the current
/// length and `lo == 0` means no lower restriction — both cases skip their
/// binary search.
#[inline]
fn narrow(ids: &[u32], range: Option<(u32, u32)>, len: u32) -> &[u32] {
    match range {
        Some((lo, hi)) => {
            let from = if lo == 0 {
                0
            } else {
                ids.partition_point(|&id| id < lo)
            };
            let to = if hi >= len {
                ids.len()
            } else {
                ids.partition_point(|&id| id < hi)
            };
            &ids[from..to]
        }
        None => ids,
    }
}

/// Iterator over a contiguous id range of a relation, yielding arena rows.
#[derive(Clone, Copy)]
pub struct Rows<'a> {
    rel: &'a Relation,
    next: u32,
    end: u32,
}

impl<'a> Iterator for Rows<'a> {
    type Item = &'a [Const];

    #[inline]
    fn next(&mut self) -> Option<&'a [Const]> {
        if self.next >= self.end {
            return None;
        }
        let row = self.rel.row(self.next);
        self.next += 1;
        Some(row)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = (self.end - self.next) as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for Rows<'_> {}

impl fmt::Debug for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Relation(arity={}, {} tuples)", self.arity, self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::tuple_of_syms;

    fn edges() -> Relation {
        let mut r = Relation::new(2);
        for (a, b) in [("a", "b"), ("b", "c"), ("a", "c")] {
            r.insert(tuple_of_syms(&[a, b]));
        }
        r
    }

    #[test]
    fn insert_deduplicates() {
        let mut r = Relation::new(2);
        assert!(r.insert(tuple_of_syms(&["a", "b"])));
        assert!(!r.insert(tuple_of_syms(&["a", "b"])));
        assert_eq!(r.len(), 1);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_is_enforced() {
        let mut r = Relation::new(2);
        r.insert(tuple_of_syms(&["a"]));
    }

    #[test]
    fn probe_without_index_scans() {
        let r = edges();
        let mask = Mask::of_columns(&[0]);
        let key = [Const::sym("a")];
        let (it, indexed) = r.probe(mask, &key);
        assert!(!indexed);
        assert_eq!(it.count(), 2);
    }

    #[test]
    fn probe_with_index() {
        let mut r = edges();
        let mask = Mask::of_columns(&[0]);
        r.ensure_index(mask);
        assert!(r.has_index(mask));
        let key = [Const::sym("a")];
        let (it, indexed) = r.probe(mask, &key);
        assert!(indexed);
        let got: Vec<_> = it.collect();
        assert_eq!(got.len(), 2);
        // Missing key yields nothing.
        assert_eq!(r.select(mask, &[Const::sym("zzz")]).len(), 0);
    }

    #[test]
    fn index_is_maintained_on_insert() {
        let mut r = edges();
        let mask = Mask::of_columns(&[1]);
        r.ensure_index(mask);
        r.insert(tuple_of_syms(&["d", "c"]));
        assert_eq!(r.select(mask, &[Const::sym("c")]).len(), 3);
    }

    #[test]
    fn empty_mask_probes_everything() {
        let r = edges();
        let (it, indexed) = r.probe(Mask(0), &[]);
        assert!(!indexed);
        assert_eq!(it.count(), 3);
    }

    #[test]
    fn multi_column_mask() {
        let mut r = edges();
        let mask = Mask::of_columns(&[0, 1]);
        r.ensure_index(mask);
        assert_eq!(r.select(mask, &[Const::sym("a"), Const::sym("c")]).len(), 1);
        assert_eq!(mask.columns().collect::<Vec<_>>(), vec![0, 1]);
        assert_eq!(mask.count(), 2);
    }

    #[test]
    fn since_slices_new_tuples() {
        let mut r = edges();
        let watermark = r.len();
        r.insert(tuple_of_syms(&["x", "y"]));
        assert_eq!(r.since(watermark).len(), 1);
        assert_eq!(r.since(0).len(), 4);
        assert_eq!(r.since(999).len(), 0);
    }

    #[test]
    fn iteration_is_insertion_ordered() {
        let r = edges();
        let first = r.iter().next().unwrap();
        assert_eq!(first, tuple_of_syms(&["a", "b"]).values());
    }

    #[test]
    fn probe_ids_are_ascending_and_exact() {
        let mut r = Relation::new(2);
        for i in 0..100u32 {
            r.insert(Tuple::new(vec![
                Const::int(i64::from(i % 3)),
                Const::int(i64::from(i)),
            ]));
        }
        let mask = Mask::of_columns(&[0]);
        r.ensure_index(mask);
        let key = [Const::int(1)];
        let ids = r
            .probe_ids(mask, hash_row(&key), |rep| rep[0] == key[0])
            .unwrap();
        assert!(ids.windows(2).all(|w| w[0] < w[1]), "posting list sorted");
        assert_eq!(ids.len(), 33); // i % 3 == 1 for i in 0..100

        for &id in ids {
            assert_eq!(r.row(id)[0], Const::int(1));
        }
    }

    #[test]
    fn arity_zero_relation() {
        // The propositional edge case: one possible row, the empty one.
        let mut r = Relation::new(0);
        assert!(r.is_empty());
        assert!(!r.contains_row(&[]));
        assert!(r.insert_row(&[]));
        assert!(!r.insert_row(&[]), "the empty row is a duplicate of itself");
        assert_eq!(r.len(), 1);
        assert!(r.contains_row(&[]));
        assert_eq!(r.iter().count(), 1);
        assert_eq!(r.iter().next().unwrap(), &[] as &[Const]);
        assert!(r.remove(&Tuple::new(Vec::new())));
        assert!(r.is_empty());
        assert!(!r.contains_row(&[]));
    }

    #[test]
    fn arity_sixtyfour_mask_limit() {
        // Mask bit 63 is the last legal column; a 64-column relation works
        // end to end (insert, dedup, index on the top column, probe).
        let row: Vec<Const> = (0..64).map(Const::int).collect();
        let mut r = Relation::new(64);
        assert!(r.insert_row(&row));
        assert!(!r.insert_row(&row));
        let mask = Mask::of_columns(&[63]);
        r.ensure_index(mask);
        assert_eq!(r.select(mask, &[Const::int(63)]).len(), 1);
        assert_eq!(r.select(mask, &[Const::int(0)]).len(), 0);
        let mut other = row.clone();
        other[63] = Const::int(999);
        assert!(r.insert_row(&other));
        assert_eq!(r.len(), 2);
        assert_eq!(r.select(mask, &[Const::int(999)]).len(), 1);
    }

    #[test]
    #[should_panic(expected = "arity limit is 64")]
    fn mask_rejects_column_64() {
        Mask::of_columns(&[64]);
    }

    #[test]
    fn remove_all_rebuilds_ids_indexes_and_dedup() {
        let mut r = Relation::new(2);
        let mask = Mask::of_columns(&[0]);
        r.ensure_index(mask);
        for i in 0..10 {
            r.insert(Tuple::new(vec![Const::int(i % 2), Const::int(i)]));
        }
        let mut victims = alexander_ir::FxHashSet::default();
        for i in 0..5 {
            victims.insert(Tuple::new(vec![Const::int(i % 2), Const::int(i)]));
        }
        assert_eq!(r.remove_all(&victims), 5);
        assert_eq!(r.len(), 5);
        // Ids are re-densified: the survivors are rows 0..5 in their old
        // relative order, the index reflects exactly them, and re-inserting
        // a victim succeeds (the dedup table forgot it).
        assert_eq!(r.select(mask, &[Const::int(1)]).len(), 3); // 5, 7, 9
        assert!(!r.contains(&Tuple::new(vec![Const::int(0), Const::int(4)])));
        assert!(r.insert(Tuple::new(vec![Const::int(0), Const::int(4)])));
        assert_eq!(r.select(mask, &[Const::int(0)]).len(), 3); // 6, 8, new 4
    }

    #[test]
    fn both_removal_paths_agree_with_a_model() {
        // Drive the swap path and the compaction path over the same
        // victim sets and check every observable against a model: length,
        // membership, dedup (re-insertion), index probes, supports.
        for compact in [false, true] {
            let mut r = Relation::new(2);
            let m0 = Mask::of_columns(&[0]);
            let m01 = Mask::of_columns(&[0, 1]);
            r.ensure_index(m0);
            r.ensure_index(m01);
            let mut model: Vec<(i64, i64)> = Vec::new();
            for i in 0..60 {
                r.insert(Tuple::new(vec![Const::int(i % 5), Const::int(i)]));
                model.push((i % 5, i));
                let id = r.len() as u32 - 1;
                r.set_support(id, i as u32 + 1);
            }
            let mut victims = alexander_ir::FxHashSet::default();
            for i in (0..60).step_by(3) {
                victims.insert(Tuple::new(vec![Const::int(i % 5), Const::int(i)]));
            }
            victims.insert(Tuple::new(vec![Const::int(99), Const::int(99)])); // absent
            victims.insert(Tuple::new(vec![Const::int(1)])); // wrong arity
            let dropped = if compact {
                r.remove_compact(&victims)
            } else {
                r.remove_swap(&victims)
            };
            assert_eq!(dropped, 20, "compact={compact}");
            model.retain(|&(_, i)| i % 3 != 0);
            assert_eq!(r.len(), model.len());
            for &(k, i) in &model {
                let row = [Const::int(k), Const::int(i)];
                let id = r.id_of(&row).expect("survivor present");
                assert_eq!(r.support(id), i as u32 + 1, "support followed the row");
            }
            for k in 0..5i64 {
                let want = model.iter().filter(|&&(a, _)| a == k).count();
                assert_eq!(r.select(m0, &[Const::int(k)]).len(), want, "k={k}");
            }
            // Posting lists stay ascending (binary-search probes rely on it).
            for index in r.indexes.values() {
                for grp in &index.groups {
                    assert!(grp.ids.windows(2).all(|w| w[0] < w[1]), "sorted postings");
                }
            }
            // The dedup table forgot the victims and still dedups survivors.
            assert!(r.insert(Tuple::new(vec![Const::int(0), Const::int(0)])));
            assert!(!r.insert(Tuple::new(vec![Const::int(1), Const::int(1)])));
        }
    }

    #[test]
    fn swap_removal_drops_emptied_groups_and_redirects_moved_ones() {
        // One group per key under the full mask: removals empty groups
        // constantly, exercising group swap_remove + table redirection.
        let mut r = Relation::new(2);
        let mask = Mask::of_columns(&[0, 1]);
        r.ensure_index(mask);
        for i in 0..40i64 {
            r.insert(Tuple::new(vec![Const::int(i), Const::int(-i)]));
        }
        for i in (0..20i64).rev().map(|k| 2 * k) {
            let mut v = alexander_ir::FxHashSet::default();
            v.insert(Tuple::new(vec![Const::int(i), Const::int(-i)]));
            assert_eq!(r.remove_swap(&v), 1);
        }
        assert_eq!(r.len(), 20);
        for i in 0..40i64 {
            let key = [Const::int(i), Const::int(-i)];
            assert_eq!(r.select(mask, &key).len(), usize::from(i % 2 == 1), "i={i}");
            assert_eq!(r.contains_row(&key), i % 2 == 1);
        }
    }

    #[test]
    fn removal_dispatch_covers_both_paths() {
        // Small victim sets take the swap path, large ones the compaction;
        // either way the observable result is the same set difference.
        let build = || {
            let mut r = Relation::new(1);
            r.ensure_index(Mask::of_columns(&[0]));
            for i in 0..100i64 {
                r.insert(Tuple::new(vec![Const::int(i)]));
            }
            r
        };
        let mut small = build();
        let mut v = alexander_ir::FxHashSet::default();
        v.insert(Tuple::new(vec![Const::int(7)]));
        assert_eq!(small.remove_all(&v), 1);
        assert_eq!(small.len(), 99);
        assert!(!small.contains_row(&[Const::int(7)]));

        let mut big = build();
        let mut v = alexander_ir::FxHashSet::default();
        for i in 0..50i64 {
            v.insert(Tuple::new(vec![Const::int(i)]));
        }
        assert_eq!(big.remove_all(&v), 50);
        assert_eq!(big.len(), 50);
        for i in 0..100i64 {
            assert_eq!(big.contains_row(&[Const::int(i)]), i >= 50);
        }
    }

    #[test]
    fn duplicate_heavy_stream_grows_nothing() {
        // Hammer the dedup path: many duplicates interleaved with few
        // distinct rows, with an index live so maintenance also dedups.
        let mut r = Relation::new(1);
        r.ensure_index(Mask::of_columns(&[0]));
        let mut new = 0;
        for i in 0..10_000u32 {
            if r.insert_row(&[Const::int(i64::from(i % 17))]) {
                new += 1;
            }
        }
        assert_eq!(new, 17);
        assert_eq!(r.len(), 17);
        for k in 0..17 {
            assert_eq!(r.select(Mask::of_columns(&[0]), &[Const::int(k)]).len(), 1);
        }
    }

    #[test]
    fn support_counts_ride_insert_and_removal() {
        let mut r = Relation::new(2);
        for i in 0..6 {
            r.insert(Tuple::new(vec![Const::int(i % 2), Const::int(i)]));
        }
        // Fresh rows start unsupported; counts are settable and saturate.
        assert!(r.supports().iter().all(|&s| s == 0));
        let id = r.id_of(&[Const::int(1), Const::int(3)]).unwrap();
        assert_eq!(r.add_support(id, 2), 2);
        assert_eq!(r.sub_support(id, 1), 1);
        assert_eq!(r.sub_support(id, 5), 0, "saturates at zero");
        r.set_support(id, 7);
        for i in 0..6u32 {
            let rid = r.id_of(&[Const::int(i64::from(i % 2)), Const::int(i64::from(i))]);
            r.set_support(rid.unwrap(), i + 1);
        }
        // Deletion re-densifies ids but survivors keep their counts.
        let mut victims = alexander_ir::FxHashSet::default();
        victims.insert(Tuple::new(vec![Const::int(0), Const::int(2)]));
        victims.insert(Tuple::new(vec![Const::int(1), Const::int(5)]));
        assert_eq!(r.remove_all(&victims), 2);
        for i in [0u32, 1, 3, 4] {
            let rid = r
                .id_of(&[Const::int(i64::from(i % 2)), Const::int(i64::from(i))])
                .unwrap();
            assert_eq!(r.support(rid), i + 1, "row {i} kept its count");
        }
        // clear_rows drops the column with the rest of the arena.
        r.clear_rows();
        assert!(r.supports().is_empty());
    }

    #[test]
    fn support_survives_arity_zero_removal() {
        let mut r = Relation::new(0);
        r.insert_row(&[]);
        r.set_support(0, 3);
        // A removal that misses keeps the row and its count.
        let mut victims = alexander_ir::FxHashSet::default();
        victims.insert(Tuple::new(vec![Const::int(9)]));
        assert_eq!(r.remove_all(&victims), 0);
        assert_eq!(r.support(0), 3);
    }

    #[test]
    fn id_of_resolves_rows_and_misses_cleanly() {
        let r = edges();
        let id = r.id_of(tuple_of_syms(&["b", "c"]).values()).unwrap();
        assert_eq!(r.row(id), tuple_of_syms(&["b", "c"]).values());
        assert!(r.id_of(tuple_of_syms(&["z", "z"]).values()).is_none());
        assert!(r.id_of(&[Const::sym("a")]).is_none(), "arity mismatch");
    }

    #[test]
    fn hash_collisions_stay_distinct_groups() {
        // Even if two projections collided on the 64-bit hash, the
        // representative-row comparison keeps their groups apart. We cannot
        // easily force a collision, but we can at least verify that probes
        // with equal single-column values and different other columns group
        // correctly under a multi-column index.
        let mut r = Relation::new(2);
        let mask = Mask::of_columns(&[0, 1]);
        r.ensure_index(mask);
        for i in 0..50 {
            r.insert(Tuple::new(vec![Const::int(i / 10), Const::int(i % 10)]));
        }
        for i in 0..50 {
            let key = [Const::int(i / 10), Const::int(i % 10)];
            assert_eq!(r.select(mask, &key).len(), 1, "key {key:?}");
        }
    }
}
