//! Ground tuples — the unit of storage.

use alexander_ir::{Atom, Const, Term};
use std::fmt;

/// A ground tuple of constants.
///
/// Stored as a boxed slice: two words on the stack, no spare capacity.
/// Equality and hashing reduce to hashing a few `Const` words (interned
/// symbols are integers).
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tuple(Box<[Const]>);

impl Tuple {
    /// Builds a tuple from constants.
    pub fn new(consts: impl Into<Box<[Const]>>) -> Tuple {
        Tuple(consts.into())
    }

    /// The tuple of a ground atom's arguments, `None` if the atom has
    /// variables.
    pub fn from_atom(atom: &Atom) -> Option<Tuple> {
        let consts: Option<Box<[Const]>> = atom.terms.iter().map(|t| t.as_const()).collect();
        consts.map(Tuple)
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// The constants.
    pub fn values(&self) -> &[Const] {
        &self.0
    }

    /// The constant in column `i`.
    pub fn get(&self, i: usize) -> Const {
        self.0[i]
    }

    /// Projects the tuple onto the given columns (used as index keys).
    pub fn project(&self, columns: &[usize]) -> Vec<Const> {
        columns.iter().map(|&c| self.0[c]).collect()
    }

    /// Rebuilds a ground atom with predicate name `pred`.
    pub fn to_atom(&self, pred: alexander_ir::Symbol) -> Atom {
        Atom {
            pred,
            terms: self.0.iter().map(|&c| Term::Const(c)).collect(),
        }
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, ")")
    }
}

impl fmt::Debug for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl From<Vec<Const>> for Tuple {
    fn from(v: Vec<Const>) -> Tuple {
        Tuple(v.into_boxed_slice())
    }
}

/// Rebuilds a ground atom from an arena row (the row-slice counterpart of
/// [`Tuple::to_atom`], for call sites that iterate relations without
/// materialising tuples).
pub fn row_atom(pred: alexander_ir::Symbol, row: &[Const]) -> Atom {
    Atom {
        pred,
        terms: row.iter().map(|&c| Term::Const(c)).collect(),
    }
}

/// Shorthand for building a tuple of symbolic constants in tests/examples.
pub fn tuple_of_syms(names: &[&str]) -> Tuple {
    Tuple::new(
        names
            .iter()
            .map(|n| Const::sym(n))
            .collect::<Vec<_>>()
            .into_boxed_slice(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_ground_atom() {
        let a = alexander_ir::atom("par", [Term::sym("a"), Term::int(2)]);
        let t = Tuple::from_atom(&a).unwrap();
        assert_eq!(t.arity(), 2);
        assert_eq!(t.get(0), Const::sym("a"));
        assert_eq!(t.get(1), Const::int(2));
    }

    #[test]
    fn from_non_ground_atom_is_none() {
        let a = alexander_ir::atom("par", [Term::sym("a"), Term::var("X")]);
        assert!(Tuple::from_atom(&a).is_none());
    }

    #[test]
    fn projection() {
        let t = tuple_of_syms(&["a", "b", "c"]);
        assert_eq!(t.project(&[2, 0]), vec![Const::sym("c"), Const::sym("a")]);
        assert_eq!(t.project(&[]), Vec::<Const>::new());
    }

    #[test]
    fn roundtrip_through_atom() {
        let t = tuple_of_syms(&["x", "y"]);
        let a = t.to_atom(alexander_ir::Symbol::intern("edge"));
        assert_eq!(a.to_string(), "edge(x, y)");
        assert_eq!(Tuple::from_atom(&a).unwrap(), t);
    }

    #[test]
    fn display() {
        assert_eq!(tuple_of_syms(&["a", "b"]).to_string(), "(a, b)");
        assert_eq!(Tuple::new(Vec::new().into_boxed_slice()).to_string(), "()");
    }
}
