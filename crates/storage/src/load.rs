//! Bulk-loading relations from delimited text (CSV/TSV).
//!
//! Downstream users keep their extensional data in flat files; this module
//! turns them into [`Database`] relations without going through the program
//! parser. Each line is one tuple; each cell is an integer if it parses as
//! one, otherwise a symbolic constant (surrounding whitespace trimmed).

use crate::database::Database;
use crate::tuple::Tuple;
use alexander_ir::{Const, Predicate};
use std::fmt;
use std::io::BufRead;

/// Errors from bulk loading.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LoadError {
    /// 1-based line number.
    pub line: usize,
    pub message: String,
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "load error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for LoadError {}

/// Parses one cell: integers when they look like one, symbols otherwise.
fn cell(s: &str) -> Const {
    let s = s.trim();
    match s.parse::<i64>() {
        Ok(n) => Const::Int(n),
        Err(_) => Const::sym(s),
    }
}

/// Loads tuples for `pred` from `reader`, one tuple per line, cells split on
/// `delimiter`. Empty lines and lines starting with `#` are skipped. Every
/// data line must have exactly `pred.arity` cells. Returns the number of
/// *new* tuples.
pub fn load_delimited(
    db: &mut Database,
    pred: Predicate,
    reader: impl BufRead,
    delimiter: char,
) -> Result<usize, LoadError> {
    let mut added = 0usize;
    for (i, line) in reader.lines().enumerate() {
        let lineno = i + 1;
        let line = line.map_err(|e| LoadError {
            line: lineno,
            message: e.to_string(),
        })?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let cells: Vec<Const> = trimmed.split(delimiter).map(cell).collect();
        if cells.len() != pred.arity {
            return Err(LoadError {
                line: lineno,
                message: format!(
                    "expected {} cells for {pred}, found {}",
                    pred.arity,
                    cells.len()
                ),
            });
        }
        if db.insert(pred, Tuple::from(cells)) {
            added += 1;
        }
    }
    Ok(added)
}

/// [`load_delimited`] over a file path; the delimiter defaults by extension
/// (`.tsv` → tab, otherwise comma).
pub fn load_file(
    db: &mut Database,
    pred: Predicate,
    path: &std::path::Path,
) -> Result<usize, LoadError> {
    let delimiter = match path.extension().and_then(|e| e.to_str()) {
        Some("tsv") => '\t',
        _ => ',',
    };
    let file = std::fs::File::open(path).map_err(|e| LoadError {
        line: 0,
        message: format!("{}: {e}", path.display()),
    })?;
    load_delimited(db, pred, std::io::BufReader::new(file), delimiter)
}

#[cfg(test)]
mod tests {
    use super::*;
    use alexander_ir::Term;

    #[test]
    fn loads_csv_with_mixed_cell_types() {
        let mut db = Database::new();
        let pred = Predicate::new("score", 2);
        let n = load_delimited(
            &mut db,
            pred,
            "alice, 10\nbob, 25\n\n# comment\ncarol, -3\n".as_bytes(),
            ',',
        )
        .unwrap();
        assert_eq!(n, 3);
        assert!(db.contains_atom(&alexander_ir::atom(
            "score",
            [Term::sym("alice"), Term::int(10)]
        )));
        assert!(db.contains_atom(&alexander_ir::atom(
            "score",
            [Term::sym("carol"), Term::int(-3)]
        )));
    }

    #[test]
    fn duplicate_lines_count_once() {
        let mut db = Database::new();
        let pred = Predicate::new("e", 2);
        let n = load_delimited(&mut db, pred, "a,b\na,b\nb,c\n".as_bytes(), ',').unwrap();
        assert_eq!(n, 2);
        assert_eq!(db.len_of(pred), 2);
    }

    #[test]
    fn arity_mismatch_is_located() {
        let mut db = Database::new();
        let pred = Predicate::new("e", 2);
        let err = load_delimited(&mut db, pred, "a,b\na,b,c\n".as_bytes(), ',').unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("expected 2 cells"), "{err}");
    }

    #[test]
    fn tsv_delimiter() {
        let mut db = Database::new();
        let pred = Predicate::new("e", 3);
        let n = load_delimited(&mut db, pred, "a\tb\t7\n".as_bytes(), '\t').unwrap();
        assert_eq!(n, 1);
    }

    #[test]
    fn file_loading_by_extension() {
        let dir = std::env::temp_dir();
        let path = dir.join("alexander_load_test.csv");
        std::fs::write(&path, "x,y\ny,z\n").unwrap();
        let mut db = Database::new();
        let n = load_file(&mut db, Predicate::new("e", 2), &path).unwrap();
        assert_eq!(n, 2);
        std::fs::remove_file(&path).ok();

        let missing = dir.join("alexander_definitely_missing.csv");
        assert!(load_file(&mut db, Predicate::new("e", 2), &missing).is_err());
    }

    #[test]
    fn loaded_relation_feeds_evaluation() {
        // End-to-end within the crate: loaded tuples are ordinary relation
        // rows (indexable, probe-able).
        let mut db = Database::new();
        let pred = Predicate::new("e", 2);
        load_delimited(&mut db, pred, "1,2\n2,3\n3,4\n".as_bytes(), ',').unwrap();
        db.ensure_index(pred, crate::relation::Mask::of_columns(&[0]));
        let rel = db.relation(pred).unwrap();
        let key = [Const::Int(2)];
        let (hits, indexed) = rel.probe(crate::relation::Mask::of_columns(&[0]), &key);
        assert!(indexed);
        assert_eq!(hits.count(), 1);
    }
}
