//! Bulk-loading relations from delimited text (CSV/TSV).
//!
//! Downstream users keep their extensional data in flat files; this module
//! turns them into [`Database`] relations without going through the program
//! parser. Each line is one tuple; each cell is an integer if it parses as
//! one, otherwise a symbolic constant (surrounding whitespace trimmed).
//!
//! Errors carry everything needed to fix the input without opening it: the
//! file path (when loading from one), the 1-based line number, and the
//! offending token when one can be pinpointed. Malformed input — truncated
//! lines, wrong arity, non-UTF-8 bytes — is always a [`LoadError`], never a
//! panic.

use crate::database::Database;
use crate::tuple::Tuple;
use alexander_ir::{Const, Predicate};
use std::fmt;
use std::io::BufRead;
use std::path::PathBuf;

/// Errors from bulk loading: located, self-describing, displayable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LoadError {
    /// The file being loaded, when known (`None` for in-memory readers).
    pub path: Option<PathBuf>,
    /// 1-based line number; 0 when the failure precedes any line (e.g. the
    /// file could not be opened).
    pub line: usize,
    /// The offending token (a cell, or the whole line), when one exists.
    pub token: Option<String>,
    pub message: String,
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "load error")?;
        if let Some(p) = &self.path {
            write!(f, " in {}", p.display())?;
        }
        if self.line > 0 {
            write!(f, " at line {}", self.line)?;
        }
        write!(f, ": {}", self.message)?;
        if let Some(t) = &self.token {
            write!(f, " (offending input: `{t}`)")?;
        }
        Ok(())
    }
}

impl std::error::Error for LoadError {}

impl LoadError {
    fn at(line: usize, message: impl Into<String>) -> LoadError {
        LoadError {
            path: None,
            line,
            token: None,
            message: message.into(),
        }
    }

    fn with_token(mut self, token: impl Into<String>) -> LoadError {
        self.token = Some(token.into());
        self
    }

    /// Stamps the file path onto an error produced by a path-less reader.
    fn in_file(mut self, path: &std::path::Path) -> LoadError {
        self.path = Some(path.to_path_buf());
        self
    }
}

/// Parses one cell: integers when they look like one, symbols otherwise.
fn cell(s: &str) -> Const {
    let s = s.trim();
    match s.parse::<i64>() {
        Ok(n) => Const::Int(n),
        Err(_) => Const::sym(s),
    }
}

/// Loads tuples for `pred` from `reader`, one tuple per line, cells split on
/// `delimiter`. Empty lines and lines starting with `#` are skipped. Every
/// data line must have exactly `pred.arity` cells. Returns the number of
/// *new* tuples.
pub fn load_delimited(
    db: &mut Database,
    pred: Predicate,
    reader: impl BufRead,
    delimiter: char,
) -> Result<usize, LoadError> {
    let mut added = 0usize;
    for (i, line) in reader.lines().enumerate() {
        let lineno = i + 1;
        // Non-UTF-8 bytes surface here as `InvalidData`; keep the io error
        // text (it names the kind) but pin it to the line it happened on.
        let line = line.map_err(|e| LoadError::at(lineno, e.to_string()))?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let cells: Vec<Const> = trimmed.split(delimiter).map(cell).collect();
        if cells.len() != pred.arity {
            return Err(LoadError::at(
                lineno,
                format!(
                    "expected {} cells for {pred}, found {}",
                    pred.arity,
                    cells.len()
                ),
            )
            .with_token(trimmed));
        }
        if db.insert(pred, Tuple::from(cells)) {
            added += 1;
        }
    }
    Ok(added)
}

/// [`load_delimited`] over a file path; the delimiter defaults by extension
/// (`.tsv` → tab, otherwise comma). Errors name the file.
pub fn load_file(
    db: &mut Database,
    pred: Predicate,
    path: &std::path::Path,
) -> Result<usize, LoadError> {
    let delimiter = match path.extension().and_then(|e| e.to_str()) {
        Some("tsv") => '\t',
        _ => ',',
    };
    let file =
        std::fs::File::open(path).map_err(|e| LoadError::at(0, e.to_string()).in_file(path))?;
    load_delimited(db, pred, std::io::BufReader::new(file), delimiter).map_err(|e| e.in_file(path))
}

#[cfg(test)]
mod tests {
    use super::*;
    use alexander_ir::Term;

    #[test]
    fn loads_csv_with_mixed_cell_types() {
        let mut db = Database::new();
        let pred = Predicate::new("score", 2);
        let n = load_delimited(
            &mut db,
            pred,
            "alice, 10\nbob, 25\n\n# comment\ncarol, -3\n".as_bytes(),
            ',',
        )
        .unwrap();
        assert_eq!(n, 3);
        assert!(db.contains_atom(&alexander_ir::atom(
            "score",
            [Term::sym("alice"), Term::int(10)]
        )));
        assert!(db.contains_atom(&alexander_ir::atom(
            "score",
            [Term::sym("carol"), Term::int(-3)]
        )));
    }

    #[test]
    fn duplicate_lines_count_once() {
        let mut db = Database::new();
        let pred = Predicate::new("e", 2);
        let n = load_delimited(&mut db, pred, "a,b\na,b\nb,c\n".as_bytes(), ',').unwrap();
        assert_eq!(n, 2);
        assert_eq!(db.len_of(pred), 2);
    }

    #[test]
    fn arity_mismatch_is_located_with_the_offending_line() {
        let mut db = Database::new();
        let pred = Predicate::new("e", 2);
        let err = load_delimited(&mut db, pred, "a,b\na,b,c\n".as_bytes(), ',').unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("expected 2 cells"), "{err}");
        assert_eq!(err.token.as_deref(), Some("a,b,c"));
        assert!(err.to_string().contains("`a,b,c`"), "{err}");
    }

    #[test]
    fn truncated_last_line_still_loads_or_errors_cleanly() {
        // No trailing newline: the final (complete) cells still count.
        let mut db = Database::new();
        let pred = Predicate::new("e", 2);
        let n = load_delimited(&mut db, pred, "a,b\nb,c".as_bytes(), ',').unwrap();
        assert_eq!(n, 2);
        // A line cut *inside* its cells is an arity error pointing at it.
        let mut db = Database::new();
        let err = load_delimited(&mut db, pred, "a,b\nb".as_bytes(), ',').unwrap_err();
        assert_eq!(err.line, 2);
        assert_eq!(err.token.as_deref(), Some("b"));
    }

    #[test]
    fn non_utf8_bytes_are_a_located_error_not_a_panic() {
        let mut db = Database::new();
        let pred = Predicate::new("e", 2);
        let bytes: &[u8] = b"a,b\n\xFF\xFE,c\n";
        let err = load_delimited(&mut db, pred, bytes, ',').unwrap_err();
        assert_eq!(err.line, 2, "{err}");
        assert!(err.to_string().contains("line 2"), "{err}");
        // The valid prefix was inserted before the error line.
        assert_eq!(db.len_of(pred), 1);
    }

    #[test]
    fn file_errors_name_the_file() {
        let dir = std::env::temp_dir();
        let path = dir.join("alexander_load_err.csv");
        std::fs::write(&path, "x,y\nbad\n").unwrap();
        let mut db = Database::new();
        let err = load_file(&mut db, Predicate::new("e", 2), &path).unwrap_err();
        assert_eq!(err.path.as_deref(), Some(path.as_path()));
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("alexander_load_err.csv"), "{err}");
        std::fs::remove_file(&path).ok();

        let missing = dir.join("alexander_definitely_missing.csv");
        let err = load_file(&mut db, Predicate::new("e", 2), &missing).unwrap_err();
        assert_eq!(err.line, 0);
        assert!(
            err.to_string().contains("alexander_definitely_missing"),
            "{err}"
        );
    }

    #[test]
    fn tsv_delimiter() {
        let mut db = Database::new();
        let pred = Predicate::new("e", 3);
        let n = load_delimited(&mut db, pred, "a\tb\t7\n".as_bytes(), '\t').unwrap();
        assert_eq!(n, 1);
    }

    #[test]
    fn file_loading_by_extension() {
        let dir = std::env::temp_dir();
        let path = dir.join("alexander_load_test.csv");
        std::fs::write(&path, "x,y\ny,z\n").unwrap();
        let mut db = Database::new();
        let n = load_file(&mut db, Predicate::new("e", 2), &path).unwrap();
        assert_eq!(n, 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn loaded_relation_feeds_evaluation() {
        // End-to-end within the crate: loaded tuples are ordinary relation
        // rows (indexable, probe-able).
        let mut db = Database::new();
        let pred = Predicate::new("e", 2);
        load_delimited(&mut db, pred, "1,2\n2,3\n3,4\n".as_bytes(), ',').unwrap();
        db.ensure_index(pred, crate::relation::Mask::of_columns(&[0]));
        let rel = db.relation(pred).unwrap();
        let key = [Const::Int(2)];
        let (hits, indexed) = rel.probe(crate::relation::Mask::of_columns(&[0]), &key);
        assert!(indexed);
        assert_eq!(hits.count(), 1);
    }
}
