//! A database: one relation per predicate.

use crate::relation::{Mask, Relation};
use crate::tuple::Tuple;
use alexander_ir::{Atom, FxHashMap, Predicate, Program};
use std::fmt;

/// A set of named relations. Used for the EDB, for materialised IDB results,
/// and for the delta stores of semi-naive evaluation.
#[derive(Clone, Default)]
pub struct Database {
    relations: FxHashMap<Predicate, Relation>,
}

impl Database {
    /// An empty database.
    pub fn new() -> Database {
        Database::default()
    }

    /// Loads the inline facts of `program` into a fresh database.
    pub fn from_program(program: &Program) -> Database {
        let mut db = Database::new();
        for f in &program.facts {
            // invariant: `Program::validate` rejects non-ground facts, and
            // every caller validates before loading.
            db.insert_atom(f).expect("inline facts are ground");
        }
        db
    }

    /// The relation for `pred`, if it exists.
    pub fn relation(&self, pred: Predicate) -> Option<&Relation> {
        self.relations.get(&pred)
    }

    /// The relation for `pred`, created empty on first access.
    pub fn relation_mut(&mut self, pred: Predicate) -> &mut Relation {
        self.relations
            .entry(pred)
            .or_insert_with(|| Relation::new(pred.arity))
    }

    /// Inserts a tuple for `pred`; returns `true` if new.
    pub fn insert(&mut self, pred: Predicate, t: Tuple) -> bool {
        self.relation_mut(pred).insert(t)
    }

    /// Inserts a ground atom as a fact. Returns `Ok(true)` if new,
    /// `Ok(false)` if duplicate, `Err` if the atom has variables.
    pub fn insert_atom(&mut self, atom: &Atom) -> Result<bool, NonGround> {
        let t = Tuple::from_atom(atom).ok_or_else(|| NonGround(atom.to_string()))?;
        Ok(self.insert(atom.predicate(), t))
    }

    /// True iff the ground atom is stored. Non-ground atoms are never
    /// "contained".
    pub fn contains_atom(&self, atom: &Atom) -> bool {
        let Some(t) = Tuple::from_atom(atom) else {
            return false;
        };
        self.relations
            .get(&atom.predicate())
            .is_some_and(|r| r.contains(&t))
    }

    /// Number of tuples for `pred` (0 if absent).
    pub fn len_of(&self, pred: Predicate) -> usize {
        self.relations.get(&pred).map_or(0, |r| r.len())
    }

    /// Total number of tuples across all relations.
    pub fn total_tuples(&self) -> usize {
        self.relations.values().map(|r| r.len()).sum()
    }

    /// Iterates over `(predicate, relation)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (Predicate, &Relation)> + '_ {
        self.relations.iter().map(|(&p, r)| (p, r))
    }

    /// The stored predicates, sorted for deterministic output.
    pub fn predicates(&self) -> Vec<Predicate> {
        let mut ps: Vec<Predicate> = self.relations.keys().copied().collect();
        ps.sort();
        ps
    }

    /// All facts of `pred` as ground atoms, in insertion order.
    pub fn atoms_of(&self, pred: Predicate) -> Vec<Atom> {
        self.relations
            .get(&pred)
            .map(|r| r.iter().map(|t| t.to_atom(pred.name)).collect())
            .unwrap_or_default()
    }

    /// Merges every tuple of `other` into `self`; returns the number of new
    /// tuples.
    pub fn merge(&mut self, other: &Database) -> usize {
        let mut added = 0;
        for (p, r) in other.iter() {
            let target = self.relation_mut(p);
            for t in r.iter() {
                if target.insert(t.clone()) {
                    added += 1;
                }
            }
        }
        added
    }

    /// Ensures an index on `pred` for `mask` (no-op if the relation is
    /// absent; it will be created on first insert and indexed then via
    /// `ensure_index` being called again by the planner).
    pub fn ensure_index(&mut self, pred: Predicate, mask: Mask) {
        self.relation_mut(pred).ensure_index(mask);
    }

    /// Removes a ground atom; returns whether it was present.
    pub fn remove_atom(&mut self, atom: &Atom) -> bool {
        let Some(t) = Tuple::from_atom(atom) else {
            return false;
        };
        self.relations
            .get_mut(&atom.predicate())
            .is_some_and(|r| r.remove(&t))
    }

    /// Removes a set of tuples from `pred`'s relation; returns how many were
    /// present.
    pub fn remove_tuples(
        &mut self,
        pred: Predicate,
        victims: &alexander_ir::FxHashSet<Tuple>,
    ) -> usize {
        self.relations
            .get_mut(&pred)
            .map_or(0, |r| r.remove_all(victims))
    }

    /// An explicitly read-only view of this database for the duration of a
    /// parallel round. The view is `Copy` and hands out only `&`-access, so
    /// worker threads can share it freely; the type guarantees no interior
    /// mutation happens while workers are joining against it.
    pub fn freeze(&self) -> Frozen<'_> {
        Frozen { db: self }
    }

    /// Every constant appearing in any stored tuple, deduplicated, in first-
    /// seen order (the database's active domain).
    pub fn active_domain(&self) -> Vec<alexander_ir::Const> {
        let mut seen = alexander_ir::FxHashSet::default();
        let mut out = Vec::new();
        for p in self.predicates() {
            if let Some(r) = self.relations.get(&p) {
                for t in r.iter() {
                    for &c in t.values() {
                        if seen.insert(c) {
                            out.push(c);
                        }
                    }
                }
            }
        }
        out
    }
}

/// A frozen, shareable snapshot of a [`Database`] taken for one evaluation
/// round. All reads go through `Deref<Target = Database>`; there is no path
/// to a `&mut Database`, which makes "workers only read the round's total"
/// a compile-time property rather than a convention.
#[derive(Clone, Copy)]
pub struct Frozen<'a> {
    db: &'a Database,
}

impl<'a> Frozen<'a> {
    /// The underlying shared reference (for APIs that take `&Database`).
    pub fn db(self) -> &'a Database {
        self.db
    }
}

impl std::ops::Deref for Frozen<'_> {
    type Target = Database;

    fn deref(&self) -> &Database {
        self.db
    }
}

/// Error: tried to store a non-ground atom.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NonGround(pub String);

impl fmt::Display for NonGround {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot store non-ground atom `{}`", self.0)
    }
}

impl std::error::Error for NonGround {}

impl fmt::Debug for Database {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut ps = self.predicates();
        ps.truncate(8);
        write!(f, "Database({} tuples; ", self.total_tuples())?;
        for p in ps {
            write!(f, "{p}:{} ", self.len_of(p))?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::tuple_of_syms;
    use alexander_ir::{atom, Term};

    #[test]
    fn insert_and_contains_atoms() {
        let mut db = Database::new();
        let a = atom("par", [Term::sym("a"), Term::sym("b")]);
        assert_eq!(db.insert_atom(&a), Ok(true));
        assert_eq!(db.insert_atom(&a), Ok(false));
        assert!(db.contains_atom(&a));
        assert!(!db.contains_atom(&atom("par", [Term::sym("b"), Term::sym("a")])));
        assert_eq!(db.len_of(Predicate::new("par", 2)), 1);
    }

    #[test]
    fn non_ground_insert_is_an_error() {
        let mut db = Database::new();
        let a = atom("par", [Term::sym("a"), Term::var("X")]);
        assert!(db.insert_atom(&a).is_err());
        assert!(!db.contains_atom(&a));
    }

    #[test]
    fn same_name_different_arity_are_separate() {
        let mut db = Database::new();
        db.insert(Predicate::new("p", 1), tuple_of_syms(&["a"]));
        db.insert(Predicate::new("p", 2), tuple_of_syms(&["a", "b"]));
        assert_eq!(db.len_of(Predicate::new("p", 1)), 1);
        assert_eq!(db.len_of(Predicate::new("p", 2)), 1);
        assert_eq!(db.total_tuples(), 2);
    }

    #[test]
    fn merge_counts_new_tuples_only() {
        let mut a = Database::new();
        a.insert(Predicate::new("e", 1), tuple_of_syms(&["x"]));
        let mut b = Database::new();
        b.insert(Predicate::new("e", 1), tuple_of_syms(&["x"]));
        b.insert(Predicate::new("e", 1), tuple_of_syms(&["y"]));
        assert_eq!(a.merge(&b), 1);
        assert_eq!(a.len_of(Predicate::new("e", 1)), 2);
    }

    #[test]
    fn from_program_loads_inline_facts() {
        let mut p = Program::new();
        p.facts.push(atom("e", [Term::sym("a"), Term::sym("b")]));
        p.facts.push(atom("n", [Term::sym("a")]));
        let db = Database::from_program(&p);
        assert_eq!(db.total_tuples(), 2);
    }

    #[test]
    fn active_domain_dedups() {
        let mut db = Database::new();
        db.insert(Predicate::new("e", 2), tuple_of_syms(&["a", "b"]));
        db.insert(Predicate::new("e", 2), tuple_of_syms(&["b", "c"]));
        let d = db.active_domain();
        assert_eq!(d.len(), 3);
    }

    #[test]
    fn frozen_view_reads_like_the_database() {
        let mut db = Database::new();
        db.insert(Predicate::new("e", 2), tuple_of_syms(&["a", "b"]));
        let frozen = db.freeze();
        let again = frozen; // Copy: multiple workers can hold it.
        assert_eq!(frozen.total_tuples(), 1);
        assert_eq!(again.len_of(Predicate::new("e", 2)), 1);
        assert!(frozen.db().relation(Predicate::new("e", 2)).is_some());
    }

    #[test]
    fn atoms_of_roundtrip() {
        let mut db = Database::new();
        let a = atom("e", [Term::sym("a"), Term::sym("b")]);
        db.insert_atom(&a).unwrap();
        assert_eq!(db.atoms_of(Predicate::new("e", 2)), vec![a]);
        assert!(db.atoms_of(Predicate::new("zzz", 1)).is_empty());
    }
}
