//! A database: one relation per predicate.

use crate::relation::{Mask, Relation};
use crate::tuple::{row_atom, Tuple};
use alexander_ir::{Atom, Const, FxHashMap, Predicate, Program};
use std::fmt;
use std::sync::Arc;

/// A set of named relations. Used for the EDB, for materialised IDB results,
/// and for the delta stores of semi-naive evaluation.
///
/// Relations are held behind `Arc` with copy-on-write semantics: cloning a
/// database is O(#relations) refcount bumps, and a later mutation copies
/// only the relation it touches (`Arc::make_mut`). Value semantics are
/// unchanged — two clones never observe each other's writes — but an *epoch
/// snapshot* (clone the database, keep reading it while the original keeps
/// committing) costs nothing per row. On the unshared hot path
/// `Arc::make_mut` is a refcount check, not a copy.
#[derive(Clone, Default)]
pub struct Database {
    relations: FxHashMap<Predicate, Arc<Relation>>,
}

impl Database {
    /// An empty database.
    pub fn new() -> Database {
        Database::default()
    }

    /// Loads the inline facts of `program` into a fresh database.
    pub fn from_program(program: &Program) -> Database {
        let mut db = Database::new();
        for f in &program.facts {
            // invariant: `Program::validate` rejects non-ground facts, and
            // every caller validates before loading.
            db.insert_atom(f).expect("inline facts are ground");
        }
        db
    }

    /// The relation for `pred`, if it exists.
    pub fn relation(&self, pred: Predicate) -> Option<&Relation> {
        self.relations.get(&pred).map(Arc::as_ref)
    }

    /// The relation for `pred`, created empty on first access. If the
    /// relation's arena is shared with an epoch clone, it is copied here
    /// first (copy-on-write) so the clone's view stays frozen.
    pub fn relation_mut(&mut self, pred: Predicate) -> &mut Relation {
        Arc::make_mut(
            self.relations
                .entry(pred)
                .or_insert_with(|| Arc::new(Relation::new(pred.arity))),
        )
    }

    /// True iff `self` and `other` share `pred`'s arena physically (epoch
    /// clones share until one side writes). Diagnostic for tests; absent
    /// relations never count as shared.
    pub fn shares_relation(&self, other: &Database, pred: Predicate) -> bool {
        match (self.relations.get(&pred), other.relations.get(&pred)) {
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }

    /// Inserts a tuple for `pred`; returns `true` if new.
    pub fn insert(&mut self, pred: Predicate, t: Tuple) -> bool {
        self.relation_mut(pred).insert(t)
    }

    /// Inserts a row slice for `pred`; returns `true` if new. The
    /// allocation-free twin of [`Database::insert`] — the row is copied
    /// straight into the relation's arena.
    pub fn insert_row(&mut self, pred: Predicate, row: &[Const]) -> bool {
        self.relation_mut(pred).insert_row(row)
    }

    /// [`Database::insert_row`] with a caller-supplied [`hash_row`] digest
    /// (hash once, then membership-check and insert off the same digest).
    ///
    /// [`hash_row`]: alexander_ir::hash_row
    pub fn insert_row_hashed(&mut self, pred: Predicate, h: u64, row: &[Const]) -> bool {
        self.relation_mut(pred).insert_row_hashed(h, row)
    }

    /// [`Relation::push_new_row_hashed`] on `pred`'s relation: appends a row
    /// the caller has already proven absent (e.g. via
    /// [`Database::contains_row_hashed`] with the same digest), skipping the
    /// dedup find that [`Database::insert_row_hashed`] would repeat.
    ///
    /// [`Relation::push_new_row_hashed`]: crate::relation::Relation::push_new_row_hashed
    pub fn push_new_row_hashed(&mut self, pred: Predicate, h: u64, row: &[Const]) {
        self.relation_mut(pred).push_new_row_hashed(h, row);
    }

    /// True iff `pred` stores exactly this row.
    pub fn contains_row(&self, pred: Predicate, row: &[Const]) -> bool {
        self.relations
            .get(&pred)
            .is_some_and(|r| r.contains_row(row))
    }

    /// [`Database::contains_row`] with a caller-supplied [`hash_row`]
    /// digest.
    ///
    /// [`hash_row`]: alexander_ir::hash_row
    pub fn contains_row_hashed(&self, pred: Predicate, h: u64, row: &[Const]) -> bool {
        self.relations
            .get(&pred)
            .is_some_and(|r| r.contains_row_hashed(h, row))
    }

    /// Inserts a ground atom as a fact. Returns `Ok(true)` if new,
    /// `Ok(false)` if duplicate, `Err` if the atom has variables.
    pub fn insert_atom(&mut self, atom: &Atom) -> Result<bool, NonGround> {
        let t = Tuple::from_atom(atom).ok_or_else(|| NonGround(atom.to_string()))?;
        Ok(self.insert(atom.predicate(), t))
    }

    /// True iff the ground atom is stored. Non-ground atoms are never
    /// "contained".
    pub fn contains_atom(&self, atom: &Atom) -> bool {
        let Some(t) = Tuple::from_atom(atom) else {
            return false;
        };
        self.relations
            .get(&atom.predicate())
            .is_some_and(|r| r.contains(&t))
    }

    /// Number of tuples for `pred` (0 if absent).
    pub fn len_of(&self, pred: Predicate) -> usize {
        self.relations.get(&pred).map_or(0, |r| r.len())
    }

    /// Total number of tuples across all relations.
    pub fn total_tuples(&self) -> usize {
        self.relations.values().map(|r| r.len()).sum()
    }

    /// Iterates over `(predicate, relation)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (Predicate, &Relation)> + '_ {
        self.relations.iter().map(|(&p, r)| (p, r.as_ref()))
    }

    /// The stored predicates, sorted for deterministic output.
    pub fn predicates(&self) -> Vec<Predicate> {
        let mut ps: Vec<Predicate> = self.relations.keys().copied().collect();
        ps.sort();
        ps
    }

    /// All facts of `pred` as ground atoms, in insertion order.
    pub fn atoms_of(&self, pred: Predicate) -> Vec<Atom> {
        self.relations
            .get(&pred)
            .map(|r| r.iter().map(|row| row_atom(pred.name, row)).collect())
            .unwrap_or_default()
    }

    /// Merges every tuple of `other` into `self`; returns the number of new
    /// tuples. Rows are appended to the target arenas in `other`'s
    /// insertion order, so after a semi-naive merge the round's new facts
    /// occupy a contiguous id range per predicate (see [`DeltaSpans`]).
    pub fn merge(&mut self, other: &Database) -> usize {
        let mut added = 0;
        for (p, r) in other.iter() {
            let target = self.relation_mut(p);
            // Reuse the source relation's stored digests: a merge never
            // re-hashes what insertion already hashed. Appended rows carry
            // their source support count (duplicates keep the target's —
            // the counting engine reconciles those separately).
            for ((row, &h), &s) in r.iter().zip(r.row_hashes()).zip(r.supports()) {
                if target.insert_row_hashed(h, row) {
                    added += 1;
                    if s != 0 {
                        let id = u32::try_from(target.len() - 1).expect("relation overflow");
                        target.set_support(id, s);
                    }
                }
            }
        }
        added
    }

    /// Appends every row of `staged`, skipping the per-row dedup probe
    /// [`Database::merge`] pays — the fixpoint engines' round merges, where
    /// each staged row was membership-checked against `self` when it was
    /// derived and `self` stayed immutable for the round, so the probe is
    /// known to miss. Returns the number of rows appended (all of them).
    /// Hashes are reused from the staging relations; debug builds re-verify
    /// the absence of every row.
    pub fn absorb_staged(&mut self, staged: &Database) -> usize {
        let mut added = 0;
        for (p, r) in staged.iter() {
            let target = self.relation_mut(p);
            for ((row, &h), &s) in r.iter().zip(r.row_hashes()).zip(r.supports()) {
                target.push_new_row_hashed(h, row);
                if s != 0 {
                    let id = u32::try_from(target.len() - 1).expect("relation overflow");
                    target.set_support(id, s);
                }
                added += 1;
            }
        }
        added
    }

    /// Ensures an index on `pred` for `mask` (no-op if the relation is
    /// absent; it will be created on first insert and indexed then via
    /// `ensure_index` being called again by the planner).
    pub fn ensure_index(&mut self, pred: Predicate, mask: Mask) {
        self.relation_mut(pred).ensure_index(mask);
    }

    /// Removes a ground atom; returns whether it was present.
    pub fn remove_atom(&mut self, atom: &Atom) -> bool {
        let Some(t) = Tuple::from_atom(atom) else {
            return false;
        };
        self.relations
            .get_mut(&atom.predicate())
            .is_some_and(|r| Arc::make_mut(r).remove(&t))
    }

    /// Removes a set of tuples from `pred`'s relation; returns how many were
    /// present.
    pub fn remove_tuples(
        &mut self,
        pred: Predicate,
        victims: &alexander_ir::FxHashSet<Tuple>,
    ) -> usize {
        self.relations
            .get_mut(&pred)
            .map_or(0, |r| Arc::make_mut(r).remove_all(victims))
    }

    /// Empties every relation while keeping their allocations (their
    /// indexes are dropped — see [`Relation::clear_rows`]). Fixpoint
    /// engines recycle their staging database through this between rounds.
    pub fn clear_retaining(&mut self) {
        for r in self.relations.values_mut() {
            Arc::make_mut(r).clear_rows();
        }
    }

    /// An explicitly read-only view of this database for the duration of a
    /// parallel round. The view is `Copy` and hands out only `&`-access, so
    /// worker threads can share it freely; the type guarantees no interior
    /// mutation happens while workers are joining against it.
    pub fn freeze(&self) -> Frozen<'_> {
        Frozen { db: self }
    }

    /// Every constant appearing in any stored tuple, deduplicated, in first-
    /// seen order (the database's active domain).
    pub fn active_domain(&self) -> Vec<Const> {
        let mut seen = alexander_ir::FxHashSet::default();
        let mut out = Vec::new();
        for p in self.predicates() {
            if let Some(r) = self.relations.get(&p) {
                for row in r.iter() {
                    for &c in row {
                        if seen.insert(c) {
                            out.push(c);
                        }
                    }
                }
            }
        }
        out
    }
}

/// A semi-naive delta as per-predicate id ranges into the *total* database:
/// after `db.merge(&next)` appended a round's new facts, the round's delta
/// is "ids `[lo, hi)` of each touched relation", not a copied database.
/// Probing a delta literal then reuses the total's indexes (posting lists
/// are id-sorted, so the range restriction is two binary searches) and the
/// per-round delta-index builds of the old representation disappear.
#[derive(Clone, Debug, Default)]
pub struct DeltaSpans {
    spans: FxHashMap<Predicate, (u32, u32)>,
    total: u64,
}

impl DeltaSpans {
    /// The spans of `delta`'s rows inside `db`. Call immediately after
    /// `db.merge(&delta)`: because a round's fresh facts are deduplicated
    /// against the pre-round total before they enter `delta`, the merge
    /// appended exactly `delta.len_of(p)` rows to each relation, and those
    /// rows are the relation's current suffix.
    pub fn after_merge(db: &Database, delta: &Database) -> DeltaSpans {
        let mut spans = FxHashMap::default();
        let mut total = 0u64;
        for (p, r) in delta.iter() {
            let n = r.len();
            if n == 0 {
                continue;
            }
            let hi = db.len_of(p);
            debug_assert!(hi >= n, "delta rows must have merged as a suffix");
            // invariant: relations cap at u32::MAX rows (`Relation` asserts
            // on overflow), so the narrowing conversions are lossless.
            spans.insert(
                p,
                (u32::try_from(hi - n).unwrap(), u32::try_from(hi).unwrap()),
            );
            total += n as u64;
        }
        DeltaSpans { spans, total }
    }

    /// The id range of `pred`'s delta rows, if it has any.
    #[inline]
    pub fn get(&self, pred: Predicate) -> Option<(u32, u32)> {
        self.spans.get(&pred).copied()
    }

    /// Number of delta rows for `pred`.
    pub fn len_of(&self, pred: Predicate) -> usize {
        self.get(pred).map_or(0, |(lo, hi)| (hi - lo) as usize)
    }

    /// Total delta rows across all predicates.
    pub fn total_tuples(&self) -> u64 {
        self.total
    }

    /// True iff the delta is empty (the fixpoint is reached).
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }
}

/// A frozen, shareable snapshot of a [`Database`] taken for one evaluation
/// round. All reads go through `Deref<Target = Database>`; there is no path
/// to a `&mut Database`, which makes "workers only read the round's total"
/// a compile-time property rather than a convention.
#[derive(Clone, Copy)]
pub struct Frozen<'a> {
    db: &'a Database,
}

impl<'a> Frozen<'a> {
    /// The underlying shared reference (for APIs that take `&Database`).
    pub fn db(self) -> &'a Database {
        self.db
    }
}

impl std::ops::Deref for Frozen<'_> {
    type Target = Database;

    fn deref(&self) -> &Database {
        self.db
    }
}

/// Error: tried to store a non-ground atom.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NonGround(pub String);

impl fmt::Display for NonGround {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot store non-ground atom `{}`", self.0)
    }
}

impl std::error::Error for NonGround {}

impl fmt::Debug for Database {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut ps = self.predicates();
        ps.truncate(8);
        write!(f, "Database({} tuples; ", self.total_tuples())?;
        for p in ps {
            write!(f, "{p}:{} ", self.len_of(p))?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::tuple_of_syms;
    use alexander_ir::{atom, Term};

    #[test]
    fn insert_and_contains_atoms() {
        let mut db = Database::new();
        let a = atom("par", [Term::sym("a"), Term::sym("b")]);
        assert_eq!(db.insert_atom(&a), Ok(true));
        assert_eq!(db.insert_atom(&a), Ok(false));
        assert!(db.contains_atom(&a));
        assert!(!db.contains_atom(&atom("par", [Term::sym("b"), Term::sym("a")])));
        assert_eq!(db.len_of(Predicate::new("par", 2)), 1);
    }

    #[test]
    fn non_ground_insert_is_an_error() {
        let mut db = Database::new();
        let a = atom("par", [Term::sym("a"), Term::var("X")]);
        assert!(db.insert_atom(&a).is_err());
        assert!(!db.contains_atom(&a));
    }

    #[test]
    fn same_name_different_arity_are_separate() {
        let mut db = Database::new();
        db.insert(Predicate::new("p", 1), tuple_of_syms(&["a"]));
        db.insert(Predicate::new("p", 2), tuple_of_syms(&["a", "b"]));
        assert_eq!(db.len_of(Predicate::new("p", 1)), 1);
        assert_eq!(db.len_of(Predicate::new("p", 2)), 1);
        assert_eq!(db.total_tuples(), 2);
    }

    #[test]
    fn merge_counts_new_tuples_only() {
        let mut a = Database::new();
        a.insert(Predicate::new("e", 1), tuple_of_syms(&["x"]));
        let mut b = Database::new();
        b.insert(Predicate::new("e", 1), tuple_of_syms(&["x"]));
        b.insert(Predicate::new("e", 1), tuple_of_syms(&["y"]));
        assert_eq!(a.merge(&b), 1);
        assert_eq!(a.len_of(Predicate::new("e", 1)), 2);
    }

    #[test]
    fn merge_and_absorb_carry_support_counts() {
        let e = Predicate::new("e", 1);
        let mut a = Database::new();
        a.insert(e, tuple_of_syms(&["x"]));
        a.relation_mut(e).set_support(0, 5);
        let mut b = Database::new();
        b.insert(e, tuple_of_syms(&["x"]));
        b.insert(e, tuple_of_syms(&["y"]));
        let rb = b.relation_mut(e);
        rb.set_support(0, 9);
        rb.set_support(1, 2);
        assert_eq!(a.merge(&b), 1);
        let ra = a.relation(e).unwrap();
        assert_eq!(ra.support(0), 5, "duplicate keeps the target's count");
        assert_eq!(ra.support(1), 2, "appended row carries its source count");

        let mut staged = Database::new();
        staged.insert(e, tuple_of_syms(&["z"]));
        staged.relation_mut(e).set_support(0, 3);
        assert_eq!(a.absorb_staged(&staged), 1);
        assert_eq!(a.relation(e).unwrap().support(2), 3);
    }

    #[test]
    fn from_program_loads_inline_facts() {
        let mut p = Program::new();
        p.facts.push(atom("e", [Term::sym("a"), Term::sym("b")]));
        p.facts.push(atom("n", [Term::sym("a")]));
        let db = Database::from_program(&p);
        assert_eq!(db.total_tuples(), 2);
    }

    #[test]
    fn active_domain_dedups() {
        let mut db = Database::new();
        db.insert(Predicate::new("e", 2), tuple_of_syms(&["a", "b"]));
        db.insert(Predicate::new("e", 2), tuple_of_syms(&["b", "c"]));
        let d = db.active_domain();
        assert_eq!(d.len(), 3);
    }

    #[test]
    fn frozen_view_reads_like_the_database() {
        let mut db = Database::new();
        db.insert(Predicate::new("e", 2), tuple_of_syms(&["a", "b"]));
        let frozen = db.freeze();
        let again = frozen; // Copy: multiple workers can hold it.
        assert_eq!(frozen.total_tuples(), 1);
        assert_eq!(again.len_of(Predicate::new("e", 2)), 1);
        assert!(frozen.db().relation(Predicate::new("e", 2)).is_some());
    }

    #[test]
    fn delta_spans_track_merge_suffixes() {
        let e = Predicate::new("e", 1);
        let f = Predicate::new("f", 1);
        let mut db = Database::new();
        db.insert(e, tuple_of_syms(&["a"]));
        let mut delta = Database::new();
        delta.insert(e, tuple_of_syms(&["b"]));
        delta.insert(e, tuple_of_syms(&["c"]));
        delta.insert(f, tuple_of_syms(&["x"]));
        db.merge(&delta);
        let spans = DeltaSpans::after_merge(&db, &delta);
        assert_eq!(spans.get(e), Some((1, 3)));
        assert_eq!(spans.get(f), Some((0, 1)));
        assert_eq!(spans.get(Predicate::new("ghost", 1)), None);
        assert_eq!(spans.len_of(e), 2);
        assert_eq!(spans.total_tuples(), 3);
        assert!(!spans.is_empty());
        // The ranged rows are exactly the delta rows, in order.
        let rows: Vec<_> = db.relation(e).unwrap().rows_in(1, 3).collect();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0], tuple_of_syms(&["b"]).values());
        assert_eq!(DeltaSpans::default().total_tuples(), 0);
    }

    #[test]
    fn clones_share_arenas_until_written() {
        let e = Predicate::new("e", 2);
        let f = Predicate::new("f", 1);
        let mut db = Database::new();
        db.insert(e, tuple_of_syms(&["a", "b"]));
        db.insert(f, tuple_of_syms(&["x"]));

        // An epoch clone is O(#relations): every arena is shared.
        let epoch = db.clone();
        assert!(db.shares_relation(&epoch, e));
        assert!(db.shares_relation(&epoch, f));

        // Writing to one relation copies it — and only it.
        db.insert(e, tuple_of_syms(&["b", "c"]));
        assert!(!db.shares_relation(&epoch, e));
        assert!(
            db.shares_relation(&epoch, f),
            "untouched arena still shared"
        );

        // The epoch's view is frozen at clone time (value semantics).
        assert_eq!(epoch.len_of(e), 1);
        assert_eq!(db.len_of(e), 2);

        // Removal also copies-on-write instead of mutating the shared arena.
        let epoch2 = db.clone();
        assert!(db.remove_atom(&atom("f", [Term::sym("x")])));
        assert_eq!(epoch2.len_of(f), 1);
        assert_eq!(db.len_of(f), 0);
        assert!(!db.shares_relation(&epoch2, f));
    }

    #[test]
    fn atoms_of_roundtrip() {
        let mut db = Database::new();
        let a = atom("e", [Term::sym("a"), Term::sym("b")]);
        db.insert_atom(&a).unwrap();
        assert_eq!(db.atoms_of(Predicate::new("e", 2)), vec![a]);
        assert!(db.atoms_of(Predicate::new("zzz", 1)).is_empty());
    }
}
