//! Model-checking the relation store: random operation sequences must agree
//! with a trivial reference implementation (a `HashSet` of rows).

use alexander_ir::{Const, FxHashSet};
use alexander_storage::{Mask, Relation, Tuple};
use proptest::prelude::*;
use std::collections::HashSet;

#[derive(Clone, Debug)]
enum Op {
    Insert([u8; 2]),
    Remove([u8; 2]),
    EnsureIndex(u8),
    Probe(u8, [u8; 2]),
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        proptest::array::uniform2(0u8..6).prop_map(Op::Insert),
        proptest::array::uniform2(0u8..6).prop_map(Op::Remove),
        (0u8..4).prop_map(Op::EnsureIndex),
        ((0u8..4), proptest::array::uniform2(0u8..6)).prop_map(|(m, k)| Op::Probe(m, k)),
    ]
}

fn tup(cells: [u8; 2]) -> Tuple {
    Tuple::new(vec![
        Const::Int(cells[0] as i64),
        Const::Int(cells[1] as i64),
    ])
}

fn mask_of(m: u8) -> Mask {
    // 0: empty, 1: col0, 2: col1, 3: both.
    Mask(m as u64 & 0b11)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn relation_agrees_with_reference_model(ops in proptest::collection::vec(op(), 0..60)) {
        let mut rel = Relation::new(2);
        let mut model: HashSet<Tuple> = HashSet::new();

        for op in ops {
            match op {
                Op::Insert(cells) => {
                    let t = tup(cells);
                    let fresh = rel.insert(t.clone());
                    prop_assert_eq!(fresh, model.insert(t));
                }
                Op::Remove(cells) => {
                    let t = tup(cells);
                    let was = rel.remove(&t);
                    prop_assert_eq!(was, model.remove(&t));
                }
                Op::EnsureIndex(m) => {
                    rel.ensure_index(mask_of(m));
                }
                Op::Probe(m, key_cells) => {
                    let mask = mask_of(m);
                    let cols: Vec<usize> = mask.columns().collect();
                    let key: Vec<Const> = cols
                        .iter()
                        .map(|&c| Const::Int(key_cells[c] as i64))
                        .collect();
                    let mut got: Vec<Tuple> = rel.select(mask, &key);
                    got.sort();
                    let mut want: Vec<Tuple> = model
                        .iter()
                        .filter(|t| t.project(&cols) == key)
                        .cloned()
                        .collect();
                    want.sort();
                    prop_assert_eq!(got, want, "mask {:?}", mask);
                }
            }
            // Global invariants after every step.
            prop_assert_eq!(rel.len(), model.len());
        }
        // Final full-content check.
        let mut got: Vec<Tuple> = rel.iter().map(Tuple::new).collect();
        got.sort();
        let mut want: Vec<Tuple> = model.into_iter().collect();
        want.sort();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn remove_all_matches_batch_of_removes(
        rows in proptest::collection::vec(proptest::array::uniform2(0u8..6), 0..30),
        victims in proptest::collection::vec(proptest::array::uniform2(0u8..6), 0..10),
    ) {
        let mut a = Relation::new(2);
        let mut b = Relation::new(2);
        for r in &rows {
            a.insert(tup(*r));
            b.insert(tup(*r));
        }
        a.ensure_index(Mask::of_columns(&[0]));

        let set: FxHashSet<Tuple> = victims.iter().map(|v| tup(*v)).collect();
        let removed = a.remove_all(&set);
        let mut removed_one_by_one = 0;
        for v in &set {
            removed_one_by_one += usize::from(b.remove(v));
        }
        prop_assert_eq!(removed, removed_one_by_one);
        prop_assert_eq!(a.len(), b.len());
        // Indexes survive deletion correctly.
        for key0 in 0u8..6 {
            let key = [Const::Int(key0 as i64)];
            let (hits, indexed) = a.probe(Mask::of_columns(&[0]), &key);
            prop_assert!(indexed);
            let got = hits.count();
            let want = b
                .iter()
                .filter(|row| row[0] == Const::Int(key0 as i64))
                .count();
            prop_assert_eq!(got, want);
        }
    }
}
