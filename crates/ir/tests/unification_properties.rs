//! Algebraic properties of unification and substitutions, checked on random
//! atoms over a small vocabulary.

use alexander_ir::{match_atom, mgu, Atom, Subst, Term};
use proptest::prelude::*;

fn term() -> impl Strategy<Value = Term> {
    prop_oneof![
        (0..4u8).prop_map(|i| Term::var(["X", "Y", "Z", "W"][i as usize])),
        (0..3u8).prop_map(|i| Term::sym(["a", "b", "c"][i as usize])),
        (0..3i64).prop_map(Term::int),
    ]
}

fn atom2() -> impl Strategy<Value = Atom> {
    proptest::collection::vec(term(), 0..4).prop_map(|ts| Atom::new("p", ts))
}

fn ground_atom() -> impl Strategy<Value = Atom> {
    proptest::collection::vec(
        prop_oneof![
            (0..3u8).prop_map(|i| Term::sym(["a", "b", "c"][i as usize])),
            (0..3i64).prop_map(Term::int),
        ],
        0..4,
    )
    .prop_map(|ts| Atom::new("p", ts))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// An mgu actually unifies: both sides become syntactically equal.
    #[test]
    fn mgu_unifies(a in atom2(), b in atom2()) {
        if let Some(s) = mgu(&a, &b) {
            prop_assert_eq!(s.apply_atom(&a), s.apply_atom(&b));
        }
    }

    /// Unification is symmetric in success.
    #[test]
    fn mgu_is_symmetric(a in atom2(), b in atom2()) {
        prop_assert_eq!(mgu(&a, &b).is_some(), mgu(&b, &a).is_some());
    }

    /// Every atom unifies with itself via a renaming-free unifier.
    #[test]
    fn mgu_is_reflexive(a in atom2()) {
        let s = mgu(&a, &a).expect("self-unification always succeeds");
        prop_assert_eq!(s.apply_atom(&a), a);
    }

    /// Applying a substitution twice equals applying it once (walked
    /// substitutions are idempotent on atoms).
    #[test]
    fn substitution_application_is_idempotent(a in atom2(), b in atom2()) {
        if let Some(s) = mgu(&a, &b) {
            let once = s.apply_atom(&a);
            let twice = s.apply_atom(&once);
            prop_assert_eq!(once, twice);
        }
    }

    /// One-sided matching succeeds exactly when the pattern subsumes the
    /// ground atom, and the witness substitution proves it.
    #[test]
    fn matching_is_sound(pattern in atom2(), ground in ground_atom()) {
        let mut s = Subst::new();
        if match_atom(&pattern, &ground, &mut s) {
            prop_assert_eq!(s.apply_atom(&pattern), ground);
        } else {
            // If matching failed, no unifier can make them equal either
            // (for a ground right-hand side, matching == unification).
            prop_assert!(mgu(&pattern, &ground).is_none());
        }
    }

    /// Matching against a ground atom never binds anything when the pattern
    /// is ground too — it is just equality.
    #[test]
    fn ground_matching_is_equality(a in ground_atom(), b in ground_atom()) {
        let mut s = Subst::new();
        let matched = match_atom(&a, &b, &mut s);
        prop_assert_eq!(matched, a == b);
        if matched {
            prop_assert!(s.is_empty());
        }
    }

    /// Rectification preserves matchability in both directions.
    #[test]
    fn rectified_rules_unify_the_same(a in atom2(), g in ground_atom()) {
        let rule = alexander_ir::Rule::new(a.clone(), vec![]);
        let renamed = rule.rectified();
        prop_assert_eq!(
            mgu(&a, &g).is_some(),
            mgu(&renamed.head, &g).is_some()
        );
    }
}
