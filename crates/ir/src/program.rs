//! Programs: rule sets with EDB/IDB classification and validation.

use crate::atom::{Atom, Predicate};
use crate::hash::FxHashSet;
use crate::rule::Rule;
use crate::term::Var;
use std::fmt;

/// A Datalog program: a set of rules plus ground facts that were written in
/// the program text (facts are normally loaded into the database instead, but
/// the parser accepts inline facts for convenience).
#[derive(Clone, Default, PartialEq)]
pub struct Program {
    pub rules: Vec<Rule>,
    pub facts: Vec<Atom>,
}

/// Validation failures, see [`Program::validate`].
#[derive(Clone, PartialEq, Eq)]
pub enum ProgramError {
    /// A rule is not range-restricted: the listed variables occur in the head
    /// or in a negative literal but in no positive body literal.
    UnsafeRule { rule: String, vars: Vec<Var> },
    /// An inline fact contains a variable.
    NonGroundFact { fact: String },
    /// A predicate is used with two different arities.
    ArityMismatch {
        pred: String,
        arities: (usize, usize),
    },
    /// A rule head is an EDB predicate (one that also appears as an inline
    /// fact or is declared extensional by the caller).
    EdbHead { pred: String, rule: String },
    /// A rule head or fact uses a reserved built-in predicate.
    BuiltinHead { rule: String },
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramError::UnsafeRule { rule, vars } => {
                let vs: Vec<String> = vars.iter().map(|v| v.to_string()).collect();
                write!(f, "unsafe rule `{rule}`: variables [{}] do not occur in any positive body literal", vs.join(", "))
            }
            ProgramError::NonGroundFact { fact } => {
                write!(f, "non-ground fact `{fact}`")
            }
            ProgramError::ArityMismatch { pred, arities } => {
                write!(
                    f,
                    "predicate `{pred}` used with arities {} and {}",
                    arities.0, arities.1
                )
            }
            ProgramError::EdbHead { pred, rule } => {
                write!(
                    f,
                    "EDB predicate `{pred}` appears as a rule head in `{rule}`"
                )
            }
            ProgramError::BuiltinHead { rule } => {
                write!(
                    f,
                    "built-in comparison predicate cannot be defined: `{rule}`"
                )
            }
        }
    }
}

impl fmt::Debug for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl std::error::Error for ProgramError {}

impl Program {
    /// An empty program.
    pub fn new() -> Program {
        Program::default()
    }

    /// Builds a program from rules only.
    pub fn from_rules(rules: Vec<Rule>) -> Program {
        Program {
            rules,
            facts: Vec::new(),
        }
    }

    /// The *intensional* predicates: those defined by some rule head.
    pub fn idb_predicates(&self) -> FxHashSet<Predicate> {
        self.rules.iter().map(|r| r.head.predicate()).collect()
    }

    /// The *extensional* predicates: those that occur in rule bodies or as
    /// inline facts but are defined by no rule.
    pub fn edb_predicates(&self) -> FxHashSet<Predicate> {
        let idb = self.idb_predicates();
        let mut edb = FxHashSet::default();
        for r in &self.rules {
            for l in &r.body {
                let p = l.atom.predicate();
                if !idb.contains(&p) {
                    edb.insert(p);
                }
            }
        }
        for fa in &self.facts {
            let p = fa.predicate();
            if !idb.contains(&p) {
                edb.insert(p);
            }
        }
        edb
    }

    /// Every predicate mentioned anywhere in the program.
    pub fn all_predicates(&self) -> FxHashSet<Predicate> {
        let mut all = self.idb_predicates();
        all.extend(self.edb_predicates());
        all
    }

    /// True iff `pred` is intensional in this program.
    pub fn is_idb(&self, pred: Predicate) -> bool {
        self.rules.iter().any(|r| r.head.predicate() == pred)
    }

    /// Rules whose head predicate is `pred`.
    pub fn rules_for(&self, pred: Predicate) -> impl Iterator<Item = &Rule> + '_ {
        self.rules
            .iter()
            .filter(move |r| r.head.predicate() == pred)
    }

    /// Validates safety, groundness of inline facts, arity consistency, and
    /// that no rule redefines an inline-fact (EDB) predicate. Returns every
    /// violation rather than the first.
    pub fn validate(&self) -> Result<(), Vec<ProgramError>> {
        let mut errors = Vec::new();

        // Arity consistency: name -> first seen arity.
        let mut seen: crate::hash::FxHashMap<crate::symbol::Symbol, usize> =
            crate::hash::FxHashMap::default();
        let mut check_arity = |a: &Atom, errors: &mut Vec<ProgramError>| {
            let old = *seen.entry(a.pred).or_insert(a.terms.len());
            if old != a.terms.len() {
                errors.push(ProgramError::ArityMismatch {
                    pred: a.pred.to_string(),
                    arities: (old, a.terms.len()),
                });
            }
        };
        for r in &self.rules {
            check_arity(&r.head, &mut errors);
            for l in &r.body {
                check_arity(&l.atom, &mut errors);
            }
        }
        for fa in &self.facts {
            check_arity(fa, &mut errors);
        }

        for r in &self.rules {
            if crate::builtin::Builtin::of(r.head.predicate()).is_some() {
                errors.push(ProgramError::BuiltinHead {
                    rule: r.to_string(),
                });
            }
            let bad = r.unsafe_vars();
            if !bad.is_empty() {
                errors.push(ProgramError::UnsafeRule {
                    rule: r.to_string(),
                    vars: bad,
                });
            }
        }
        for fa in &self.facts {
            if !fa.is_ground() {
                errors.push(ProgramError::NonGroundFact {
                    fact: fa.to_string(),
                });
            }
            if crate::builtin::Builtin::of(fa.predicate()).is_some() {
                errors.push(ProgramError::BuiltinHead {
                    rule: fa.to_string(),
                });
            }
        }

        // Inline facts for IDB predicates are legal Datalog (they are just
        // body-less rules). Rule heads over a caller-declared extensional set
        // are checked by `validate_with_edb`.
        if errors.is_empty() {
            Ok(())
        } else {
            Err(errors)
        }
    }

    /// Like [`Program::validate`], additionally checking that no rule head is
    /// in the caller-declared extensional set `edb`.
    pub fn validate_with_edb(&self, edb: &FxHashSet<Predicate>) -> Result<(), Vec<ProgramError>> {
        let mut errors = match self.validate() {
            Ok(()) => Vec::new(),
            Err(e) => e,
        };
        for r in &self.rules {
            let p = r.head.predicate();
            if edb.contains(&p) {
                errors.push(ProgramError::EdbHead {
                    pred: p.to_string(),
                    rule: r.to_string(),
                });
            }
        }
        if errors.is_empty() {
            Ok(())
        } else {
            Err(errors)
        }
    }

    /// True iff no rule body contains a negative literal.
    pub fn is_definite(&self) -> bool {
        self.rules
            .iter()
            .all(|r| r.body.iter().all(|l| l.is_positive()))
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for fa in &self.facts {
            writeln!(f, "{fa}.")?;
        }
        for r in &self.rules {
            writeln!(f, "{r}")?;
        }
        Ok(())
    }
}

impl fmt::Debug for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::atom;
    use crate::literal::Literal;
    use crate::term::Term;

    fn ancestor_program() -> Program {
        Program {
            rules: vec![
                Rule::new(
                    atom("anc", [Term::var("X"), Term::var("Y")]),
                    vec![Literal::pos(atom("par", [Term::var("X"), Term::var("Y")]))],
                ),
                Rule::new(
                    atom("anc", [Term::var("X"), Term::var("Y")]),
                    vec![
                        Literal::pos(atom("par", [Term::var("X"), Term::var("Z")])),
                        Literal::pos(atom("anc", [Term::var("Z"), Term::var("Y")])),
                    ],
                ),
            ],
            facts: vec![atom("par", [Term::sym("a"), Term::sym("b")])],
        }
    }

    #[test]
    fn idb_edb_classification() {
        let p = ancestor_program();
        assert!(p.is_idb(Predicate::new("anc", 2)));
        assert!(!p.is_idb(Predicate::new("par", 2)));
        assert!(p.edb_predicates().contains(&Predicate::new("par", 2)));
        assert!(p.idb_predicates().contains(&Predicate::new("anc", 2)));
    }

    #[test]
    fn valid_program_passes() {
        assert!(ancestor_program().validate().is_ok());
    }

    #[test]
    fn unsafe_rule_is_reported() {
        let p = Program::from_rules(vec![Rule::new(
            atom("p", [Term::var("X")]),
            vec![Literal::neg(atom("q", [Term::var("X")]))],
        )]);
        let errs = p.validate().unwrap_err();
        assert_eq!(errs.len(), 1);
        assert!(matches!(errs[0], ProgramError::UnsafeRule { .. }));
    }

    #[test]
    fn arity_mismatch_is_reported() {
        let p = Program::from_rules(vec![Rule::new(
            atom("p", [Term::var("X")]),
            vec![
                Literal::pos(atom("q", [Term::var("X")])),
                Literal::pos(atom("q", [Term::var("X"), Term::var("X")])),
            ],
        )]);
        let errs = p.validate().unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, ProgramError::ArityMismatch { .. })));
    }

    #[test]
    fn non_ground_fact_is_reported() {
        let mut p = Program::new();
        p.facts.push(atom("par", [Term::var("X"), Term::sym("b")]));
        let errs = p.validate().unwrap_err();
        assert!(matches!(errs[0], ProgramError::NonGroundFact { .. }));
    }

    #[test]
    fn edb_head_is_reported_with_declared_edb() {
        let p = ancestor_program();
        let mut edb = FxHashSet::default();
        edb.insert(Predicate::new("anc", 2));
        let errs = p.validate_with_edb(&edb).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, ProgramError::EdbHead { .. })));
    }

    #[test]
    fn definiteness() {
        assert!(ancestor_program().is_definite());
        let p = Program::from_rules(vec![Rule::new(
            atom("p", [Term::var("X")]),
            vec![
                Literal::pos(atom("q", [Term::var("X")])),
                Literal::neg(atom("r", [Term::var("X")])),
            ],
        )]);
        assert!(!p.is_definite());
    }
}
