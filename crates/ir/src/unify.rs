//! Unification and one-sided matching for the function-free fragment.
//!
//! Without function symbols there is no occurs-check problem: terms are
//! constants or variables, and unification reduces to union-find-style
//! variable aliasing plus constant comparison.

use crate::atom::Atom;
use crate::subst::Subst;
use crate::term::Term;

/// Unifies two terms under `s`, extending `s` in place. Returns `false` (with
/// `s` possibly extended by irrelevant-but-consistent bindings) on clash.
pub fn unify_terms(a: Term, b: Term, s: &mut Subst) -> bool {
    let a = s.walk(a);
    let b = s.walk(b);
    match (a, b) {
        (Term::Const(x), Term::Const(y)) => x == y,
        (Term::Var(v), t) | (t, Term::Var(v)) => {
            if Term::Var(v) == t {
                true
            } else {
                s.bind(v, t);
                true
            }
        }
    }
}

/// Unifies two atoms under `s`. The atoms must have the same predicate and
/// arity for unification to succeed.
pub fn unify_atoms(a: &Atom, b: &Atom, s: &mut Subst) -> bool {
    if a.pred != b.pred || a.terms.len() != b.terms.len() {
        return false;
    }
    a.terms
        .iter()
        .zip(&b.terms)
        .all(|(&x, &y)| unify_terms(x, y, s))
}

/// Computes the most general unifier of `a` and `b`, if any.
pub fn mgu(a: &Atom, b: &Atom) -> Option<Subst> {
    let mut s = Subst::new();
    if unify_atoms(a, b, &mut s) {
        Some(s)
    } else {
        None
    }
}

/// One-sided matching: extends `s` so that `pattern` instantiated by `s`
/// equals the ground `ground` atom. Variables in `ground` are not allowed to
/// be bound (there are none when matching against stored facts).
pub fn match_atom(pattern: &Atom, ground: &Atom, s: &mut Subst) -> bool {
    if pattern.pred != ground.pred || pattern.terms.len() != ground.terms.len() {
        return false;
    }
    for (&p, &g) in pattern.terms.iter().zip(&ground.terms) {
        let p = s.walk(p);
        match (p, g) {
            (Term::Const(x), Term::Const(y)) => {
                if x != y {
                    return false;
                }
            }
            (Term::Var(v), g) => s.bind(v, g),
            (_, Term::Var(_)) => return false,
        }
    }
    true
}

/// Two substitutions are *compatible* (Bry §5.1) iff there is a unifier more
/// general than each — equivalently, iff the union of their bindings is
/// itself consistent as a set of equations.
pub fn compatible(a: &Subst, b: &Subst) -> Option<Subst> {
    let mut merged = a.clone();
    for (v, t) in b.iter() {
        if !unify_terms(Term::Var(v), t, &mut merged) {
            return None;
        }
    }
    Some(merged)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::atom;
    use crate::term::Var;

    #[test]
    fn unifies_var_with_const() {
        let a = atom("p", [Term::var("X"), Term::sym("b")]);
        let b = atom("p", [Term::sym("a"), Term::var("Y")]);
        let s = mgu(&a, &b).expect("should unify");
        assert_eq!(s.walk(Term::var("X")), Term::sym("a"));
        assert_eq!(s.walk(Term::var("Y")), Term::sym("b"));
    }

    #[test]
    fn clash_on_distinct_constants() {
        let a = atom("p", [Term::sym("a")]);
        let b = atom("p", [Term::sym("b")]);
        assert!(mgu(&a, &b).is_none());
    }

    #[test]
    fn clash_on_predicate_or_arity() {
        let a = atom("p", [Term::var("X")]);
        assert!(mgu(&a, &atom("q", [Term::var("X")])).is_none());
        assert!(mgu(&a, &atom("p", [Term::var("X"), Term::var("Y")])).is_none());
    }

    #[test]
    fn var_var_aliasing_transmits_bindings() {
        let a = atom("p", [Term::var("X"), Term::var("X")]);
        let b = atom("p", [Term::var("Y"), Term::sym("c")]);
        let s = mgu(&a, &b).expect("should unify");
        assert_eq!(s.walk(Term::var("X")), Term::sym("c"));
        assert_eq!(s.walk(Term::var("Y")), Term::sym("c"));
    }

    #[test]
    fn shared_var_forces_equal_args() {
        let a = atom("p", [Term::var("X"), Term::var("X")]);
        let b = atom("p", [Term::sym("a"), Term::sym("b")]);
        assert!(mgu(&a, &b).is_none());
    }

    #[test]
    fn matching_is_one_sided() {
        let pat = atom("e", [Term::var("X"), Term::var("Y")]);
        let g = atom("e", [Term::sym("a"), Term::sym("b")]);
        let mut s = Subst::new();
        assert!(match_atom(&pat, &g, &mut s));
        assert_eq!(s.walk(Term::var("X")), Term::sym("a"));

        // A constant in the pattern must equal the fact's constant.
        let pat2 = atom("e", [Term::sym("z"), Term::var("Y")]);
        let mut s2 = Subst::new();
        assert!(!match_atom(&pat2, &g, &mut s2));
    }

    #[test]
    fn matching_respects_prior_bindings() {
        let pat = atom("e", [Term::var("X"), Term::var("X")]);
        let g = atom("e", [Term::sym("a"), Term::sym("b")]);
        let mut s = Subst::new();
        assert!(!match_atom(&pat, &g, &mut s));

        let g2 = atom("e", [Term::sym("a"), Term::sym("a")]);
        let mut s2 = Subst::new();
        assert!(match_atom(&pat, &g2, &mut s2));
    }

    #[test]
    fn compatibility_of_substitutions() {
        let mut s1 = Subst::new();
        s1.bind(Var::new("X"), Term::sym("a"));
        let mut s2 = Subst::new();
        s2.bind(Var::new("Y"), Term::sym("b"));
        assert!(compatible(&s1, &s2).is_some());

        let mut s3 = Subst::new();
        s3.bind(Var::new("X"), Term::sym("b"));
        assert!(compatible(&s1, &s3).is_none());

        // X -> Y combined with X -> a forces Y -> a: still compatible.
        let mut s4 = Subst::new();
        s4.bind(Var::new("X"), Term::var("Y"));
        let merged = compatible(&s1, &s4).expect("compatible");
        assert_eq!(merged.walk(Term::var("Y")), Term::sym("a"));
    }
}
