//! Rules (Horn clauses with negation-as-failure bodies).

use crate::atom::{Atom, Predicate};
use crate::hash::FxHashMap;
use crate::literal::Literal;
use crate::term::{Term, Var};
use std::fmt;

/// A rule `head :- l₁, …, lₙ.`  (`n = 0` makes it a fact-producing rule; true
/// ground facts are normally stored in the EDB instead).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Rule {
    pub head: Atom,
    pub body: Vec<Literal>,
}

impl Rule {
    /// Builds a rule.
    pub fn new(head: Atom, body: Vec<Literal>) -> Rule {
        Rule { head, body }
    }

    /// All variables of the rule (head and body), deduplicated, in order of
    /// first occurrence (head first).
    pub fn vars(&self) -> Vec<Var> {
        let mut seen = Vec::new();
        let mut push = |v: Var| {
            if !seen.contains(&v) {
                seen.push(v);
            }
        };
        for v in self.head.vars() {
            push(v);
        }
        for l in &self.body {
            for v in l.vars() {
                push(v);
            }
        }
        seen
    }

    /// Predicates of the positive body literals.
    pub fn positive_body_preds(&self) -> impl Iterator<Item = Predicate> + '_ {
        self.body
            .iter()
            .filter(|l| l.is_positive())
            .map(|l| l.atom.predicate())
    }

    /// True iff the rule is *safe* (range-restricted): every head variable,
    /// every variable of a negative body literal, and every variable of a
    /// built-in comparison occurs in some ordinary positive body literal
    /// (built-ins test bindings; they cannot generate them).
    pub fn is_safe(&self) -> bool {
        self.unsafe_vars().is_empty()
    }

    /// The variables violating safety (empty iff [`Rule::is_safe`]).
    pub fn unsafe_vars(&self) -> Vec<Var> {
        let positive: Vec<Var> = self
            .body
            .iter()
            .filter(|l| {
                l.is_positive() && crate::builtin::Builtin::of(l.atom.predicate()).is_none()
            })
            .flat_map(|l| l.vars())
            .collect();
        let mut bad = Vec::new();
        let mut check = |v: Var| {
            if !positive.contains(&v) && !bad.contains(&v) {
                bad.push(v);
            }
        };
        for v in self.head.vars() {
            check(v);
        }
        for l in self.body.iter().filter(|l| {
            l.is_negative() || crate::builtin::Builtin::of(l.atom.predicate()).is_some()
        }) {
            for v in l.vars() {
                check(v);
            }
        }
        bad
    }

    /// Renames every variable of the rule to a fresh one, preserving sharing.
    /// Used to rename rules apart before unification-based analyses.
    pub fn rectified(&self) -> Rule {
        let mut renaming: FxHashMap<Var, Var> = FxHashMap::default();
        let mut rename = |t: Term| -> Term {
            match t {
                Term::Const(_) => t,
                Term::Var(v) => Term::Var(
                    *renaming
                        .entry(v)
                        .or_insert_with(|| Var::fresh(v.name().as_str())),
                ),
            }
        };
        let head = Atom {
            pred: self.head.pred,
            terms: self.head.terms.iter().map(|&t| rename(t)).collect(),
        };
        let body = self
            .body
            .iter()
            .map(|l| Literal {
                atom: Atom {
                    pred: l.atom.pred,
                    terms: l.atom.terms.iter().map(|&t| rename(t)).collect(),
                },
                polarity: l.polarity,
            })
            .collect();
        Rule { head, body }
    }

    /// True iff the rule body mentions `pred` (any polarity).
    pub fn body_mentions(&self, pred: Predicate) -> bool {
        self.body.iter().any(|l| l.atom.predicate() == pred)
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.head)?;
        if !self.body.is_empty() {
            write!(f, " :- ")?;
            for (i, l) in self.body.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{l}")?;
            }
        }
        write!(f, ".")
    }
}

impl fmt::Debug for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::atom;

    fn anc_step() -> Rule {
        Rule::new(
            atom("anc", [Term::var("X"), Term::var("Y")]),
            vec![
                Literal::pos(atom("par", [Term::var("X"), Term::var("Z")])),
                Literal::pos(atom("anc", [Term::var("Z"), Term::var("Y")])),
            ],
        )
    }

    #[test]
    fn vars_in_first_occurrence_order() {
        let r = anc_step();
        let names: Vec<_> = r.vars().iter().map(|v| v.to_string()).collect();
        assert_eq!(names, ["X", "Y", "Z"]);
    }

    #[test]
    fn safety_detects_unrestricted_head_var() {
        let bad = Rule::new(
            atom("p", [Term::var("X"), Term::var("W")]),
            vec![Literal::pos(atom("q", [Term::var("X")]))],
        );
        assert!(!bad.is_safe());
        assert_eq!(bad.unsafe_vars(), vec![Var::new("W")]);
        assert!(anc_step().is_safe());
    }

    #[test]
    fn safety_detects_unrestricted_negative_var() {
        let bad = Rule::new(
            atom("p", [Term::var("X")]),
            vec![
                Literal::pos(atom("q", [Term::var("X")])),
                Literal::neg(atom("r", [Term::var("Z")])),
            ],
        );
        assert!(!bad.is_safe());
        assert_eq!(bad.unsafe_vars(), vec![Var::new("Z")]);
    }

    #[test]
    fn rectified_preserves_structure_and_sharing() {
        let r = anc_step();
        let r2 = r.rectified();
        assert_eq!(r2.head.pred, r.head.pred);
        assert_eq!(r2.body.len(), 2);
        // Shared variable Z must stay shared after renaming.
        let z1 = r2.body[0].atom.terms[1];
        let z2 = r2.body[1].atom.terms[0];
        assert_eq!(z1, z2);
        // But all variables must be fresh (different from the originals).
        assert!(r2.vars().iter().all(|v| !r.vars().contains(v)));
    }

    #[test]
    fn display_roundtrip_shape() {
        assert_eq!(anc_step().to_string(), "anc(X, Y) :- par(X, Z), anc(Z, Y).");
        let fact_rule = Rule::new(atom("p", [Term::sym("a")]), vec![]);
        assert_eq!(fact_rule.to_string(), "p(a).");
    }
}
