//! Built-in comparison predicates.
//!
//! The names `eq/2`, `neq/2`, `lt/2`, `leq/2`, `gt/2`, `geq/2` are reserved:
//! they are evaluated natively by every engine instead of being looked up in
//! storage. Integers compare numerically; symbols lexicographically; across
//! the two sorts integers order before symbols (the same total order as
//! [`Const`]'s `Ord`, so `lt` agrees with sorting).
//!
//! Like negation, a built-in can only be *tested*, not used to generate
//! bindings: safety requires every variable of a built-in literal to occur
//! in an ordinary positive body literal, and the evaluators order bodies so
//! built-ins run once their arguments are ground.

use crate::atom::Predicate;
use crate::symbol::Symbol;
use crate::term::Const;
use std::cmp::Ordering;

/// The built-in comparison operators.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Builtin {
    Eq,
    Neq,
    Lt,
    Leq,
    Gt,
    Geq,
}

impl Builtin {
    /// Recognises a predicate as a built-in (name and arity must match).
    pub fn of(pred: Predicate) -> Option<Builtin> {
        if pred.arity != 2 {
            return None;
        }
        Some(match pred.name.as_str() {
            "eq" => Builtin::Eq,
            "neq" => Builtin::Neq,
            "lt" => Builtin::Lt,
            "leq" => Builtin::Leq,
            "gt" => Builtin::Gt,
            "geq" => Builtin::Geq,
            _ => return None,
        })
    }

    /// True iff `name/2` would be a built-in.
    pub fn is_builtin_name(name: Symbol) -> bool {
        Builtin::of(Predicate { name, arity: 2 }).is_some()
    }

    /// Evaluates the comparison on ground arguments.
    pub fn eval(self, a: Const, b: Const) -> bool {
        let ord = compare(a, b);
        match self {
            Builtin::Eq => ord == Ordering::Equal,
            Builtin::Neq => ord != Ordering::Equal,
            Builtin::Lt => ord == Ordering::Less,
            Builtin::Leq => ord != Ordering::Greater,
            Builtin::Gt => ord == Ordering::Greater,
            Builtin::Geq => ord != Ordering::Less,
        }
    }

    /// The operator's conventional symbol (for messages).
    pub fn symbol(self) -> &'static str {
        match self {
            Builtin::Eq => "=",
            Builtin::Neq => "!=",
            Builtin::Lt => "<",
            Builtin::Leq => "<=",
            Builtin::Gt => ">",
            Builtin::Geq => ">=",
        }
    }
}

/// The total order built-ins compare by — [`Const`]'s own `Ord` (integers
/// numerically, then symbols lexicographically), so `lt` agrees with every
/// sorted output in the system.
fn compare(a: Const, b: Const) -> Ordering {
    a.cmp(&b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recognition_requires_name_and_arity() {
        assert_eq!(Builtin::of(Predicate::new("lt", 2)), Some(Builtin::Lt));
        assert_eq!(Builtin::of(Predicate::new("lt", 1)), None);
        assert_eq!(Builtin::of(Predicate::new("lt", 3)), None);
        assert_eq!(Builtin::of(Predicate::new("edge", 2)), None);
        assert!(Builtin::is_builtin_name(Symbol::intern("neq")));
        assert!(!Builtin::is_builtin_name(Symbol::intern("par")));
    }

    #[test]
    fn integer_comparisons() {
        assert!(Builtin::Lt.eval(Const::int(1), Const::int(2)));
        assert!(!Builtin::Lt.eval(Const::int(2), Const::int(2)));
        assert!(Builtin::Leq.eval(Const::int(2), Const::int(2)));
        assert!(Builtin::Gt.eval(Const::int(3), Const::int(-3)));
        assert!(Builtin::Geq.eval(Const::int(3), Const::int(3)));
        assert!(Builtin::Eq.eval(Const::int(0), Const::int(0)));
        assert!(Builtin::Neq.eval(Const::int(0), Const::int(1)));
    }

    #[test]
    fn symbol_comparisons_are_lexicographic() {
        assert!(Builtin::Lt.eval(Const::sym("apple"), Const::sym("banana")));
        assert!(Builtin::Neq.eval(Const::sym("a"), Const::sym("b")));
        assert!(Builtin::Eq.eval(Const::sym("a"), Const::sym("a")));
    }

    #[test]
    fn cross_sort_ordering_matches_const_ord() {
        assert!(Builtin::Lt.eval(Const::int(999), Const::sym("a")));
        assert!(Builtin::Gt.eval(Const::sym("a"), Const::int(999)));
        // Trichotomy holds across sorts.
        assert!(Builtin::Neq.eval(Const::int(1), Const::sym("1")));
    }

    #[test]
    fn operator_symbols() {
        assert_eq!(Builtin::Lt.symbol(), "<");
        assert_eq!(Builtin::Neq.symbol(), "!=");
    }
}
