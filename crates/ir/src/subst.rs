//! Substitutions: finite maps from variables to terms.

use crate::atom::Atom;
use crate::hash::FxHashMap;
use crate::literal::Literal;
use crate::rule::Rule;
use crate::term::{Term, Var};
use std::fmt;

/// A substitution `{X₁ ↦ t₁, …}`.
///
/// Bindings may map variables to variables (needed by unification during
/// adornment and loose-stratification analysis); [`Subst::walk`] follows
/// variable chains to the representative term.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct Subst {
    map: FxHashMap<Var, Term>,
}

impl Subst {
    /// The empty substitution.
    pub fn new() -> Subst {
        Subst::default()
    }

    /// Number of bound variables.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True iff no variable is bound.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The direct binding of `v`, if any (does not follow chains).
    pub fn get(&self, v: Var) -> Option<Term> {
        self.map.get(&v).copied()
    }

    /// Binds `v ↦ t`. Panics in debug builds if `v` is already bound to a
    /// different term — callers must walk first.
    pub fn bind(&mut self, v: Var, t: Term) {
        debug_assert!(
            self.map.get(&v).is_none_or(|old| *old == t),
            "rebinding {v} from {:?} to {t}",
            self.map[&v],
        );
        self.map.insert(v, t);
    }

    /// Removes the binding for `v` (used for backtracking in the top-down
    /// engine).
    pub fn unbind(&mut self, v: Var) {
        self.map.remove(&v);
    }

    /// Follows variable chains starting from `t` until a constant or an
    /// unbound variable is reached.
    pub fn walk(&self, t: Term) -> Term {
        let mut cur = t;
        // Chains are acyclic because `bind` is only called on unbound
        // variables; bound is still checked to avoid infinite loops on
        // adversarial input.
        let mut steps = 0usize;
        while let Term::Var(v) = cur {
            match self.map.get(&v) {
                Some(&next) if next != cur => {
                    cur = next;
                    steps += 1;
                    if steps > self.map.len() {
                        break;
                    }
                }
                _ => break,
            }
        }
        cur
    }

    /// Applies the substitution to a term (walking chains).
    pub fn apply_term(&self, t: Term) -> Term {
        self.walk(t)
    }

    /// Applies the substitution to an atom.
    pub fn apply_atom(&self, a: &Atom) -> Atom {
        Atom {
            pred: a.pred,
            terms: a.terms.iter().map(|&t| self.apply_term(t)).collect(),
        }
    }

    /// Applies the substitution to a literal.
    pub fn apply_literal(&self, l: &Literal) -> Literal {
        Literal {
            atom: self.apply_atom(&l.atom),
            polarity: l.polarity,
        }
    }

    /// Applies the substitution to a whole rule.
    pub fn apply_rule(&self, r: &Rule) -> Rule {
        Rule {
            head: self.apply_atom(&r.head),
            body: r.body.iter().map(|l| self.apply_literal(l)).collect(),
        }
    }

    /// Iterates over the bindings in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (Var, Term)> + '_ {
        self.map.iter().map(|(&v, &t)| (v, t))
    }
}

impl fmt::Display for Subst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut items: Vec<_> = self.map.iter().collect();
        items.sort_by_key(|(v, _)| v.0);
        write!(f, "{{")?;
        for (i, (v, t)) in items.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v} -> {t}")?;
        }
        write!(f, "}}")
    }
}

impl fmt::Debug for Subst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::atom;

    #[test]
    fn walk_follows_chains() {
        let mut s = Subst::new();
        s.bind(Var::new("X"), Term::var("Y"));
        s.bind(Var::new("Y"), Term::sym("a"));
        assert_eq!(s.walk(Term::var("X")), Term::sym("a"));
        assert_eq!(s.walk(Term::var("Z")), Term::var("Z"));
        assert_eq!(s.walk(Term::sym("b")), Term::sym("b"));
    }

    #[test]
    fn apply_atom_substitutes_all_positions() {
        let mut s = Subst::new();
        s.bind(Var::new("X"), Term::sym("a"));
        let a = atom("p", [Term::var("X"), Term::var("Y"), Term::sym("c")]);
        assert_eq!(s.apply_atom(&a).to_string(), "p(a, Y, c)");
    }

    #[test]
    fn unbind_backtracks() {
        let mut s = Subst::new();
        s.bind(Var::new("X"), Term::sym("a"));
        assert_eq!(s.len(), 1);
        s.unbind(Var::new("X"));
        assert!(s.is_empty());
        assert_eq!(s.walk(Term::var("X")), Term::var("X"));
    }

    #[test]
    fn display_is_sorted_and_readable() {
        let mut s = Subst::new();
        s.bind(Var::new("X"), Term::sym("a"));
        let shown = s.to_string();
        assert_eq!(shown, "{X -> a}");
    }
}
