//! Fast, non-cryptographic hashing for hot-path maps.
//!
//! Joins and duplicate elimination hash small keys (interned symbols, short
//! tuples of constants) billions of times per run; the standard library's
//! SipHash would dominate profiles. This is the Fx algorithm used by rustc:
//! a multiply-and-rotate word mixer. HashDoS resistance is irrelevant here —
//! all hashed data is produced by the engine itself.

use std::hash::{BuildHasherDefault, Hasher};

/// 64-bit Fx hasher: `state = (state.rotate_left(5) ^ word) * SEED`.
#[derive(Default, Clone, Copy)]
pub struct FxHasher {
    state: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            // invariant: `chunks_exact(8)` yields 8-byte slices only.
            self.mix(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.mix(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.mix(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.mix(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.mix(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.mix(n as u64);
    }

    #[inline]
    fn write_i64(&mut self, n: i64) {
        self.mix(n as u64);
    }
}

/// Streaming hasher for rows of values, used by the arena-backed relation
/// storage. Both sides of every probe — the index builder hashing a stored
/// row's projected columns, and the join hashing the bound constants of a
/// probe atom in place — feed values one at a time in ascending column
/// order, so a key never has to be materialised to be hashed. The digest is
/// exactly `FxHasher` over the same value sequence.
#[derive(Default, Clone, Copy)]
pub struct RowHasher(FxHasher);

impl RowHasher {
    /// A fresh hasher (the fixed Fx initial state).
    pub fn new() -> RowHasher {
        RowHasher::default()
    }

    /// Feeds one value.
    #[inline]
    pub fn push<T: std::hash::Hash>(&mut self, value: &T) {
        value.hash(&mut self.0);
    }

    /// The 64-bit digest of everything pushed so far.
    #[inline]
    pub fn finish(&self) -> u64 {
        self.0.finish()
    }
}

/// One-shot [`RowHasher`] over a slice of values.
#[inline]
pub fn hash_row<T: std::hash::Hash>(row: &[T]) -> u64 {
    let mut h = RowHasher::new();
    for v in row {
        h.push(v);
    }
    h.finish()
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// Drop-in `HashMap` with the Fx hasher.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// Drop-in `HashSet` with the Fx hasher.
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_across_hasher_instances() {
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
        assert_eq!(hash_of(&"alexander"), hash_of(&"alexander"));
    }

    #[test]
    fn distinguishes_nearby_values() {
        assert_ne!(hash_of(&1u64), hash_of(&2u64));
        assert_ne!(hash_of(&"ab"), hash_of(&"ba"));
    }

    #[test]
    fn byte_tails_are_significant() {
        // Trailing partial words must affect the hash.
        let a: &[u8] = &[1, 2, 3, 4, 5, 6, 7, 8, 9];
        let b: &[u8] = &[1, 2, 3, 4, 5, 6, 7, 8, 10];
        assert_ne!(hash_of(&a), hash_of(&b));
    }

    #[test]
    fn row_hasher_matches_streamed_fx() {
        // Incremental pushes must equal a one-shot hash of the same values:
        // probes hash bound columns one at a time, index builds hash stored
        // rows via `hash_row`, and the two must collide exactly.
        let vals = [3u64, 7, 11];
        let mut h = RowHasher::new();
        for v in &vals {
            h.push(v);
        }
        assert_eq!(h.finish(), hash_row(&vals));
        assert_ne!(hash_row(&vals), hash_row(&[3u64, 11, 7]));
        assert_ne!(hash_row(&vals), hash_row(&[3u64, 7]));
    }

    #[test]
    fn maps_and_sets_behave() {
        let mut m: FxHashMap<&str, u32> = FxHashMap::default();
        m.insert("a", 1);
        m.insert("b", 2);
        assert_eq!(m.get("a"), Some(&1));
        let mut s: FxHashSet<u32> = FxHashSet::default();
        assert!(s.insert(7));
        assert!(!s.insert(7));
    }
}
