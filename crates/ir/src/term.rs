//! Terms of the function-free (Datalog) fragment: constants and variables.

use crate::symbol::Symbol;
use std::fmt;

/// A ground constant. Datalog is function-free, so constants are the only
/// term constructors besides variables.
///
/// The `Ord` is the order the `lt`/`leq`/… built-ins compare by: integers
/// numerically first, then symbols lexicographically.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub enum Const {
    /// A symbolic constant, e.g. `adam`.
    Sym(Symbol),
    /// An integer constant, e.g. `42`.
    Int(i64),
}

impl PartialOrd for Const {
    fn partial_cmp(&self, other: &Const) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Const {
    fn cmp(&self, other: &Const) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        match (self, other) {
            (Const::Int(a), Const::Int(b)) => a.cmp(b),
            (Const::Sym(a), Const::Sym(b)) => a.cmp(b),
            (Const::Int(_), Const::Sym(_)) => Ordering::Less,
            (Const::Sym(_), Const::Int(_)) => Ordering::Greater,
        }
    }
}

impl Const {
    /// Interns `s` as a symbolic constant.
    pub fn sym(s: &str) -> Const {
        Const::Sym(Symbol::intern(s))
    }

    /// Wraps an integer constant.
    pub fn int(n: i64) -> Const {
        Const::Int(n)
    }
}

impl fmt::Display for Const {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Const::Sym(s) => write!(f, "{s}"),
            Const::Int(n) => write!(f, "{n}"),
        }
    }
}

impl fmt::Debug for Const {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl From<i64> for Const {
    fn from(n: i64) -> Const {
        Const::Int(n)
    }
}

impl From<&str> for Const {
    fn from(s: &str) -> Const {
        Const::sym(s)
    }
}

/// A logic variable, identified by its (interned) name.
///
/// Variable scope is a single rule: `X` in one rule is unrelated to `X` in
/// another. Rectification (renaming apart) is done explicitly where analyses
/// need it, see [`crate::rule::Rule::rectified`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub Symbol);

impl Var {
    /// Interns `name` as a variable.
    pub fn new(name: &str) -> Var {
        Var(Symbol::intern(name))
    }

    /// A fresh variable that cannot collide with any existing one.
    pub fn fresh(base: &str) -> Var {
        Var(Symbol::fresh(base))
    }

    /// The variable's name.
    pub fn name(self) -> Symbol {
        self.0
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// A term: either a variable or a constant.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    Var(Var),
    Const(Const),
}

impl Term {
    /// Interns `name` as a variable term.
    pub fn var(name: &str) -> Term {
        Term::Var(Var::new(name))
    }

    /// Interns `s` as a symbolic-constant term.
    pub fn sym(s: &str) -> Term {
        Term::Const(Const::sym(s))
    }

    /// An integer-constant term.
    pub fn int(n: i64) -> Term {
        Term::Const(Const::Int(n))
    }

    /// True iff the term is a constant.
    pub fn is_ground(self) -> bool {
        matches!(self, Term::Const(_))
    }

    /// The constant, if ground.
    pub fn as_const(self) -> Option<Const> {
        match self {
            Term::Const(c) => Some(c),
            Term::Var(_) => None,
        }
    }

    /// The variable, if not ground.
    pub fn as_var(self) -> Option<Var> {
        match self {
            Term::Var(v) => Some(v),
            Term::Const(_) => None,
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v}"),
            Term::Const(c) => write!(f, "{c}"),
        }
    }
}

impl fmt::Debug for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl From<Var> for Term {
    fn from(v: Var) -> Term {
        Term::Var(v)
    }
}

impl From<Const> for Term {
    fn from(c: Const) -> Term {
        Term::Const(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn const_equality_goes_through_interner() {
        assert_eq!(Const::sym("a"), Const::sym("a"));
        assert_ne!(Const::sym("a"), Const::sym("b"));
        assert_ne!(Const::sym("1"), Const::int(1));
    }

    #[test]
    fn term_classification() {
        assert!(Term::sym("a").is_ground());
        assert!(Term::int(3).is_ground());
        assert!(!Term::var("X").is_ground());
        assert_eq!(Term::var("X").as_var(), Some(Var::new("X")));
        assert_eq!(Term::sym("a").as_const(), Some(Const::sym("a")));
        assert_eq!(Term::var("X").as_const(), None);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Term::var("X").to_string(), "X");
        assert_eq!(Term::sym("adam").to_string(), "adam");
        assert_eq!(Term::int(-7).to_string(), "-7");
    }
}
