//! Literals: positive or negated atoms.

use crate::atom::Atom;
use crate::term::Var;
use std::fmt;

/// The polarity of a body literal.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Polarity {
    Positive,
    Negative,
}

/// A body literal: an atom with a polarity.
///
/// Negative literals are interpreted as *negation as failure*: `¬p(t̄)`
/// succeeds iff `p(t̄)` is not derivable. Safety (range restriction) requires
/// every variable of a negative literal to occur in some positive literal of
/// the same rule body, see [`crate::program::Program::validate`].
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Literal {
    pub atom: Atom,
    pub polarity: Polarity,
}

impl Literal {
    /// A positive literal.
    pub fn pos(atom: Atom) -> Literal {
        Literal {
            atom,
            polarity: Polarity::Positive,
        }
    }

    /// A negated literal.
    pub fn neg(atom: Atom) -> Literal {
        Literal {
            atom,
            polarity: Polarity::Negative,
        }
    }

    /// True iff the literal is positive.
    pub fn is_positive(&self) -> bool {
        self.polarity == Polarity::Positive
    }

    /// True iff the literal is negative.
    pub fn is_negative(&self) -> bool {
        self.polarity == Polarity::Negative
    }

    /// The literal's variables, with duplicates, left to right.
    pub fn vars(&self) -> impl Iterator<Item = Var> + '_ {
        self.atom.vars()
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.polarity {
            Polarity::Positive => write!(f, "{}", self.atom),
            Polarity::Negative => write!(f, "!{}", self.atom),
        }
    }
}

impl fmt::Debug for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::atom;
    use crate::term::Term;

    #[test]
    fn polarity_predicates() {
        let a = atom("p", [Term::var("X")]);
        assert!(Literal::pos(a.clone()).is_positive());
        assert!(!Literal::pos(a.clone()).is_negative());
        assert!(Literal::neg(a.clone()).is_negative());
    }

    #[test]
    fn display_marks_negation() {
        let a = atom("win", [Term::var("Y")]);
        assert_eq!(Literal::pos(a.clone()).to_string(), "win(Y)");
        assert_eq!(Literal::neg(a).to_string(), "!win(Y)");
    }
}
