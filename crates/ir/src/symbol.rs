//! Global string interner.
//!
//! Every identifier in the system — predicate names, constants, variable
//! names — is interned once and afterwards handled as a copyable 4-byte
//! [`Symbol`]. Equality and hashing on symbols are integer operations, which
//! is what makes tuple joins cheap.
//!
//! The interner is a process-wide singleton guarded by a `std::sync::RwLock`.
//! Interning happens at parse/transform time; evaluation hot loops only
//! compare ids and never take the lock (resolution back to `&str` is only
//! done when printing).

use crate::hash::FxHashMap;
use std::fmt;
use std::sync::{OnceLock, PoisonError, RwLock};

/// An interned string. Cheap to copy, compare and hash.
///
/// Two `Symbol`s are equal iff the strings they intern are equal. The id is
/// stable for the lifetime of the process. Ordering is **lexicographic on
/// the interned string** (not on the id): sorted output must not depend on
/// interning order, which varies with what ran earlier in the process.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Symbol(u32);

impl PartialOrd for Symbol {
    fn partial_cmp(&self, other: &Symbol) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Symbol {
    fn cmp(&self, other: &Symbol) -> std::cmp::Ordering {
        if self.0 == other.0 {
            return std::cmp::Ordering::Equal;
        }
        self.as_str().cmp(other.as_str())
    }
}

struct Interner {
    names: Vec<&'static str>,
    ids: FxHashMap<&'static str, u32>,
}

impl Interner {
    fn intern(&mut self, s: &str) -> Symbol {
        if let Some(&id) = self.ids.get(s) {
            return Symbol(id);
        }
        // Interned strings live for the whole process; leaking them lets us
        // hand out `&'static str` without a second table lookup on resolve.
        let owned: &'static str = Box::leak(s.to_owned().into_boxed_str());
        let id = u32::try_from(self.names.len()).expect("interner overflow");
        self.names.push(owned);
        self.ids.insert(owned, id);
        Symbol(id)
    }
}

fn interner() -> &'static RwLock<Interner> {
    static INTERNER: OnceLock<RwLock<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        RwLock::new(Interner {
            names: Vec::new(),
            ids: FxHashMap::default(),
        })
    })
}

/// Reads through lock poison. Evaluator workers run under `catch_unwind`
/// (panics become structured `WorkerPanicked` errors rather than aborts), so
/// a panic while holding this lock must not brick every later query.
/// `Interner::intern` only mutates after its fallible steps, so the guarded
/// state is consistent even when poisoned.
fn read_interner() -> std::sync::RwLockReadGuard<'static, Interner> {
    interner().read().unwrap_or_else(PoisonError::into_inner)
}

fn write_interner() -> std::sync::RwLockWriteGuard<'static, Interner> {
    interner().write().unwrap_or_else(PoisonError::into_inner)
}

impl Symbol {
    /// Interns `s`, returning its symbol. Idempotent.
    pub fn intern(s: &str) -> Symbol {
        // Fast path: read lock only.
        if let Some(&id) = read_interner().ids.get(s) {
            return Symbol(id);
        }
        write_interner().intern(s)
    }

    /// The interned string.
    pub fn as_str(self) -> &'static str {
        read_interner().names[self.0 as usize]
    }

    /// The raw id, useful as a dense array index in analyses.
    pub fn id(self) -> u32 {
        self.0
    }

    /// Creates a fresh symbol guaranteed not to collide with any symbol
    /// interned so far, based on `base` (used for generated variables and
    /// rewritten predicate names).
    pub fn fresh(base: &str) -> Symbol {
        let mut guard = write_interner();
        let mut n = guard.names.len();
        loop {
            let candidate = format!("{base}#{n}");
            if !guard.ids.contains_key(candidate.as_str()) {
                return guard.intern(&candidate);
            }
            n += 1;
        }
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Symbol({:?})", self.as_str())
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Symbol {
        Symbol::intern(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = Symbol::intern("ancestor");
        let b = Symbol::intern("ancestor");
        assert_eq!(a, b);
        assert_eq!(a.as_str(), "ancestor");
    }

    #[test]
    fn distinct_strings_get_distinct_symbols() {
        assert_ne!(Symbol::intern("p"), Symbol::intern("q"));
    }

    #[test]
    fn fresh_symbols_never_collide() {
        let base = Symbol::intern("magic_p");
        let f1 = Symbol::fresh("magic_p");
        let f2 = Symbol::fresh("magic_p");
        assert_ne!(f1, base);
        assert_ne!(f1, f2);
        assert!(f1.as_str().starts_with("magic_p#"));
    }

    #[test]
    fn display_roundtrips() {
        let s = Symbol::intern("same_generation");
        assert_eq!(s.to_string(), "same_generation");
    }

    #[test]
    fn concurrent_interning_is_consistent() {
        let handles: Vec<_> = (0..8)
            .map(|_| std::thread::spawn(|| Symbol::intern("shared_symbol")))
            .collect();
        let ids: Vec<Symbol> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(ids.windows(2).all(|w| w[0] == w[1]));
    }
}
