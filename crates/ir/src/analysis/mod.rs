//! Static analyses over programs: dependency graphs, SCCs, stratification,
//! loose stratification, and ground local stratification.

pub mod depgraph;
pub mod ground;
pub mod loose;
pub mod scc;
pub mod stratify;

pub use depgraph::{DepEdge, DepGraph};
pub use ground::{active_domain, ground_instances, locally_stratified, NotLocallyStratified};
pub use loose::{loosely_stratified, AdornedArc, AdornedGraph, LooseWitness};
pub use scc::{tarjan, SccDecomposition};
pub use stratify::{stratify, NotStratified, Stratification};
