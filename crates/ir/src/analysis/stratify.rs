//! Stratification (Apt–Blair–Walker / Van Gelder).
//!
//! A program is *stratified* iff its predicate dependency graph has no cycle
//! through a negative edge — equivalently, no SCC contains a negative edge.
//! The strata are the SCCs of the dependency graph in reverse topological
//! order, merged into numbered layers such that a predicate's stratum is
//! strictly above the strata of the predicates it depends on negatively and
//! at or above those it depends on positively.

use crate::atom::Predicate;
use crate::hash::FxHashMap;
use crate::literal::Polarity;
use crate::program::Program;

use super::depgraph::DepGraph;
use super::scc::tarjan;

/// A successful stratification.
#[derive(Clone, Debug)]
pub struct Stratification {
    /// `strata[i]` is the set of predicates in stratum `i`; stratum 0 must be
    /// evaluated first.
    pub strata: Vec<Vec<Predicate>>,
    stratum_of: FxHashMap<Predicate, usize>,
}

impl Stratification {
    /// The stratum index of `p`. Predicates absent from the program (e.g.
    /// pure EDB predicates never mentioned) default to stratum 0.
    pub fn stratum_of(&self, p: Predicate) -> usize {
        self.stratum_of.get(&p).copied().unwrap_or(0)
    }

    /// Number of strata.
    pub fn len(&self) -> usize {
        self.strata.len()
    }

    /// True iff there are no strata (empty program).
    pub fn is_empty(&self) -> bool {
        self.strata.is_empty()
    }
}

/// Why a program failed to stratify.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NotStratified {
    /// A negative edge `from → to` inside one SCC (witness of the
    /// negation-through-recursion cycle).
    pub from: Predicate,
    pub to: Predicate,
}

impl std::fmt::Display for NotStratified {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "program is not stratified: {} depends negatively on {} within a recursive cycle",
            self.from, self.to
        )
    }
}

impl std::error::Error for NotStratified {}

/// Stratifies `program`, or reports a witness negative edge in a cycle.
pub fn stratify(program: &Program) -> Result<Stratification, NotStratified> {
    let g = DepGraph::build(program);
    let scc = tarjan(g.len(), &|v| g.succs[v].iter().map(|&(w, _)| w).collect());

    // Reject negative edges inside an SCC.
    for (v, outs) in g.succs.iter().enumerate() {
        for &(w, pol) in outs {
            if pol == Polarity::Negative && scc.component[v] == scc.component[w] {
                return Err(NotStratified {
                    from: g.vertices[v],
                    to: g.vertices[w],
                });
            }
        }
    }

    // Assign stratum numbers per component. Components arrive in reverse
    // topological order (dependencies first), so one pass suffices:
    //   stratum(c) = max over edges c→d of (stratum(d) + [edge negative]).
    let ncomp = scc.components.len();
    let mut comp_stratum = vec![0usize; ncomp];
    for (c, members) in scc.components.iter().enumerate() {
        let mut s = 0usize;
        for &v in members {
            for &(w, pol) in &g.succs[v] {
                let d = scc.component[w];
                if d == c {
                    continue; // intra-component edges are positive here
                }
                let need = comp_stratum[d] + usize::from(pol == Polarity::Negative);
                s = s.max(need);
            }
        }
        comp_stratum[c] = s;
    }

    let nstrata = comp_stratum.iter().copied().max().map_or(0, |m| m + 1);
    let mut strata = vec![Vec::new(); nstrata];
    let mut stratum_of = FxHashMap::default();
    for (c, members) in scc.components.iter().enumerate() {
        for &v in members {
            let p = g.vertices[v];
            strata[comp_stratum[c]].push(p);
            stratum_of.insert(p, comp_stratum[c]);
        }
    }
    // Deterministic order inside a stratum.
    for layer in &mut strata {
        layer.sort();
    }

    Ok(Stratification { strata, stratum_of })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::atom;
    use crate::literal::Literal;
    use crate::rule::Rule;
    use crate::term::Term;

    fn pred(name: &str, arity: usize) -> Predicate {
        Predicate::new(name, arity)
    }

    #[test]
    fn definite_program_is_single_stratum_per_layer() {
        // anc depends positively on par and itself: everything stratum 0.
        let p = Program::from_rules(vec![
            Rule::new(
                atom("anc", [Term::var("X"), Term::var("Y")]),
                vec![Literal::pos(atom("par", [Term::var("X"), Term::var("Y")]))],
            ),
            Rule::new(
                atom("anc", [Term::var("X"), Term::var("Y")]),
                vec![
                    Literal::pos(atom("par", [Term::var("X"), Term::var("Z")])),
                    Literal::pos(atom("anc", [Term::var("Z"), Term::var("Y")])),
                ],
            ),
        ]);
        let s = stratify(&p).unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(s.stratum_of(pred("anc", 2)), 0);
        assert_eq!(s.stratum_of(pred("par", 2)), 0);
    }

    #[test]
    fn negation_pushes_head_to_higher_stratum() {
        // unreached(X) :- node(X), !reached(X).
        // reached(X) :- edge(s, X).   (simplified)
        let p = Program::from_rules(vec![
            Rule::new(
                atom("unreached", [Term::var("X")]),
                vec![
                    Literal::pos(atom("node", [Term::var("X")])),
                    Literal::neg(atom("reached", [Term::var("X")])),
                ],
            ),
            Rule::new(
                atom("reached", [Term::var("X")]),
                vec![Literal::pos(atom("edge", [Term::sym("s"), Term::var("X")]))],
            ),
        ]);
        let s = stratify(&p).unwrap();
        assert_eq!(s.stratum_of(pred("reached", 1)), 0);
        assert_eq!(s.stratum_of(pred("unreached", 1)), 1);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn win_move_is_not_stratified() {
        let p = Program::from_rules(vec![Rule::new(
            atom("win", [Term::var("X")]),
            vec![
                Literal::pos(atom("move", [Term::var("X"), Term::var("Y")])),
                Literal::neg(atom("win", [Term::var("Y")])),
            ],
        )]);
        let err = stratify(&p).unwrap_err();
        assert_eq!(err.from, pred("win", 1));
        assert_eq!(err.to, pred("win", 1));
    }

    #[test]
    fn mutual_recursion_through_negation_is_rejected() {
        // p :- !q.  q :- !p.  (classic even/odd deadlock)
        let p = Program::from_rules(vec![
            Rule::new(
                atom("p", [Term::var("X")]),
                vec![
                    Literal::pos(atom("d", [Term::var("X")])),
                    Literal::neg(atom("q", [Term::var("X")])),
                ],
            ),
            Rule::new(
                atom("q", [Term::var("X")]),
                vec![
                    Literal::pos(atom("d", [Term::var("X")])),
                    Literal::neg(atom("p", [Term::var("X")])),
                ],
            ),
        ]);
        assert!(stratify(&p).is_err());
    }

    #[test]
    fn chained_negations_produce_increasing_strata() {
        // s2 :- !s1.  s1 :- !s0.  s0 :- base.
        let p = Program::from_rules(vec![
            Rule::new(
                atom("s2", [Term::var("X")]),
                vec![
                    Literal::pos(atom("d", [Term::var("X")])),
                    Literal::neg(atom("s1", [Term::var("X")])),
                ],
            ),
            Rule::new(
                atom("s1", [Term::var("X")]),
                vec![
                    Literal::pos(atom("d", [Term::var("X")])),
                    Literal::neg(atom("s0", [Term::var("X")])),
                ],
            ),
            Rule::new(
                atom("s0", [Term::var("X")]),
                vec![Literal::pos(atom("base", [Term::var("X")]))],
            ),
        ]);
        let s = stratify(&p).unwrap();
        assert_eq!(s.stratum_of(pred("s0", 1)), 0);
        assert_eq!(s.stratum_of(pred("s1", 1)), 1);
        assert_eq!(s.stratum_of(pred("s2", 1)), 2);
    }

    #[test]
    fn empty_program_stratifies_trivially() {
        let s = stratify(&Program::new()).unwrap();
        assert!(s.is_empty());
    }
}
