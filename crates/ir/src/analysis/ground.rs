//! Local stratification checked on the ground (Herbrand) instantiation.
//!
//! A program is *locally stratified* (Przymusinski) iff the dependency graph
//! of its ground instantiation over the active domain has no cycle through a
//! negative edge. This is exponential in general — we materialise the ground
//! program — so it is only intended for small domains: cross-validating the
//! loose-stratification analysis (the two coincide for function-free
//! programs, Bry §5.1) and powering experiment E7.
//!
//! The check is **EDB-aware**: ground rule instances whose extensional body
//! literals are falsified by the program's inline facts are pruned before
//! building the graph. This matches the "depends on" relation of Bry's
//! Proposition 5.1 (proofs are built from actual facts), and is what makes
//! `win :- move, !win` locally stratified exactly when the `move` relation
//! is acyclic.

use crate::atom::Atom;
use crate::hash::{FxHashMap, FxHashSet};
use crate::literal::Polarity;
use crate::program::Program;
use crate::rule::Rule;
use crate::subst::Subst;
use crate::term::{Const, Term};

use super::scc::tarjan;

/// All ground instances of `rule` over `domain` (every variable replaced by
/// every domain constant).
pub fn ground_instances(rule: &Rule, domain: &[Const]) -> Vec<Rule> {
    let vars = rule.vars();
    if vars.is_empty() {
        return vec![rule.clone()];
    }
    let mut out = Vec::new();
    let mut choice = vec![0usize; vars.len()];
    if domain.is_empty() {
        return out;
    }
    loop {
        let mut s = Subst::new();
        for (v, &c) in vars.iter().zip(&choice) {
            s.bind(*v, Term::Const(domain[c]));
        }
        out.push(s.apply_rule(rule));
        // Odometer increment.
        let mut i = 0;
        loop {
            choice[i] += 1;
            if choice[i] < domain.len() {
                break;
            }
            choice[i] = 0;
            i += 1;
            if i == vars.len() {
                return out;
            }
        }
    }
}

/// The active domain of a program: every constant occurring in its rules and
/// inline facts, plus the extra constants supplied (e.g. from the EDB).
pub fn active_domain(program: &Program, extra: &[Const]) -> Vec<Const> {
    let mut seen: FxHashSet<Const> = FxHashSet::default();
    let mut out = Vec::new();
    let mut push = |c: Const| {
        if seen.insert(c) {
            out.push(c);
        }
    };
    for r in &program.rules {
        for t in r
            .head
            .terms
            .iter()
            .chain(r.body.iter().flat_map(|l| l.atom.terms.iter()))
        {
            if let Term::Const(c) = t {
                push(*c);
            }
        }
    }
    for f in &program.facts {
        for t in &f.terms {
            if let Term::Const(c) = t {
                push(*c);
            }
        }
    }
    for &c in extra {
        push(c);
    }
    out
}

/// A witness that the ground instantiation has a negative edge in a cycle.
#[derive(Clone, Debug)]
pub struct NotLocallyStratified {
    pub from: Atom,
    pub to: Atom,
}

impl std::fmt::Display for NotLocallyStratified {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ground atom {} depends negatively on {} within a cycle",
            self.from, self.to
        )
    }
}

/// Checks local stratification of `program` over the active domain extended
/// by `extra_constants`.
pub fn locally_stratified(
    program: &Program,
    extra_constants: &[Const],
) -> Result<(), NotLocallyStratified> {
    let domain = active_domain(program, extra_constants);
    let mut vertices: Vec<Atom> = Vec::new();
    let mut index: FxHashMap<Atom, usize> = FxHashMap::default();
    let mut succs: Vec<Vec<(usize, Polarity)>> = Vec::new();
    let add = |a: Atom,
               vertices: &mut Vec<Atom>,
               index: &mut FxHashMap<Atom, usize>,
               succs: &mut Vec<Vec<(usize, Polarity)>>| {
        if let Some(&i) = index.get(&a) {
            return i;
        }
        let i = vertices.len();
        index.insert(a.clone(), i);
        vertices.push(a);
        succs.push(Vec::new());
        i
    };

    let idb = program.idb_predicates();
    let facts: FxHashSet<&Atom> = program.facts.iter().collect();
    for rule in &program.rules {
        for g in ground_instances(rule, &domain) {
            // Prune instances falsified by the extensional database: a
            // positive EDB literal absent from the facts, or a negative EDB
            // literal present in them, means the instance can never fire.
            let falsified = g.body.iter().any(|l| {
                let p = l.atom.predicate();
                if idb.contains(&p) {
                    return false;
                }
                match l.polarity {
                    Polarity::Positive => !facts.contains(&l.atom),
                    Polarity::Negative => facts.contains(&l.atom),
                }
            });
            if falsified {
                continue;
            }
            let h = add(g.head.clone(), &mut vertices, &mut index, &mut succs);
            for l in &g.body {
                let b = add(l.atom.clone(), &mut vertices, &mut index, &mut succs);
                if !succs[h].contains(&(b, l.polarity)) {
                    succs[h].push((b, l.polarity));
                }
            }
        }
    }

    let scc = tarjan(vertices.len(), &|v| {
        succs[v].iter().map(|&(w, _)| w).collect()
    });
    for (v, outs) in succs.iter().enumerate() {
        for &(w, pol) in outs {
            if pol == Polarity::Negative && scc.component[v] == scc.component[w] {
                return Err(NotLocallyStratified {
                    from: vertices[v].clone(),
                    to: vertices[w].clone(),
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::atom;
    use crate::literal::Literal;
    use crate::term::Var;

    #[test]
    fn ground_instances_enumerate_the_domain() {
        let r = Rule::new(
            atom("p", [Term::var("X")]),
            vec![Literal::pos(atom("q", [Term::var("X"), Term::var("Y")]))],
        );
        let dom = vec![Const::sym("a"), Const::sym("b")];
        let gs = ground_instances(&r, &dom);
        assert_eq!(gs.len(), 4); // 2 vars × 2 constants
        assert!(gs.iter().all(|g| g.head.is_ground()));
        let distinct: FxHashSet<String> = gs.iter().map(|g| g.to_string()).collect();
        assert_eq!(distinct.len(), 4);
    }

    #[test]
    fn ground_instances_of_ground_rule_is_itself() {
        let r = Rule::new(atom("p", [Term::sym("a")]), vec![]);
        assert_eq!(ground_instances(&r, &[Const::sym("z")]).len(), 1);
    }

    #[test]
    fn active_domain_collects_constants() {
        let mut p = Program::from_rules(vec![Rule::new(
            atom("p", [Term::var("X"), Term::sym("a")]),
            vec![Literal::pos(atom("q", [Term::var("X")]))],
        )]);
        p.facts.push(atom("q", [Term::sym("b")]));
        let d = active_domain(&p, &[Const::int(3)]);
        assert_eq!(d, vec![Const::sym("a"), Const::sym("b"), Const::int(3)]);
    }

    #[test]
    fn win_move_on_cycle_is_not_locally_stratified() {
        // move(a, b), move(b, a): win(a) depends negatively on win(b) and
        // vice versa.
        let mut p = Program::from_rules(vec![Rule::new(
            atom("win", [Term::var("X")]),
            vec![
                Literal::pos(atom("move", [Term::var("X"), Term::var("Y")])),
                Literal::neg(atom("win", [Term::var("Y")])),
            ],
        )]);
        p.facts.push(atom("move", [Term::sym("a"), Term::sym("b")]));
        p.facts.push(atom("move", [Term::sym("b"), Term::sym("a")]));
        assert!(locally_stratified(&p, &[]).is_err());
    }

    #[test]
    fn win_move_ground_graph_is_fine_on_acyclic_moves() {
        // Only move(a, b): ground win(a) -> win(b) negative, no cycle.
        let mut p = Program::from_rules(vec![Rule::new(
            atom("win", [Term::var("X")]),
            vec![
                Literal::pos(atom("move", [Term::var("X"), Term::var("Y")])),
                Literal::neg(atom("win", [Term::var("Y")])),
            ],
        )]);
        p.facts.push(atom("move", [Term::sym("a"), Term::sym("b")]));
        assert!(locally_stratified(&p, &[]).is_ok());
    }

    #[test]
    fn bry_loose_example_is_locally_stratified() {
        // p(x, a) :- q(x, y), s(z, x), !r(z, x), !p(z, b): ground p-atoms
        // ending in `a` depend on p-atoms ending in `b`, which have no rules.
        let p = Program::from_rules(vec![Rule::new(
            atom("p", [Term::var("X"), Term::sym("a")]),
            vec![
                Literal::pos(atom("q", [Term::var("X"), Term::var("Y")])),
                Literal::pos(atom("s", [Term::var("Z"), Term::var("X")])),
                Literal::neg(atom("r", [Term::var("Z"), Term::var("X")])),
                Literal::neg(atom("p", [Term::var("Z"), Term::sym("b")])),
            ],
        )]);
        assert!(locally_stratified(&p, &[Const::sym("c")]).is_ok());
        // Agreement with the loose-stratification analysis (they coincide on
        // the function-free fragment).
        assert!(super::super::loose::loosely_stratified(&p).is_ok());
    }

    #[test]
    fn empty_domain_rules_have_no_instances() {
        let r = Rule::new(
            atom("p", [Term::var("X")]),
            vec![Literal::pos(atom("q", [Term::var("X")]))],
        );
        assert!(ground_instances(&r, &[]).is_empty());
        let _ = Var::new("X"); // keep import used under cfg(test)
    }
}
