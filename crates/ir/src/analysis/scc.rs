//! Tarjan's strongly-connected-components algorithm (iterative).
//!
//! Used to condense the predicate dependency graph: strata and evaluation
//! order are computed per SCC. The iterative formulation avoids stack
//! overflow on long dependency chains (deep chain EDBs produce deep rule
//! graphs in stress tests).

/// The SCC decomposition of a directed graph given as adjacency lists.
#[derive(Clone, Debug)]
pub struct SccDecomposition {
    /// `component[v]` is the SCC id of vertex `v`.
    pub component: Vec<usize>,
    /// Components listed in **reverse topological order**: if `c1` has an
    /// edge into `c2` (c1 depends on c2), then `c2` appears before `c1`.
    /// This is exactly bottom-up evaluation order.
    pub components: Vec<Vec<usize>>,
}

/// Computes SCCs of the graph with `n` vertices and `succs[v]` the successor
/// list of `v`. Tarjan emits components in reverse topological order, which
/// we keep (see [`SccDecomposition::components`]).
pub fn tarjan(n: usize, succs: &dyn Fn(usize) -> Vec<usize>) -> SccDecomposition {
    const UNSET: usize = usize::MAX;
    let mut index = vec![UNSET; n];
    let mut lowlink = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut component = vec![UNSET; n];
    let mut components: Vec<Vec<usize>> = Vec::new();

    // Explicit DFS frames: (vertex, successor list, next successor position).
    struct Frame {
        v: usize,
        succs: Vec<usize>,
        next: usize,
    }

    for root in 0..n {
        if index[root] != UNSET {
            continue;
        }
        let mut frames = vec![Frame {
            v: root,
            succs: succs(root),
            next: 0,
        }];
        index[root] = next_index;
        lowlink[root] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root] = true;

        while let Some(frame) = frames.last_mut() {
            let v = frame.v;
            if frame.next < frame.succs.len() {
                let w = frame.succs[frame.next];
                frame.next += 1;
                if index[w] == UNSET {
                    index[w] = next_index;
                    lowlink[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    frames.push(Frame {
                        v: w,
                        succs: succs(w),
                        next: 0,
                    });
                } else if on_stack[w] {
                    lowlink[v] = lowlink[v].min(index[w]);
                }
            } else {
                // v is finished.
                if lowlink[v] == index[v] {
                    let mut comp = Vec::new();
                    loop {
                        // invariant: Tarjan pushes `v` before any node that
                        // can close its component, so the pop loop below
                        // always finds `v` before the stack empties.
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w] = false;
                        component[w] = components.len();
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    components.push(comp);
                }
                frames.pop();
                if let Some(parent) = frames.last() {
                    let p = parent.v;
                    lowlink[p] = lowlink[p].min(lowlink[v]);
                }
            }
        }
    }

    SccDecomposition {
        component,
        components,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scc_of(n: usize, edges: &[(usize, usize)]) -> SccDecomposition {
        let adj: Vec<Vec<usize>> = {
            let mut a = vec![Vec::new(); n];
            for &(u, v) in edges {
                a[u].push(v);
            }
            a
        };
        tarjan(n, &|v| adj[v].clone())
    }

    #[test]
    fn singleton_components_for_dag() {
        let d = scc_of(3, &[(0, 1), (1, 2)]);
        assert_eq!(d.components.len(), 3);
        // Reverse topological: 2 before 1 before 0.
        assert_eq!(d.components[0], vec![2]);
        assert_eq!(d.components[1], vec![1]);
        assert_eq!(d.components[2], vec![0]);
    }

    #[test]
    fn cycle_is_one_component() {
        let d = scc_of(3, &[(0, 1), (1, 2), (2, 0)]);
        assert_eq!(d.components.len(), 1);
        assert_eq!(d.component, vec![0, 0, 0]);
    }

    #[test]
    fn mixed_graph() {
        // 0 <-> 1 form an SCC; both reach 2; 3 isolated.
        let d = scc_of(4, &[(0, 1), (1, 0), (1, 2)]);
        assert_eq!(d.components.len(), 3);
        assert_eq!(d.component[0], d.component[1]);
        assert_ne!(d.component[0], d.component[2]);
        // 2 must come before the {0,1} component (reverse topological).
        let c2 = d.component[2];
        let c01 = d.component[0];
        assert!(c2 < c01);
    }

    #[test]
    fn self_loop_is_its_own_component() {
        let d = scc_of(2, &[(0, 0), (0, 1)]);
        assert_eq!(d.components.len(), 2);
        assert_ne!(d.component[0], d.component[1]);
    }

    #[test]
    fn deep_chain_does_not_overflow() {
        // 100_000-vertex chain: a recursive Tarjan would blow the stack.
        let n = 100_000;
        let d = tarjan(n, &|v| if v + 1 < n { vec![v + 1] } else { vec![] });
        assert_eq!(d.components.len(), n);
    }

    #[test]
    fn empty_graph() {
        let d = scc_of(0, &[]);
        assert!(d.components.is_empty());
        assert!(d.component.is_empty());
    }
}
